//! # xjoin-repro — Worst-Case Optimal Joins on Relational and XML Data
//!
//! A from-scratch reproduction of Yuxing Chen's SIGMOD 2018 paper: a
//! multi-model join engine (**XJoin**) that evaluates queries spanning
//! relational tables and XML twig patterns with worst-case optimal
//! intermediate results, together with every substrate it needs:
//!
//! * [`relational`] — dictionary-encoded relations, sorted tries, leapfrog
//!   intersection, LFTJ, a level-wise generic worst-case optimal join, and a
//!   classical hash-join engine;
//! * [`xmldb`] — an XML document model with region encoding, a parser, twig
//!   patterns, structural joins (stack-tree), holistic twig joins
//!   (TwigStack), and the paper's twig → path-relation transformation;
//! * [`agm`] — a simplex LP solver with fractional edge cover / vertex
//!   packing, computing the paper's size bounds;
//! * [`xjoin_core`] — the paper's contribution: the XJoin engine, the
//!   per-model baseline it is compared against, Lemma 3.1/3.5 bound
//!   checks, and the unified execution API (`Engine` / `EngineKind` /
//!   `QueryBuilder` / pull-based `Rows`) every engine sits behind;
//! * [`xjoin_store`] — the serving layer: a versioned store with immutable
//!   snapshots, a shared LRU trie cache, prepared queries, and a concurrent
//!   query service;
//! * [`xjoin_serve`] — the networked front end: a length-prefixed wire
//!   protocol over TCP, a server-side prepared-statement cache, per-request
//!   deadlines and row budgets, and AGM-based admission control.
//!
//! See `examples/quickstart.rs` for a three-minute tour,
//! `examples/query_server.rs` for the networked serving layer, and the
//! `bench` crate's `experiments` binary for the paper's tables and figures.

pub use agm;
pub use relational;
pub use xjoin_core;
pub use xjoin_serve;
pub use xjoin_store;
pub use xmldb;
