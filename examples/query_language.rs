//! MMQL: the datalog-style surface syntax plus EXPLAIN.
//!
//! ```sh
//! cargo run --example query_language
//! ```

use relational::{Database, Schema, Value};
use xjoin_core::{explain, parse_query, xjoin, DataContext, OrderStrategy, XJoinConfig};
use xmldb::{parse_xml, TagIndex};

fn main() {
    // A small product graph: suppliers ship parts; the XML catalog restricts
    // which parts are currently listed with a price.
    let mut db = Database::new();
    db.load(
        "supplies",
        Schema::of(&["supplier", "part"]),
        vec![
            vec![Value::str("acme"), Value::Int(1)],
            vec![Value::str("acme"), Value::Int(2)],
            vec![Value::str("globex"), Value::Int(2)],
            vec![Value::str("globex"), Value::Int(3)],
        ],
    )
    .expect("supplies load");
    db.load(
        "prefers",
        Schema::of(&["customer", "supplier"]),
        vec![
            vec![Value::str("carol"), Value::str("acme")],
            vec![Value::str("dave"), Value::str("globex")],
        ],
    )
    .expect("prefers load");

    let mut dict = db.dict().clone();
    let doc = parse_xml(
        "<catalog>\
           <item><part>2</part><price>95</price></item>\
           <item><part>3</part><price>40</price></item>\
         </catalog>",
        &mut dict,
    )
    .expect("catalog parses");
    *db.dict_mut() = dict;
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);

    // One query spanning two tables and the XML catalog. The relational
    // atoms rebind columns positionally; `part` is shared with the twig.
    let text = "Q(customer, part, price) :- \
                prefers(customer, supplier), supplies(supplier, part), \
                //item[/part][/price]";
    println!("query: {text}\n");
    let query = parse_query(text).expect("query parses");

    let plan = explain(&ctx, &query, &OrderStrategy::Appearance).expect("explains");
    println!("EXPLAIN:\n{}", plan.render());

    let out = xjoin(&ctx, &query, &XJoinConfig::default()).expect("xjoin runs");
    println!("result:");
    print!("{}", db.render_table(&out.results));
    println!("\nstats:\n{}", out.stats);
}
