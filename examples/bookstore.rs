//! The paper's Figure 1, end to end: the bookstore multi-model join
//! `Q(userID, ISBN, price) = R(orderID, userID) ⋈ invoices-twig`, evaluated
//! with both XJoin and the per-model baseline, with their intermediate-size
//! instrumentation side by side.
//!
//! ```sh
//! cargo run --example bookstore
//! ```

use relational::{Database, Schema, Value};
use xjoin_core::{baseline, xjoin, BaselineConfig, DataContext, MultiModelQuery, XJoinConfig};
use xmldb::{parse_xml, TagIndex, TwigPattern};

const INVOICES: &str = "<invoices>\
    <orderLine><orderID>10963</orderID><ISBN>978-3-16-1</ISBN>\
    <price>30</price><discount>0.1</discount></orderLine>\
    <orderLine><orderID>20134</orderID><ISBN>634-3-12-2</ISBN>\
    <price>20</price><discount>0.3</discount></orderLine>\
    </invoices>";

fn main() {
    let mut db = Database::new();
    db.load(
        "R",
        Schema::of(&["orderID", "userID"]),
        vec![
            vec![Value::Int(10963), Value::str("jack")],
            vec![Value::Int(20134), Value::str("tom")],
            vec![Value::Int(35768), Value::str("bob")],
        ],
    )
    .expect("orders load");
    let mut dict = db.dict().clone();
    let doc = parse_xml(INVOICES, &mut dict).expect("invoices parse");
    *db.dict_mut() = dict;
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);

    println!("R(orderID, userID):");
    print!("{}", db.render_table(db.relation("R").expect("R exists")));

    let twig_expr = "//invoices/orderLine[/orderID][/ISBN][/price]";
    let twig = TwigPattern::parse(twig_expr).expect("twig parses");
    println!("\ntwig query: {twig}");
    let dec = xmldb::decompose(&twig);
    println!(
        "decomposition: {} sub-twigs, {} path relations, {} cut A-D edges",
        dec.sub_twigs.len(),
        dec.paths.len(),
        dec.ad_edges.len()
    );
    for p in &dec.paths {
        let vars: Vec<&str> = p.nodes.iter().map(|&q| twig.node(q).var.name()).collect();
        println!("  path relation ({})", vars.join(", "));
    }

    let query = MultiModelQuery::new(&["R"], &[twig_expr])
        .expect("query parses")
        .with_output(&["userID", "ISBN", "price"]);

    let x = xjoin(&ctx, &query, &XJoinConfig::default()).expect("xjoin runs");
    println!("\nXJoin result Q(userID, ISBN, price):");
    print!("{}", db.render_table(&x.results));
    println!("XJoin stages:\n{}", x.stats);

    let b = baseline(&ctx, &query, &BaselineConfig::default()).expect("baseline runs");
    println!("Baseline stages:\n{}", b.stats);
    assert!(x.results.set_eq(&b.results), "engines must agree");
    println!(
        "agreement: XJoin == Baseline ({} rows); XJoin max intermediate {}, baseline {}",
        x.results.len(),
        x.stats.max_intermediate(),
        b.stats.max_intermediate()
    );
}
