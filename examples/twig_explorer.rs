//! Tour of the XML substrate: parse a document, explore region labels,
//! evaluate twig patterns with three different algorithms, and inspect the
//! paper's twig → path-relation decomposition.
//!
//! ```sh
//! cargo run --example twig_explorer
//! ```

use relational::Dict;
use xmldb::{decompose, holistic, matcher, parse_xml, transform, TagIndex, TwigPattern};

const CATALOG: &str = "<catalog>\
    <book><title>DB Systems</title><author>Ada</author>\
      <chapter><title>Joins</title><section><title>WCOJ</title></section></chapter>\
    </book>\
    <book><title>XML in Depth</title><author>Bo</author>\
      <chapter><title>Twigs</title></chapter>\
    </book>\
    </catalog>";

fn main() {
    let mut dict = Dict::new();
    let doc = parse_xml(CATALOG, &mut dict).expect("catalog parses");
    let index = TagIndex::build(&doc);

    println!(
        "document: {} nodes, {} distinct tags",
        doc.len(),
        doc.tags().len()
    );
    for id in doc.node_ids().take(6) {
        let n = doc.node(id);
        println!(
            "  {:>3}  {:<8}  region=({:>2},{:>2})  level={}  dewey={:?}",
            id.0,
            doc.tag_name(id),
            n.start,
            n.end,
            n.level,
            doc.dewey(id)
        );
    }

    for expr in [
        "//book/title",
        "//book//title",
        "//book[/author]//title$t",
        "//chapter[/title]//section",
    ] {
        let twig = TwigPattern::parse(expr).expect("twig parses");
        let nav = matcher::count_matches(&doc, &index, &twig);
        let holo = holistic::twig_stack(&doc, &index, &twig);
        println!(
            "\ntwig {expr}\n  navigational matches: {nav}\n  TwigStack matches:    {} ({} path solutions)",
            holo.matches.len(),
            holo.path_solutions
        );
        let dec = decompose(&twig);
        println!(
            "  decomposition: {} sub-twigs / {} paths / {} A-D edges cut",
            dec.sub_twigs.len(),
            dec.paths.len(),
            dec.ad_edges.len()
        );
        for p in &dec.paths {
            let rel = transform::path_relation(&doc, &index, &twig, p);
            let vars: Vec<&str> = p.nodes.iter().map(|&q| twig.node(q).var.name()).collect();
            println!("    path({}) -> {} value tuples", vars.join(","), rel.len());
        }
    }
}
