//! Quickstart: join a relational table with an XML document in ~30 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use relational::{Database, Schema, Value};
use xjoin_core::{xjoin, DataContext, MultiModelQuery, XJoinConfig};
use xmldb::{parse_xml, TagIndex};

fn main() {
    // 1. A relational table of orders.
    let mut db = Database::new();
    db.load(
        "orders",
        Schema::of(&["orderID", "userID"]),
        vec![
            vec![Value::Int(10963), Value::str("jack")],
            vec![Value::Int(20134), Value::str("tom")],
            vec![Value::Int(35768), Value::str("bob")],
        ],
    )
    .expect("orders load");

    // 2. An XML document of invoices — values are interned into the *same*
    //    dictionary so they join across models.
    let mut dict = db.dict().clone();
    let doc = parse_xml(
        "<invoices>\
           <orderLine><orderID>10963</orderID><price>30</price></orderLine>\
           <orderLine><orderID>20134</orderID><price>20</price></orderLine>\
         </invoices>",
        &mut dict,
    )
    .expect("invoices parse");
    *db.dict_mut() = dict;
    let index = TagIndex::build(&doc);

    // 3. A multi-model query: the twig variable `orderID` and the relational
    //    column `orderID` are the same join variable.
    let query = MultiModelQuery::new(&["orders"], &["//orderLine[/orderID][/price]"])
        .expect("query parses")
        .with_output(&["userID", "price"]);

    // 4. Run the worst-case optimal multi-model join.
    let ctx = DataContext::new(&db, &doc, &index);
    let out = xjoin(&ctx, &query, &XJoinConfig::default()).expect("xjoin runs");

    println!("Q(userID, price):");
    print!("{}", db.render_table(&out.results));
    println!("\nper-stage intermediate sizes:\n{}", out.stats);
}
