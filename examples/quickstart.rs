//! Quickstart: join a relational table with an XML document through the
//! unified execution API in ~30 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use relational::{Database, Schema, Value};
use xjoin_core::{DataContext, EngineKind, QueryBuilder};
use xmldb::{parse_xml, TagIndex};

fn main() {
    // 1. A relational table of orders.
    let mut db = Database::new();
    db.load(
        "orders",
        Schema::of(&["orderID", "userID"]),
        vec![
            vec![Value::Int(10963), Value::str("jack")],
            vec![Value::Int(20134), Value::str("tom")],
            vec![Value::Int(35768), Value::str("bob")],
        ],
    )
    .expect("orders load");

    // 2. An XML document of invoices — values are interned into the *same*
    //    dictionary so they join across models.
    let mut dict = db.dict().clone();
    let doc = parse_xml(
        "<invoices>\
           <orderLine><orderID>10963</orderID><price>30</price></orderLine>\
           <orderLine><orderID>20134</orderID><price>20</price></orderLine>\
         </invoices>",
        &mut dict,
    )
    .expect("invoices parse");
    *db.dict_mut() = dict;
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);

    // 3. One query, one builder: MMQL text (or programmatic atoms), output
    //    projection, and engine choice in a single chain. The twig variable
    //    `orderID` and the relational column `orderID` are the same join
    //    variable.
    let query = QueryBuilder::mmql(
        "Q(userID, price) :- orders(orderID, userID), //orderLine[/orderID][/price]",
    )
    .expect("query parses")
    .build()
    .expect("query builds");

    // 4. Run the worst-case optimal multi-model join (the default engine is
    //    the paper's level-wise XJoin).
    let out = query.execute(&ctx).expect("xjoin runs");
    println!("Q(userID, price):");
    print!("{}", db.render_table(&out.results));
    println!("\nper-stage intermediate sizes:\n{}", out.stats);

    // 5. The same query streams through any engine: pull rows lazily from
    //    the depth-first engine, stopping after the first row — the trie
    //    walk is abandoned, not completed.
    let streaming = QueryBuilder::from_query(query.query.clone())
        .engine(EngineKind::XJoinStream)
        .limit(1)
        .build()
        .expect("query builds");
    let mut rows = streaming.rows(&ctx).expect("rows stream");
    let first = rows.next().expect("at least one row");
    println!(
        "first row via Rows + limit(1): {:?} (bindings made: {})",
        first,
        rows.stats().visited
    );
}
