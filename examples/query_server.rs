//! Query server: serve prepared multi-model queries concurrently from a
//! versioned store with a shared trie cache.
//!
//! ```sh
//! cargo run --example query_server
//! ```
//!
//! Loads the Figure 1 bookstore dataset, prepares two multi-model queries,
//! executes them through the `xjoin-store` worker pool against one snapshot,
//! then applies a write and shows that an old snapshot keeps serving the old
//! state while the cache re-keys only what changed.

use bench::workloads::bookstore;
use relational::{Schema, Value};
use std::sync::Arc;
use xjoin_core::{EngineKind, ExecOptions, QueryBuilder};
use xjoin_store::{PreparedQuery, QueryService, VersionedStore};

fn main() {
    // 1. A versioned store over the bookstore instance (orders table +
    //    invoices document), with a 1 MiB trie-cache budget.
    let inst = bookstore();
    let store = VersionedStore::with_cache_budget(inst.db, inst.doc, 1 << 20);
    let snapshot = store.snapshot();

    // 2. Prepare two queries once: parse, validate, fix the variable order,
    //    and pin every atom's trie cache key. The unified QueryBuilder
    //    carries the options (engine kind, limits) alongside the query.
    let q_invoices = QueryBuilder::new()
        .relation("R")
        .twig("//invoices/orderLine[/orderID][/ISBN][/price]")
        .output(&["userID", "ISBN", "price"])
        .build()
        .expect("query builds");
    let q_discounts = QueryBuilder::new()
        .relation("R")
        .twig("//orderLine[/orderID][/discount]")
        .output(&["userID", "discount"])
        .build()
        .expect("query builds");
    let invoices = Arc::new(
        PreparedQuery::prepare(&snapshot, &q_invoices.query, q_invoices.options.clone())
            .expect("prepare"),
    );
    let discounts = Arc::new(
        PreparedQuery::prepare(&snapshot, &q_discounts.query, q_discounts.options.clone())
            .expect("prepare"),
    );

    // 3. Serve both queries concurrently through a 4-worker pool. The first
    //    executions build tries; every repetition is served from the cache.
    let service = QueryService::new(4);
    let jobs = (0..8).map(|i| {
        let q = if i % 2 == 0 {
            Arc::clone(&invoices)
        } else {
            Arc::clone(&discounts)
        };
        (q, snapshot.clone())
    });
    let results = service.run_all(jobs);
    for (i, result) in results.iter().enumerate() {
        let out = result.as_ref().expect("query runs");
        println!(
            "job {i} ({}): {} rows in {:?}",
            if i % 2 == 0 { "invoices " } else { "discounts" },
            out.results.len(),
            out.stats.elapsed
        );
    }
    let out = results[0].as_ref().expect("query runs");
    println!("\nQ(userID, ISBN, price):");
    print!("{}", snapshot.db().render_table(&out.results));

    // 4. A write bumps only the orders relation; the old snapshot still
    //    serves the old state, and cached path-relation tries survive.
    store.update(|db| {
        db.load(
            "R",
            Schema::of(&["orderID", "userID"]),
            vec![vec![Value::Int(10963), Value::str("jack")]],
        )
        .expect("reload orders");
    });
    let fresh = store.snapshot();
    let old = invoices.execute(&snapshot).expect("old snapshot");
    let new = invoices.execute(&fresh).expect("new snapshot");
    println!(
        "after write: old snapshot still {} rows, new snapshot {} rows",
        old.results.len(),
        new.results.len()
    );

    // 5. Pull-based streaming from the same cache: the depth-first engine
    //    with a limit stops the trie walk after two rows.
    let limited = PreparedQuery::prepare(
        &fresh,
        &q_invoices.query,
        ExecOptions {
            engine: EngineKind::XJoinStream,
            limit: Some(2),
            ..Default::default()
        },
    )
    .expect("prepare streaming");
    let mut rows = limited.rows(&fresh).expect("rows");
    let pulled: Vec<_> = rows.by_ref().collect();
    println!(
        "\nstreamed {} row(s) with limit 2 ({} bindings made)",
        pulled.len(),
        rows.stats().visited
    );

    // 6. Cache behaviour over the whole session.
    let stats = store.registry().stats();
    println!(
        "\ntrie cache: {} hits / {} misses (hit rate {:.0}%), {} entries, {} bytes (budget {:?})",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries,
        stats.bytes_in_use,
        stats.budget,
    );

    // 7. Serving metrics: the worker pool records queue depth, queue wait,
    //    and execution latency into the global registry on every job.
    drop(service); // join workers so all recordings have landed
    println!(
        "\nserving metrics:\n{}",
        xjoin_obs::global_metrics().snapshot()
    );
}
