//! Query server: serve prepared multi-model queries concurrently from a
//! versioned store with a shared trie cache.
//!
//! ```sh
//! cargo run --example query_server
//! ```
//!
//! Loads the Figure 1 bookstore dataset, prepares two multi-model queries,
//! executes them through the `xjoin-store` worker pool against one snapshot,
//! then applies a write and shows that an old snapshot keeps serving the old
//! state while the cache re-keys only what changed.

use bench::workloads::bookstore;
use relational::{Schema, Value};
use std::sync::Arc;
use xjoin_core::{MultiModelQuery, XJoinConfig};
use xjoin_store::{PreparedQuery, QueryService, VersionedStore};

fn main() {
    // 1. A versioned store over the bookstore instance (orders table +
    //    invoices document), with a 1 MiB trie-cache budget.
    let inst = bookstore();
    let store = VersionedStore::with_cache_budget(inst.db, inst.doc, 1 << 20);
    let snapshot = store.snapshot();

    // 2. Prepare two queries once: parse, validate, fix the variable order,
    //    and pin every atom's trie cache key.
    let q_invoices =
        MultiModelQuery::new(&["R"], &["//invoices/orderLine[/orderID][/ISBN][/price]"])
            .expect("twig parses")
            .with_output(&["userID", "ISBN", "price"]);
    let q_discounts = MultiModelQuery::new(&["R"], &["//orderLine[/orderID][/discount]"])
        .expect("twig parses")
        .with_output(&["userID", "discount"]);
    let invoices = Arc::new(
        PreparedQuery::prepare(&snapshot, &q_invoices, XJoinConfig::default()).expect("prepare"),
    );
    let discounts = Arc::new(
        PreparedQuery::prepare(&snapshot, &q_discounts, XJoinConfig::default()).expect("prepare"),
    );

    // 3. Serve both queries concurrently through a 4-worker pool. The first
    //    executions build tries; every repetition is served from the cache.
    let service = QueryService::new(4);
    let jobs = (0..8).map(|i| {
        let q = if i % 2 == 0 {
            Arc::clone(&invoices)
        } else {
            Arc::clone(&discounts)
        };
        (q, snapshot.clone())
    });
    let results = service.run_all(jobs);
    for (i, result) in results.iter().enumerate() {
        let out = result.as_ref().expect("query runs");
        println!(
            "job {i} ({}): {} rows in {:?}",
            if i % 2 == 0 { "invoices " } else { "discounts" },
            out.results.len(),
            out.stats.elapsed
        );
    }
    let out = results[0].as_ref().expect("query runs");
    println!("\nQ(userID, ISBN, price):");
    print!("{}", snapshot.db().render_table(&out.results));

    // 4. A write bumps only the orders relation; the old snapshot still
    //    serves the old state, and cached path-relation tries survive.
    store.update(|db| {
        db.load(
            "R",
            Schema::of(&["orderID", "userID"]),
            vec![vec![Value::Int(10963), Value::str("jack")]],
        )
        .expect("reload orders");
    });
    let fresh = store.snapshot();
    let old = invoices.execute(&snapshot).expect("old snapshot");
    let new = invoices.execute(&fresh).expect("new snapshot");
    println!(
        "after write: old snapshot still {} rows, new snapshot {} rows",
        old.results.len(),
        new.results.len()
    );

    // 5. Cache behaviour over the whole session.
    let stats = store.registry().stats();
    println!(
        "\ntrie cache: {} hits / {} misses (hit rate {:.0}%), {} entries, {} bytes (budget {:?})",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries,
        stats.bytes_in_use,
        stats.budget,
    );
}
