//! Query server: serve multi-model queries over the wire protocol.
//!
//! ```sh
//! cargo run --example query_server
//! ```
//!
//! Spawns the `xjoin-serve` front end on a loopback port over the Figure 1
//! bookstore dataset, then acts as a client: one-shot queries, a
//! prepare→execute round trip (with the statement's AGM bound reported at
//! prepare time), a row-budgeted execution, a metrics scrape through the
//! `STATS` frame, and a graceful shutdown — everything crossing a real TCP
//! socket as length-prefixed binary frames.

use bench::workloads::bookstore;
use std::sync::Arc;
use xjoin_core::{EngineKind, ExecOptions};
use xjoin_repro::xjoin_serve::{
    expect_rows, AdmissionPolicy, Client, RequestOpts, Response, Server, ServerConfig,
};
use xjoin_store::VersionedStore;

const BOOKSTORE_QUERY: &str =
    "Q(userID, ISBN, price) :- R(orderID, userID), //invoices/orderLine[/orderID][/ISBN][/price]";

fn main() {
    // 1. Server side: a versioned store over the bookstore instance served
    //    by a 2-worker pool behind AGM-based admission control, on an
    //    OS-assigned loopback port.
    let inst = bookstore();
    let store = Arc::new(VersionedStore::with_cache_budget(
        inst.db,
        inst.doc,
        1 << 20,
    ));
    let handle = Server::spawn(
        Arc::clone(&store),
        ServerConfig {
            workers: 2,
            admission: AdmissionPolicy::default(),
            ..Default::default()
        },
    )
    .expect("bind loopback");
    println!("server listening on {}", handle.addr());

    // 2. Client side: a plain TCP connection speaking the frame protocol.
    let mut client = Client::connect(handle.addr()).expect("connect");

    // 3. One-shot QUERY: options + MMQL text in one frame, rows back.
    let rows = expect_rows(
        client
            .query(
                BOOKSTORE_QUERY,
                &ExecOptions::default(),
                RequestOpts::default(),
            )
            .expect("query round trip"),
    );
    println!("\nQ(userID, ISBN, price) over the wire:");
    println!("  columns: {:?}", rows.columns);
    for row in &rows.rows {
        println!("  {row:?}");
    }

    // 4. PREPARE → EXEC: the statement is parsed, ordered, and priced once;
    //    the reply carries its AGM bound (log2) — the same number the
    //    admission controller uses to price the query before any trie work.
    let (stmt_id, log2_bound) = match client
        .prepare(BOOKSTORE_QUERY, &ExecOptions::default())
        .expect("prepare round trip")
    {
        Response::Prepared {
            stmt_id,
            log2_bound,
            ..
        } => (stmt_id, log2_bound),
        other => panic!("prepare failed: {other:?}"),
    };
    println!(
        "\nprepared as statement #{stmt_id}: AGM bound 2^{log2_bound:.1} ≈ {:.0} rows",
        log2_bound.exp2()
    );
    let rows = expect_rows(client.exec(stmt_id, RequestOpts::default()).expect("exec"));
    println!("exec #{stmt_id}: {} rows", rows.rows.len());

    // 5. Per-request row budget: the same statement, capped to 1 row. The
    //    budget pushes into the streaming walk as a limit; the reply's
    //    truncated flag says the cap cut the result short.
    let budgeted = expect_rows(
        client
            .exec(
                stmt_id,
                RequestOpts {
                    row_budget: 1,
                    ..Default::default()
                },
            )
            .expect("budgeted exec"),
    );
    println!(
        "row budget 1: {} row(s), truncated = {}",
        budgeted.rows.len(),
        budgeted.truncated
    );

    // 6. A second engine over the same wire: the streaming XJoin with a
    //    pinned limit (one-shot, so no statement reuse).
    let streamed = expect_rows(
        client
            .query(
                BOOKSTORE_QUERY,
                &ExecOptions {
                    engine: EngineKind::XJoinStream,
                    limit: Some(2),
                    ..Default::default()
                },
                RequestOpts::default(),
            )
            .expect("streamed query"),
    );
    println!("xjoin-stream with limit 2: {} rows", streamed.rows.len());

    // 7. Operators without shell access to the process scrape metrics
    //    through the STATS frame: queue depth, exec latency, admission
    //    decisions, trie cache — the whole global registry.
    if let Response::Stats { body, .. } = client.stats(0).expect("stats") {
        println!("\nserver metrics (via STATS frame):\n{body}");
    }

    // 8. Graceful shutdown: in-flight work drains, workers join, the accept
    //    loop exits — then the server handle's join returns.
    match client.shutdown().expect("shutdown") {
        Response::Bye => println!("server acknowledged shutdown"),
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join();
    println!("server drained and stopped");
}
