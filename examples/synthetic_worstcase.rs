//! The paper's Figure 3 / Example 3.4, self-contained: build the AGM-tight
//! synthetic instance where the twig-only bound is `n^5` but the combined
//! bound is `n^2`, and watch the baseline materialise the `n^5` while XJoin
//! never exceeds `n^2`.
//!
//! ```sh
//! cargo run --release --example synthetic_worstcase [n]
//! ```

use relational::{Database, Schema, Value};
use xjoin_core::{
    baseline, lower, query_bound, xjoin, BaselineConfig, DataContext, MultiModelQuery, XJoinConfig,
};
use xmldb::{TagIndex, XmlDocument};

/// Builds the tight instance: diagonal R1/R2 plus a document realising every
/// path relation as a full product (Lemma 3.2's construction).
fn tight_instance(n: i64) -> (Database, XmlDocument) {
    let (b0, d0, e0, h0, g0) = (100_000i64, 200_000, 300_000, 400_000, 500_000);
    let mut db = Database::new();
    db.load(
        "R1",
        Schema::of(&["A", "B", "C", "D"]),
        (0..n).map(|i| {
            vec![
                Value::Int(1),
                Value::Int(b0 + i),
                Value::Int(2),
                Value::Int(d0 + i),
            ]
        }),
    )
    .expect("R1 load");
    db.load(
        "R2",
        Schema::of(&["E", "F", "G", "H"]),
        (0..n).map(|j| {
            vec![
                Value::Int(e0 + j),
                Value::Int(3),
                Value::Int(g0 + j),
                Value::Int(h0 + j),
            ]
        }),
    )
    .expect("R2 load");

    let mut dict = db.dict().clone();
    let mut bld = XmlDocument::builder();
    bld.begin("A");
    bld.value(1i64);
    for i in 0..n {
        bld.leaf("B", b0 + i);
    }
    for i in 0..n {
        bld.leaf("D", d0 + i);
    }
    bld.begin("C");
    bld.value(2i64);
    for j in 0..n {
        bld.begin("E");
        bld.value(e0 + j);
        bld.begin("F");
        bld.value(3i64);
        for k in 0..n {
            bld.leaf("H", h0 + k);
        }
        bld.end();
        for k in 0..n {
            bld.leaf("G", g0 + k);
        }
        bld.end();
    }
    bld.end();
    bld.end();
    let doc = bld.build(&mut dict);
    *db.dict_mut() = dict;
    (db, doc)
}

fn main() {
    let n: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let (db, doc) = tight_instance(n);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["R1", "R2"], &["//A[/B][/D]//C[/E[//F[/H]][//G]]"])
        .expect("query parses");

    let atoms = lower(&ctx, &query).expect("lowering runs");
    let bound = query_bound(&atoms).expect("bound computes");
    println!("n = {n}: document has {} nodes", doc.len());
    println!(
        "combined AGM bound (Lemma 3.1): {bound:.0}  (= n^2 = {})",
        n * n
    );
    println!("twig-only bound: n^5 = {}", n.pow(5));

    let x = xjoin(&ctx, &query, &XJoinConfig::default()).expect("xjoin runs");
    println!(
        "\nXJoin   : {} results, max intermediate {:>8}, {:?}",
        x.results.len(),
        x.stats.max_intermediate(),
        x.stats.elapsed
    );
    let b = baseline(&ctx, &query, &BaselineConfig::default()).expect("baseline runs");
    println!(
        "Baseline: {} results, max intermediate {:>8}, {:?}",
        b.results.len(),
        b.stats.max_intermediate(),
        b.stats.elapsed
    );

    println!("\nXJoin stages (never exceed the n^2 bound):\n{}", x.stats);
    println!("Baseline stages (Q2 hits the n^5 twig bound):\n{}", b.stats);
    assert_eq!(x.results.len(), b.results.len());
    assert!(
        x.stats.max_intermediate() as f64 <= bound + 1e-6,
        "Lemma 3.5"
    );
}
