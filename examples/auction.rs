//! A realistic multi-model scenario on an XMark-style auction document:
//! the relational side holds account standings and watchlists; the XML side
//! holds the auction site. Three queries of increasing shape complexity run
//! through MMQL, comparing XJoin against the per-model baseline.
//!
//! ```sh
//! cargo run --release --example auction
//! ```

use relational::{Database, Schema, Value};
use xjoin_core::{baseline, parse_query, xjoin, BaselineConfig, DataContext, XJoinConfig};
use xmldb::generator::{auction_document, AuctionConfig};
use xmldb::TagIndex;

fn main() {
    let cfg = AuctionConfig {
        people: 40,
        items: 60,
        auctions: 80,
        seed: 7,
    };
    let mut db = Database::new();

    // Relational: account standing per person, and a watchlist table.
    let mut dict_seed = 11u64;
    let mut next = move || {
        dict_seed = dict_seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (dict_seed >> 33) as i64
    };
    db.load(
        "standing",
        Schema::of(&["personID", "rating"]),
        (0..cfg.people as i64).map(|p| vec![Value::Int(p), Value::Int(next().rem_euclid(5))]),
    )
    .expect("standing load");
    db.load(
        "watchlist",
        Schema::of(&["personID", "itemID"]),
        (0..120).map(|_| {
            vec![
                Value::Int(next().rem_euclid(cfg.people as i64)),
                Value::Int(1000 + next().rem_euclid(cfg.items as i64)),
            ]
        }),
    )
    .expect("watchlist load");

    let mut dict = db.dict().clone();
    let doc = auction_document(&mut dict, &cfg);
    *db.dict_mut() = dict;
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    println!(
        "auction site: {} nodes; standing: {} rows; watchlist: {} rows\n",
        doc.len(),
        db.relation("standing").expect("exists").len(),
        db.relation("watchlist").expect("exists").len()
    );

    let queries = [
        (
            "auctions whose seller has top rating",
            "Q(auctionID, personID) :- standing(personID, 4), \
             //auction[/auctionID][/seller/personID]",
        ),
        (
            "watched items currently under auction",
            "Q(personID, itemID, current) :- watchlist(personID, itemID), \
             //auction[/itemref/itemID][/current]",
        ),
        (
            "bidders bidding on items they also watch",
            "Q(personref, itemID) :- watchlist(personref, itemID), \
             //auction[/itemref/itemID][/bidder/personref]",
        ),
    ];

    // Twig inner nodes (auction, itemref, …) carry no text, so their
    // variables are non-selective at the value level; this is the regime
    // where the paper's "on-going work" — partial structure validation
    // during the join — pays off. Run XJoin both ways.
    let plain = XJoinConfig::default();
    let validated = XJoinConfig {
        partial_validation: true,
        ad_filter: true,
        ..Default::default()
    };

    for (label, text) in queries {
        println!("— {label}\n  {text}");
        let query = parse_query(text).expect("query parses");
        let x = xjoin(&ctx, &query, &plain).expect("xjoin runs");
        let xv = xjoin(&ctx, &query, &validated).expect("xjoin+pv runs");
        let b = baseline(&ctx, &query, &BaselineConfig::default()).expect("baseline runs");
        assert_eq!(x.results.len(), b.results.len(), "engines disagree");
        assert_eq!(xv.results.len(), b.results.len(), "engines disagree");
        println!(
            "  {} rows | XJoin maxI {:>6} ({:?}) | +partial-validation maxI {:>6} ({:?}) | baseline maxI {:>6} ({:?})\n",
            x.results.len(),
            x.stats.max_intermediate(),
            x.stats.elapsed,
            xv.stats.max_intermediate(),
            xv.stats.elapsed,
            b.stats.max_intermediate(),
            b.stats.elapsed,
        );
    }
}
