//! Acceptance suite for the `xjoin-obs` subsystem: span-tree
//! well-formedness under parallel morsel execution, histogram quantile
//! error bounds, and a differential check that tracing is observation-only
//! (enabling it changes no query result).
//!
//! The tracer is a process-wide singleton, so every test that toggles it
//! holds [`tracer_lock`] — tests within this binary run on concurrent
//! threads, and an unserialized enable/disable would splice unrelated spans
//! into a collected trace.

use bench::workloads::{graph_instance, triangle_query};
use proptest::prelude::*;
use relational::ValueId;
use std::sync::{Mutex, OnceLock};
use xjoin_core::{execute, DataContext, EngineKind, ExecOptions, Parallelism};
use xjoin_obs::{Histogram, Trace};

fn tracer_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs the triangle query morsel-parallel with tracing enabled and returns
/// the collected trace plus the query's result rows.
fn traced_triangle_run(seed: u64, threads: usize) -> (Trace, Vec<Vec<ValueId>>) {
    let inst = graph_instance(120, 900, seed);
    let idx = inst.index();
    let ctx = DataContext::new(&inst.db, &inst.doc, &idx);
    let opts = ExecOptions {
        engine: EngineKind::Lftj,
        parallelism: Parallelism::Threads(threads),
        ..Default::default()
    };
    xjoin_obs::enable();
    let out = execute(&ctx, &triangle_query(), &opts).expect("triangle runs");
    xjoin_obs::disable();
    xjoin_obs::flush_thread();
    let trace = xjoin_obs::take_trace();
    (trace, out.results.rows().map(|r| r.to_vec()).collect())
}

/// Every lane of a collected trace must be a well-formed span forest:
/// no dropped events, every span's interval is non-empty-or-point
/// (`start <= end`), completion order is monotone (spans are recorded at
/// guard drop, which happens in stack order on one thread), and any two
/// overlapping spans are properly nested with the inner one deeper.
fn assert_well_formed(trace: &Trace) {
    for lane in &trace.threads {
        assert_eq!(lane.dropped, 0, "lane {}: ring dropped events", lane.thread);
        let mut last_end = 0u64;
        for e in &lane.events {
            assert!(
                e.start_ns <= e.end_ns,
                "lane {}: span {} ends before it starts",
                lane.thread,
                e.name
            );
            assert!(
                e.end_ns >= last_end,
                "lane {}: completion timestamps not monotone at {}",
                lane.thread,
                e.name
            );
            last_end = e.end_ns;
        }
        for (i, a) in lane.events.iter().enumerate() {
            for b in lane.events.iter().skip(i + 1) {
                let disjoint = a.end_ns <= b.start_ns || b.end_ns <= a.start_ns;
                let a_in_b = b.start_ns <= a.start_ns && a.end_ns <= b.end_ns;
                let b_in_a = a.start_ns <= b.start_ns && b.end_ns <= a.end_ns;
                assert!(
                    disjoint || a_in_b || b_in_a,
                    "lane {}: spans {} and {} partially overlap",
                    lane.thread,
                    a.name,
                    b.name
                );
                if a_in_b && !disjoint && (a.start_ns, a.end_ns) != (b.start_ns, b.end_ns) {
                    assert!(
                        a.depth > b.depth,
                        "lane {}: contained span {} not deeper than {}",
                        lane.thread,
                        a.name,
                        b.name
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Span trees stay well-formed whatever the morsel fan-out, and the
    /// worker lanes actually carry the per-morsel spans.
    #[test]
    fn span_tree_well_formed_under_parallel_morsels(seed in 0u64..1000, threads in 2usize..5) {
        let _guard = tracer_lock();
        let (trace, rows) = traced_triangle_run(seed, threads);
        prop_assert!(!rows.is_empty() || trace.total_events() > 0);
        assert_well_formed(&trace);
        let morsel_spans: usize = trace
            .threads
            .iter()
            .filter(|t| t.thread.starts_with("xjoin-morsel"))
            .map(|t| t.events.iter().filter(|e| e.name == "morsel").count())
            .sum();
        prop_assert!(morsel_spans > 0, "no morsel spans in worker lanes");
    }

    /// Log-linear histogram quantiles are upper bounds within 6.25% of the
    /// true order statistic, for any sample set.
    #[test]
    fn histogram_quantiles_bound_true_order_statistics(
        samples in proptest::collection::vec(1u64..1_000_000, 1..200),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for q in [0.5f64, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = h.quantile(q);
            prop_assert!(est >= truth, "q={}: {} under-reports true {}", q, est, truth);
            prop_assert!(
                est <= truth + truth / 16 + 1,
                "q={}: {} exceeds the 6.25% bound over true {}",
                q,
                est,
                truth
            );
        }
    }
}

/// Differential: the tracer observes, it never perturbs. The same query on
/// the same data returns identical rows in identical order with tracing
/// off and on, serial and morsel-parallel, for every plan-based engine.
#[test]
fn tracing_on_off_leaves_query_output_identical() {
    let _guard = tracer_lock();
    let inst = graph_instance(150, 1400, 7);
    let idx = inst.index();
    let ctx = DataContext::new(&inst.db, &inst.doc, &idx);
    let q = triangle_query();
    for engine in [EngineKind::Lftj, EngineKind::XJoinStream] {
        for parallelism in [Parallelism::Serial, Parallelism::Threads(3)] {
            let opts = ExecOptions {
                engine,
                parallelism,
                ..Default::default()
            };
            xjoin_obs::disable();
            let plain = execute(&ctx, &q, &opts).expect("runs untraced");
            xjoin_obs::enable();
            let traced = execute(&ctx, &q, &opts).expect("runs traced");
            xjoin_obs::disable();
            let rows = |out: &xjoin_core::QueryOutput| -> Vec<Vec<ValueId>> {
                out.results.rows().map(|r| r.to_vec()).collect()
            };
            assert_eq!(
                rows(&plain),
                rows(&traced),
                "{engine}/{parallelism:?}: tracing changed the result rows"
            );
            assert_eq!(
                plain.results.schema(),
                traced.results.schema(),
                "{engine}/{parallelism:?}: tracing changed the schema"
            );
            assert_eq!(
                plain.stats.max_intermediate(),
                traced.stats.max_intermediate(),
                "{engine}/{parallelism:?}: tracing changed the work done"
            );
        }
    }
    // Drain anything the traced runs collected so later tracer tests in
    // this binary start from an empty collector.
    xjoin_obs::flush_thread();
    let _ = xjoin_obs::take_trace();
}

/// Service-level metrics accumulate into the global registry and render in
/// both snapshot formats.
#[test]
fn metrics_snapshot_renders_text_and_json() {
    let m = xjoin_obs::global_metrics();
    m.counter("test.obs.renders").inc();
    m.gauge("test.obs.level").inc();
    m.histogram("test.obs.lat_us").record(250);
    let snap = m.snapshot();
    let text = snap.to_string();
    assert!(text.contains("test.obs.renders"));
    assert!(text.contains("test.obs.lat_us"));
    let json = snap.to_json();
    assert!(json.contains("\"test.obs.level\""));
    assert!(json.contains("\"p99\""));
}
