//! Property-based tests of the XML parser: build → serialize → parse is an
//! isomorphism on documents, and entity escaping round-trips arbitrary text.

use proptest::prelude::*;
use relational::{Dict, Value};
use xmldb::parser::{decode_entities, escape_text, parse_xml, to_xml_string};
use xmldb::XmlDocument;

fn tree_strategy() -> impl Strategy<Value = Vec<(usize, usize, i64)>> {
    prop::collection::vec((0usize..usize::MAX, 0usize..3, -50i64..50), 0..30)
}

fn build_tree(spec: &[(usize, usize, i64)], dict: &mut Dict) -> XmlDocument {
    let tags = ["alpha", "beta", "gamma"];
    let mut b = XmlDocument::builder();
    let mut ids = vec![b.add_node(None, "root", None)];
    for &(praw, tag, value) in spec {
        let parent = ids[praw % ids.len()];
        ids.push(b.add_node(Some(parent), tags[tag % tags.len()], Some(value.into())));
    }
    b.build(dict)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serialize_parse_round_trip(spec in tree_strategy()) {
        let mut dict = Dict::new();
        let doc = build_tree(&spec, &mut dict);
        let xml = to_xml_string(&doc, &dict);
        let doc2 = parse_xml(&xml, &mut dict).unwrap();
        prop_assert_eq!(doc.len(), doc2.len());
        for (a, b) in doc.node_ids().zip(doc2.node_ids()) {
            prop_assert_eq!(doc.tag_name(a), doc2.tag_name(b));
            prop_assert_eq!(doc.node(a).value, doc2.node(b).value);
            prop_assert_eq!(doc.node(a).parent, doc2.node(b).parent);
            prop_assert_eq!(doc.node(a).level, doc2.node(b).level);
        }
    }

    #[test]
    fn escape_decode_round_trip(text in "[ -~]{0,64}") {
        // Arbitrary printable-ASCII text survives escape + decode.
        let escaped = escape_text(&text);
        prop_assert_eq!(decode_entities(&escaped).unwrap(), text);
    }

    #[test]
    fn string_values_round_trip_through_xml(text in "[a-zA-Z<>&'\" ]{1,40}") {
        // A value containing XML-special characters survives a full
        // serialize/parse cycle (modulo trimming, which the parser applies).
        let mut dict = Dict::new();
        let mut b = XmlDocument::builder();
        b.begin("e");
        b.value(Value::str(text.trim()));
        b.end();
        let doc = b.build(&mut dict);
        let xml = to_xml_string(&doc, &dict);
        let doc2 = parse_xml(&xml, &mut dict).unwrap();
        let v1 = dict.decode(doc.node(xmldb::NodeId(0)).value).clone();
        let v2 = dict.decode(doc2.node(xmldb::NodeId(0)).value).clone();
        prop_assert_eq!(v1, v2);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "[ -~]{0,80}") {
        let mut dict = Dict::new();
        let _ = parse_xml(&input, &mut dict); // may Err, must not panic
    }

    #[test]
    fn parser_never_panics_on_tag_soup(
        tags in prop::collection::vec("[a-c]{1,3}", 0..12),
        closers in prop::collection::vec(any::<bool>(), 0..12),
    ) {
        let mut soup = String::new();
        for (i, t) in tags.iter().enumerate() {
            if *closers.get(i).unwrap_or(&false) {
                soup.push_str(&format!("</{t}>"));
            } else {
                soup.push_str(&format!("<{t}>"));
            }
        }
        let mut dict = Dict::new();
        let _ = parse_xml(&soup, &mut dict);
    }
}

#[test]
fn empty_value_nodes_round_trip() {
    let mut dict = Dict::new();
    let mut b = XmlDocument::builder();
    b.begin("a");
    b.begin("b");
    b.end();
    b.end();
    let doc = b.build(&mut dict);
    let xml = to_xml_string(&doc, &dict);
    assert_eq!(xml, "<a><b></b></a>");
    let doc2 = parse_xml(&xml, &mut dict).unwrap();
    assert_eq!(doc2.len(), 2);
}
