//! Integration tests of the `xjoin-store` serving layer: warm-cache
//! re-execution builds zero tries, the concurrent service agrees with
//! single-threaded `xjoin`, snapshots isolate queries from writes, and
//! sustained append churn resolves through delta overlays that stay
//! result-identical to full rebuilds while the registry honours its byte
//! budget and sheds superseded trie versions.

use bench::workloads::{bookstore, bookstore_query, fig3_query, fig3_tight};
use relational::{Schema, Value};
use std::sync::Arc;
use xjoin_core::{execute, EngineKind, ExecOptions, MultiModelQuery, Parallelism};
use xjoin_store::{DeltaPolicy, PreparedQuery, QueryService, TrieRegistry, VersionedStore};

fn bookstore_store() -> VersionedStore {
    let inst = bookstore();
    VersionedStore::new(inst.db, inst.doc)
}

#[test]
fn warm_cache_reexecution_performs_zero_trie_builds() {
    let store = bookstore_store();
    let snap = store.snapshot();
    let prepared =
        PreparedQuery::prepare(&snap, &bookstore_query(), ExecOptions::default()).unwrap();

    let cold = prepared.execute(&snap).unwrap();
    let after_cold = store.registry().stats();
    assert!(after_cold.misses > 0, "cold run must build tries");
    assert_eq!(after_cold.hits, 0);

    let warm = prepared.execute(&snap).unwrap();
    let after_warm = store.registry().stats();
    // Zero Trie::build calls on the warm path: the miss counter is exactly
    // the build counter (misses are only recorded when a build is required).
    assert_eq!(
        after_warm.misses, after_cold.misses,
        "warm re-execution rebuilt a trie"
    );
    assert!(
        after_warm.hits > 0,
        "warm run must be served from the cache"
    );
    assert!(warm.results.set_eq(&cold.results));

    // Pull-based streaming execution shares the same cached tries, and
    // yields the same projected, deduplicated rows as execute().
    let streamed = prepared.rows(&snap).unwrap().count();
    let after_stream = store.registry().stats();
    assert_eq!(after_stream.misses, after_warm.misses);
    assert_eq!(streamed, warm.results.len());
}

#[test]
fn concurrent_service_matches_single_threaded_xjoin() {
    let inst = fig3_tight(3);
    let store = VersionedStore::new(inst.db, inst.doc);
    let snap = store.snapshot();
    let q1 = fig3_query();
    let p1 = Arc::new(PreparedQuery::prepare(&snap, &q1, ExecOptions::default()).unwrap());
    let q2 = MultiModelQuery::new(&["R1"], &["//A/B"]).unwrap();
    let p2 = Arc::new(PreparedQuery::prepare(&snap, &q2, ExecOptions::default()).unwrap());

    let expect1 = execute(&snap.ctx(), &q1, &ExecOptions::default()).unwrap();
    let expect2 = execute(&snap.ctx(), &q2, &ExecOptions::default()).unwrap();

    let service = QueryService::new(4);
    let jobs = (0..12).map(|i| {
        let p = if i % 2 == 0 {
            Arc::clone(&p1)
        } else {
            Arc::clone(&p2)
        };
        (p, snap.clone())
    });
    let results = service.run_all(jobs);
    assert_eq!(results.len(), 12);
    for (i, r) in results.into_iter().enumerate() {
        let out = r.unwrap();
        let expect = if i % 2 == 0 { &expect1 } else { &expect2 };
        assert!(
            out.results.set_eq(&expect.results),
            "job {i} disagrees with single-threaded xjoin"
        );
    }
}

#[test]
fn snapshots_isolate_in_flight_queries_from_writes() {
    let store = bookstore_store();
    let old_snap = store.snapshot();
    let prepared =
        PreparedQuery::prepare(&old_snap, &bookstore_query(), ExecOptions::default()).unwrap();
    assert_eq!(prepared.execute(&old_snap).unwrap().results.len(), 2);

    // A writer replaces the orders table with a single row.
    store.update(|db| {
        db.load(
            "R",
            Schema::of(&["orderID", "userID"]),
            vec![vec![Value::Int(10963), Value::str("jack")]],
        )
        .unwrap();
    });

    let new_snap = store.snapshot();
    // The old snapshot still answers from the old state; the new one sees
    // the write. Both through the same prepared query and cache.
    assert_eq!(prepared.execute(&old_snap).unwrap().results.len(), 2);
    let new_out = prepared.execute(&new_snap).unwrap();
    assert_eq!(new_out.results.len(), 1);
    assert!(new_out.results.set_eq(
        &execute(&new_snap.ctx(), &bookstore_query(), &ExecOptions::default())
            .unwrap()
            .results
    ));

    // Only the re-versioned relation re-keys: path-relation tries are reused
    // across the write, so the second snapshot's execution misses exactly once.
    let k_old = prepared.trie_keys(&old_snap).unwrap();
    let k_new = prepared.trie_keys(&new_snap).unwrap();
    let changed = k_old.iter().zip(&k_new).filter(|(a, b)| a != b).count();
    assert_eq!(changed, 1);
    let before = store.registry().stats();
    prepared.execute(&new_snap).unwrap();
    assert_eq!(
        store.registry().stats().misses,
        before.misses,
        "re-running on the new snapshot must be fully warm"
    );
}

/// Concurrency stress: writers bump the store's epochs in a tight loop
/// while morsel-parallel queries (service workers × morsel workers) execute
/// against pinned snapshots. Every result must match the pinned snapshot's
/// serial answer even though each rewrite eagerly purges the superseded
/// trie versions from the shared `TrieRegistry` — queries re-resolve purged
/// entries on demand from their own immutable snapshot state.
#[test]
fn writers_never_perturb_parallel_queries_on_pinned_snapshots() {
    let inst = fig3_tight(3);
    let store = Arc::new(VersionedStore::new(inst.db, inst.doc));
    let snap = store.snapshot();
    let q = fig3_query();
    let prepared = Arc::new(
        PreparedQuery::prepare(
            &snap,
            &q,
            ExecOptions {
                engine: EngineKind::XJoinStream,
                parallelism: Parallelism::Threads(3),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    // The pinned snapshot's serial answer, and a warm cache: after this,
    // any further miss would be a duplicate build.
    let expect = execute(&snap.ctx(), &q, &ExecOptions::default()).unwrap();
    assert!(prepared
        .execute(&snap)
        .unwrap()
        .results
        .set_eq(&expect.results));
    let warm = store.registry().stats();
    assert!(warm.misses > 0);

    let service = QueryService::new(4);
    std::thread::scope(|s| {
        // A writer loops epoch bumps (replacing R1 with ever-larger
        // contents) while the queries below run against the old snapshot.
        let writer_store = Arc::clone(&store);
        s.spawn(move || {
            for i in 0..30i64 {
                writer_store.update(|db| {
                    let rows: Vec<Vec<Value>> = (0..=i)
                        .map(|j| {
                            vec![
                                Value::Int(900_000 + j),
                                Value::Int(910_000 + j),
                                Value::Int(920_000 + j),
                                Value::Int(930_000 + j),
                            ]
                        })
                        .collect();
                    db.load("R1", Schema::of(&["A", "B", "C", "D"]), rows)
                        .unwrap();
                });
            }
        });
        let results = service.run_all((0..16).map(|_| (Arc::clone(&prepared), snap.clone())));
        for (i, r) in results.into_iter().enumerate() {
            assert!(
                r.unwrap().results.set_eq(&expect.results),
                "job {i}: parallel query on the pinned snapshot diverged under writes"
            );
        }
    });
    // Rewrites invalidate eagerly, so the parallel fan-out may have had to
    // re-resolve R1 mid-churn; the counters only ever move forward.
    assert!(store.registry().stats().misses >= warm.misses);

    // One more deterministic rewrite: every cached trie for the pinned
    // snapshot's (now superseded) R1 version must be purged from the
    // registry...
    let pinned_keys = prepared.trie_keys(&snap).unwrap();
    store.update(|db| {
        db.load(
            "R1",
            Schema::of(&["A", "B", "C", "D"]),
            vec![vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Int(4),
            ]],
        )
        .unwrap();
    });
    for key in pinned_keys.iter().filter(|k| k.source == "rel:R1") {
        assert!(
            !store.registry().contains(key),
            "stale R1 trie survived the rewrite"
        );
    }
    assert!(store.registry().stats().purged > 0);

    // ...yet the store kept moving and the pinned snapshot still answers
    // identically, rebuilding the purged trie on demand from its own
    // immutable state.
    let fresh = store.snapshot();
    assert!(fresh.epoch() > snap.epoch());
    assert!(prepared
        .execute(&snap)
        .unwrap()
        .results
        .set_eq(&expect.results));
}

/// Sustained churn: a stream of appends resolves through delta overlays
/// (walk engines) or compact-and-upgrade (level-wise engines), and every
/// plan-based engine in both thread modes stays result-identical to a
/// cache-free rebuild of the same snapshot at every step.
#[test]
fn sustained_churn_delta_results_match_rebuilds_across_engines() {
    let engines = [
        EngineKind::Lftj,
        EngineKind::XJoinStream,
        EngineKind::XJoin,
        EngineKind::Generic,
    ];
    let modes = [Parallelism::Serial, Parallelism::Threads(4)];
    for kind in engines {
        for par in modes {
            let inst = fig3_tight(3);
            let base_rows = inst.db.decode(inst.db.relation("R1").unwrap());
            let store = VersionedStore::new(inst.db, inst.doc);
            // Ratio 0.5 over a 3-row base: the first append overlays, the
            // second trips compaction — both paths run in every iteration
            // of the outer loops.
            store.set_delta_policy(DeltaPolicy {
                enabled: true,
                compact_ratio: 0.5,
            });
            let q = fig3_query();
            let opts = ExecOptions {
                engine: kind,
                parallelism: par,
                ..Default::default()
            };
            let prepared = PreparedQuery::prepare(&store.snapshot(), &q, opts.clone()).unwrap();
            let mut last = prepared.execute(&store.snapshot()).unwrap().results.len();
            for step in 0..6 {
                // Off-diagonal rows (B of row i, D of row j) join with twig
                // matches the diagonal base misses, so results really grow;
                // the six steps enumerate the six distinct off-diagonal
                // pairs of a 3-row base.
                let i = step / 2;
                let j = (i + 1 + step % 2) % base_rows.len();
                let row = vec![
                    base_rows[i][0].clone(),
                    base_rows[i][1].clone(),
                    base_rows[i][2].clone(),
                    base_rows[j][3].clone(),
                ];
                store.append("R1", vec![row]).unwrap();
                let snap = store.snapshot();
                let out = prepared.execute(&snap).unwrap();
                let expect = execute(&snap.ctx(), &q, &opts).unwrap();
                assert!(
                    out.results.set_eq(&expect.results),
                    "{kind:?}/{par:?} step {step}: delta-backed results diverge from rebuild"
                );
                assert!(
                    out.results.len() > last,
                    "{kind:?}/{par:?} step {step}: append did not change the result"
                );
                last = out.results.len();
            }
            let stats = store.registry().stats();
            assert!(
                stats.compactions > 0,
                "{kind:?}/{par:?}: ratio 0.5 never triggered a compaction"
            );
            if matches!(kind, EngineKind::Lftj | EngineKind::XJoinStream) {
                assert!(
                    stats.overlays > 0,
                    "{kind:?}/{par:?}: walk engine never used a delta overlay"
                );
            }
        }
    }
}

/// Under append churn with a byte budget, the registry never holds more
/// resident bytes than the budget allows, and a rewrite purges every cached
/// trie of the superseded relation versions.
#[test]
fn registry_respects_budget_and_purges_stale_entries_under_churn() {
    let inst = fig3_tight(3);
    let base_rows = inst.db.decode(inst.db.relation("R1").unwrap());
    let registry = Arc::new(TrieRegistry::with_budget(Some(16 * 1024)));
    let store = VersionedStore::with_registry(inst.db, inst.doc, Arc::clone(&registry));
    store.set_delta_policy(DeltaPolicy {
        enabled: true,
        compact_ratio: 0.5,
    });
    let q = fig3_query();
    let prepared = PreparedQuery::prepare(
        &store.snapshot(),
        &q,
        ExecOptions::for_engine(EngineKind::Lftj),
    )
    .unwrap();
    prepared.execute(&store.snapshot()).unwrap();
    for step in 0..8 {
        let i = step % base_rows.len();
        let j = (step + 1) % base_rows.len();
        let row = vec![
            base_rows[i][0].clone(),
            base_rows[i][1].clone(),
            base_rows[i][2].clone(),
            base_rows[j][3].clone(),
        ];
        store.append("R1", vec![row]).unwrap();
        let snap = store.snapshot();
        prepared.execute(&snap).unwrap();
        let st = registry.stats();
        assert!(
            st.bytes_in_use <= st.budget.unwrap(),
            "churn step {step}: resident bytes {} exceed the budget {}",
            st.bytes_in_use,
            st.budget.unwrap()
        );
    }
    // A rewrite supersedes every appended version at once; the eager purge
    // must leave no R1 entry older than the rewrite behind.
    let stale_keys = prepared.trie_keys(&store.snapshot()).unwrap();
    store.update(|db| {
        db.load(
            "R1",
            Schema::of(&["A", "B", "C", "D"]),
            vec![vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Int(4),
            ]],
        )
        .unwrap();
    });
    let st = registry.stats();
    assert!(st.purged > 0, "the rewrite purged nothing");
    for key in stale_keys.iter().filter(|k| k.source == "rel:R1") {
        assert!(
            !registry.contains(key),
            "stale R1 trie {key:?} survived the rewrite"
        );
    }
    assert!(st.bytes_in_use <= st.budget.unwrap());
}

#[test]
fn service_scales_across_snapshots_of_different_sizes() {
    let inst = fig3_tight(2);
    let store = VersionedStore::new(inst.db, inst.doc);
    let q = fig3_query();
    let snap_small = store.snapshot();
    let prepared =
        Arc::new(PreparedQuery::prepare(&snap_small, &q, ExecOptions::default()).unwrap());

    // Grow the relational side (decoding through the source dictionary so
    // values re-intern into the store's); the twig side stays as-is.
    let bigger = fig3_tight(4);
    let r1_rows = bigger.db.decode(bigger.db.relation("R1").unwrap());
    let r2_rows = bigger.db.decode(bigger.db.relation("R2").unwrap());
    store.update(|db| {
        db.load("R1", Schema::of(&["A", "B", "C", "D"]), r1_rows)
            .unwrap();
        db.load("R2", Schema::of(&["E", "F", "G", "H"]), r2_rows)
            .unwrap();
    });
    let snap_big = store.snapshot();

    let service = QueryService::new(3);
    let results = service.run_all(vec![
        (Arc::clone(&prepared), snap_small.clone()),
        (Arc::clone(&prepared), snap_big.clone()),
        (Arc::clone(&prepared), snap_small.clone()),
    ]);
    let sizes: Vec<usize> = results
        .into_iter()
        .map(|r| r.unwrap().results.len())
        .collect();
    assert_eq!(sizes[0], sizes[2]);
    let expect_small = execute(&snap_small.ctx(), &q, &ExecOptions::default()).unwrap();
    let expect_big = execute(&snap_big.ctx(), &q, &ExecOptions::default()).unwrap();
    assert_eq!(sizes[0], expect_small.results.len());
    assert_eq!(sizes[1], expect_big.results.len());
}
