//! Randomized differential suite for morsel-parallel execution: for every
//! plan-based [`EngineKind`], parallel runs (N ∈ {2, 3, 8}, plus
//! `XJOIN_TEST_THREADS` when set — CI forces 4) must produce exactly the
//! serial result multiset on random multi-model databases — including under
//! `limit` (the parallel result is a prefix-sized subset of the serial
//! multiset; the exact serial prefix in deterministic mode) and under lossy
//! projections (cross-morsel dedup). Morsel planning itself is
//! property-tested: every partition is a disjoint cover of the first-level
//! values, and walk work counters (`Rows::stats().visited`) sum across
//! workers to the serial count.

use bench::workloads::{
    branch_skew_instance, branch_skew_query, clique4_query, graph_instance, triangle_query,
    zipf_graph_instance,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relational::{
    Attr, Database, DeltaTrie, JoinPlan, Ladder, LevelSummary, Relation, Schema, Trie, Value,
    ValueId,
};
use std::sync::Arc;
use xjoin_core::{
    execute, partition_root, stream, DataContext, EngineKind, ExecOptions, MultiModelQuery,
    OrderStrategy, Parallelism,
};
use xjoin_store::VersionedStore;
use xmldb::{TagIndex, XmlDocument};

/// Random instance: a table S(x, y) plus a random tree over tags {r, x, y}
/// whose node values share the table's domain (the `exec_api` generator).
fn random_instance(seed: u64, rows: usize, nodes: usize, domain: i64) -> (Database, XmlDocument) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let rows: Vec<Vec<Value>> = (0..rows)
        .map(|_| {
            vec![
                Value::Int(rng.gen_range(0..domain)),
                Value::Int(rng.gen_range(0..domain)),
            ]
        })
        .collect();
    db.load("S", Schema::of(&["x", "y"]), rows).unwrap();

    let mut dict = db.dict().clone();
    let mut b = XmlDocument::builder();
    let tags = ["r", "x", "y"];
    let root = b.add_node(None, "r", Some(Value::Int(rng.gen_range(0..domain))));
    let mut ids = vec![root];
    for _ in 1..nodes {
        let parent = ids[rng.gen_range(0..ids.len())];
        let tag = tags[rng.gen_range(0..tags.len())];
        let id = b.add_node(
            Some(parent),
            tag,
            Some(Value::Int(rng.gen_range(0..domain))),
        );
        ids.push(id);
    }
    let doc = b.build(&mut dict);
    *db.dict_mut() = dict;
    (db, doc)
}

/// Worker counts under test; `XJOIN_TEST_THREADS` (set by the CI's forced
/// multi-thread pass) joins the sweep when present.
fn thread_counts() -> Vec<usize> {
    let mut ns = vec![2usize, 3, 8];
    if let Some(n) = std::env::var("XJOIN_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        if n > 1 && !ns.contains(&n) {
            ns.push(n);
        }
    }
    ns
}

/// A relation's rows as a sorted vector — the multiset signature.
fn multiset(rel: &Relation) -> Vec<Vec<ValueId>> {
    let mut rows: Vec<Vec<ValueId>> = rel.rows().map(|r| r.to_vec()).collect();
    rows.sort();
    rows
}

fn plan_based() -> Vec<EngineKind> {
    EngineKind::all()
        .into_iter()
        .filter(EngineKind::is_plan_based)
        .collect()
}

const TWIGS: &[&str] = &["//r//x", "//r/x", "//r[/x][//y]"];

/// Acceptance: every plan-based engine, parallel at every tested width,
/// returns exactly the serial result multiset on random instances — with
/// and without a (lossy) projection.
#[test]
fn parallel_matches_serial_on_random_instances() {
    for seed in 0..4u64 {
        let (db, doc) = random_instance(seed, 10, 28, 4);
        let index = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &index);
        for twig in TWIGS {
            let unprojected = MultiModelQuery::new(&["S"], &[twig]).unwrap();
            // Lossy projection: dropping variables collapses tuples, so the
            // dedup must work across morsels, not within each.
            let lossy = MultiModelQuery::new(&["S"], &[twig])
                .unwrap()
                .with_output(&["x"]);
            for query in [&unprojected, &lossy] {
                for kind in plan_based() {
                    let serial = execute(&ctx, query, &ExecOptions::for_engine(kind)).unwrap();
                    for n in thread_counts() {
                        let parallel = execute(
                            &ctx,
                            query,
                            &ExecOptions {
                                engine: kind,
                                parallelism: Parallelism::Threads(n),
                                ..Default::default()
                            },
                        )
                        .unwrap();
                        assert_eq!(
                            multiset(&parallel.results),
                            multiset(&serial.results),
                            "seed {seed} twig {twig} engine {kind} threads {n}: \
                             parallel multiset != serial"
                        );
                    }
                }
            }
        }
    }
}

/// Under a `limit`, a parallel run yields a prefix-sized subset of the
/// serial multiset — and in deterministic (default) streaming mode, exactly
/// the serial prefix.
#[test]
fn parallel_limit_yields_a_prefix_sized_subset() {
    let (db, doc) = random_instance(7, 20, 60, 3);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["S"], &["//r//x"]).unwrap();

    let serial_rows: Vec<Vec<ValueId>> = stream(
        &ctx,
        &query,
        &ExecOptions::for_engine(EngineKind::XJoinStream),
    )
    .unwrap()
    .collect();
    assert!(serial_rows.len() > 4, "instance too small for a limit test");
    let serial_sorted = {
        let mut s = serial_rows.clone();
        s.sort();
        s
    };

    for n in thread_counts() {
        for k in [1usize, 3, serial_rows.len() + 10] {
            // Deterministic mode: the exact serial prefix.
            let opts = ExecOptions {
                engine: EngineKind::XJoinStream,
                parallelism: Parallelism::Threads(n),
                limit: Some(k),
                ..Default::default()
            };
            let rows: Vec<Vec<ValueId>> = stream(&ctx, &query, &opts).unwrap().collect();
            let expect = k.min(serial_rows.len());
            assert_eq!(rows.len(), expect, "threads {n} limit {k}");
            assert_eq!(
                rows,
                serial_rows[..expect].to_vec(),
                "threads {n} limit {k}: deterministic mode must yield the serial prefix"
            );

            // Arrival-order mode: still a prefix-sized subset of the serial
            // multiset.
            let unordered = ExecOptions {
                unordered: true,
                ..opts.clone()
            };
            let rows: Vec<Vec<ValueId>> = stream(&ctx, &query, &unordered).unwrap().collect();
            assert_eq!(rows.len(), expect);
            for row in &rows {
                assert!(
                    serial_sorted.binary_search(row).is_ok(),
                    "threads {n} limit {k}: unordered row not in serial result"
                );
            }

            // Materialising engines truncate to the same size.
            for kind in plan_based() {
                let out = execute(
                    &ctx,
                    &query,
                    &ExecOptions {
                        engine: kind,
                        ..opts.clone()
                    },
                )
                .unwrap();
                assert_eq!(out.results.len(), expect, "engine {kind} threads {n}");
            }
        }
    }
}

/// Pure-relational workloads (triangle, 4-clique) through the same parallel
/// machinery, `Parallelism::Auto` included.
#[test]
fn parallel_matches_serial_on_graph_workloads() {
    let inst = graph_instance(24, 90, 11);
    let idx = inst.index();
    let ctx = DataContext::new(&inst.db, &inst.doc, &idx);
    for query in [triangle_query(), clique4_query()] {
        for kind in [
            EngineKind::Lftj,
            EngineKind::Generic,
            EngineKind::XJoinStream,
        ] {
            let serial = execute(&ctx, &query, &ExecOptions::for_engine(kind)).unwrap();
            for parallelism in [
                Parallelism::Threads(2),
                Parallelism::Threads(8),
                Parallelism::Auto,
            ] {
                let parallel = execute(
                    &ctx,
                    &query,
                    &ExecOptions {
                        engine: kind,
                        parallelism,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    multiset(&parallel.results),
                    multiset(&serial.results),
                    "{kind} under {parallelism}"
                );
            }
        }
    }
}

/// Adaptive ordering composes with morsel parallelism: for every plan-based
/// engine and every ladder rung, an adaptive run — serial and `Threads(4)`
/// (the CI-forced width) — returns exactly the serial static result multiset
/// on random, Zipfian, and branch-skew instances. Each worker re-derives its
/// own order from its `ValueRange`, so this also checks that per-morsel
/// reorder decisions cannot leak rows across morsel boundaries.
#[test]
fn adaptive_parallel_matches_static_serial() {
    let rungs = [Ladder::RowCount, Ladder::Distinct, Ladder::Refined];
    let check = |db: &Database, doc: &XmlDocument, query: &MultiModelQuery, tag: &str| {
        let index = TagIndex::build(doc);
        let ctx = DataContext::new(db, doc, &index);
        for kind in plan_based() {
            let static_serial = execute(&ctx, query, &ExecOptions::for_engine(kind)).unwrap();
            for ladder in rungs {
                for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
                    let opts = ExecOptions {
                        engine: kind,
                        order: OrderStrategy::Adaptive { ladder },
                        parallelism,
                        ..Default::default()
                    };
                    let adaptive = execute(&ctx, query, &opts).unwrap();
                    let aligned = static_serial
                        .results
                        .project(adaptive.results.schema().attrs())
                        .unwrap();
                    assert_eq!(
                        multiset(&adaptive.results),
                        multiset(&aligned),
                        "{tag} engine {kind} ladder {ladder} {parallelism:?}: \
                         adaptive != static serial"
                    );
                }
            }
        }
    };

    let (db, doc) = random_instance(13, 12, 36, 4);
    let query = MultiModelQuery::new(&["S"], &["//r//x"]).unwrap();
    check(&db, &doc, &query, "random");
    let zipf = zipf_graph_instance(36, 140, 1.2, 23);
    check(&zipf.db, &zipf.doc, &triangle_query(), "zipf triangle");
    let skewed = branch_skew_instance(32, 6);
    check(&skewed.db, &skewed.doc, &branch_skew_query(), "branch skew");
}

/// Satellite fix: stats aggregation is summed and well-defined — a fully
/// drained parallel iterator reports exactly the serial walk's `visited`
/// count on a fixed dataset (morsels disjointly partition the bindings).
#[test]
fn parallel_visited_counter_sums_to_serial() {
    let inst = graph_instance(20, 70, 3);
    let idx = inst.index();
    let ctx = DataContext::new(&inst.db, &inst.doc, &idx);
    let query = triangle_query();

    let mut serial = stream(
        &ctx,
        &query,
        &ExecOptions::for_engine(EngineKind::XJoinStream),
    )
    .unwrap();
    let total = serial.by_ref().count();
    let serial_visited = serial.stats().visited;
    assert!(total > 0 && serial_visited > 0);

    for n in thread_counts() {
        for unordered in [false, true] {
            let opts = ExecOptions {
                engine: EngineKind::XJoinStream,
                parallelism: Parallelism::Threads(n),
                unordered,
                ..Default::default()
            };
            let mut rows = stream(&ctx, &query, &opts).unwrap();
            assert_eq!(rows.by_ref().count(), total);
            assert_eq!(
                rows.stats().visited,
                serial_visited,
                "threads {n} unordered {unordered}: summed worker bindings != serial"
            );
            assert_eq!(rows.stats().emitted, total);
        }
    }

    // Under a limit, workers cut off early: visited stays strictly below
    // the full count (the whole point of pushdown). The instance must be
    // large enough that the full enumeration far exceeds the streaming
    // channel's buffer, otherwise workers legitimately finish before the
    // cut-off can be observed.
    let big = graph_instance(150, 2500, 5);
    let big_idx = big.index();
    let big_ctx = DataContext::new(&big.db, &big.doc, &big_idx);
    let mut full = stream(
        &big_ctx,
        &query,
        &ExecOptions::for_engine(EngineKind::XJoinStream),
    )
    .unwrap();
    let total = full.by_ref().count();
    let full_visited = full.stats().visited;
    assert!(total > 100);
    let opts = ExecOptions {
        engine: EngineKind::XJoinStream,
        parallelism: Parallelism::Threads(2),
        limit: Some(1),
        ..Default::default()
    };
    let mut limited = stream(&big_ctx, &query, &opts).unwrap();
    assert_eq!(limited.by_ref().count(), 1);
    assert!(
        limited.stats().visited < full_visited,
        "limited parallel visited {} !< full {}",
        limited.stats().visited,
        full_visited
    );
}

/// Builds a [`JoinPlan`] over one binary relation from random rows.
fn plan_of(rows: &[(u32, u32)]) -> JoinPlan {
    let mut r = Relation::new(Schema::of(&["a", "b"]));
    for &(x, y) in rows {
        r.push(&[ValueId(x), ValueId(y)]).unwrap();
    }
    let order: Vec<Attr> = vec!["a".into(), "b".into()];
    JoinPlan::new(&[&r], &order).unwrap()
}

/// Brute-force level summaries of a relation under set semantics: at level
/// `l`, `nodes` is the number of distinct `l + 1`-prefixes and `distinct`
/// the number of distinct values in column `l` — exactly what
/// [`Trie::level_summary`] must report for a trie built from the relation.
fn expected_summaries(rel: &Relation) -> Vec<LevelSummary> {
    let arity = rel.schema().attrs().len();
    (0..arity)
        .map(|level| {
            let mut prefixes = std::collections::BTreeSet::new();
            let mut values = std::collections::BTreeSet::new();
            for row in rel.rows() {
                prefixes.insert(row[..=level].to_vec());
                values.insert(row[level]);
            }
            LevelSummary {
                nodes: prefixes.len() as u64,
                distinct: values.len() as u64,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The adaptive walk's cardinality summaries stay exact under
    /// [`VersionedStore::append`] churn: after every random batch, tries
    /// built from the stored relation (fast path and reference path alike)
    /// report the brute-force summaries, the delta overlay's summary bound
    /// dominates them, and compaction tightens the bound back to exact.
    #[test]
    fn level_summaries_stay_exact_under_append_churn(
        init in prop::collection::vec((0i64..10, 0i64..10), 1..24),
        batches in prop::collection::vec(
            prop::collection::vec((0i64..10, 0i64..10), 1..10), 1..4),
    ) {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = init
            .iter()
            .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)])
            .collect();
        db.load("T", Schema::of(&["a", "b"]), rows).unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.add_node(None, "r", None);
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        let store = VersionedStore::new(db, doc);
        let order: Vec<Attr> = vec!["a".into(), "b".into()];

        let base = Trie::build(store.snapshot().db().relation("T").unwrap(), &order).unwrap();
        let mut delta = DeltaTrie::new(Arc::new(base));

        for batch in &batches {
            let from = store.snapshot().relation_version("T").unwrap();
            let to = store
                .append("T", batch.iter().map(|&(x, y)| vec![Value::Int(x), Value::Int(y)]))
                .unwrap();
            let snap = store.snapshot();
            for seg in snap.delta_rows("T", from, to).expect("append logged a delta segment") {
                delta.push_run(Arc::new(Trie::build(&seg, &order).unwrap())).unwrap();
            }

            let rel = snap.db().relation("T").unwrap();
            let expect = expected_summaries(rel);
            let fast = Trie::build(rel, &order).unwrap();
            let reference = Trie::build_reference(rel, &order).unwrap();
            let compacted = delta.compact().unwrap();
            for (level, want) in expect.iter().enumerate() {
                prop_assert_eq!(fast.level_summary(level), *want, "fast build, level {}", level);
                prop_assert_eq!(reference.level_summary(level), *want,
                    "reference build, level {}", level);
                prop_assert_eq!(compacted.level_summary(level), *want,
                    "compacted overlay, level {}", level);
                let bound = delta.level_summary_bound(level);
                prop_assert!(
                    bound.nodes >= want.nodes && bound.distinct >= want.distinct,
                    "level {}: overlay bound {:?} must dominate exact {:?}", level, bound, want
                );
            }
        }
    }

    /// Morsel planning property: for random tries and any K (including
    /// K ≥ the number of first-level values), the partition is a disjoint
    /// cover — adjacent ranges share boundaries, the cover spans the whole
    /// value space, and every first-level value lands in exactly one morsel
    /// (empty morsels allowed, none lost).
    #[test]
    fn morsel_partition_is_a_disjoint_cover(
        rows in prop::collection::vec((0u32..40, 0u32..6), 1..80),
        k in 1usize..64,
    ) {
        let plan = plan_of(&rows);
        let ranges = partition_root(&plan, k);
        prop_assert!(!ranges.is_empty());
        prop_assert!(ranges.len() <= k.max(1));
        // The cover spans the whole value space…
        prop_assert_eq!(ranges[0].lo, ValueId(0));
        prop_assert!(ranges.last().unwrap().hi.is_none());
        // …with adjacent, non-overlapping boundaries…
        for pair in ranges.windows(2) {
            prop_assert_eq!(pair[0].hi, Some(pair[1].lo));
            prop_assert!(pair[0].lo < pair[1].lo);
        }
        // …so every first-level value of the root trie falls in exactly
        // one morsel.
        let trie = &plan.tries()[0];
        let root_vals = trie.values(0, trie.root_range()).to_vec();
        prop_assert!(ranges.len() <= root_vals.len());
        for v in root_vals {
            let hits = ranges.iter().filter(|r| r.contains(v)).count();
            prop_assert_eq!(hits, 1);
        }
    }

    /// End-to-end morsel property: enumerating each range of the partition
    /// and concatenating reproduces the full LFTJ result exactly, for any K.
    #[test]
    fn morsel_walks_reassemble_the_full_result(
        rows in prop::collection::vec((0u32..20, 0u32..20), 0..60),
        k in 1usize..16,
    ) {
        let plan = plan_of(&rows);
        let full = relational::lftj::lftj(&plan);
        let ranges = partition_root(&plan, k);
        let mut merged = Relation::new(full.schema().clone());
        for range in &ranges {
            let part = relational::lftj::lftj_in_range(&plan, range);
            for row in part.rows() {
                merged.push(row).unwrap();
            }
        }
        prop_assert_eq!(merged, full);
    }
}
