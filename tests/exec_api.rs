//! Integration tests of the unified execution API (`xjoin_core::exec`):
//! every [`EngineKind`] runs the same multi-model query with identical
//! result sets, `Rows` limit pushdown provably visits fewer tuples, and
//! validation errors surface at prepare time.

use bench::workloads::{
    branch_skew_instance, branch_skew_query, triangle_query, zipf_graph_instance,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relational::{Database, Ladder, Relation, Schema, Value, ValueId};
use xjoin_core::{
    engine_for, execute, stream, CoreError, DataContext, EngineKind, ExecOptions, MultiModelQuery,
    OrderStrategy, QueryBuilder,
};
use xmldb::{TagIndex, XmlDocument};

/// Random instance: a table S(x, y) plus a random tree over tags {r, x, y}
/// whose node values share the table's domain.
fn random_instance(seed: u64, rows: usize, nodes: usize, domain: i64) -> (Database, XmlDocument) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let rows: Vec<Vec<Value>> = (0..rows)
        .map(|_| {
            vec![
                Value::Int(rng.gen_range(0..domain)),
                Value::Int(rng.gen_range(0..domain)),
            ]
        })
        .collect();
    db.load("S", Schema::of(&["x", "y"]), rows).unwrap();

    let mut dict = db.dict().clone();
    let mut b = XmlDocument::builder();
    let tags = ["r", "x", "y"];
    let root = b.add_node(None, "r", Some(Value::Int(rng.gen_range(0..domain))));
    let mut ids = vec![root];
    for _ in 1..nodes {
        let parent = ids[rng.gen_range(0..ids.len())];
        let tag = tags[rng.gen_range(0..tags.len())];
        let id = b.add_node(
            Some(parent),
            tag,
            Some(Value::Int(rng.gen_range(0..domain))),
        );
        ids.push(id);
    }
    let doc = b.build(&mut dict);
    *db.dict_mut() = dict;
    (db, doc)
}

const TWIGS: &[&str] = &["//r//x", "//r/x", "//r[/x][//y]"];

/// Acceptance: the same multi-model query through every `EngineKind` via
/// the unified API yields identical result sets, on random instances.
#[test]
fn every_engine_kind_agrees_on_random_instances() {
    for seed in 0..6u64 {
        let (db, doc) = random_instance(seed, 8, 24, 4);
        let index = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &index);
        for twig in TWIGS {
            // With projection (shared schema across engines)…
            let projected = MultiModelQuery::new(&["S"], &[twig])
                .unwrap()
                .with_output(&["x", "y"]);
            // …and without (schemas differ per engine; align via project).
            let unprojected = MultiModelQuery::new(&["S"], &[twig]).unwrap();
            let reference = execute(&ctx, &projected, &ExecOptions::default()).unwrap();
            let reference_full = execute(&ctx, &unprojected, &ExecOptions::default()).unwrap();
            for kind in EngineKind::all() {
                let opts = ExecOptions::for_engine(kind);
                let out = execute(&ctx, &projected, &opts).unwrap();
                assert!(
                    out.results.set_eq(&reference.results),
                    "seed {seed} twig {twig} engine {kind}: {} vs {} rows",
                    out.results.len(),
                    reference.results.len()
                );
                let full = execute(&ctx, &unprojected, &opts).unwrap();
                let aligned = reference_full
                    .results
                    .project(full.results.schema().attrs())
                    .unwrap();
                assert!(
                    full.results.set_eq(&aligned),
                    "seed {seed} twig {twig} engine {kind} (unprojected)"
                );
            }
        }
    }
}

/// A relation's rows as a sorted vector — the multiset signature.
fn multiset(rel: &Relation) -> Vec<Vec<ValueId>> {
    let mut rows: Vec<Vec<ValueId>> = rel.rows().map(|r| r.to_vec()).collect();
    rows.sort();
    rows
}

/// Every ladder rung of the adaptive order.
fn rungs() -> [Ladder; 3] {
    [Ladder::RowCount, Ladder::Distinct, Ladder::Refined]
}

/// Adaptive ordering is a pure execution-strategy change: for every
/// plan-based [`EngineKind`] and every ladder rung, the adaptive run's
/// result multiset is identical to the static run's — on random multi-model
/// instances, a Zipf-skewed triangle, and the branch-skew workload the
/// adaptive walk is designed to win on. Schemas may differ (adaptive pins
/// the appearance skeleton), so results are aligned by projection first.
#[test]
fn adaptive_matches_static_for_every_plan_based_engine() {
    let plan_based: Vec<EngineKind> = EngineKind::all()
        .into_iter()
        .filter(EngineKind::is_plan_based)
        .collect();
    let check = |db: &Database, doc: &XmlDocument, query: &MultiModelQuery, tag: &str| {
        let index = TagIndex::build(doc);
        let ctx = DataContext::new(db, doc, &index);
        for &kind in &plan_based {
            let static_out = execute(&ctx, query, &ExecOptions::for_engine(kind)).unwrap();
            for ladder in rungs() {
                let opts = ExecOptions {
                    engine: kind,
                    order: OrderStrategy::Adaptive { ladder },
                    ..Default::default()
                };
                let adaptive = execute(&ctx, query, &opts).unwrap();
                let aligned = static_out
                    .results
                    .project(adaptive.results.schema().attrs())
                    .unwrap();
                assert_eq!(
                    multiset(&adaptive.results),
                    multiset(&aligned),
                    "{tag} engine {kind} ladder {ladder}: adaptive multiset != static"
                );
            }
        }
    };

    // Uniform-random multi-model instances…
    for seed in 0..3u64 {
        let (db, doc) = random_instance(seed, 10, 30, 4);
        let query = MultiModelQuery::new(&["S"], &["//r//x"]).unwrap();
        check(&db, &doc, &query, &format!("random seed {seed}"));
    }
    // …a Zipf-skewed triangle…
    let zipf = zipf_graph_instance(40, 160, 1.2, 7);
    check(&zipf.db, &zipf.doc, &triangle_query(), "zipf triangle");
    // …and the branch-skew workload the adaptive walk is designed to win on.
    let skewed = branch_skew_instance(48, 8);
    check(&skewed.db, &skewed.doc, &branch_skew_query(), "branch skew");
}

/// The `stream` entry point agrees with `execute` for every engine (same
/// rows, same set semantics), streamed or buffered.
#[test]
fn stream_agrees_with_execute_for_every_engine() {
    let (db, doc) = random_instance(42, 8, 24, 4);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["S"], &["//r//x"])
        .unwrap()
        .with_output(&["x", "y"]);
    for kind in EngineKind::all() {
        let opts = ExecOptions::for_engine(kind);
        let executed = execute(&ctx, &query, &opts).unwrap();
        let streamed = stream(&ctx, &query, &opts).unwrap().into_relation();
        assert!(
            streamed.set_eq(&executed.results),
            "engine {kind}: stream != execute"
        );
    }
}

/// Acceptance: `Rows` with `limit(k)` visits strictly fewer tuples than
/// full enumeration, observable via the `Rows::stats` counters.
#[test]
fn limit_pushdown_visits_strictly_fewer_tuples() {
    // A skewed instance with plenty of results so a small limit leaves most
    // of the search space unvisited.
    let (db, doc) = random_instance(7, 20, 60, 3);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["S"], &["//r//x"]).unwrap();

    for kind in [EngineKind::XJoinStream] {
        let mut full = stream(&ctx, &query, &ExecOptions::for_engine(kind)).unwrap();
        let total = full.by_ref().count();
        let full_visited = full.stats().visited;
        assert!(total > 2, "instance too small for a meaningful limit test");

        let k = 2usize;
        let opts = ExecOptions {
            engine: kind,
            limit: Some(k),
            ..Default::default()
        };
        let mut limited = stream(&ctx, &query, &opts).unwrap();
        let rows: Vec<_> = limited.by_ref().collect();
        let st = limited.stats();
        assert_eq!(rows.len(), k);
        assert_eq!(st.emitted, k);
        assert!(
            st.visited < full_visited,
            "engine {kind}: limited visited {} !< full visited {}",
            st.visited,
            full_visited
        );
        // And the limited rows are genuine results.
        let all = execute(&ctx, &query, &ExecOptions::for_engine(kind)).unwrap();
        for row in &rows {
            assert!(all.results.contains_row(row), "limited row not in result");
        }
    }
}

/// Limit pushdown also holds through the Query/QueryBuilder surface.
#[test]
fn builder_limit_pushes_down() {
    let (db, doc) = random_instance(11, 12, 40, 3);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);

    let full = QueryBuilder::new()
        .relation("S")
        .twig("//r//x")
        .engine(EngineKind::XJoinStream)
        .build()
        .unwrap();
    let mut all = full.rows(&ctx).unwrap();
    let total = all.by_ref().count();
    assert!(total > 1);
    let full_visited = all.stats().visited;

    let limited = QueryBuilder::from_query(full.query.clone())
        .engine(EngineKind::XJoinStream)
        .limit(1)
        .build()
        .unwrap();
    let mut rows = limited.rows(&ctx).unwrap();
    assert_eq!(rows.by_ref().count(), 1);
    assert!(rows.stats().visited < full_visited);
    // execute() honours the same limit.
    assert_eq!(limited.execute(&ctx).unwrap().results.len(), 1);
}

/// Unknown output attributes error at prepare — for every engine, before
/// any join work happens (the error is the dedicated variant, not a late
/// projection failure).
#[test]
fn unknown_output_attribute_fails_fast_everywhere() {
    let (db, doc) = random_instance(3, 4, 10, 3);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["S"], &["//r//x"])
        .unwrap()
        .with_output(&["not_a_var"]);
    for kind in EngineKind::all() {
        let engine = engine_for(kind);
        let opts = ExecOptions::for_engine(kind);
        for result in [
            engine.prepare(&ctx, &query, &opts).map(|_| ()),
            engine.execute(&ctx, &query, &opts).map(|_| ()),
            engine.stream(&ctx, &query, &opts).map(|_| ()),
        ] {
            assert!(
                matches!(result, Err(CoreError::UnknownAttribute(ref a)) if a == "not_a_var"),
                "engine {kind}: expected UnknownAttribute, got {result:?}"
            );
        }
    }
}

/// The engine trait objects report their own kind, and prepare describes
/// the query without executing it.
#[test]
fn prepare_reports_engine_and_shape() {
    let (db, doc) = random_instance(5, 4, 10, 3);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["S"], &["//r//x"]).unwrap();
    for kind in EngineKind::all() {
        let engine = engine_for(kind);
        assert_eq!(engine.kind(), kind);
        let plan = engine
            .prepare(&ctx, &query, &ExecOptions::for_engine(kind))
            .unwrap();
        assert_eq!(plan.engine, kind);
        assert!(plan.order.iter().any(|a| a.name() == "x"));
        assert!(!plan.atom_sizes.is_empty());
    }
}

/// Pure-relational and pure-twig queries run through every engine too.
#[test]
fn single_model_queries_work_on_every_engine() {
    let (db, doc) = random_instance(9, 6, 15, 3);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let rel_only = MultiModelQuery::new(&["S"], &[]).unwrap();
    let twig_only = MultiModelQuery::new::<&str>(&[], &["//r//x"]).unwrap();
    for query in [&rel_only, &twig_only] {
        let reference = execute(&ctx, query, &ExecOptions::default()).unwrap();
        for kind in EngineKind::all() {
            let out = execute(&ctx, query, &ExecOptions::for_engine(kind)).unwrap();
            let aligned = reference
                .results
                .project(out.results.schema().attrs())
                .unwrap();
            assert!(out.results.set_eq(&aligned), "engine {kind}");
        }
    }
}
