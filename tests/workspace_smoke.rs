//! Workspace smoke test: the facade crate's re-exports resolve, every layer
//! is reachable through `xjoin_repro::*`, and the quickstart example's logic
//! runs end-to-end.

use xjoin_repro::agm::{agm_exponent, Hypergraph};
use xjoin_repro::relational::{Database, Schema, Value};
use xjoin_repro::xjoin_core::{xjoin, DataContext, MultiModelQuery, XJoinConfig};
use xjoin_repro::xmldb::{parse_xml, TagIndex};

/// The `examples/quickstart.rs` flow, asserted instead of printed: load a
/// table, parse an XML document into the shared dictionary, and join them
/// with the worst-case optimal multi-model engine.
#[test]
fn quickstart_flow_end_to_end() {
    let mut db = Database::new();
    db.load(
        "orders",
        Schema::of(&["orderID", "userID"]),
        vec![
            vec![Value::Int(10963), Value::str("jack")],
            vec![Value::Int(20134), Value::str("tom")],
            vec![Value::Int(35768), Value::str("bob")],
        ],
    )
    .expect("orders load");

    let mut dict = db.dict().clone();
    let doc = parse_xml(
        "<invoices>\
           <orderLine><orderID>10963</orderID><price>30</price></orderLine>\
           <orderLine><orderID>20134</orderID><price>20</price></orderLine>\
         </invoices>",
        &mut dict,
    )
    .expect("invoices parse");
    *db.dict_mut() = dict;
    let index = TagIndex::build(&doc);

    let query = MultiModelQuery::new(&["orders"], &["//orderLine[/orderID][/price]"])
        .expect("query parses")
        .with_output(&["userID", "price"]);

    let ctx = DataContext::new(&db, &doc, &index);
    let out = xjoin(&ctx, &query, &XJoinConfig::default()).expect("xjoin runs");

    // Orders 10963 (jack, price 30) and 20134 (tom, price 20) have invoice
    // lines; 35768 (bob) does not.
    assert_eq!(out.results.len(), 2);
    assert_eq!(out.results.schema().attrs().len(), 2);
    let rendered = db.render_table(&out.results);
    assert!(rendered.contains("jack"), "missing jack in:\n{rendered}");
    assert!(rendered.contains("tom"), "missing tom in:\n{rendered}");
    assert!(
        !rendered.contains("bob"),
        "bob has no invoice line:\n{rendered}"
    );
}

/// Every substrate the facade re-exports is usable directly.
#[test]
fn facade_reexports_resolve() {
    // agm: the triangle query's AGM exponent is 3/2.
    let mut h = Hypergraph::new();
    h.edge("R", &["a", "b"]);
    h.edge("S", &["b", "c"]);
    h.edge("T", &["a", "c"]);
    let rho = agm_exponent(&h).expect("triangle is covered");
    assert!((rho - 1.5).abs() < 1e-9, "rho = {rho}");

    // relational: load and read back a table.
    let mut db = Database::new();
    db.load(
        "edge",
        Schema::of(&["src", "dst"]),
        vec![vec![Value::Int(1), Value::Int(2)]],
    )
    .expect("load");
    assert_eq!(db.relation("edge").expect("edge exists").len(), 1);

    // xmldb: parse and index a document.
    let mut dict = db.dict().clone();
    let doc = parse_xml("<a><b>1</b></a>", &mut dict).expect("parses");
    assert_eq!(doc.len(), 2);
    let index = TagIndex::build(&doc);
    assert_eq!(index.nodes_named(&doc, "b").len(), 1);
}
