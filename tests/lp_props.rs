//! Property-based tests of the LP solver and the AGM bound machinery:
//! primal feasibility, strong duality on random hypergraphs, and bound
//! sanity against enumerated joins.

use agm::{
    agm_bound, agm_exponent, fractional_edge_cover, solve, vertex_packing, Cmp, Hypergraph,
    LinearProgram, LpOutcome,
};
use proptest::prelude::*;

/// Strategy: a random hypergraph over up to 6 vertices with 1..6 edges, each
/// edge a non-empty vertex subset; every vertex is covered by construction
/// (uncovered vertices never enter).
fn hypergraph_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::btree_set(0usize..6, 1..4), 1..6)
        .prop_map(|edges| edges.into_iter().map(|e| e.into_iter().collect()).collect())
}

fn build(edges: &[Vec<usize>]) -> Hypergraph {
    let names = ["a", "b", "c", "d", "e", "f"];
    let mut h = Hypergraph::new();
    for (i, e) in edges.iter().enumerate() {
        let attrs: Vec<&str> = e.iter().map(|&v| names[v]).collect();
        h.edge(&format!("E{i}"), &attrs);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn strong_duality_on_random_hypergraphs(edges in hypergraph_strategy()) {
        let h = build(&edges);
        let primal = fractional_edge_cover(&h).unwrap();
        let dual = vertex_packing(&h).unwrap();
        prop_assert!((primal.value - dual.value).abs() < 1e-6,
            "primal {} != dual {}", primal.value, dual.value);
    }

    #[test]
    fn cover_is_feasible_and_within_trivial_bounds(edges in hypergraph_strategy()) {
        let h = build(&edges);
        let s = fractional_edge_cover(&h).unwrap();
        // Feasibility: every vertex covered by >= 1.
        for v in 0..h.num_vertices() {
            let coverage: f64 = h.edges().iter().enumerate()
                .filter(|(_, e)| e.vertices.contains(&v))
                .map(|(i, _)| s.weights[i])
                .sum();
            prop_assert!(coverage >= 1.0 - 1e-6);
        }
        // Non-negativity and trivial bounds: 0 <= rho* <= #edges.
        prop_assert!(s.weights.iter().all(|&x| x >= -1e-9));
        let lower = if h.num_vertices() > 0 { 1.0 - 1e-6 } else { 0.0 };
        prop_assert!(s.value >= lower);
        prop_assert!(s.value <= h.num_edges() as f64 + 1e-6);
    }

    #[test]
    fn packing_is_feasible(edges in hypergraph_strategy()) {
        let h = build(&edges);
        let s = vertex_packing(&h).unwrap();
        for e in h.edges() {
            let load: f64 = e.vertices.iter().map(|&v| s.weights[v]).sum();
            prop_assert!(load <= 1.0 + 1e-6);
        }
        prop_assert!(s.weights.iter().all(|&y| y >= -1e-9));
    }

    #[test]
    fn bound_is_monotone_in_sizes(edges in hypergraph_strategy(), scale in 2usize..5) {
        let h = build(&edges);
        let small = vec![4usize; h.num_edges()];
        let large = vec![4 * scale; h.num_edges()];
        let b_small = agm_bound(&h, &small).unwrap();
        let b_large = agm_bound(&h, &large).unwrap();
        prop_assert!(b_large >= b_small - 1e-6);
    }

    #[test]
    fn uniform_bound_matches_exponent(edges in hypergraph_strategy(), n in 2usize..20) {
        let h = build(&edges);
        let rho = agm_exponent(&h).unwrap();
        let bound = agm_bound(&h, &vec![n; h.num_edges()]).unwrap();
        let expect = (n as f64).powf(rho);
        prop_assert!((bound - expect).abs() < 1e-6 * expect.max(1.0),
            "bound {bound} != n^rho {expect}");
    }

    #[test]
    fn lp_optimum_is_feasible(
        c0 in -5.0f64..5.0, c1 in -5.0f64..5.0,
        b0 in 0.0f64..10.0, b1 in 0.0f64..10.0,
    ) {
        // min c·x st x0 + x1 >= b0, x0 <= b1 — always feasible; bounded iff
        // objective can't be pushed to -inf along the recession cone.
        let mut lp = LinearProgram::minimize(vec![c0, c1]);
        lp.constraint(vec![1.0, 1.0], Cmp::Ge, b0);
        lp.constraint(vec![1.0, 0.0], Cmp::Le, b1);
        match solve(&lp) {
            LpOutcome::Optimal(s) => {
                prop_assert!(s.x[0] + s.x[1] >= b0 - 1e-6);
                prop_assert!(s.x[0] <= b1 + 1e-6);
                prop_assert!(s.x.iter().all(|&x| x >= -1e-9));
            }
            LpOutcome::Unbounded => {
                // x1 free upward: unbounded iff c1 < 0 (or x0 direction with
                // c0 < 0 is blocked by b1, so only c1 matters).
                prop_assert!(c1 < 1e-9);
            }
            LpOutcome::Infeasible => prop_assert!(false, "feasible by construction"),
        }
    }
}

#[test]
fn agm_bound_is_an_upper_bound_on_actual_joins() {
    // Enumerate small random joins and compare to the bound.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use relational::generator::random_relation;
    use relational::generic::generic_join;
    use relational::{Attr, Dict, Schema};

    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dict = Dict::new();
        let rows = rng.gen_range(1..30);
        let domain = rng.gen_range(2..8);
        let r = random_relation(&mut dict, Schema::of(&["a", "b"]), rows, domain, seed);
        let s = random_relation(&mut dict, Schema::of(&["b", "c"]), rows, domain, seed + 1);
        let t = random_relation(&mut dict, Schema::of(&["a", "c"]), rows, domain, seed + 2);
        let order: Vec<Attr> = vec!["a".into(), "b".into(), "c".into()];
        let (out, _) = generic_join(&[&r, &s, &t], &order).unwrap();

        let mut h = Hypergraph::new();
        h.edge("R", &["a", "b"]);
        h.edge("S", &["b", "c"]);
        h.edge("T", &["a", "c"]);
        let bound = agm_bound(&h, &[r.len(), s.len(), t.len()]).unwrap();
        assert!(
            out.len() as f64 <= bound + 1e-6,
            "seed {seed}: |Q| = {} > bound {bound}",
            out.len()
        );
    }
}
