//! Property-based tests of the relational substrate: tries, leapfrog, and
//! the equivalence of all three relational join engines against a naive
//! reference.

use proptest::prelude::*;
use relational::generic::{generic_join, naive_join};
use relational::hashjoin::multiway_hash_join;
use relational::leapfrog::{gallop, intersect};
use relational::lftj::lftj_join;
use relational::{Attr, Relation, Schema, Trie, ValueId};
use std::collections::BTreeSet;

fn rel_from(rows: &[(u32, u32)], a: &str, b: &str) -> Relation {
    let mut r = Relation::new(Schema::of(&[a, b]));
    for &(x, y) in rows {
        r.push(&[ValueId(x), ValueId(y)]).unwrap();
    }
    r
}

proptest! {
    // Full case count natively; reduced under Miri, which interprets every
    // join at ~1000x native cost (the CI miri job runs this suite).
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 8 } else { 64 }))]

    #[test]
    fn trie_round_trips_any_relation(
        rows in prop::collection::vec((0u32..12, 0u32..12), 0..60)
    ) {
        let rel = rel_from(&rows, "a", "b");
        let trie = Trie::from_relation(&rel);
        let mut expect = rel.clone();
        expect.sort_dedup();
        prop_assert_eq!(trie.to_relation(), expect);
    }

    #[test]
    fn trie_respects_any_column_order(
        rows in prop::collection::vec((0u32..12, 0u32..12), 0..60),
        flip in any::<bool>()
    ) {
        let rel = rel_from(&rows, "a", "b");
        let order: Vec<Attr> = if flip {
            vec!["b".into(), "a".into()]
        } else {
            vec!["a".into(), "b".into()]
        };
        let trie = Trie::build(&rel, &order).unwrap();
        let expect = rel.project(&order).unwrap();
        prop_assert!(trie.to_relation().set_eq(&expect));
        prop_assert_eq!(trie.num_tuples(), expect.len());
    }

    #[test]
    fn leapfrog_equals_set_intersection(
        a in prop::collection::btree_set(0u32..200, 0..80),
        b in prop::collection::btree_set(0u32..200, 0..80),
        c in prop::collection::btree_set(0u32..200, 0..80),
    ) {
        let to_ids = |s: &BTreeSet<u32>| s.iter().map(|&x| ValueId(x)).collect::<Vec<_>>();
        let (av, bv, cv) = (to_ids(&a), to_ids(&b), to_ids(&c));
        let got = intersect(&[&av, &bv, &cv]);
        let expect: Vec<ValueId> = a
            .intersection(&b)
            .copied()
            .collect::<BTreeSet<u32>>()
            .intersection(&c)
            .map(|&x| ValueId(x))
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn all_engines_agree_on_triangle_queries(
        r_rows in prop::collection::vec((0u32..6, 0u32..6), 0..25),
        s_rows in prop::collection::vec((0u32..6, 0u32..6), 0..25),
        t_rows in prop::collection::vec((0u32..6, 0u32..6), 0..25),
    ) {
        let r = rel_from(&r_rows, "a", "b");
        let s = rel_from(&s_rows, "b", "c");
        let t = rel_from(&t_rows, "a", "c");
        let order: Vec<Attr> = vec!["a".into(), "b".into(), "c".into()];
        let naive = naive_join(&[&r, &s, &t], &order).unwrap();
        let (generic, _) = generic_join(&[&r, &s, &t], &order).unwrap();
        prop_assert!(generic.set_eq(&naive), "generic != naive");
        let lftj = lftj_join(&[&r, &s, &t], &order).unwrap();
        prop_assert!(lftj.set_eq(&naive), "lftj != naive");
        if !r.is_empty() || !s.is_empty() || !t.is_empty() {
            let mut rd = r.clone(); rd.sort_dedup();
            let mut sd = s.clone(); sd.sort_dedup();
            let mut td = t.clone(); td.sort_dedup();
            let (hash, _) = multiway_hash_join(&[&rd, &sd, &td]).unwrap();
            let hash = hash.project(&order).unwrap();
            prop_assert!(hash.set_eq(&naive), "hash != naive");
        }
    }

    #[test]
    fn generic_join_agrees_for_any_variable_order(
        r_rows in prop::collection::vec((0u32..5, 0u32..5), 0..20),
        s_rows in prop::collection::vec((0u32..5, 0u32..5), 0..20),
        perm in 0usize..6,
    ) {
        let r = rel_from(&r_rows, "a", "b");
        let s = rel_from(&s_rows, "b", "c");
        let orders: [[&str; 3]; 6] = [
            ["a", "b", "c"], ["a", "c", "b"], ["b", "a", "c"],
            ["b", "c", "a"], ["c", "a", "b"], ["c", "b", "a"],
        ];
        let base: Vec<Attr> = orders[0].iter().map(|&n| Attr::new(n)).collect();
        let chosen: Vec<Attr> = orders[perm].iter().map(|&n| Attr::new(n)).collect();
        let (out_base, _) = generic_join(&[&r, &s], &base).unwrap();
        let (out_perm, _) = generic_join(&[&r, &s], &chosen).unwrap();
        prop_assert!(out_perm.project(&base).unwrap().set_eq(&out_base));
    }

    #[test]
    fn gallop_matches_naive_linear_scan(
        set in prop::collection::btree_set(0u32..300, 0..80),
        target in 0u32..320,
        lo in 0usize..100,
    ) {
        // `lo` ranges past the slice length (sets hold at most 80 values),
        // covering the empty-slice and `lo >= len` contract: gallop returns
        // `lo` unchanged there. Targets above 300 exercise the all-smaller
        // case (every element < target -> len).
        let slice: Vec<ValueId> = set.iter().map(|&x| ValueId(x)).collect();
        let got = gallop(&slice, lo, ValueId(target));
        let expect = if lo >= slice.len() {
            lo
        } else {
            (lo..slice.len())
                .find(|&i| slice[i] >= ValueId(target))
                .unwrap_or(slice.len())
        };
        prop_assert_eq!(got, expect, "slice len {}, lo {}, target {}", slice.len(), lo, target);
        if got < slice.len() && lo < slice.len() {
            prop_assert!(slice[got] >= ValueId(target));
        }
    }

    #[test]
    fn trie_build_ignores_duplicate_tuples(
        rows in prop::collection::vec((0u32..5, 0u32..5, 0u32..5), 0..30),
        perm in 0usize..6,
        dup_factor in 2usize..4,
    ) {
        // Building from a relation with duplicated tuples equals building
        // from its deduplicated form, for any attribute order.
        let orders: [[&str; 3]; 6] = [
            ["a", "b", "c"], ["a", "c", "b"], ["b", "a", "c"],
            ["b", "c", "a"], ["c", "a", "b"], ["c", "b", "a"],
        ];
        let order: Vec<Attr> = orders[perm].iter().map(|&n| Attr::new(n)).collect();
        let mut with_dups = Relation::new(Schema::of(&["a", "b", "c"]));
        for _ in 0..dup_factor {
            for &(x, y, z) in &rows {
                with_dups.push(&[ValueId(x), ValueId(y), ValueId(z)]).unwrap();
            }
        }
        let mut deduped = with_dups.clone();
        deduped.sort_dedup();
        let t_dups = Trie::build(&with_dups, &order).unwrap();
        let t_dedup = Trie::build(&deduped, &order).unwrap();
        prop_assert_eq!(t_dups.num_tuples(), t_dedup.num_tuples());
        prop_assert_eq!(t_dups.node_count(), t_dedup.node_count());
        prop_assert_eq!(t_dups.to_relation(), t_dedup.to_relation());
    }

    #[test]
    fn projection_is_idempotent(
        rows in prop::collection::vec((0u32..8, 0u32..8), 0..40)
    ) {
        let rel = rel_from(&rows, "a", "b");
        let p1 = rel.project(&["a".into()]).unwrap();
        let p2 = p1.project(&["a".into()]).unwrap();
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn sort_dedup_is_canonical(
        rows in prop::collection::vec((0u32..8, 0u32..8), 0..40)
    ) {
        let mut r1 = rel_from(&rows, "a", "b");
        let mut rev: Vec<(u32, u32)> = rows.clone();
        rev.reverse();
        let mut r2 = rel_from(&rev, "a", "b");
        r1.sort_dedup();
        r2.sort_dedup();
        prop_assert_eq!(r1, r2);
    }
}

#[test]
fn lftj_streams_in_sorted_order_on_random_data() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(3);
    let rows: Vec<(u32, u32)> = (0..200)
        .map(|_| (rng.gen_range(0..20), rng.gen_range(0..20)))
        .collect();
    let r = rel_from(&rows, "a", "b");
    let order: Vec<Attr> = vec!["a".into(), "b".into()];
    let plan = relational::JoinPlan::new(&[&r], &order).unwrap();
    let mut prev: Option<Vec<ValueId>> = None;
    relational::lftj::lftj_foreach(&plan, |t| {
        if let Some(p) = &prev {
            assert!(p.as_slice() < t, "not sorted: {p:?} !< {t:?}");
        }
        prev = Some(t.to_vec());
    });
}
