//! Robustness tests: degenerate and adversarial shapes that stress recursion
//! depth, dictionary growth, and empty/singleton corner cases across the
//! whole stack.

use relational::{Database, Dict, Schema, Value};
use xjoin_core::{baseline, xjoin, BaselineConfig, DataContext, MultiModelQuery, XJoinConfig};
use xmldb::parser::{parse_xml, to_xml_string};
use xmldb::{TagIndex, TwigPattern, XmlDocument};

/// A pure chain document a/a/a/… of the given depth.
fn chain_doc(dict: &mut Dict, depth: usize, tag: &str) -> XmlDocument {
    let mut b = XmlDocument::builder();
    let mut parent = None;
    for i in 0..depth {
        let id = b.add_node(parent, tag, Some(Value::Int(i as i64)));
        parent = Some(id);
    }
    b.build(dict)
}

#[test]
fn very_deep_documents_build_and_serialize() {
    // The builder labels iteratively and the serializer walks iteratively,
    // so depth is bounded by memory, not the call stack.
    let mut dict = Dict::new();
    let depth = 60_000;
    let doc = chain_doc(&mut dict, depth, "x");
    assert_eq!(doc.len(), depth);
    assert_eq!(
        doc.node(xmldb::NodeId((depth - 1) as u32)).level,
        (depth - 1) as u32
    );
    let xml = to_xml_string(&doc, &dict);
    assert!(xml.starts_with("<x>0<x>1"));
    assert!(xml.ends_with("</x></x>"));
}

#[test]
fn deep_parse_is_iterative_too() {
    let depth = 20_000;
    let mut xml = String::new();
    for _ in 0..depth {
        xml.push_str("<d>");
    }
    for _ in 0..depth {
        xml.push_str("</d>");
    }
    let mut dict = Dict::new();
    let doc = parse_xml(&xml, &mut dict).unwrap();
    assert_eq!(doc.len(), depth);
}

#[test]
fn wide_documents_and_fat_streams() {
    // One parent with 50k children: tag index and structural machinery must
    // stay linear.
    let mut dict = Dict::new();
    let mut b = XmlDocument::builder();
    b.begin("root");
    for i in 0..50_000i64 {
        b.leaf("c", i % 100);
    }
    b.end();
    let doc = b.build(&mut dict);
    let idx = TagIndex::build(&doc);
    assert_eq!(idx.nodes_named(&doc, "c").len(), 50_000);
    let twig = TwigPattern::parse("//root/c").unwrap();
    let res = xmldb::twig_stack(&doc, &idx, &twig);
    assert_eq!(res.matches.len(), 50_000);
}

#[test]
fn single_node_document_and_single_row_table() {
    let mut db = Database::new();
    db.load("R", Schema::of(&["v"]), vec![vec![Value::Int(0)]])
        .unwrap();
    let mut dict = db.dict().clone();
    let mut b = XmlDocument::builder();
    b.begin("v");
    b.value(0i64);
    b.end();
    let doc = b.build(&mut dict);
    *db.dict_mut() = dict;
    let idx = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &idx);
    let q = MultiModelQuery::new(&["R"], &["//v"]).unwrap();
    let x = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
    let bl = baseline(&ctx, &q, &BaselineConfig::default()).unwrap();
    assert_eq!(x.results.len(), 1);
    assert_eq!(bl.results.len(), 1);
}

#[test]
fn all_equal_values_worst_case_skew() {
    // Every node and every tuple carries the same value: maximal skew.
    let mut db = Database::new();
    let n = 40;
    db.load(
        "R",
        Schema::of(&["a", "b"]),
        (0..n).map(|_| vec![Value::Int(0), Value::Int(0)]),
    )
    .unwrap();
    // load dedups; re-add with distinct second column to keep n rows.
    db.load(
        "S",
        Schema::of(&["a", "c"]),
        (0..n).map(|i| vec![Value::Int(0), Value::Int(i as i64)]),
    )
    .unwrap();
    let mut dict = db.dict().clone();
    let mut b = XmlDocument::builder();
    b.begin("r");
    for _ in 0..n {
        b.leaf("a", 0i64);
    }
    b.end();
    let doc = b.build(&mut dict);
    *db.dict_mut() = dict;
    let idx = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &idx);
    let q = MultiModelQuery::new(&["R", "S"], &["//r/a"]).unwrap();
    let x = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
    let bl = baseline(&ctx, &q, &BaselineConfig::default()).unwrap();
    let aligned = bl.results.project(x.results.schema().attrs()).unwrap();
    assert!(x.results.set_eq(&aligned));
    // R dedups to one row; S keeps n; result = n combinations over value 0.
    assert_eq!(x.results.len(), n);
}

#[test]
fn twig_deeper_than_document_is_empty() {
    let mut dict = Dict::new();
    let doc = chain_doc(&mut dict, 3, "x");
    let idx = TagIndex::build(&doc);
    let twig = TwigPattern::parse("//x$a/x$b/x$c/x$d/x$e").unwrap();
    assert_eq!(xmldb::matcher::count_matches(&doc, &idx, &twig), 0);
    assert!(xmldb::twig_stack(&doc, &idx, &twig).matches.is_empty());
    assert!(xmldb::tjfast(&doc, &idx, &twig).matches.is_empty());
}

#[test]
fn huge_dictionary_ids_stay_consistent() {
    let mut dict = Dict::new();
    for i in 0..100_000i64 {
        dict.int(i);
    }
    let id = dict.int(54_321);
    assert_eq!(dict.decode(id), &Value::Int(54_321));
    assert_eq!(dict.len(), 100_000);
}
