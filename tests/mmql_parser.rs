//! MMQL parser robustness: every malformed input returns `Err` (never
//! panics), and the programmatic `QueryBuilder` round-trips with
//! `parse_query` onto the same `MultiModelQuery`.

use relational::Value;
use xjoin_core::{parse_query, CoreError, QueryBuilder, Term};

/// Malformed atoms: bad names, missing or stray delimiters, empty/bad
/// terms. All must be rejected with an error, not a panic.
#[test]
fn malformed_atoms_error() {
    for src in [
        "R(a",              // unterminated atom
        "R a)",             // missing opening paren
        "R()",              // atom binds no terms
        "R(,)",             // empty terms
        "R(a,)",            // trailing empty term
        "R(a b)",           // space-separated terms
        "bad name(a)",      // space in relation name
        "R(a-b)",           // bad variable name
        "R((a))",           // nested parens
        "(a)",              // no relation name
        "R(\"unterminated", // unterminated string constant
        "R(9x)",            // bad numeric constant
        "R(a), , S(b)",     // empty atom between commas
    ] {
        let result = parse_query(src);
        assert!(result.is_err(), "`{src}` should be rejected: {result:?}");
    }
}

/// Unbalanced parentheses / brackets at every nesting position.
#[test]
fn unbalanced_parentheses_error() {
    for src in [
        "Q(a :- R(a)",
        "Q(a)) :- R(a)",
        "R(a))",
        "//a[/b",
        "//a[/b]]",
        "//a[[/b]",
        "R(a), //x[",
    ] {
        let result = parse_query(src);
        assert!(result.is_err(), "`{src}` should be rejected: {result:?}");
    }
}

/// Bad twig expressions are surfaced as twig errors, not panics.
#[test]
fn bad_twig_expressions_error() {
    for src in [
        "//",                   // no tag
        "/",                    // no tag
        "//a//",                // trailing axis
        "//a[/b][",             // unclosed predicate
        "//a$",                 // empty variable rename
        "//a/b$x, //c$x, R(x)", // fine syntactically? duplicate var within one twig only
    ] {
        // The last case is actually valid MMQL (vars are per-twig); only
        // assert no panic for it.
        let _ = parse_query(src);
    }
    assert!(parse_query("//").is_err());
    assert!(parse_query("/").is_err());
    assert!(parse_query("//a//").is_err());
    assert!(parse_query("//a[/b][").is_err());
    // Duplicate variable *within one twig* is a twig error.
    assert!(matches!(
        parse_query("//a/b/a"),
        Err(CoreError::Twig(_)) | Err(CoreError::BadOrder(_))
    ));
}

/// Empty heads and empty bodies error.
#[test]
fn empty_heads_and_bodies_error() {
    for src in [
        "",
        "   ",
        ":- R(a)",      // empty head shape
        "Q() :- R(a)",  // head binds no terms
        "Q(a) :- ",     // empty body
        "Q(a) :-",      // empty body, no space
        "Q(3) :- R(a)", // constant in head
    ] {
        let result = parse_query(src);
        assert!(result.is_err(), "`{src}` should be rejected: {result:?}");
    }
}

/// The builder and the parser construct the *same* query value.
#[test]
fn builder_round_trips_with_parse_query() {
    let parsed =
        parse_query("Q(who, price) :- orders(oid, who), ratings(oid, 5), //line[/oid][/price]")
            .unwrap();
    let built = QueryBuilder::new()
        .relation_as("orders", &["oid", "who"])
        .relation_terms(
            "ratings",
            vec![Term::Var("oid".into()), Term::Const(Value::Int(5))],
        )
        .twig("//line[/oid][/price]")
        .output(&["who", "price"])
        .build()
        .unwrap();
    assert_eq!(parsed, built.query);
}

/// Headless queries round-trip too (output = None), and string constants /
/// repeated variables survive both construction paths.
#[test]
fn headless_and_constant_round_trip() {
    let parsed = parse_query(r#"E(n, n), people(n, "new york"), //g/n"#).unwrap();
    let built = QueryBuilder::new()
        .relation_terms("E", vec![Term::Var("n".into()), Term::Var("n".into())])
        .relation_terms(
            "people",
            vec![Term::Var("n".into()), Term::Const(Value::str("new york"))],
        )
        .twig("//g/n")
        .build()
        .unwrap();
    assert_eq!(parsed, built.query);
    assert!(parsed.output.is_none());
}

/// `QueryBuilder::mmql` is exactly `parse_query` plus default options.
#[test]
fn mmql_builder_equals_parse_query() {
    let text = "Q(x) :- S(x, y), //r//x";
    let via_builder = QueryBuilder::mmql(text).unwrap().build().unwrap();
    let via_parser = parse_query(text).unwrap();
    assert_eq!(via_builder.query, via_parser);
}
