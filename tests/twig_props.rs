//! Property-based tests of the XML substrate: TwigStack vs the navigational
//! matcher, structural joins vs naive pairing, and the paper's transform —
//! all on arbitrary random trees.

use proptest::prelude::*;
use relational::{Dict, ValueId};
use xmldb::structural::{naive_structural_join, stack_tree_join};
use xmldb::{holistic, matcher, transform, Axis, TagIndex, TwigPattern, XmlDocument};

/// Strategy: a random tree described as (parent-pick, tag-pick, value) per
/// node; parents are chosen among already-created nodes.
fn tree_strategy(max_nodes: usize) -> impl Strategy<Value = Vec<(usize, usize, i64)>> {
    prop::collection::vec((0usize..usize::MAX, 0usize..4, 0i64..6), 1..max_nodes)
}

fn build_tree(spec: &[(usize, usize, i64)], dict: &mut Dict) -> XmlDocument {
    let tags = ["r", "s", "t", "u"];
    let mut b = XmlDocument::builder();
    let mut ids = Vec::with_capacity(spec.len() + 1);
    ids.push(b.add_node(None, "r", Some(0i64.into())));
    for &(praw, tag, value) in spec {
        let parent = ids[praw % ids.len()];
        ids.push(b.add_node(Some(parent), tags[tag % tags.len()], Some(value.into())));
    }
    b.build(dict)
}

const TWIG_EXPRS: &[&str] = &[
    "//r//s",
    "//r/s",
    "//s//t",
    "//s/t",
    "//r[/s]//t",
    "//r[//s]/t",
    "//s$s1//s$s2",
    "//r[/s][/t]//u",
    "//s[/t$t1][//t$t2]",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn twigstack_equals_navigational(spec in tree_strategy(40), twig_idx in 0usize..TWIG_EXPRS.len()) {
        let mut dict = Dict::new();
        let doc = build_tree(&spec, &mut dict);
        let index = TagIndex::build(&doc);
        let twig = TwigPattern::parse(TWIG_EXPRS[twig_idx]).unwrap();
        let holistic = holistic::twig_stack(&doc, &index, &twig);
        let naive = matcher::all_matches(&doc, &index, &twig);
        let mut naive_rows: Vec<Vec<ValueId>> = naive
            .iter()
            .map(|m| m.iter().map(|n| ValueId(n.0)).collect())
            .collect();
        naive_rows.sort();
        naive_rows.dedup();
        let mut holo_rows: Vec<Vec<ValueId>> = holistic.matches.rows().map(|r| r.to_vec()).collect();
        holo_rows.sort();
        prop_assert_eq!(holo_rows, naive_rows, "twig {}", TWIG_EXPRS[twig_idx]);
    }

    #[test]
    fn stack_tree_equals_naive_join(spec in tree_strategy(40), axis_pick in any::<bool>()) {
        let mut dict = Dict::new();
        let doc = build_tree(&spec, &mut dict);
        let index = TagIndex::build(&doc);
        let axis = if axis_pick { Axis::Descendant } else { Axis::Child };
        let ss = index.nodes_named(&doc, "s").to_vec();
        let ts = index.nodes_named(&doc, "t").to_vec();
        let mut fast = stack_tree_join(&doc, &ss, &ts, axis);
        let mut naive = naive_structural_join(&doc, &ss, &ts, axis);
        fast.sort();
        naive.sort();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn path_relations_contain_exactly_matching_chains(spec in tree_strategy(40)) {
        let mut dict = Dict::new();
        let doc = build_tree(&spec, &mut dict);
        let index = TagIndex::build(&doc);
        // Pure P-C twig: one path relation, equal to the value tuples of the
        // navigational matches.
        let twig = TwigPattern::parse("//s/t").unwrap();
        let dec = transform::decompose(&twig);
        prop_assert_eq!(dec.paths.len(), 1);
        let rel = transform::path_relation(&doc, &index, &twig, &dec.paths[0]);
        let mut expect: Vec<Vec<ValueId>> = matcher::all_matches(&doc, &index, &twig)
            .iter()
            .map(|m| m.iter().map(|&n| doc.node(n).value).collect())
            .collect();
        expect.sort();
        expect.dedup();
        let mut got: Vec<Vec<ValueId>> = rel.rows().map(|r| r.to_vec()).collect();
        got.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn decomposition_covers_each_var_at_least_once(twig_idx in 0usize..TWIG_EXPRS.len()) {
        let twig = TwigPattern::parse(TWIG_EXPRS[twig_idx]).unwrap();
        let dec = transform::decompose(&twig);
        let mut covered: Vec<usize> = dec.paths.iter().flat_map(|p| p.nodes.clone()).collect();
        covered.sort_unstable();
        covered.dedup();
        prop_assert_eq!(covered, (0..twig.len()).collect::<Vec<_>>());
        // Sub-twigs partition the nodes.
        let mut in_subtwigs: Vec<usize> =
            dec.sub_twigs.iter().flat_map(|s| s.nodes.clone()).collect();
        in_subtwigs.sort_unstable();
        prop_assert_eq!(in_subtwigs, (0..twig.len()).collect::<Vec<_>>());
    }

    #[test]
    fn region_labels_agree_with_parent_pointers(spec in tree_strategy(50)) {
        let mut dict = Dict::new();
        let doc = build_tree(&spec, &mut dict);
        for id in doc.node_ids() {
            if let Some(p) = doc.node(id).parent {
                prop_assert!(doc.is_parent(p, id));
                prop_assert!(doc.is_ancestor(p, id));
            }
            for &c in &doc.node(id).children {
                prop_assert_eq!(doc.node(c).parent, Some(id));
            }
        }
    }

    #[test]
    fn dewey_labels_order_like_regions(spec in tree_strategy(40)) {
        let mut dict = Dict::new();
        let doc = build_tree(&spec, &mut dict);
        // Dewey lexicographic order == document (start) order.
        let mut ids: Vec<_> = doc.node_ids().collect();
        ids.sort_by_key(|&n| doc.dewey(n));
        for w in ids.windows(2) {
            prop_assert!(doc.node(w[0]).start < doc.node(w[1]).start);
        }
    }
}

#[test]
fn twigstack_path_solution_counts_never_below_matches_per_path() {
    // Path solutions are per root-leaf path; a full match contributes one
    // solution to each path, so solutions >= matches for single-path twigs.
    let mut dict = Dict::new();
    let spec: Vec<(usize, usize, i64)> = (0..30)
        .map(|i| (i * 7 + 3, i * 5 + 1, (i % 4) as i64))
        .collect();
    let doc = build_tree(&spec, &mut dict);
    let index = TagIndex::build(&doc);
    let twig = TwigPattern::parse("//r//s/t").unwrap();
    let res = holistic::twig_stack(&doc, &index, &twig);
    assert!(res.path_solutions >= res.matches.len());
}
