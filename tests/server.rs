//! Loopback end-to-end tests of the `xjoin-serve` networked front end:
//! wire results must equal in-process execution for every engine kind,
//! prepare→exec must reuse the server-side statement cache, deadlines and
//! row budgets must come back as structured replies, malformed frames must
//! not take the server down, admission must accept/queue/reject at forced
//! AGM thresholds, and graceful shutdown must drain in-flight queries.
//!
//! The worker pool size follows `XJOIN_TEST_THREADS` when set (the CI's
//! forced multi-thread pass), so the whole suite runs in both serial and
//! parallel service configurations.

use bench::workloads::{bookstore, decoded, graph_instance};
use relational::Value;
use std::sync::Arc;
use xjoin_core::{parse_query, EngineKind, ExecOptions};
use xjoin_serve::{
    AdmissionPolicy, Client, ErrorCode, RequestOpts, Response, Server, ServerConfig, ServerHandle,
};
use xjoin_store::VersionedStore;

const BOOKSTORE_QUERY: &str =
    "Q(userID, ISBN, price) :- R(orderID, userID), //invoices/orderLine[/orderID][/ISBN][/price]";

/// The 4-clique over the symmetric edge relation: six atoms, ρ* = 2, so the
/// AGM bound is |E|² — the canonical expensive query.
const CLIQUE4_QUERY: &str = "Q(a, b, c, d) :- E(a, b), E(a, c), E(a, d), E(b, c), E(b, d), E(c, d)";

/// Service worker count: honours the CI's forced multi-thread pass.
fn workers() -> usize {
    std::env::var("XJOIN_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

fn bookstore_server(admission: AdmissionPolicy) -> (Arc<VersionedStore>, ServerHandle) {
    let inst = bookstore();
    let store = Arc::new(VersionedStore::new(inst.db, inst.doc));
    let handle = Server::spawn(
        Arc::clone(&store),
        ServerConfig {
            workers: workers(),
            admission,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    (store, handle)
}

fn graph_server(
    nodes: usize,
    edges: usize,
    config: ServerConfig,
) -> (Arc<VersionedStore>, ServerHandle) {
    let inst = graph_instance(nodes, edges, 42);
    let store = Arc::new(VersionedStore::new(inst.db, inst.doc));
    let handle = Server::spawn(Arc::clone(&store), config).expect("bind loopback");
    (store, handle)
}

/// Sorted multiset signature of decoded rows.
fn multiset(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

#[test]
fn wire_results_equal_in_process_for_every_engine_kind() {
    let (store, handle) = bookstore_server(AdmissionPolicy::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let query = parse_query(BOOKSTORE_QUERY).unwrap();
    let snap = store.snapshot();
    for kind in EngineKind::all() {
        let opts = ExecOptions::for_engine(kind);
        let expected = {
            let ctx = snap.ctx();
            let out = xjoin_core::execute(&ctx, &query, &opts)
                .unwrap_or_else(|e| panic!("in-process {kind} failed: {e}"));
            multiset(decoded(snap.db(), &out.results))
        };
        let resp = client
            .query(BOOKSTORE_QUERY, &opts, RequestOpts::default())
            .unwrap();
        let rows = match resp {
            Response::Rows(r) => r,
            other => panic!("wire {kind} failed: {other:?}"),
        };
        assert!(!rows.truncated);
        assert_eq!(
            multiset(rows.rows),
            expected,
            "wire results diverged from in-process for engine {kind}"
        );
    }
    handle.shutdown();
}

#[test]
fn prepare_exec_round_trip_hits_the_statement_cache() {
    let (store, handle) = bookstore_server(AdmissionPolicy::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let opts = ExecOptions::default();
    let (stmt_id, log2_bound) = match client.prepare(BOOKSTORE_QUERY, &opts).unwrap() {
        Response::Prepared {
            stmt_id,
            log2_bound,
            cached,
        } => {
            assert!(!cached, "first prepare cannot be cached");
            (stmt_id, log2_bound)
        }
        other => panic!("prepare failed: {other:?}"),
    };
    assert!(log2_bound.is_finite() && log2_bound > 0.0);

    // Same text + options from a *second* connection: same statement.
    let mut client2 = Client::connect(handle.addr()).unwrap();
    match client2.prepare(BOOKSTORE_QUERY, &opts).unwrap() {
        Response::Prepared {
            stmt_id: id2,
            cached,
            ..
        } => {
            assert!(cached, "second prepare must hit the cache");
            assert_eq!(id2, stmt_id);
        }
        other => panic!("prepare failed: {other:?}"),
    }
    // Different options → different statement.
    match client2
        .prepare(BOOKSTORE_QUERY, &ExecOptions::for_engine(EngineKind::Lftj))
        .unwrap()
    {
        Response::Prepared {
            stmt_id: id3,
            cached,
            ..
        } => {
            assert!(!cached);
            assert_ne!(id3, stmt_id);
        }
        other => panic!("prepare failed: {other:?}"),
    }

    let expected = {
        let snap = store.snapshot();
        let ctx = snap.ctx();
        let out = xjoin_core::execute(&ctx, &parse_query(BOOKSTORE_QUERY).unwrap(), &opts).unwrap();
        multiset(decoded(snap.db(), &out.results))
    };
    for _ in 0..3 {
        let rows = match client.exec(stmt_id, RequestOpts::default()).unwrap() {
            Response::Rows(r) => r,
            other => panic!("exec failed: {other:?}"),
        };
        assert_eq!(multiset(rows.rows), expected);
    }
    handle.shutdown();
}

#[test]
fn row_budget_truncates_and_sets_the_flag() {
    let (_store, handle) = bookstore_server(AdmissionPolicy::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let stmt_id = match client
        .prepare(BOOKSTORE_QUERY, &ExecOptions::default())
        .unwrap()
    {
        Response::Prepared { stmt_id, .. } => stmt_id,
        other => panic!("prepare failed: {other:?}"),
    };
    let full = match client.exec(stmt_id, RequestOpts::default()).unwrap() {
        Response::Rows(r) => r,
        other => panic!("exec failed: {other:?}"),
    };
    assert!(full.rows.len() > 1);
    assert!(!full.truncated);
    let budgeted = match client
        .exec(
            stmt_id,
            RequestOpts {
                row_budget: 1,
                ..Default::default()
            },
        )
        .unwrap()
    {
        Response::Rows(r) => r,
        other => panic!("budgeted exec failed: {other:?}"),
    };
    assert_eq!(budgeted.rows.len(), 1);
    assert!(budgeted.truncated);
    // Every budgeted row is one of the full result's rows.
    for row in &budgeted.rows {
        assert!(full.rows.contains(row));
    }
    handle.shutdown();
}

#[test]
fn expired_deadline_returns_a_structured_deadline_error() {
    // A 4-clique over a few thousand edges cannot finish in 1 ms; the
    // deadline fires at dequeue, after plan assembly, or mid-drain — any of
    // which must surface as ErrorCode::Deadline, not a hang or a generic
    // failure.
    let (_store, handle) = graph_server(
        200,
        3000,
        ServerConfig {
            workers: workers(),
            ..Default::default()
        },
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client
        .query(
            CLIQUE4_QUERY,
            &ExecOptions::default(),
            RequestOpts {
                deadline_ms: 1,
                ..Default::default()
            },
        )
        .unwrap();
    match resp {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Deadline, "{message}");
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected deadline error, got {other:?}"),
    }
    // The connection survives a deadline reply: cheap follow-up works.
    let resp = client
        .query(
            "Q(a, b) :- E(a, b)",
            &ExecOptions {
                limit: Some(5),
                ..Default::default()
            },
            RequestOpts::default(),
        )
        .unwrap();
    assert!(matches!(resp, Response::Rows(_)), "{resp:?}");
    handle.shutdown();
}

#[test]
fn malformed_and_truncated_frames_get_structured_errors() {
    let (_store, handle) = bookstore_server(AdmissionPolicy::default());

    // Bad magic: the server replies Malformed and drops the connection.
    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.send_raw(b"ZZ\x01\x01\x00\x00\x00\x00").unwrap();
    match reply {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected malformed error, got {other:?}"),
    }

    // Wrong protocol version.
    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.send_raw(b"XJ\x09\x01\x00\x00\x00\x00").unwrap();
    match reply {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected malformed error, got {other:?}"),
    }

    // Oversized announced payload (1 GiB).
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut frame = b"XJ\x01\x01".to_vec();
    frame.extend_from_slice(&(1u32 << 30).to_be_bytes());
    match client.send_raw(&frame).unwrap() {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected malformed error, got {other:?}"),
    }

    // Truncated frame: 7 of 8 header bytes, then connection close. The
    // server sees EOF mid-frame and must drop the desynced connection
    // without crashing (no reply is owed, so use a raw socket — a `Client`
    // would block waiting for one).
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(b"XJ\x01\x01\x00\x00\x00").unwrap();
        raw.flush().unwrap();
    }
    // Same for a payload shorter than its announced length.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(b"XJ\x01\x01\x00\x00\x00\x10hello").unwrap();
        raw.flush().unwrap();
    }

    // A QUERY whose payload is garbage (undecodable options).
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut frame = b"XJ\x01\x01".to_vec();
    frame.extend_from_slice(&2u32.to_be_bytes());
    frame.extend_from_slice(&[0xFF, 0xFF]);
    match client.send_raw(&frame).unwrap() {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected malformed error, got {other:?}"),
    }

    // An unparsable MMQL text gets a Parse error, and the connection lives.
    let mut client = Client::connect(handle.addr()).unwrap();
    match client
        .query(
            "this is not MMQL",
            &ExecOptions::default(),
            RequestOpts::default(),
        )
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Parse),
        other => panic!("expected parse error, got {other:?}"),
    }
    let ok = client
        .query(
            BOOKSTORE_QUERY,
            &ExecOptions::default(),
            RequestOpts::default(),
        )
        .unwrap();
    assert!(matches!(ok, Response::Rows(_)));
    handle.shutdown();
}

#[test]
fn exec_of_unknown_or_evicted_statement_errors() {
    let inst = bookstore();
    let store = Arc::new(VersionedStore::new(inst.db, inst.doc));
    let handle = Server::spawn(
        Arc::clone(&store),
        ServerConfig {
            workers: workers(),
            stmt_cache_capacity: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.exec(999, RequestOpts::default()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownStmt),
        other => panic!("expected unknown-stmt error, got {other:?}"),
    }
    // Capacity 1: preparing a second statement evicts the first.
    let first = match client
        .prepare(BOOKSTORE_QUERY, &ExecOptions::default())
        .unwrap()
    {
        Response::Prepared { stmt_id, .. } => stmt_id,
        other => panic!("prepare failed: {other:?}"),
    };
    match client
        .prepare(BOOKSTORE_QUERY, &ExecOptions::for_engine(EngineKind::Lftj))
        .unwrap()
    {
        Response::Prepared { .. } => {}
        other => panic!("prepare failed: {other:?}"),
    }
    match client.exec(first, RequestOpts::default()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownStmt),
        other => panic!("expected evicted-stmt error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn admission_rejects_expensive_queries_at_forced_thresholds() {
    // Thresholds forced so the bookstore join (log2 bound ≈ 3.6) counts as
    // expensive and does not fit the in-flight budget → OVERLOAD.
    let (_store, handle) = bookstore_server(AdmissionPolicy {
        enabled: true,
        cheap_log2_bound: 0.5,
        max_inflight_cost: 1.0,
        max_queue_depth: 64,
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    match client
        .query(
            BOOKSTORE_QUERY,
            &ExecOptions::default(),
            RequestOpts::default(),
        )
        .unwrap()
    {
        Response::Overload {
            log2_bound,
            inflight_cost,
            message,
            ..
        } => {
            assert!(log2_bound > 0.5, "{log2_bound}");
            assert_eq!(inflight_cost, 0.0);
            assert!(message.contains("budget"), "{message}");
        }
        other => panic!("expected overload, got {other:?}"),
    }
    handle.shutdown();

    // Same query, generous thresholds → accepted.
    let (_store, handle) = bookstore_server(AdmissionPolicy {
        enabled: true,
        cheap_log2_bound: 0.5,
        max_inflight_cost: 1000.0,
        max_queue_depth: 64,
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(matches!(
        client
            .query(
                BOOKSTORE_QUERY,
                &ExecOptions::default(),
                RequestOpts::default()
            )
            .unwrap(),
        Response::Rows(_)
    ));
    handle.shutdown();

    // Queue-depth backstop at zero rejects even the cheapest query.
    let (_store, handle) = bookstore_server(AdmissionPolicy {
        enabled: true,
        cheap_log2_bound: 1000.0,
        max_inflight_cost: 1000.0,
        max_queue_depth: 0,
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    match client
        .query(
            BOOKSTORE_QUERY,
            &ExecOptions::default(),
            RequestOpts::default(),
        )
        .unwrap()
    {
        Response::Overload { message, .. } => {
            assert!(message.contains("queue depth"), "{message}")
        }
        other => panic!("expected overload, got {other:?}"),
    }
    // Disabled admission accepts everything regardless.
    handle.shutdown();
    let (_store, handle) = bookstore_server(AdmissionPolicy::disabled());
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(matches!(
        client
            .query(
                BOOKSTORE_QUERY,
                &ExecOptions::default(),
                RequestOpts::default()
            )
            .unwrap(),
        Response::Rows(_)
    ));
    handle.shutdown();
}

#[test]
fn stats_frame_serves_text_and_json_metrics() {
    let (_store, handle) = bookstore_server(AdmissionPolicy::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    // Generate some traffic first so the registries have content.
    let _ = client
        .query(
            BOOKSTORE_QUERY,
            &ExecOptions::default(),
            RequestOpts::default(),
        )
        .unwrap();
    match client.stats(0).unwrap() {
        Response::Stats { format, body } => {
            assert_eq!(format, 0);
            assert!(body.contains("xjoin.server.requests"), "{body}");
        }
        other => panic!("stats failed: {other:?}"),
    }
    match client.stats(1).unwrap() {
        Response::Stats { format, body } => {
            assert_eq!(format, 1);
            assert!(body.trim_start().starts_with('{'), "{body}");
            assert!(body.contains("\"counters\""), "{body}");
            assert!(body.contains("xjoin.server.requests"), "{body}");
        }
        other => panic!("stats failed: {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    // Connection A submits a query that takes real work; connection B
    // requests shutdown while A is (very likely) still executing. A must
    // still receive its rows — shutdown refuses *new* work but drains
    // admitted work.
    let (_store, handle) = graph_server(
        60,
        500,
        ServerConfig {
            workers: workers(),
            ..Default::default()
        },
    );
    let addr = handle.addr();
    let slow = std::thread::spawn(move || {
        let mut a = Client::connect(addr).unwrap();
        a.query(
            "Q(a, b, c) :- E(a, b), E(a, c), E(b, c)",
            &ExecOptions::default(),
            RequestOpts::default(),
        )
        .unwrap()
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    let mut b = Client::connect(addr).unwrap();
    match b.shutdown().unwrap() {
        Response::Bye => {}
        other => panic!("expected BYE, got {other:?}"),
    }
    // The in-flight triangle query completes with rows, not an error.
    match slow.join().unwrap() {
        Response::Rows(rows) => assert!(!rows.columns.is_empty()),
        other => panic!("in-flight query was not drained: {other:?}"),
    }
    // join() returns once every serving thread exited.
    handle.join();

    // New connections are refused (or at least cannot get work done); a
    // failed connect means the listener is already gone — even better.
    if let Ok(mut c) = Client::connect(addr) {
        let r = c.query(
            BOOKSTORE_QUERY,
            &ExecOptions::default(),
            RequestOpts::default(),
        );
        assert!(
            !matches!(r, Ok(Response::Rows(_))),
            "post-shutdown query must not succeed"
        );
    }
}
