//! Property-based differential testing of the full multi-model stack:
//! XJoin (all option combinations) vs the per-model baseline (all engine
//! combinations) on proptest-generated databases, documents, and queries.

use proptest::prelude::*;
use relational::{Database, Schema, Value};
use xjoin_core::{
    baseline, parse_query, xjoin, BaselineConfig, DataContext, RelAlg, XJoinConfig, XmlAlg,
};
use xmldb::{TagIndex, XmlDocument};

#[derive(Debug, Clone)]
struct InstanceSpec {
    rows: Vec<(i64, i64)>,
    tree: Vec<(usize, usize, i64)>,
}

fn instance_strategy() -> impl Strategy<Value = InstanceSpec> {
    (
        prop::collection::vec((0i64..5, 0i64..5), 0..12),
        prop::collection::vec((0usize..usize::MAX, 0usize..3, 0i64..5), 0..25),
    )
        .prop_map(|(rows, tree)| InstanceSpec { rows, tree })
}

fn build(spec: &InstanceSpec) -> (Database, XmlDocument) {
    let mut db = Database::new();
    db.load(
        "S",
        Schema::of(&["x", "y"]),
        spec.rows
            .iter()
            .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)]),
    )
    .unwrap();
    let tags = ["r", "x", "y"];
    let mut dict = db.dict().clone();
    let mut b = XmlDocument::builder();
    let mut ids = vec![b.add_node(None, "r", Some(Value::Int(0)))];
    for &(praw, tag, value) in &spec.tree {
        let parent = ids[praw % ids.len()];
        ids.push(b.add_node(Some(parent), tags[tag % 3], Some(Value::Int(value))));
    }
    let doc = b.build(&mut dict);
    *db.dict_mut() = dict;
    (db, doc)
}

const QUERIES: &[&str] = &[
    "S(x, y), //r//x",
    "S(x, y), //r/x",
    "S(x, y), //r[/x]//y",
    "Q(x) :- S(x, y), //y$yy/x",
    "S(x, y), //x, //y$y2",
    "Q(x, y) :- S(x, y), S(y, z), //r//x",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_arbitrary_instances(
        spec in instance_strategy(),
        query_idx in 0usize..QUERIES.len(),
    ) {
        let (db, doc) = build(&spec);
        let index = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &index);
        let query = parse_query(QUERIES[query_idx]).unwrap();

        let reference = baseline(&ctx, &query, &BaselineConfig::default()).unwrap();

        for ad_filter in [false, true] {
            for partial_validation in [false, true] {
                let cfg = XJoinConfig { ad_filter, partial_validation, ..Default::default() };
                let out = xjoin(&ctx, &query, &cfg).unwrap();
                let aligned = reference.results.project(out.results.schema().attrs()).unwrap();
                prop_assert!(
                    out.results.set_eq(&aligned),
                    "query `{}` cfg ad={ad_filter} pv={partial_validation}: {} vs {}",
                    QUERIES[query_idx], out.results.len(), aligned.len()
                );
            }
        }
        for xml_alg in [XmlAlg::Navigational, XmlAlg::Tjfast] {
            let cfg = BaselineConfig { rel_alg: RelAlg::Lftj, xml_alg };
            let out = baseline(&ctx, &query, &cfg).unwrap();
            let aligned = reference.results.project(out.results.schema().attrs()).unwrap();
            prop_assert!(
                out.results.set_eq(&aligned),
                "query `{}` baseline {xml_alg:?}", QUERIES[query_idx]
            );
        }
    }

    #[test]
    fn output_projection_is_consistent(spec in instance_strategy()) {
        let (db, doc) = build(&spec);
        let index = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &index);
        let full = parse_query("S(x, y), //r//x").unwrap();
        let projected = parse_query("Q(y) :- S(x, y), //r//x").unwrap();
        let out_full = xjoin(&ctx, &full, &XJoinConfig::default()).unwrap();
        let out_proj = xjoin(&ctx, &projected, &XJoinConfig::default()).unwrap();
        let expect = out_full.results.project(&["y".into()]).unwrap();
        prop_assert!(out_proj.results.set_eq(&expect));
    }
}
