//! E6 — the paper's Figure 1, end to end through the public API.

use relational::{Database, Schema, Value};
use xjoin_core::{baseline, xjoin, BaselineConfig, DataContext, MultiModelQuery, XJoinConfig};
use xmldb::{parse_xml, TagIndex};

const INVOICES: &str = "<invoices>\
    <orderLine><orderID>10963</orderID><ISBN>978-3-16-1</ISBN>\
    <price>30</price><discount>0.1</discount></orderLine>\
    <orderLine><orderID>20134</orderID><ISBN>634-3-12-2</ISBN>\
    <price>20</price><discount>0.3</discount></orderLine>\
    </invoices>";

fn setup() -> (Database, xmldb::XmlDocument) {
    let mut db = Database::new();
    db.load(
        "R",
        Schema::of(&["orderID", "userID"]),
        vec![
            vec![Value::Int(10963), Value::str("jack")],
            vec![Value::Int(20134), Value::str("tom")],
            vec![Value::Int(35768), Value::str("bob")],
        ],
    )
    .unwrap();
    let mut dict = db.dict().clone();
    let doc = parse_xml(INVOICES, &mut dict).unwrap();
    *db.dict_mut() = dict;
    (db, doc)
}

#[test]
fn figure_1_result_table() {
    let (db, doc) = setup();
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["R"], &["//invoices/orderLine[/orderID][/ISBN][/price]"])
        .unwrap()
        .with_output(&["userID", "ISBN", "price"]);
    let out = xjoin(&ctx, &query, &XJoinConfig::default()).unwrap();
    let rows = db.decode(&out.results);
    assert_eq!(rows.len(), 2);
    assert!(rows.contains(&vec![
        Value::str("jack"),
        Value::str("978-3-16-1"),
        Value::Int(30)
    ]));
    assert!(rows.contains(&vec![
        Value::str("tom"),
        Value::str("634-3-12-2"),
        Value::Int(20)
    ]));
    // bob has no invoice: must not appear.
    assert!(!rows.iter().any(|r| r[0] == Value::str("bob")));
}

#[test]
fn figure_1_baseline_agrees() {
    let (db, doc) = setup();
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["R"], &["//invoices/orderLine[/orderID][/ISBN][/price]"])
        .unwrap()
        .with_output(&["userID", "ISBN", "price"]);
    let x = xjoin(&ctx, &query, &XJoinConfig::default()).unwrap();
    let b = baseline(&ctx, &query, &BaselineConfig::default()).unwrap();
    assert!(x.results.set_eq(&b.results));
}

#[test]
fn figure_1_discount_attribute_is_queryable_too() {
    let (db, doc) = setup();
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["R"], &["//orderLine[/orderID][/discount]"])
        .unwrap()
        .with_output(&["userID", "discount"]);
    let out = xjoin(&ctx, &query, &XJoinConfig::default()).unwrap();
    let rows = db.decode(&out.results);
    assert!(rows.contains(&vec![Value::str("jack"), Value::str("0.1")]));
    assert!(rows.contains(&vec![Value::str("tom"), Value::str("0.3")]));
}

#[test]
fn unmatched_relational_rows_are_filtered_not_erred() {
    let (db, doc) = setup();
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    // Twig over a tag that exists but with one joinable value.
    let query = MultiModelQuery::new(&["R"], &["//orderLine/orderID"])
        .unwrap()
        .with_output(&["userID"]);
    let out = xjoin(&ctx, &query, &XJoinConfig::default()).unwrap();
    assert_eq!(out.results.len(), 2);
}
