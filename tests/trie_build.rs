//! Differential proptest suite for the columnar [`TrieBuilder`]: every sort
//! path (comparison, radix, pre-sorted) must produce a trie identical — level
//! arrays, node counts, byte estimates — to the original row-materialising
//! builder, kept as [`Trie::build_reference`], over random relations,
//! attribute orders, and duplicate densities.

use proptest::prelude::*;
use relational::{Attr, Relation, Schema, SortPath, Trie, TrieBuilder, ValueId};

/// Builds a ternary relation from raw value triples.
fn ternary(rows: &[(u32, u32, u32)]) -> Relation {
    let mut r = Relation::new(Schema::of(&["a", "b", "c"]));
    for &(x, y, z) in rows {
        r.push(&[ValueId(x), ValueId(y), ValueId(z)]).unwrap();
    }
    r
}

/// The six attribute orders of a ternary schema.
fn order_perm(perm: usize) -> Vec<Attr> {
    const ORDERS: [[&str; 3]; 6] = [
        ["a", "b", "c"],
        ["a", "c", "b"],
        ["b", "a", "c"],
        ["b", "c", "a"],
        ["c", "a", "b"],
        ["c", "b", "a"],
    ];
    ORDERS[perm % 6].iter().map(|&n| Attr::new(n)).collect()
}

/// Asserts the builder's output is indistinguishable from the reference —
/// structurally equal levels plus agreeing size metrics — and returns the
/// sort path that engaged.
fn assert_differential(rel: &Relation, order: &[Attr]) -> SortPath {
    let mut builder = TrieBuilder::new();
    let fast = builder.build(rel, order).expect("builder accepts order");
    let reference = Trie::build_reference(rel, order).expect("reference accepts order");
    assert_eq!(fast, reference, "trie levels diverged");
    assert_eq!(fast.num_tuples(), reference.num_tuples());
    assert_eq!(fast.node_count(), reference.node_count());
    assert_eq!(fast.estimated_bytes(), reference.estimated_bytes());
    assert!(fast.to_relation().set_eq(&reference.to_relation()));
    let stats = builder.last_stats().expect("stats recorded").clone();
    assert_eq!(stats.rows_in, rel.len());
    assert_eq!(stats.tuples, fast.num_tuples());
    stats.path
}

proptest! {
    // Full case count natively; reduced under Miri, which interprets every
    // build at ~1000x native cost (the CI miri job runs this suite).
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 8 } else { 64 }))]

    // Duplicate-heavy small-domain relations under every attribute order:
    // exercises grouping, dedup, and (for n >= 64) the radix path.
    #[test]
    fn builder_matches_reference_on_dense_relations(
        rows in prop::collection::vec((0u32..6, 0u32..6, 0u32..6), 0..120),
        perm in 0usize..6,
    ) {
        let rel = ternary(&rows);
        let path = assert_differential(&rel, &order_perm(perm));
        // A dense domain (max id < 1024) never takes the comparison sort
        // once the radix row threshold is met.
        if rel.len() >= 64 {
            prop_assert_ne!(path, SortPath::Comparison);
        }
    }

    // Sparse domains below the radix row threshold: the comparison sort must
    // engage (unless the random input happens to arrive sorted) and still
    // agree with the reference.
    #[test]
    fn builder_matches_reference_on_sparse_relations(
        rows in prop::collection::vec((0u32..2000, 0u32..50_000, 0u32..9), 1..48),
        perm in 0usize..6,
    ) {
        let rel = ternary(&rows);
        let path = assert_differential(&rel, &order_perm(perm));
        prop_assert_ne!(path, SortPath::Radix);
    }

    // Pre-sorted input (the schema order after sort_dedup) must skip the
    // sort entirely; permuted orders on the same relation must not.
    #[test]
    fn presorted_input_skips_the_sort(
        rows in prop::collection::vec((0u32..10, 0u32..10, 0u32..10), 1..80),
    ) {
        let mut rel = ternary(&rows);
        rel.sort_dedup();
        let path = assert_differential(&rel, &order_perm(0));
        prop_assert_eq!(path, SortPath::AlreadySorted);
    }

    // One builder reused across differently-shaped builds (the registry-fill
    // pattern) stays correct build after build.
    #[test]
    fn scratch_reuse_is_stateless_across_builds(
        rows1 in prop::collection::vec((0u32..5, 0u32..5, 0u32..5), 0..90),
        rows2 in prop::collection::vec((0u32..400, 0u32..400, 0u32..400), 0..40),
        perm in 0usize..6,
    ) {
        let (r1, r2) = (ternary(&rows1), ternary(&rows2));
        let order = order_perm(perm);
        let mut shared = TrieBuilder::new();
        for rel in [&r1, &r2, &r1] {
            let got = shared.build(rel, &order).unwrap();
            prop_assert_eq!(got, Trie::build_reference(rel, &order).unwrap());
        }
    }

    // Binary and unary arities (different column strides) round-trip too.
    #[test]
    fn builder_matches_reference_on_lower_arities(
        pairs in prop::collection::vec((0u32..12, 0u32..12), 0..70),
        singles in prop::collection::vec(0u32..2000, 0..70),
        flip in any::<bool>(),
    ) {
        let mut r2 = Relation::new(Schema::of(&["a", "b"]));
        for &(x, y) in &pairs {
            r2.push(&[ValueId(x), ValueId(y)]).unwrap();
        }
        let order: Vec<Attr> = if flip {
            vec!["b".into(), "a".into()]
        } else {
            vec!["a".into(), "b".into()]
        };
        assert_differential(&r2, &order);

        let mut r1 = Relation::new(Schema::of(&["x"]));
        for &x in &singles {
            r1.push(&[ValueId(x)]).unwrap();
        }
        assert_differential(&r1, &["x".into()]);
    }
}

#[test]
fn radix_path_engages_on_dense_unsorted_input() {
    // 256 rows over an 8-value domain, descending so the pre-check fails:
    // exactly the regime the radix fast path exists for.
    let rows: Vec<(u32, u32, u32)> = (0..256u32)
        .rev()
        .map(|i| (i % 8, (i / 8) % 8, (i * 5) % 8))
        .collect();
    let rel = ternary(&rows);
    for perm in 0..6 {
        let path = assert_differential(&rel, &order_perm(perm));
        assert_eq!(path, SortPath::Radix, "order perm {perm}");
    }
}

#[test]
fn nullary_and_empty_relations_agree_with_reference() {
    let empty = Relation::new(Schema::of(&["a", "b", "c"]));
    assert_differential(&empty, &order_perm(3));

    let mut nullary = Relation::new(Schema::new(Vec::<&str>::new()).unwrap());
    assert_differential(&nullary, &[]);
    nullary.push(&[]).unwrap();
    assert_differential(&nullary, &[]);
}
