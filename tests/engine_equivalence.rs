//! Randomized cross-engine equivalence: XJoin (all configurations) and the
//! baseline (all engine choices) must return identical result sets on
//! arbitrary instances — the multi-model analogue of differential testing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relational::{Database, Schema, Value};
use xjoin_core::{
    baseline, xjoin, BaselineConfig, DataContext, MultiModelQuery, OrderStrategy, RelAlg,
    XJoinConfig, XmlAlg,
};
use xmldb::{TagIndex, XmlDocument};

/// Random instance: a table S(x, y) plus a random tree over tags {r, x, y}
/// whose node values share the table's domain.
fn random_instance(seed: u64, rows: usize, nodes: usize, domain: i64) -> (Database, XmlDocument) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let rows: Vec<Vec<Value>> = (0..rows)
        .map(|_| {
            vec![
                Value::Int(rng.gen_range(0..domain)),
                Value::Int(rng.gen_range(0..domain)),
            ]
        })
        .collect();
    db.load("S", Schema::of(&["x", "y"]), rows).unwrap();

    let mut dict = db.dict().clone();
    let mut b = XmlDocument::builder();
    let tags = ["r", "x", "y"];
    let root = b.add_node(None, "r", Some(Value::Int(rng.gen_range(0..domain))));
    let mut ids = vec![root];
    for _ in 1..nodes {
        let parent = ids[rng.gen_range(0..ids.len())];
        let tag = tags[rng.gen_range(0..tags.len())];
        let id = b.add_node(
            Some(parent),
            tag,
            Some(Value::Int(rng.gen_range(0..domain))),
        );
        ids.push(id);
    }
    let doc = b.build(&mut dict);
    *db.dict_mut() = dict;
    (db, doc)
}

const TWIGS: &[&str] = &[
    "//r//x",
    "//r/x",
    "//x$xv//y$yv",
    "//r[/x$xv]//y$yv",
    "//r[//x$xv][//y$yv]",
];

/// Rewrites twig variables so the twig's x-node joins the table's x column.
fn query_for(twig: &str) -> MultiModelQuery {
    // Twigs above use $xv/$yv aliases except the first two; map accordingly.

    match twig {
        "//r//x" | "//r/x" => MultiModelQuery::new(&["S"], &[twig]).unwrap(),
        _ => {
            // Join on x via the alias: rename S's columns to match.
            MultiModelQuery::new(&["Sxy"], &[twig]).unwrap()
        }
    }
}

#[test]
fn xjoin_configs_agree_with_baseline_on_random_instances() {
    for seed in 0..10u64 {
        let (mut db, doc) = random_instance(seed, 8, 24, 4);
        // A renamed copy for alias twigs.
        let renamed = db
            .relation("S")
            .unwrap()
            .rename(|a| {
                if a.name() == "x" {
                    "xv".into()
                } else {
                    "yv".into()
                }
            })
            .unwrap();
        db.add_relation("Sxy", renamed);
        let index = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &index);

        for twig in TWIGS {
            let query = query_for(twig);
            let reference = match baseline(&ctx, &query, &BaselineConfig::default()) {
                Ok(r) => r,
                Err(e) => panic!("baseline failed on twig {twig}: {e}"),
            };
            let xjoin_configs = [
                XJoinConfig::default(),
                XJoinConfig {
                    ad_filter: true,
                    ..Default::default()
                },
                XJoinConfig {
                    partial_validation: true,
                    ..Default::default()
                },
                XJoinConfig {
                    ad_filter: true,
                    partial_validation: true,
                    order: OrderStrategy::Cardinality,
                },
            ];
            for cfg in xjoin_configs {
                let out = xjoin(&ctx, &query, &cfg).unwrap();
                let aligned = reference
                    .results
                    .project(out.results.schema().attrs())
                    .unwrap();
                assert!(
                    out.results.set_eq(&aligned),
                    "seed {seed} twig {twig} cfg {cfg:?}: {} vs {} rows",
                    out.results.len(),
                    aligned.len()
                );
            }
            for rel_alg in [RelAlg::Hash, RelAlg::Lftj] {
                for xml_alg in [XmlAlg::TwigStack, XmlAlg::Navigational] {
                    let b = baseline(&ctx, &query, &BaselineConfig { rel_alg, xml_alg }).unwrap();
                    let aligned = reference
                        .results
                        .project(b.results.schema().attrs())
                        .unwrap();
                    assert!(
                        b.results.set_eq(&aligned),
                        "seed {seed} twig {twig} baseline {rel_alg:?}/{xml_alg:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn two_twigs_one_query() {
    // Queries with two twig patterns (joined on values through the table).
    let (db, doc) = random_instance(99, 10, 30, 3);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["S"], &["//r//x", "//r$r2//y"]).unwrap();
    let x = xjoin(&ctx, &query, &XJoinConfig::default()).unwrap();
    let b = baseline(&ctx, &query, &BaselineConfig::default()).unwrap();
    let aligned = b.results.project(x.results.schema().attrs()).unwrap();
    assert!(x.results.set_eq(&aligned));
}

#[test]
fn empty_document_side() {
    // A twig whose tags don't exist: both engines return empty.
    let (db, doc) = random_instance(5, 5, 10, 3);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["S"], &["//zz/ww"]).unwrap();
    let x = xjoin(&ctx, &query, &XJoinConfig::default()).unwrap();
    let b = baseline(&ctx, &query, &BaselineConfig::default()).unwrap();
    assert!(x.results.is_empty());
    assert!(b.results.is_empty());
}

#[test]
fn empty_relational_side() {
    let (mut db, doc) = random_instance(6, 5, 10, 3);
    db.load("Empty", Schema::of(&["x"]), Vec::<Vec<Value>>::new())
        .unwrap();
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["Empty"], &["//r//x"]).unwrap();
    let x = xjoin(&ctx, &query, &XJoinConfig::default()).unwrap();
    let b = baseline(&ctx, &query, &BaselineConfig::default()).unwrap();
    assert!(x.results.is_empty());
    assert!(b.results.is_empty());
}
