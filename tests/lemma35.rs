//! E5 — the paper's Lemma 3.5 as an executable property: on arbitrary
//! instances, every intermediate result XJoin materialises is bounded by the
//! AGM bound of the bound-prefix hypergraph (and a fortiori the engine never
//! exceeds the worst-case output bound while binding output variables).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relational::{Database, Schema, Value};
use xjoin_core::{
    lower, prefix_bounds, query_bound, xjoin, DataContext, MultiModelQuery, OrderStrategy,
    XJoinConfig,
};
use xmldb::{TagIndex, XmlDocument};

fn random_instance(seed: u64, rows: usize, nodes: usize, domain: i64) -> (Database, XmlDocument) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let r: Vec<Vec<Value>> = (0..rows)
        .map(|_| {
            vec![
                Value::Int(rng.gen_range(0..domain)),
                Value::Int(rng.gen_range(0..domain)),
            ]
        })
        .collect();
    db.load("R", Schema::of(&["x", "y"]), r).unwrap();
    let s: Vec<Vec<Value>> = (0..rows)
        .map(|_| {
            vec![
                Value::Int(rng.gen_range(0..domain)),
                Value::Int(rng.gen_range(0..domain)),
            ]
        })
        .collect();
    db.load("S", Schema::of(&["y", "z"]), s).unwrap();

    let mut dict = db.dict().clone();
    let mut b = XmlDocument::builder();
    let tags = ["r", "x", "z"];
    let root = b.add_node(None, "r", Some(Value::Int(rng.gen_range(0..domain))));
    let mut ids = vec![root];
    for _ in 1..nodes {
        let parent = ids[rng.gen_range(0..ids.len())];
        let tag = tags[rng.gen_range(0..tags.len())];
        ids.push(b.add_node(
            Some(parent),
            tag,
            Some(Value::Int(rng.gen_range(0..domain))),
        ));
    }
    let doc = b.build(&mut dict);
    *db.dict_mut() = dict;
    (db, doc)
}

fn check_lemma(ctx: &DataContext<'_>, query: &MultiModelQuery, cfg: &XJoinConfig, tag: &str) {
    let out = xjoin(ctx, query, cfg).unwrap();
    let atoms = lower(ctx, query).unwrap();
    let bounds = prefix_bounds(&atoms, &out.order).unwrap();
    let expands: Vec<usize> = out
        .stats
        .stages
        .iter()
        .filter(|s| s.label.starts_with("expand"))
        .map(|s| s.tuples)
        .collect();
    assert_eq!(expands.len(), bounds.len(), "{tag}: stage/bound mismatch");
    for (d, (&tuples, &bound)) in expands.iter().zip(&bounds).enumerate() {
        assert!(
            tuples as f64 <= bound + 1e-6,
            "{tag}: level {d} has {tuples} tuples, bound {bound}"
        );
    }
    // The last prefix bound equals the full-query bound.
    let full = query_bound(&atoms).unwrap();
    assert!((bounds.last().unwrap() - full).abs() < 1e-6 * (1.0 + full));
}

#[test]
fn intermediates_respect_prefix_bounds_on_random_instances() {
    for seed in 0..12u64 {
        let (db, doc) = random_instance(seed, 10, 25, 4);
        let index = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &index);
        for twig in ["//r//x", "//r[/x$x2]//z", "//x$xv//z$zv"] {
            let query = match twig {
                "//x$xv//z$zv" => {
                    // rename columns to join through aliases: skip — use
                    // plain vars instead.
                    MultiModelQuery::new(&["R", "S"], &["//r//x"]).unwrap()
                }
                t => MultiModelQuery::new(&["R", "S"], &[t]).unwrap(),
            };
            check_lemma(
                &ctx,
                &query,
                &XJoinConfig::default(),
                &format!("seed {seed} {twig}"),
            );
        }
    }
}

#[test]
fn lemma_holds_under_every_order_strategy() {
    let (db, doc) = random_instance(7, 12, 30, 3);
    let index = TagIndex::build(&doc);
    let ctx = DataContext::new(&db, &doc, &index);
    let query = MultiModelQuery::new(&["R", "S"], &["//r[/x$x2]//z"]).unwrap();
    for strategy in [
        OrderStrategy::Appearance,
        OrderStrategy::Cardinality,
        OrderStrategy::Given(
            ["z", "y", "x", "r", "x2"]
                .iter()
                .map(|&s| s.into())
                .collect(),
        ),
    ] {
        let cfg = XJoinConfig {
            order: strategy.clone(),
            ..Default::default()
        };
        check_lemma(&ctx, &query, &cfg, &format!("strategy {strategy:?}"));
    }
}

#[test]
fn filters_only_shrink_intermediates() {
    for seed in 0..6u64 {
        let (db, doc) = random_instance(seed + 100, 10, 25, 4);
        let index = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &index);
        let query = MultiModelQuery::new(&["R", "S"], &["//r[/x$x2]//z"]).unwrap();
        let plain = xjoin(&ctx, &query, &XJoinConfig::default()).unwrap();
        let filtered = xjoin(
            &ctx,
            &query,
            &XJoinConfig {
                ad_filter: true,
                partial_validation: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(filtered.results.set_eq(&plain.results), "seed {seed}");
        assert!(
            filtered.stats.max_intermediate() <= plain.stats.max_intermediate(),
            "seed {seed}: filters must not grow intermediates"
        );
    }
}
