//! Differential proptest suite for the vectorized probe path: the block-wise
//! branch-reduced search must agree with the scalar `gallop` on every
//! contract corner (empty ranges, `lo >= len`, single-element levels), the
//! `Bitset` level layout must be transparent — walks over bitset-indexed
//! tries equal walks over plain `SortedVec` tries — and the batched block
//! kernel must enumerate exactly the scalar kernel's tuples, including under
//! restricted root ranges and morsel-parallel execution (`XJOIN_TEST_THREADS`
//! joins the thread sweep when set, as the CI's forced multi-thread pass
//! does). Case counts drop under Miri (`cfg!(miri)`), which interprets every
//! load of the new index arithmetic.

use proptest::prelude::*;
use relational::{
    block_seek, gallop, Attr, JoinPlan, LftjWalk, ProbeKernel, Relation, Schema, Trie, TrieBuilder,
    ValueId, ValueRange,
};
use std::sync::Arc;
use xjoin_core::{execute, DataContext, EngineKind, ExecOptions, Parallelism};

/// Builds a binary relation from raw value pairs.
fn rel_from(rows: &[(u32, u32)], a: &str, b: &str) -> Relation {
    let mut r = Relation::new(Schema::of(&[a, b]));
    for &(x, y) in rows {
        r.push(&[ValueId(x), ValueId(y)]).unwrap();
    }
    r
}

/// Builds one trie per relation with the given builder and wraps them for
/// plan sharing.
fn tries_with(builder: &mut TrieBuilder, rels: &[&Relation], order: &[Attr]) -> Vec<Arc<Trie>> {
    rels.iter()
        .map(|rel| {
            let restricted = rel.schema().restrict_order(order).unwrap();
            Arc::new(builder.build(rel, &restricted).unwrap())
        })
        .collect()
}

/// Drains a full walk under `kernel` over `root`, returning the tuples.
fn join_rows(
    tries: Vec<Arc<Trie>>,
    order: &[Attr],
    kernel: ProbeKernel,
    root: ValueRange,
) -> Vec<Vec<ValueId>> {
    let plan = JoinPlan::from_shared(tries, order).unwrap();
    let mut walk = LftjWalk::with_kernel(plan, root, kernel);
    let mut out = Vec::new();
    while let Some(t) = walk.next_tuple() {
        out.push(t.to_vec());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 8 } else { 64 }))]

    // The block search has the same contract as `gallop`: first index >= lo
    // holding a value >= target, `lo` returned unchanged when it lies past
    // the slice. `lo` ranges past the slice length (sets hold at most 80
    // values) to cover the empty-slice and `lo >= len` corners.
    #[test]
    fn block_seek_matches_gallop(
        set in prop::collection::btree_set(0u32..300, 0..80),
        target in 0u32..320,
        lo in 0usize..100,
    ) {
        let slice: Vec<ValueId> = set.iter().map(|&x| ValueId(x)).collect();
        prop_assert_eq!(
            block_seek(&slice, lo, ValueId(target)),
            gallop(&slice, lo, ValueId(target)),
            "slice len {}, lo {}, target {}", slice.len(), lo, target
        );
    }

    // Degenerate levels — empty and single-element slices — where the
    // first-block fast path must not read past the end.
    #[test]
    fn block_seek_matches_gallop_on_tiny_levels(
        set in prop::collection::btree_set(0u32..8, 0..2),
        target in 0u32..10,
        lo in 0usize..3,
    ) {
        let slice: Vec<ValueId> = set.iter().map(|&x| ValueId(x)).collect();
        prop_assert_eq!(
            block_seek(&slice, lo, ValueId(target)),
            gallop(&slice, lo, ValueId(target))
        );
    }

    // Layout transparency: the same triangle join over bitset-indexed tries
    // (forced onto every eligible level) and over plain SortedVec tries must
    // produce identical tuple streams under both kernels. The scalar kernel
    // on plain tries is the pre-existing path, i.e. the ground truth.
    #[test]
    fn bitset_levels_are_transparent_to_walks(
        r_rows in prop::collection::vec((0u32..12, 0u32..12), 0..60),
        s_rows in prop::collection::vec((0u32..12, 0u32..12), 0..60),
        t_rows in prop::collection::vec((0u32..12, 0u32..12), 0..60),
    ) {
        let r = rel_from(&r_rows, "a", "b");
        let s = rel_from(&s_rows, "b", "c");
        let t = rel_from(&t_rows, "a", "c");
        let order: Vec<Attr> = vec!["a".into(), "b".into(), "c".into()];
        let mut plain_b = TrieBuilder::new().with_bitset_levels(false);
        let mut forced_b = TrieBuilder::new();
        forced_b.set_bitset_min_nodes(1);
        let plain = tries_with(&mut plain_b, &[&r, &s, &t], &order);
        let forced = tries_with(&mut forced_b, &[&r, &s, &t], &order);
        if !r.is_empty() || !s.is_empty() || !t.is_empty() {
            prop_assert!(
                forced.iter().any(|t| t.bitset_level_count() > 0)
                    || forced.iter().all(|t| t.num_tuples() == 0),
                "min_nodes=1 must index every non-empty level"
            );
        }
        let reference = join_rows(plain.clone(), &order, ProbeKernel::Scalar, ValueRange::all());
        for kernel in [ProbeKernel::Scalar, ProbeKernel::Block] {
            prop_assert_eq!(
                &join_rows(plain.clone(), &order, kernel, ValueRange::all()),
                &reference, "plain/{:?}", kernel
            );
            prop_assert_eq!(
                &join_rows(forced.clone(), &order, kernel, ValueRange::all()),
                &reference, "bitset/{:?}", kernel
            );
        }
    }

    // Kernel equivalence under restricted root ranges (the morsel substrate):
    // any `[lo, hi)` window over the first variable yields the same tuples
    // from both kernels, on plain and bitset-indexed tries alike.
    #[test]
    fn kernels_agree_under_random_root_ranges(
        r_rows in prop::collection::vec((0u32..16, 0u32..16), 0..70),
        s_rows in prop::collection::vec((0u32..16, 0u32..16), 0..70),
        lo in 0u32..18,
        width in 0u32..18,
        unbounded in any::<bool>(),
    ) {
        let r = rel_from(&r_rows, "a", "b");
        let s = rel_from(&s_rows, "b", "c");
        let order: Vec<Attr> = vec!["a".into(), "b".into(), "c".into()];
        let root = ValueRange {
            lo: ValueId(lo),
            hi: (!unbounded).then(|| ValueId(lo + width)),
        };
        let mut forced_b = TrieBuilder::new();
        forced_b.set_bitset_min_nodes(1);
        let mut plain_b = TrieBuilder::new().with_bitset_levels(false);
        let plain = tries_with(&mut plain_b, &[&r, &s], &order);
        let forced = tries_with(&mut forced_b, &[&r, &s], &order);
        let reference = join_rows(plain.clone(), &order, ProbeKernel::Scalar, root.clone());
        prop_assert!(reference.iter().all(|t| root.contains(t[0])));
        prop_assert_eq!(
            &join_rows(plain, &order, ProbeKernel::Block, root.clone()),
            &reference
        );
        prop_assert_eq!(
            &join_rows(forced, &order, ProbeKernel::Block, root),
            &reference
        );
    }

    // Single-atom walks stress the k == 1 bulk-copy refill path across batch
    // boundaries (PROBE_BATCH = 32, so 0..100 rows spans several refills).
    #[test]
    fn single_atom_walks_agree_across_batch_boundaries(
        rows in prop::collection::vec((0u32..40, 0u32..40), 0..100),
    ) {
        let r = rel_from(&rows, "a", "b");
        let order: Vec<Attr> = vec!["a".into(), "b".into()];
        let mut plain_b = TrieBuilder::new().with_bitset_levels(false);
        let plain = tries_with(&mut plain_b, &[&r], &order);
        let scalar = join_rows(plain.clone(), &order, ProbeKernel::Scalar, ValueRange::all());
        let block = join_rows(plain, &order, ProbeKernel::Block, ValueRange::all());
        prop_assert_eq!(&block, &scalar);
        let mut expect = r.clone();
        expect.sort_dedup();
        prop_assert_eq!(block.len(), expect.len());
    }
}

/// Worker counts for the executor-level check; `XJOIN_TEST_THREADS` (set by
/// the CI's forced multi-thread pass) joins the sweep when present, so the
/// suite genuinely differs between the two CI test modes.
fn thread_counts() -> Vec<usize> {
    let mut ns = vec![2usize];
    if let Some(n) = std::env::var("XJOIN_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        if n > 1 && !ns.contains(&n) {
            ns.push(n);
        }
    }
    ns
}

/// End-to-end: the default (block) kernel under morsel-parallel execution
/// returns the serial result on graph workloads whose tries carry bitset
/// levels — the batched refill must resume correctly inside clamped root
/// ranges on every worker.
#[test]
#[cfg_attr(
    miri,
    ignore = "spawns threads over a large instance; the per-seek arithmetic is covered by the proptests above"
)]
fn parallel_block_kernel_matches_serial_on_bitset_workloads() {
    use bench::workloads::{graph_instance, triangle_query};
    let inst = graph_instance(96, 1800, 7);
    let idx = inst.index();
    let ctx = DataContext::new(&inst.db, &inst.doc, &idx);
    let q = triangle_query();
    let serial = execute(&ctx, &q, &ExecOptions::for_engine(EngineKind::Lftj)).unwrap();
    assert!(
        serial.stats.bitset_levels > 0,
        "dense graph tries must carry bitset levels"
    );
    let signature = |rel: &Relation| {
        let mut rows: Vec<Vec<ValueId>> = rel.rows().map(|r| r.to_vec()).collect();
        rows.sort();
        rows
    };
    for n in thread_counts() {
        let parallel = execute(
            &ctx,
            &q,
            &ExecOptions {
                engine: EngineKind::Lftj,
                parallelism: Parallelism::Threads(n),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            signature(&parallel.results),
            signature(&serial.results),
            "threads {n}: parallel multiset != serial"
        );
    }
}
