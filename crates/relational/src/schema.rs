//! Attributes (join variables) and relation schemas.

use crate::error::{RelError, Result};
use std::fmt;
use std::sync::Arc;

/// An attribute name — equivalently, a join variable.
///
/// `Attr` is a cheap-to-clone interned-ish string (an `Arc<str>`); equality
/// and ordering are by name. In the multi-model setting of the paper, twig
/// query nodes and relational columns share this namespace: the twig node
/// tagged `ISBN` and the relational column `ISBN` denote the same variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attr(Arc<str>);

impl Attr {
    /// Creates an attribute with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Attr(Arc::from(name.as_ref()))
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}

impl From<String> for Attr {
    fn from(s: String) -> Self {
        Attr::new(s)
    }
}

impl AsRef<str> for Attr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// An ordered list of distinct attributes: the schema of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    attrs: Arc<[Attr]>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new<I, A>(attrs: I) -> Result<Self>
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        let attrs: Vec<Attr> = attrs.into_iter().map(Into::into).collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(RelError::DuplicateAttribute(a.name().to_owned()));
            }
        }
        Ok(Schema {
            attrs: attrs.into(),
        })
    }

    /// Builds a schema from attribute names, panicking on duplicates.
    ///
    /// Convenience for tests and examples where schemas are literals.
    pub fn of(names: &[&str]) -> Self {
        Self::new(names.iter().copied()).expect("duplicate attribute in literal schema")
    }

    /// Number of attributes (the relation's arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes (a nullary relation).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attributes in schema order.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Position of `attr` in this schema, if present.
    pub fn position(&self, attr: &Attr) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// Whether `attr` occurs in this schema.
    pub fn contains(&self, attr: &Attr) -> bool {
        self.position(attr).is_some()
    }

    /// Position of `attr`, or an [`RelError::UnknownAttribute`] error.
    pub fn require(&self, attr: &Attr) -> Result<usize> {
        self.position(attr)
            .ok_or_else(|| RelError::UnknownAttribute(attr.name().to_owned()))
    }

    /// Attributes shared with `other`, in `self`'s order.
    pub fn common(&self, other: &Schema) -> Vec<Attr> {
        self.attrs
            .iter()
            .filter(|a| other.contains(a))
            .cloned()
            .collect()
    }

    /// Attributes of `self` not present in `other`, in `self`'s order.
    pub fn difference(&self, other: &Schema) -> Vec<Attr> {
        self.attrs
            .iter()
            .filter(|a| !other.contains(a))
            .cloned()
            .collect()
    }

    /// Schema of `self ⋈ other`: `self`'s attributes followed by `other`'s
    /// attributes that are not in `self`.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut attrs: Vec<Attr> = self.attrs.to_vec();
        attrs.extend(other.difference(self));
        Schema {
            attrs: attrs.into(),
        }
    }

    /// Restricts a global attribute order to this schema's attributes.
    ///
    /// Returns, for each attribute of the schema in `order`-order, its
    /// position in the schema. Errors if some schema attribute is missing
    /// from `order`.
    pub fn order_projection(&self, order: &[Attr]) -> Result<Vec<usize>> {
        let mut proj = Vec::with_capacity(self.arity());
        for a in order {
            if let Some(i) = self.position(a) {
                proj.push(i);
            }
        }
        if proj.len() != self.arity() {
            let missing: Vec<&str> = self
                .attrs
                .iter()
                .filter(|a| !order.contains(a))
                .map(|a| a.name())
                .collect();
            return Err(RelError::InvalidOrder(format!(
                "order does not cover attributes: {}",
                missing.join(", ")
            )));
        }
        Ok(proj)
    }

    /// The schema's attributes reordered by a global attribute order — the
    /// trie level order every planner derives (see [`crate::JoinPlan`] and
    /// the `xjoin-store` prepared queries, which must agree on it). Errors
    /// if some schema attribute is missing from `order`.
    pub fn restrict_order(&self, order: &[Attr]) -> Result<Vec<Attr>> {
        Ok(self
            .order_projection(order)?
            .into_iter()
            .map(|p| self.attrs[p].clone())
            .collect())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_rejects_duplicates() {
        assert!(Schema::new(["a", "b", "a"]).is_err());
        assert!(Schema::new(["a", "b"]).is_ok());
    }

    #[test]
    fn position_and_contains() {
        let s = Schema::of(&["x", "y", "z"]);
        assert_eq!(s.position(&"y".into()), Some(1));
        assert!(s.contains(&"z".into()));
        assert!(!s.contains(&"w".into()));
        assert!(s.require(&"w".into()).is_err());
        assert_eq!(s.require(&"x".into()).unwrap(), 0);
    }

    #[test]
    fn common_and_difference_preserve_order() {
        let s = Schema::of(&["a", "b", "c", "d"]);
        let t = Schema::of(&["d", "b", "e"]);
        assert_eq!(s.common(&t), vec![Attr::new("b"), Attr::new("d")]);
        assert_eq!(s.difference(&t), vec![Attr::new("a"), Attr::new("c")]);
    }

    #[test]
    fn join_schema_concatenates_without_duplicates() {
        let s = Schema::of(&["a", "b"]);
        let t = Schema::of(&["b", "c"]);
        let j = s.join(&t);
        assert_eq!(j.attrs(), &[Attr::new("a"), Attr::new("b"), Attr::new("c")]);
    }

    #[test]
    fn order_projection_restricts_global_order() {
        let s = Schema::of(&["b", "d"]);
        let order: Vec<Attr> = ["a", "b", "c", "d"].iter().map(|&n| Attr::new(n)).collect();
        // In order-order the schema attrs are b (pos 0 in schema) then d (pos 1).
        assert_eq!(s.order_projection(&order).unwrap(), vec![0, 1]);

        let s2 = Schema::of(&["d", "b"]);
        assert_eq!(s2.order_projection(&order).unwrap(), vec![1, 0]);
    }

    #[test]
    fn order_projection_reports_missing_attrs() {
        let s = Schema::of(&["b", "q"]);
        let order: Vec<Attr> = ["a", "b"].iter().map(|&n| Attr::new(n)).collect();
        let err = s.order_projection(&order).unwrap_err();
        assert!(err.to_string().contains('q'));
    }

    #[test]
    fn display_formats() {
        let s = Schema::of(&["a", "b"]);
        assert_eq!(s.to_string(), "(a, b)");
        assert_eq!(Attr::new("a").to_string(), "a");
    }

    #[test]
    fn empty_schema_is_allowed() {
        let s = Schema::new(Vec::<&str>::new()).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.arity(), 0);
    }
}
