//! In-memory relations: row-major stores of dictionary-encoded tuples.

use crate::error::{RelError, Result};
use crate::schema::{Attr, Schema};
use crate::value::ValueId;
use std::collections::HashSet;
use std::fmt;

/// A materialised relation: a [`Schema`] plus a row-major tuple store.
///
/// Relations use *set semantics* after [`Relation::sort_dedup`]; builders may
/// temporarily hold duplicates. All values are dictionary-encoded
/// [`ValueId`]s — decoding back to user values goes through the shared
/// [`crate::value::Dict`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    data: Vec<ValueId>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            data: Vec::new(),
        }
    }

    /// Creates an empty relation, pre-allocating space for `rows` tuples.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            data: Vec::with_capacity(rows * arity),
        }
    }

    /// Builds a relation from an iterator of rows, validating arity.
    pub fn from_rows<I>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator,
        I::Item: AsRef<[ValueId]>,
    {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.push(row.as_ref())?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of attributes per tuple.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of tuples currently stored (duplicates included until
    /// [`Relation::sort_dedup`] is called).
    pub fn len(&self) -> usize {
        if self.schema.arity() == 0 {
            // A nullary relation holds at most one (empty) tuple; we encode
            // "one tuple" as a non-empty marker in `data`? No: nullary
            // relations are tracked via `nullary_present` semantics below.
            // We store one sentinel per tuple to keep len() meaningful.
            self.data.len()
        } else {
            self.data.len() / self.schema.arity()
        }
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a tuple, validating its arity.
    pub fn push(&mut self, row: &[ValueId]) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        if row.is_empty() {
            // Nullary tuple: store a sentinel so len() counts it.
            self.data.push(ValueId(0));
        } else {
            self.data.extend_from_slice(row);
        }
        Ok(())
    }

    /// The `i`-th tuple as a slice.
    ///
    /// # Panics
    /// Panics if `i >= self.len()` or on nullary relations.
    pub fn row(&self, i: usize) -> &[ValueId] {
        let a = self.schema.arity();
        assert!(a > 0, "row() on nullary relation");
        &self.data[i * a..(i + 1) * a]
    }

    /// Raw row-major storage. Same-crate bulk operations only; nullary
    /// relations store one sentinel id per tuple, so callers must
    /// special-case arity 0.
    pub(crate) fn raw_data(&self) -> &[ValueId] {
        &self.data
    }

    /// Appends pre-validated row-major cells (`cells.len()` must be a
    /// multiple of the arity). Same-crate bulk operations only.
    pub(crate) fn extend_raw(&mut self, cells: &[ValueId]) {
        debug_assert!(
            self.schema.arity() > 0 && cells.len().is_multiple_of(self.schema.arity()),
            "extend_raw needs whole rows of a positive arity"
        );
        self.data.extend_from_slice(cells);
    }

    /// Iterates over tuples as slices. Nullary relations yield empty slices.
    pub fn rows(&self) -> impl Iterator<Item = &[ValueId]> + '_ {
        let a = self.schema.arity();
        RowIter {
            data: &self.data,
            arity: a,
            pos: 0,
            remaining: self.len(),
        }
    }

    /// Sorts tuples lexicographically (in schema attribute order) and removes
    /// duplicates, establishing set semantics.
    pub fn sort_dedup(&mut self) {
        let a = self.schema.arity();
        if a == 0 {
            self.data.truncate(1);
            return;
        }
        let n = self.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let data = &self.data;
        perm.sort_unstable_by(|&x, &y| {
            let rx = &data[x as usize * a..x as usize * a + a];
            let ry = &data[y as usize * a..y as usize * a + a];
            rx.cmp(ry)
        });
        let mut out: Vec<ValueId> = Vec::with_capacity(self.data.len());
        let mut last: Option<&[ValueId]> = None;
        for &p in &perm {
            let r = &data[p as usize * a..p as usize * a + a];
            if last != Some(r) {
                out.extend_from_slice(r);
            }
            last = Some(r);
        }
        self.data = out;
    }

    /// Keeps only the first `n` tuples (no-op when `n >= len`). Engines use
    /// this to apply a `LIMIT` to an already-materialised result.
    pub fn truncate(&mut self, n: usize) {
        // Nullary tuples are stored as one sentinel value each, so the
        // per-tuple stride is `max(arity, 1)` either way.
        let stride = self.schema.arity().max(1);
        self.data.truncate(n.saturating_mul(stride));
    }

    /// Projects onto `attrs` (with set semantics on the result).
    pub fn project(&self, attrs: &[Attr]) -> Result<Relation> {
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| self.schema.require(a))
            .collect::<Result<_>>()?;
        let out_schema = Schema::new(attrs.iter().cloned())?;
        let mut out = Relation::with_capacity(out_schema, self.len());
        let mut buf = Vec::with_capacity(positions.len());
        for row in self.rows() {
            buf.clear();
            buf.extend(positions.iter().map(|&p| row[p]));
            out.push(&buf)?;
        }
        out.sort_dedup();
        Ok(out)
    }

    /// Selects tuples whose `attr` column equals `value`.
    pub fn select_eq(&self, attr: &Attr, value: ValueId) -> Result<Relation> {
        let p = self.schema.require(attr)?;
        let mut out = Relation::new(self.schema.clone());
        for row in self.rows() {
            if row[p] == value {
                out.push(row)?;
            }
        }
        Ok(out)
    }

    /// Returns a copy with attributes renamed via `f` (schema order kept).
    pub fn rename(&self, f: impl Fn(&Attr) -> Attr) -> Result<Relation> {
        let schema = Schema::new(self.schema.attrs().iter().map(&f))?;
        Ok(Relation {
            schema,
            data: self.data.clone(),
        })
    }

    /// Collects the tuples into a hash set of boxed rows (for membership
    /// tests in reference implementations and tests).
    pub fn row_set(&self) -> HashSet<Box<[ValueId]>> {
        self.rows().map(|r| r.to_vec().into_boxed_slice()).collect()
    }

    /// Whether this relation contains `row` (linear scan; intended for tests
    /// and small relations — engines use tries instead).
    pub fn contains_row(&self, row: &[ValueId]) -> bool {
        self.rows().any(|r| r == row)
    }

    /// Set equality with another relation (ignores tuple order and
    /// duplicates; schemas must match by attribute order).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.schema == other.schema && self.row_set() == other.row_set()
    }

    /// Approximate heap footprint of the tuple store in bytes (schema
    /// excluded). Memory budgeters sum this with
    /// [`crate::value::Dict::estimated_bytes`].
    pub fn estimated_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<ValueId>()
    }

    /// Reorders columns into `attrs` order (a permutation of the schema).
    pub fn reorder(&self, attrs: &[Attr]) -> Result<Relation> {
        if attrs.len() != self.arity() {
            return Err(RelError::InvalidOrder(format!(
                "reorder expects {} attributes, got {}",
                self.arity(),
                attrs.len()
            )));
        }
        self.project(attrs)
    }
}

struct RowIter<'a> {
    data: &'a [ValueId],
    arity: usize,
    pos: usize,
    remaining: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [ValueId];

    fn next(&mut self) -> Option<&'a [ValueId]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.arity == 0 {
            return Some(&[]);
        }
        let r = &self.data[self.pos..self.pos + self.arity];
        self.pos += self.arity;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} rows]", self.schema, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    #[test]
    fn push_validates_arity() {
        let mut r = Relation::new(Schema::of(&["a", "b"]));
        assert!(r.push(&[v(1), v(2)]).is_ok());
        assert!(r.push(&[v(1)]).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn sort_dedup_establishes_set_semantics() {
        let mut r = Relation::new(Schema::of(&["a", "b"]));
        r.push(&[v(2), v(1)]).unwrap();
        r.push(&[v(1), v(9)]).unwrap();
        r.push(&[v(2), v(1)]).unwrap();
        r.push(&[v(1), v(3)]).unwrap();
        r.sort_dedup();
        let rows: Vec<Vec<ValueId>> = r.rows().map(|x| x.to_vec()).collect();
        assert_eq!(
            rows,
            vec![vec![v(1), v(3)], vec![v(1), v(9)], vec![v(2), v(1)]]
        );
    }

    #[test]
    fn project_deduplicates() {
        let mut r = Relation::new(Schema::of(&["a", "b"]));
        r.push(&[v(1), v(2)]).unwrap();
        r.push(&[v(1), v(3)]).unwrap();
        let p = r.project(&["a".into()]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.row(0), &[v(1)]);
    }

    #[test]
    fn project_reorders_columns() {
        let mut r = Relation::new(Schema::of(&["a", "b"]));
        r.push(&[v(1), v(2)]).unwrap();
        let p = r.project(&["b".into(), "a".into()]).unwrap();
        assert_eq!(p.schema(), &Schema::of(&["b", "a"]));
        assert_eq!(p.row(0), &[v(2), v(1)]);
    }

    #[test]
    fn select_eq_filters_rows() {
        let mut r = Relation::new(Schema::of(&["a", "b"]));
        r.push(&[v(1), v(2)]).unwrap();
        r.push(&[v(3), v(2)]).unwrap();
        r.push(&[v(1), v(4)]).unwrap();
        let s = r.select_eq(&"a".into(), v(1)).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains_row(&[v(1), v(2)]));
        assert!(s.contains_row(&[v(1), v(4)]));
        assert!(r.select_eq(&"zz".into(), v(0)).is_err());
    }

    #[test]
    fn rename_changes_schema_only() {
        let mut r = Relation::new(Schema::of(&["a"]));
        r.push(&[v(7)]).unwrap();
        let r2 = r.rename(|a| Attr::new(format!("{}_x", a.name()))).unwrap();
        assert_eq!(r2.schema(), &Schema::of(&["a_x"]));
        assert_eq!(r2.row(0), &[v(7)]);
    }

    #[test]
    fn set_eq_ignores_order_and_duplicates() {
        let s = Schema::of(&["a"]);
        let mut r1 = Relation::new(s.clone());
        r1.push(&[v(1)]).unwrap();
        r1.push(&[v(2)]).unwrap();
        r1.push(&[v(1)]).unwrap();
        let mut r2 = Relation::new(s);
        r2.push(&[v(2)]).unwrap();
        r2.push(&[v(1)]).unwrap();
        assert!(r1.set_eq(&r2));
    }

    #[test]
    fn nullary_relation_counts_tuples() {
        let mut r = Relation::new(Schema::new(Vec::<&str>::new()).unwrap());
        assert!(r.is_empty());
        r.push(&[]).unwrap();
        r.push(&[]).unwrap();
        assert_eq!(r.len(), 2);
        r.sort_dedup();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows().next(), Some(&[][..]));
    }

    #[test]
    fn rows_iterator_size_hint() {
        let mut r = Relation::new(Schema::of(&["a"]));
        r.push(&[v(1)]).unwrap();
        r.push(&[v(2)]).unwrap();
        let it = r.rows();
        assert_eq!(it.size_hint(), (2, Some(2)));
        assert_eq!(it.count(), 2);
    }

    #[test]
    fn from_rows_builder() {
        let r = Relation::from_rows(Schema::of(&["a", "b"]), [[v(1), v(2)], [v(3), v(4)]]).unwrap();
        assert_eq!(r.len(), 2);
        assert!(Relation::from_rows(Schema::of(&["a"]), [[v(1), v(2)]]).is_err());
    }

    #[test]
    fn reorder_requires_full_permutation() {
        let r = Relation::from_rows(Schema::of(&["a", "b"]), [[v(1), v(2)]]).unwrap();
        assert!(r.reorder(&["b".into()]).is_err());
        let rr = r.reorder(&["b".into(), "a".into()]).unwrap();
        assert_eq!(rr.row(0), &[v(2), v(1)]);
    }
}
