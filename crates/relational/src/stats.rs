//! Join instrumentation: the intermediate-result sizes the paper plots.
//!
//! Figure 3 of the paper compares engines on two axes — running time and
//! *intermediate result size*. [`JoinStats`] records, for every expansion
//! stage of a level-wise engine (or every operator of a binary plan), how
//! many tuples were materialised, so benchmarks can report the exact series
//! behind the paper's bar chart.
//!
//! Cold-query latency has a third axis the paper's plots fold into running
//! time: *index construction*. [`BuildStats`] describes one
//! [`crate::trie::TrieBuilder`] run (which sort path engaged, how many rows
//! went in, how long it took), and [`JoinStats::build_elapsed`] /
//! [`JoinStats::tries_built`] carry the aggregate trie-construction cost of
//! a query so benchmarks can report build vs probe time separately.

use crate::schema::Attr;
use crate::trie::LevelLayout;
use std::fmt;
use std::time::Duration;

/// Which sorting strategy a [`crate::trie::TrieBuilder`] run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortPath {
    /// The input rows were already sorted under the requested column order;
    /// sorting was skipped entirely.
    AlreadySorted,
    /// LSD counting/radix sort over the dense `ValueId` domain (engages when
    /// the domain is small relative to the row count).
    Radix,
    /// In-place columnar comparison sort of the row permutation.
    Comparison,
}

impl fmt::Display for SortPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortPath::AlreadySorted => write!(f, "pre-sorted"),
            SortPath::Radix => write!(f, "radix"),
            SortPath::Comparison => write!(f, "comparison"),
        }
    }
}

/// Cost profile of one trie construction (see
/// [`crate::trie::TrieBuilder::last_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildStats {
    /// Input rows (duplicates included).
    pub rows_in: usize,
    /// Distinct tuples stored in the trie.
    pub tuples: usize,
    /// The sort strategy that engaged.
    pub path: SortPath,
    /// Physical layout chosen for each trie level, root level first (empty
    /// for nullary builds).
    pub layouts: Vec<LevelLayout>,
    /// Wall-clock time of the build.
    pub elapsed: Duration,
}

impl fmt::Display for BuildStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rows_in={} tuples={} path={} layouts=[",
            self.rows_in, self.tuples, self.path
        )?;
        for (i, l) in self.layouts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "] elapsed={:?}", self.elapsed)
    }
}

/// Cheap per-level probe counters for one attribute level of an LFTJ walk.
///
/// Collected only when [`crate::lftj::LftjWalk::with_probe_counters`] opts
/// in; the counting path is monomorphised separately so the default walk
/// pays nothing. These are the raw signals behind `explain_analyze`'s
/// actual-vs-Lemma-3.5 tightness report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelProbeStats {
    /// Values bound at this level — distinct matching prefixes of length
    /// `level + 1`, the quantity Lemma 3.5 bounds per prefix.
    pub bindings: u64,
    /// Seek operations issued against cursors at this level (gallop,
    /// block-seek, or bitset seeks alike).
    pub seeks: u64,
    /// Probe steps spent inside sorted-array seeks: exponential-gallop
    /// probes, binary-search halvings, and scanned blocks combined.
    pub seek_steps: u64,
    /// Batch refills performed by the block kernel (0 under the scalar
    /// kernel).
    pub refills: u64,
    /// Bitmap words examined by bitset-level seeks.
    pub bitset_words: u64,
}

impl LevelProbeStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &LevelProbeStats) {
        self.bindings += other.bindings;
        self.seeks += other.seeks;
        self.seek_steps += other.seek_steps;
        self.refills += other.refills;
        self.bitset_words += other.bitset_words;
    }
}

impl fmt::Display for LevelProbeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bindings={} seeks={} seek_steps={} refills={} bitset_words={}",
            self.bindings, self.seeks, self.seek_steps, self.refills, self.bitset_words
        )
    }
}

/// Tuple count after one stage of a join pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Human-readable stage label (for level-wise engines, the variable that
    /// was expanded; for binary plans, the operator description).
    pub label: String,
    /// Number of tuples materialised by this stage.
    pub tuples: usize,
}

/// Instrumentation collected while running a join.
#[derive(Debug, Clone, Default)]
pub struct JoinStats {
    /// Per-stage materialised tuple counts, in execution order.
    pub stages: Vec<StageStats>,
    /// Number of result tuples.
    pub output_rows: usize,
    /// Wall-clock execution time (excluding input loading, including trie or
    /// hash-table construction when the engine builds them itself).
    pub elapsed: Duration,
    /// Time spent constructing tries for this run (a subset of `elapsed` on
    /// cold runs; zero when every trie came from a cache). Benchmarks
    /// subtract it from `elapsed` to isolate probe time.
    pub build_elapsed: Duration,
    /// Number of tries actually built (cache hits excluded).
    pub tries_built: usize,
    /// Number of trie levels across the plan's tries carrying the
    /// [`LevelLayout::Bitset`] layout (0 for non-trie engines).
    pub bitset_levels: usize,
    /// Number of delta runs overlaid on the plan's base tries (0 when every
    /// atom was solid). Walk-based engines union these lazily; see
    /// `relational::delta`.
    pub delta_runs: usize,
    /// Adaptive-ordering decisions that deviated from the static schedule
    /// (summed across morsels; 0 for static plans and for level-wise
    /// engines, which run the skeleton order).
    pub reorders: u64,
    /// Candidate-variable estimates computed by the adaptive chooser — the
    /// estimate-maintenance cost meter (summed across morsels).
    pub estimate_probes: u64,
}

impl JoinStats {
    /// Records a stage.
    pub fn record(&mut self, label: impl Into<String>, tuples: usize) {
        self.stages.push(StageStats {
            label: label.into(),
            tuples,
        });
    }

    /// Records a variable-expansion stage.
    pub fn record_var(&mut self, var: &Attr, tuples: usize) {
        self.record(format!("expand {var}"), tuples);
    }

    /// The largest intermediate result produced at any stage — the quantity
    /// bounded by the paper's Lemma 3.5 for XJoin.
    pub fn max_intermediate(&self) -> usize {
        self.stages.iter().map(|s| s.tuples).max().unwrap_or(0)
    }

    /// Total tuples materialised across all stages (a proxy for memory
    /// traffic / work done).
    pub fn total_intermediate(&self) -> u64 {
        self.stages.iter().map(|s| s.tuples as u64).sum()
    }
}

impl fmt::Display for JoinStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "output={} max_intermediate={} total_intermediate={} elapsed={:?}",
            self.output_rows,
            self.max_intermediate(),
            self.total_intermediate(),
            self.elapsed
        )?;
        if self.tries_built > 0 {
            writeln!(
                f,
                "  built {} trie(s) in {:?}",
                self.tries_built, self.build_elapsed
            )?;
        }
        if self.bitset_levels > 0 {
            writeln!(f, "  {} bitset level(s)", self.bitset_levels)?;
        }
        if self.reorders > 0 || self.estimate_probes > 0 {
            writeln!(
                f,
                "  adaptive: {} reorder(s), {} estimate probe(s)",
                self.reorders, self.estimate_probes
            )?;
        }
        for s in &self.stages {
            writeln!(f, "  {:<24} {:>12}", s.label, s.tuples)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_and_total_aggregate_stages() {
        let mut st = JoinStats::default();
        st.record("expand a", 10);
        st.record("expand b", 250);
        st.record("expand c", 50);
        assert_eq!(st.max_intermediate(), 250);
        assert_eq!(st.total_intermediate(), 310);
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = JoinStats::default();
        assert_eq!(st.max_intermediate(), 0);
        assert_eq!(st.total_intermediate(), 0);
    }

    #[test]
    fn record_var_labels_with_variable() {
        let mut st = JoinStats::default();
        st.record_var(&Attr::new("ISBN"), 3);
        assert!(st.stages[0].label.contains("ISBN"));
    }

    #[test]
    fn display_contains_summary() {
        let mut st = JoinStats::default();
        st.record("expand a", 4);
        st.output_rows = 4;
        let text = st.to_string();
        assert!(text.contains("output=4"));
        assert!(text.contains("expand a"));
    }

    #[test]
    fn build_stats_display_lists_layouts() {
        let st = BuildStats {
            rows_in: 10,
            tuples: 8,
            path: SortPath::Radix,
            layouts: vec![LevelLayout::Bitset, LevelLayout::SortedVec],
            elapsed: Duration::from_millis(1),
        };
        let text = st.to_string();
        assert!(text.contains("layouts=[bitset,sorted]"), "{text}");
    }

    #[test]
    fn join_stats_display_reports_bitset_levels() {
        let st = JoinStats {
            bitset_levels: 3,
            ..JoinStats::default()
        };
        assert!(st.to_string().contains("3 bitset level(s)"));
    }
}
