//! Join instrumentation: the intermediate-result sizes the paper plots.
//!
//! Figure 3 of the paper compares engines on two axes — running time and
//! *intermediate result size*. [`JoinStats`] records, for every expansion
//! stage of a level-wise engine (or every operator of a binary plan), how
//! many tuples were materialised, so benchmarks can report the exact series
//! behind the paper's bar chart.

use crate::schema::Attr;
use std::fmt;
use std::time::Duration;

/// Tuple count after one stage of a join pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Human-readable stage label (for level-wise engines, the variable that
    /// was expanded; for binary plans, the operator description).
    pub label: String,
    /// Number of tuples materialised by this stage.
    pub tuples: usize,
}

/// Instrumentation collected while running a join.
#[derive(Debug, Clone, Default)]
pub struct JoinStats {
    /// Per-stage materialised tuple counts, in execution order.
    pub stages: Vec<StageStats>,
    /// Number of result tuples.
    pub output_rows: usize,
    /// Wall-clock execution time (excluding input loading, including trie or
    /// hash-table construction when the engine builds them itself).
    pub elapsed: Duration,
}

impl JoinStats {
    /// Records a stage.
    pub fn record(&mut self, label: impl Into<String>, tuples: usize) {
        self.stages.push(StageStats {
            label: label.into(),
            tuples,
        });
    }

    /// Records a variable-expansion stage.
    pub fn record_var(&mut self, var: &Attr, tuples: usize) {
        self.record(format!("expand {var}"), tuples);
    }

    /// The largest intermediate result produced at any stage — the quantity
    /// bounded by the paper's Lemma 3.5 for XJoin.
    pub fn max_intermediate(&self) -> usize {
        self.stages.iter().map(|s| s.tuples).max().unwrap_or(0)
    }

    /// Total tuples materialised across all stages (a proxy for memory
    /// traffic / work done).
    pub fn total_intermediate(&self) -> u64 {
        self.stages.iter().map(|s| s.tuples as u64).sum()
    }
}

impl fmt::Display for JoinStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "output={} max_intermediate={} total_intermediate={} elapsed={:?}",
            self.output_rows,
            self.max_intermediate(),
            self.total_intermediate(),
            self.elapsed
        )?;
        for s in &self.stages {
            writeln!(f, "  {:<24} {:>12}", s.label, s.tuples)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_and_total_aggregate_stages() {
        let mut st = JoinStats::default();
        st.record("expand a", 10);
        st.record("expand b", 250);
        st.record("expand c", 50);
        assert_eq!(st.max_intermediate(), 250);
        assert_eq!(st.total_intermediate(), 310);
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = JoinStats::default();
        assert_eq!(st.max_intermediate(), 0);
        assert_eq!(st.total_intermediate(), 0);
    }

    #[test]
    fn record_var_labels_with_variable() {
        let mut st = JoinStats::default();
        st.record_var(&Attr::new("ISBN"), 3);
        assert!(st.stages[0].label.contains("ISBN"));
    }

    #[test]
    fn display_contains_summary() {
        let mut st = JoinStats::default();
        st.record("expand a", 4);
        st.output_rows = 4;
        let text = st.to_string();
        assert!(text.contains("output=4"));
        assert!(text.contains("expand a"));
    }
}
