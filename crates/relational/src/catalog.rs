//! A tiny catalog: named relations sharing one dictionary.

use crate::error::{RelError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::{Dict, Value, ValueId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A named collection of relations sharing a [`Dict`].
///
/// In the multi-model setting, the same dictionary is also handed to XML
/// documents so that values join across models.
///
/// The catalog is versioned: every relation carries a monotonically
/// increasing version (bumped each time the relation is registered or
/// replaced) and the database as a whole carries an epoch (bumped on any
/// mutation). Storage layers use these as cache keys — a trie built for
/// `(name, version)` stays valid exactly as long as the version does.
#[derive(Debug, Default, Clone)]
pub struct Database {
    dict: Dict,
    relations: BTreeMap<String, Relation>,
    versions: BTreeMap<String, u64>,
    epoch: u64,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared read access to the dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Mutable access to the dictionary (for interning new values).
    pub fn dict_mut(&mut self) -> &mut Dict {
        &mut self.dict
    }

    /// Registers (or replaces) a relation under `name`, bumping its version
    /// and the database epoch.
    pub fn add_relation(&mut self, name: impl Into<String>, rel: Relation) {
        let name = name.into();
        *self.versions.entry(name.clone()).or_insert(0) += 1;
        self.epoch += 1;
        self.relations.insert(name, rel);
    }

    /// The current version of a relation, if it is registered. Starts at 1
    /// and is bumped on every [`Database::add_relation`] / [`Database::load`]
    /// for the name.
    pub fn relation_version(&self, name: &str) -> Option<u64> {
        self.versions.get(name).copied()
    }

    /// A counter bumped on every catalog mutation; two databases at the same
    /// epoch along one history hold identical relations.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Approximate heap footprint of the catalog in bytes: the shared
    /// dictionary plus every relation's tuple store. Serving layers use this
    /// alongside their trie-cache budgets when reasoning about resident
    /// memory.
    pub fn estimated_bytes(&self) -> usize {
        self.dict.estimated_bytes()
            + self
                .relations
                .values()
                .map(|r| r.estimated_bytes())
                .sum::<usize>()
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelError::UnknownRelation(name.to_owned()))
    }

    /// Names of all registered relations, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(|s| s.as_str()).collect()
    }

    /// Creates a relation from user-facing values, interning them.
    pub fn load<R, V>(&mut self, name: &str, schema: Schema, rows: R) -> Result<()>
    where
        R: IntoIterator,
        R::Item: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let mut rel = Relation::new(schema);
        let mut buf: Vec<ValueId> = Vec::new();
        for row in rows {
            buf.clear();
            buf.extend(row.into_iter().map(|v| self.dict.intern(v.into())));
            rel.push(&buf)?;
        }
        rel.sort_dedup();
        self.add_relation(name, rel);
        Ok(())
    }

    /// Decodes a relation's tuples back into user-facing values.
    pub fn decode(&self, rel: &Relation) -> Vec<Vec<Value>> {
        rel.rows()
            .map(|r| r.iter().map(|&id| self.dict.decode(id).clone()).collect())
            .collect()
    }

    /// Renders a relation as a plain-text table (for examples and the
    /// experiments harness).
    pub fn render_table(&self, rel: &Relation) -> String {
        let attrs = rel.schema().attrs();
        let mut cols: Vec<Vec<String>> = attrs.iter().map(|a| vec![a.name().to_owned()]).collect();
        for row in rel.rows() {
            for (c, &id) in row.iter().enumerate() {
                cols[c].push(self.dict.decode(id).to_string());
            }
        }
        let widths: Vec<usize> = cols
            .iter()
            .map(|c| c.iter().map(|s| s.len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        let nrows = rel.len() + 1;
        for r in 0..nrows {
            for (c, col) in cols.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", col[r], w = widths[c]);
            }
            out.push('\n');
            if r == 0 {
                for &w in &widths {
                    let _ = write!(out, "{}  ", "-".repeat(w));
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_interns_and_dedups() {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["userID", "ISBN"]),
            vec![
                vec![Value::str("jack"), Value::str("978-3-16-1")],
                vec![Value::str("tom"), Value::str("634-3-12-2")],
                vec![Value::str("jack"), Value::str("978-3-16-1")],
            ],
        )
        .unwrap();
        let r = db.relation("R").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(db.dict().len(), 4);
    }

    #[test]
    fn unknown_relation_errors() {
        let db = Database::new();
        assert!(db.relation("missing").is_err());
    }

    #[test]
    fn decode_round_trips() {
        let mut db = Database::new();
        db.load("R", Schema::of(&["x"]), vec![vec![Value::Int(42)]])
            .unwrap();
        let rel = db.relation("R").unwrap().clone();
        let rows = db.decode(&rel);
        assert_eq!(rows, vec![vec![Value::Int(42)]]);
    }

    #[test]
    fn render_table_contains_headers_and_values() {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["userID", "price"]),
            vec![vec![Value::str("jack"), Value::str("30")]],
        )
        .unwrap();
        let rel = db.relation("R").unwrap().clone();
        let table = db.render_table(&rel);
        assert!(table.contains("userID"));
        assert!(table.contains("jack"));
        assert!(table.contains("30"));
    }

    #[test]
    fn versions_bump_per_relation_and_epoch_globally() {
        let mut db = Database::new();
        assert_eq!(db.epoch(), 0);
        assert_eq!(db.relation_version("R"), None);
        db.add_relation("R", Relation::new(Schema::of(&["a"])));
        db.add_relation("S", Relation::new(Schema::of(&["a"])));
        assert_eq!(db.relation_version("R"), Some(1));
        assert_eq!(db.relation_version("S"), Some(1));
        assert_eq!(db.epoch(), 2);
        db.load("R", Schema::of(&["a"]), vec![vec![Value::Int(1)]])
            .unwrap();
        assert_eq!(db.relation_version("R"), Some(2));
        assert_eq!(db.relation_version("S"), Some(1));
        assert_eq!(db.epoch(), 3);
    }

    #[test]
    fn relation_names_sorted() {
        let mut db = Database::new();
        db.add_relation("zeta", Relation::new(Schema::of(&["a"])));
        db.add_relation("alpha", Relation::new(Schema::of(&["a"])));
        assert_eq!(db.relation_names(), vec!["alpha", "zeta"]);
    }
}
