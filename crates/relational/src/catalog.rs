//! A tiny catalog: named relations sharing one dictionary.

use crate::error::{RelError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::{Dict, Value, ValueId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A named collection of relations sharing a [`Dict`].
///
/// In the multi-model setting, the same dictionary is also handed to XML
/// documents so that values join across models.
#[derive(Debug, Default, Clone)]
pub struct Database {
    dict: Dict,
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared read access to the dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Mutable access to the dictionary (for interning new values).
    pub fn dict_mut(&mut self) -> &mut Dict {
        &mut self.dict
    }

    /// Registers (or replaces) a relation under `name`.
    pub fn add_relation(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), rel);
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| RelError::UnknownRelation(name.to_owned()))
    }

    /// Names of all registered relations, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(|s| s.as_str()).collect()
    }

    /// Creates a relation from user-facing values, interning them.
    pub fn load<R, V>(&mut self, name: &str, schema: Schema, rows: R) -> Result<()>
    where
        R: IntoIterator,
        R::Item: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let mut rel = Relation::new(schema);
        let mut buf: Vec<ValueId> = Vec::new();
        for row in rows {
            buf.clear();
            buf.extend(row.into_iter().map(|v| self.dict.intern(v.into())));
            rel.push(&buf)?;
        }
        rel.sort_dedup();
        self.add_relation(name, rel);
        Ok(())
    }

    /// Decodes a relation's tuples back into user-facing values.
    pub fn decode(&self, rel: &Relation) -> Vec<Vec<Value>> {
        rel.rows()
            .map(|r| r.iter().map(|&id| self.dict.decode(id).clone()).collect())
            .collect()
    }

    /// Renders a relation as a plain-text table (for examples and the
    /// experiments harness).
    pub fn render_table(&self, rel: &Relation) -> String {
        let attrs = rel.schema().attrs();
        let mut cols: Vec<Vec<String>> = attrs.iter().map(|a| vec![a.name().to_owned()]).collect();
        for row in rel.rows() {
            for (c, &id) in row.iter().enumerate() {
                cols[c].push(self.dict.decode(id).to_string());
            }
        }
        let widths: Vec<usize> = cols
            .iter()
            .map(|c| c.iter().map(|s| s.len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        let nrows = rel.len() + 1;
        for r in 0..nrows {
            for (c, col) in cols.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", col[r], w = widths[c]);
            }
            out.push('\n');
            if r == 0 {
                for &w in &widths {
                    let _ = write!(out, "{}  ", "-".repeat(w));
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_interns_and_dedups() {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["userID", "ISBN"]),
            vec![
                vec![Value::str("jack"), Value::str("978-3-16-1")],
                vec![Value::str("tom"), Value::str("634-3-12-2")],
                vec![Value::str("jack"), Value::str("978-3-16-1")],
            ],
        )
        .unwrap();
        let r = db.relation("R").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(db.dict().len(), 4);
    }

    #[test]
    fn unknown_relation_errors() {
        let db = Database::new();
        assert!(db.relation("missing").is_err());
    }

    #[test]
    fn decode_round_trips() {
        let mut db = Database::new();
        db.load("R", Schema::of(&["x"]), vec![vec![Value::Int(42)]])
            .unwrap();
        let rel = db.relation("R").unwrap().clone();
        let rows = db.decode(&rel);
        assert_eq!(rows, vec![vec![Value::Int(42)]]);
    }

    #[test]
    fn render_table_contains_headers_and_values() {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["userID", "price"]),
            vec![vec![Value::str("jack"), Value::str("30")]],
        )
        .unwrap();
        let rel = db.relation("R").unwrap().clone();
        let table = db.render_table(&rel);
        assert!(table.contains("userID"));
        assert!(table.contains("jack"));
        assert!(table.contains("30"));
    }

    #[test]
    fn relation_names_sorted() {
        let mut db = Database::new();
        db.add_relation("zeta", Relation::new(Schema::of(&["a"])));
        db.add_relation("alpha", Relation::new(Schema::of(&["a"])));
        assert_eq!(db.relation_names(), vec!["alpha", "zeta"]);
    }
}
