//! Relational substrate for the XJoin reproduction.
//!
//! This crate implements everything a worst-case optimal join engine needs on
//! the relational side, from scratch:
//!
//! * dictionary-encoded [`value::Value`]s and [`value::Dict`];
//! * [`schema::Schema`]s and in-memory [`relation::Relation`]s;
//! * flat sorted [`trie::Trie`]s and [`leapfrog`] intersection;
//! * two worst-case optimal engines — the streaming [`lftj`] (Leapfrog
//!   Triejoin, Veldhuizen 2012) and the instrumented level-wise
//!   [`generic`] join (Ngo et al. 2012), whose per-level intermediate
//!   counts are the quantity the paper's Lemma 3.5 bounds;
//! * the classical pairwise [`hashjoin`] comparator;
//! * a [`catalog`] and synthetic [`generator`]s (including AGM-tight product
//!   instances per the paper's Lemma 3.2).
//!
//! The XML substrate (`xmldb`) lowers twig patterns onto the same tries, so
//! the multi-model engine (`xjoin-core`) joins both data models with one
//! kernel.

#![warn(missing_docs)]

pub mod catalog;
pub mod delta;
pub mod error;
pub mod generator;
pub mod generic;
pub mod hashjoin;
pub mod leapfrog;
pub mod lftj;
pub mod plan;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod text;
pub mod trie;
pub mod value;

pub use catalog::Database;
pub use delta::DeltaTrie;
pub use error::{RelError, Result};
pub use leapfrog::{block_seek, block_seek_counted, gallop, gallop_counted};
pub use lftj::{LftjWalk, ProbeKernel, WalkCounters};
pub use plan::{JoinPlan, Ladder, ValueRange};
pub use relation::Relation;
pub use schema::{Attr, Schema};
pub use stats::{BuildStats, JoinStats, LevelProbeStats, SortPath};
pub use trie::{LevelLayout, LevelSummary, Trie, TrieBuilder};
pub use value::{Dict, Value, ValueId};
