//! Flat sorted tries over relations.
//!
//! A [`Trie`] stores a relation's distinct tuples, sorted lexicographically
//! under a chosen attribute order, as one flat array per level. Node `i` of
//! level `d` owns the contiguous child range
//! `child_start[i] .. child_start[i+1]` of level `d+1`, so every "children of
//! a node" view is a sorted `&[ValueId]` slice — exactly what leapfrog
//! intersection consumes.
//!
//! All worst-case optimal engines in this workspace (LFTJ, the level-wise
//! generic join, and XJoin) navigate these tries. XML path relations are
//! lowered to the same representation (see the `xmldb::transform` module), so
//! one join kernel serves both data models.

use crate::error::{RelError, Result};
use crate::relation::Relation;
use crate::schema::{Attr, Schema};
use crate::value::ValueId;
use std::ops::Range;

/// One level of a [`Trie`]: the values of all nodes at this depth plus the
/// child ranges pointing into the next level.
#[derive(Debug, Clone)]
struct TrieLevel {
    /// Node values at this depth, grouped by parent and sorted within each
    /// group.
    vals: Vec<ValueId>,
    /// `child_start[i]..child_start[i+1]` is node `i`'s child range in the
    /// next level. Empty for the deepest level.
    child_start: Vec<u32>,
}

/// A flat sorted trie over a relation under a fixed attribute order.
#[derive(Debug, Clone)]
pub struct Trie {
    attrs: Vec<Attr>,
    levels: Vec<TrieLevel>,
    tuples: usize,
}

impl Trie {
    /// Builds a trie over `rel`'s distinct tuples, with levels ordered by
    /// `order` (which must be a permutation of `rel`'s schema).
    pub fn build(rel: &Relation, order: &[Attr]) -> Result<Trie> {
        let arity = rel.arity();
        if order.len() != arity {
            return Err(RelError::InvalidOrder(format!(
                "trie order has {} attributes, relation has arity {}",
                order.len(),
                arity
            )));
        }
        let positions: Vec<usize> = order
            .iter()
            .map(|a| rel.schema().require(a))
            .collect::<Result<_>>()?;

        if arity == 0 {
            return Ok(Trie {
                attrs: Vec::new(),
                levels: Vec::new(),
                tuples: usize::from(!rel.is_empty()),
            });
        }

        // Sort (a permutation of) the row indices by the reordered columns
        // and drop duplicate tuples.
        let n = rel.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let key = |r: u32| -> Vec<ValueId> {
            let row = rel.row(r as usize);
            positions.iter().map(|&p| row[p]).collect()
        };
        perm.sort_unstable_by_key(|&r| key(r));
        perm.dedup_by_key(|r| key(*r));
        let rows: Vec<Vec<ValueId>> = perm.iter().map(|&r| key(r)).collect();

        let mut levels: Vec<TrieLevel> = Vec::with_capacity(arity);
        // Groups of row indices sharing the length-`d` prefix. Group `g` at
        // depth `d` holds the children rows of node `g` of level `d - 1`.
        #[allow(clippy::single_range_in_vec_init)]
        let mut groups: Vec<Range<usize>> = vec![0..rows.len()];
        for d in 0..arity {
            let mut vals = Vec::new();
            let mut next_groups = Vec::new();
            // Node-index boundary in `vals` where each group's nodes begin;
            // this is exactly the previous level's `child_start`.
            let mut group_node_start: Vec<u32> = Vec::with_capacity(groups.len() + 1);
            for g in &groups {
                group_node_start.push(vals.len() as u32);
                let mut i = g.start;
                while i < g.end {
                    let v = rows[i][d];
                    let mut j = i + 1;
                    while j < g.end && rows[j][d] == v {
                        j += 1;
                    }
                    vals.push(v);
                    next_groups.push(i..j);
                    i = j;
                }
            }
            group_node_start.push(vals.len() as u32);
            if d > 0 {
                levels[d - 1].child_start = group_node_start;
            }
            levels.push(TrieLevel {
                vals,
                child_start: Vec::new(),
            });
            groups = next_groups;
        }

        Ok(Trie {
            attrs: order.to_vec(),
            levels,
            tuples: rows.len(),
        })
    }

    /// Builds a trie using the relation's own schema order.
    pub fn from_relation(rel: &Relation) -> Trie {
        Trie::build(rel, rel.schema().attrs()).expect("schema order is always valid")
    }

    /// The attribute order of the trie's levels (root level first).
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Number of levels (the relation's arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of distinct tuples stored.
    pub fn num_tuples(&self) -> usize {
        self.tuples
    }

    /// Number of nodes at `level`.
    pub fn level_len(&self, level: usize) -> usize {
        self.levels[level].vals.len()
    }

    /// The sibling range of the root's children (all of level 0).
    pub fn root_range(&self) -> Range<u32> {
        if self.levels.is_empty() {
            0..0
        } else {
            0..self.levels[0].vals.len() as u32
        }
    }

    /// The child range (into `level + 1`) of node `node` at `level`.
    ///
    /// # Panics
    /// Panics if `level` is the deepest level.
    pub fn children(&self, level: usize, node: u32) -> Range<u32> {
        let l = &self.levels[level];
        assert!(
            !l.child_start.is_empty(),
            "children() on leaf level {level}"
        );
        l.child_start[node as usize]..l.child_start[node as usize + 1]
    }

    /// The values of the nodes in `range` at `level`, as a sorted slice.
    pub fn values(&self, level: usize, range: Range<u32>) -> &[ValueId] {
        &self.levels[level].vals[range.start as usize..range.end as usize]
    }

    /// The value of a single node.
    pub fn value(&self, level: usize, node: u32) -> ValueId {
        self.levels[level].vals[node as usize]
    }

    /// Materialises the trie back into a relation with attributes in trie
    /// order. Mostly used by tests to check the round-trip invariant.
    pub fn to_relation(&self) -> Relation {
        let schema = Schema::new(self.attrs.iter().cloned()).expect("trie attrs are distinct");
        let mut rel = Relation::with_capacity(schema, self.tuples);
        if self.levels.is_empty() {
            for _ in 0..self.tuples {
                rel.push(&[]).expect("nullary push");
            }
            return rel;
        }
        let mut prefix: Vec<ValueId> = Vec::with_capacity(self.arity());
        self.emit(0, self.root_range(), &mut prefix, &mut rel);
        rel
    }

    fn emit(&self, level: usize, range: Range<u32>, prefix: &mut Vec<ValueId>, out: &mut Relation) {
        for node in range.clone() {
            prefix.push(self.value(level, node));
            if level + 1 == self.arity() {
                out.push(prefix).expect("arity matches");
            } else {
                self.emit(level + 1, self.children(level, node), prefix, out);
            }
            prefix.pop();
        }
    }

    /// Total number of trie nodes across all levels (a size metric used by
    /// benchmarks).
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(|l| l.vals.len()).sum()
    }

    /// Approximate heap footprint in bytes (value and child-range arrays;
    /// attribute names excluded). Trie caches charge entries against their
    /// byte budget using this estimate.
    pub fn estimated_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                l.vals.len() * std::mem::size_of::<ValueId>()
                    + l.child_start.len() * std::mem::size_of::<u32>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    fn sample() -> Relation {
        // R(a, b) = {(1,4), (1,5), (3,5), (1,4) dup}
        Relation::from_rows(
            Schema::of(&["a", "b"]),
            [[v(1), v(4)], [v(1), v(5)], [v(3), v(5)], [v(1), v(4)]],
        )
        .unwrap()
    }

    #[test]
    fn build_groups_and_sorts() {
        let t = Trie::from_relation(&sample());
        assert_eq!(t.arity(), 2);
        assert_eq!(t.num_tuples(), 3);
        assert_eq!(t.values(0, t.root_range()), &[v(1), v(3)]);
        let c1 = t.children(0, 0);
        assert_eq!(t.values(1, c1), &[v(4), v(5)]);
        let c3 = t.children(0, 1);
        assert_eq!(t.values(1, c3), &[v(5)]);
    }

    #[test]
    fn build_respects_custom_order() {
        let t = Trie::build(&sample(), &["b".into(), "a".into()]).unwrap();
        assert_eq!(t.values(0, t.root_range()), &[v(4), v(5)]);
        let c4 = t.children(0, 0);
        assert_eq!(t.values(1, c4), &[v(1)]);
        let c5 = t.children(0, 1);
        assert_eq!(t.values(1, c5), &[v(1), v(3)]);
    }

    #[test]
    fn build_rejects_bad_orders() {
        let r = sample();
        assert!(Trie::build(&r, &["a".into()]).is_err());
        assert!(Trie::build(&r, &["a".into(), "zz".into()]).is_err());
    }

    #[test]
    fn to_relation_round_trips_sorted_distinct() {
        let r = sample();
        let t = Trie::from_relation(&r);
        let back = t.to_relation();
        let mut expect = r;
        expect.sort_dedup();
        assert_eq!(back, expect);
    }

    #[test]
    fn round_trip_under_permuted_order() {
        let r = sample();
        let t = Trie::build(&r, &["b".into(), "a".into()]).unwrap();
        let back = t.to_relation();
        let expect = r.project(&["b".into(), "a".into()]).unwrap();
        assert!(back.set_eq(&expect));
    }

    #[test]
    fn empty_relation_produces_empty_trie() {
        let r = Relation::new(Schema::of(&["a", "b"]));
        let t = Trie::from_relation(&r);
        assert_eq!(t.num_tuples(), 0);
        assert_eq!(t.root_range(), 0..0);
        assert!(t.to_relation().is_empty());
    }

    #[test]
    fn unary_trie() {
        let r = Relation::from_rows(Schema::of(&["x"]), [[v(5)], [v(2)], [v(5)]]).unwrap();
        let t = Trie::from_relation(&r);
        assert_eq!(t.arity(), 1);
        assert_eq!(t.num_tuples(), 2);
        assert_eq!(t.values(0, t.root_range()), &[v(2), v(5)]);
    }

    #[test]
    fn nullary_trie_tracks_presence() {
        let mut r = Relation::new(Schema::new(Vec::<&str>::new()).unwrap());
        let t0 = Trie::from_relation(&r);
        assert_eq!(t0.num_tuples(), 0);
        r.push(&[]).unwrap();
        let t1 = Trie::from_relation(&r);
        assert_eq!(t1.num_tuples(), 1);
    }

    #[test]
    fn node_count_counts_all_levels() {
        let t = Trie::from_relation(&sample());
        // level 0: values 1,3 -> 2 nodes; level 1: 4,5 under 1 and 5 under 3 -> 3 nodes.
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn estimated_bytes_counts_vals_and_child_ranges() {
        let t = Trie::from_relation(&sample());
        // level 0: 2 vals + 3 child_start entries; level 1: 3 vals.
        assert_eq!(t.estimated_bytes(), (2 + 3 + 3) * 4);
        let empty = Trie::from_relation(&Relation::new(Schema::of(&["a"])));
        assert_eq!(empty.estimated_bytes(), 0);
    }

    #[test]
    fn three_level_trie_structure() {
        let r = Relation::from_rows(
            Schema::of(&["a", "b", "c"]),
            [
                [v(1), v(1), v(1)],
                [v(1), v(1), v(2)],
                [v(1), v(2), v(1)],
                [v(2), v(1), v(1)],
            ],
        )
        .unwrap();
        let t = Trie::from_relation(&r);
        assert_eq!(t.values(0, t.root_range()), &[v(1), v(2)]);
        let b_under_1 = t.children(0, 0);
        assert_eq!(t.values(1, b_under_1.clone()), &[v(1), v(2)]);
        let c_under_11 = t.children(1, b_under_1.start);
        assert_eq!(t.values(2, c_under_11), &[v(1), v(2)]);
        assert_eq!(t.num_tuples(), 4);
    }
}
