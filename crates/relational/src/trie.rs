//! Flat sorted tries over relations.
//!
//! A [`Trie`] stores a relation's distinct tuples, sorted lexicographically
//! under a chosen attribute order, as one flat array per level. Node `i` of
//! level `d` owns the contiguous child range
//! `child_start[i] .. child_start[i+1]` of level `d+1`, so every "children of
//! a node" view is a sorted `&[ValueId]` slice — exactly what leapfrog
//! intersection consumes.
//!
//! All worst-case optimal engines in this workspace (LFTJ, the level-wise
//! generic join, and XJoin) navigate these tries. XML path relations are
//! lowered to the same representation (see the `xmldb::transform` module), so
//! one join kernel serves both data models.
//!
//! Construction is the dominant cold-query cost, so it goes through the
//! allocation-conscious [`TrieBuilder`]: columns are reordered once into a
//! flat scratch buffer, a `u32` row permutation is sorted by comparing
//! columns in place (with an LSD radix fast path over dense value domains,
//! and no sort at all for pre-sorted input), and the levels are emitted by
//! scanning prefix change-points — no per-row `Vec` is ever allocated. The
//! original quadratic-allocation builder survives as
//! [`Trie::build_reference`] for differential tests and benchmarks.

use crate::error::{RelError, Result};
use crate::relation::Relation;
use crate::schema::{Attr, Schema};
use crate::stats::{BuildStats, SortPath};
use crate::value::ValueId;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::ops::Range;
use std::time::Instant;

/// One level of a [`Trie`]: the values of all nodes at this depth plus the
/// child ranges pointing into the next level.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TrieLevel {
    /// Node values at this depth, grouped by parent and sorted within each
    /// group.
    vals: Vec<ValueId>,
    /// `child_start[i]..child_start[i+1]` is node `i`'s child range in the
    /// next level. Empty for the deepest level.
    child_start: Vec<u32>,
    /// Bitmap seek accelerator, present iff the level's layout is
    /// [`LevelLayout::Bitset`]. `vals` is always kept, so slice-consuming
    /// engines are unaffected by the layout choice.
    bits: Option<LevelBits>,
    /// Cardinality summary of this level, attached at build time.
    summary: LevelSummary,
}

/// Per-level cardinality summary, the static half of the adaptive-ordering
/// estimate ladder ([`crate::plan::Ladder`]).
///
/// Attached by **both** trie builders at construction time, so a summary is
/// always exact for the trie it hangs off — including the fresh solid trie a
/// [`crate::delta::DeltaTrie`] compaction produces. `nodes` feeds no rung
/// directly but is the denominator of the average-fanout reading
/// (`next level's nodes / this level's nodes`); `distinct` is the *Paul*
/// rung: how many distinct values a cursor over this level can bind.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LevelSummary {
    /// Number of trie nodes at this level (= distinct prefixes of length
    /// `level + 1`).
    pub nodes: u64,
    /// Number of distinct *values* at this level, across all sibling groups.
    /// Equals `nodes` at the root level, where the single group is globally
    /// deduplicated.
    pub distinct: u64,
}

impl TrieLevel {
    fn layout(&self) -> LevelLayout {
        if self.bits.is_some() {
            LevelLayout::Bitset
        } else {
            LevelLayout::SortedVec
        }
    }
}

/// The physical layout backing one trie level's seek path.
///
/// Chosen per level by [`TrieBuilder`] (and the reference builder) from the
/// level's density: dense levels get a bitmap index on top of the sorted
/// value array. The choice is **transparent to all engines** — `vals` is
/// always retained, slice accessors like [`Trie::values`] are unchanged, and
/// seeks consult the layout behind the cursor API. The selection is
/// reported through `BuildStats::layouts`, `explain()`, and
/// `JoinStats::bitset_levels`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelLayout {
    /// Plain sorted value array; seeks run block-wise branch-reduced
    /// galloping ([`crate::leapfrog::block_seek`]).
    SortedVec,
    /// The sorted array is augmented with per-sibling-group bitmaps and a
    /// rank directory, so a seek is a word scan plus popcount instead of a
    /// search. Selected for levels with at least `BITSET_MIN_NODES` nodes
    /// whose total value span is at most `BITSET_SPAN_FACTOR`× the node
    /// count (dense dictionary ids — the common case for generated and
    /// dictionary-encoded data).
    Bitset,
}

impl std::fmt::Display for LevelLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LevelLayout::SortedVec => "sorted",
            LevelLayout::Bitset => "bitset",
        })
    }
}

/// Per-sibling-group bitmap index accelerating seeks on a dense level.
///
/// Group `g` — the children of node `g` of the previous level; the whole
/// level for depth 0 — owns words `word_start[g]..word_start[g+1]`. Bit `b`
/// of the group's `w`-th word is set iff value `base[g] + 64·w + b` occurs
/// among the group's siblings. `rank[w]` counts the set bits in the group's
/// words strictly before `w` (group-relative), so a hit converts to an
/// absolute node index with a single popcount.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LevelBits {
    /// Per group: first owned word index; `groups + 1` entries.
    word_start: Vec<u32>,
    /// Per group: the value bit 0 of its first word represents.
    base: Vec<ValueId>,
    /// The bitmap words of all groups, concatenated.
    words: Vec<u64>,
    /// Per word: set-bit count of the owning group's earlier words.
    rank: Vec<u32>,
}

impl LevelBits {
    /// First node index in `pos..hi` of `group` (whose nodes start at
    /// absolute index `group_start`) with value `>= target` — the bitmap
    /// counterpart of [`crate::leapfrog::block_seek`] over the group's
    /// sibling slice. Returns `hi` when no such node exists.
    pub(crate) fn seek(
        &self,
        group: u32,
        group_start: u32,
        pos: u32,
        hi: u32,
        target: ValueId,
    ) -> u32 {
        let g = group as usize;
        let base = self.base[g];
        if target <= base {
            return pos;
        }
        let off = (target.0 - base.0) as usize;
        let w_end = self.word_start[g + 1] as usize;
        let mut w = self.word_start[g] as usize + off / 64;
        if w >= w_end {
            return hi;
        }
        let mut word = self.words[w] & (!0u64 << (off % 64));
        while word == 0 {
            w += 1;
            if w >= w_end {
                return hi;
            }
            word = self.words[w];
        }
        let bit = word.trailing_zeros();
        let below = (self.words[w] & ((1u64 << bit) - 1)).count_ones();
        // Values ascend within a group, so clamping into the cursor's
        // window is exact — it only matters for root ranges restricted by
        // morsel partitioning.
        (group_start + self.rank[w] + below).clamp(pos, hi)
    }

    /// [`Self::seek`] with a work count: returns `(position, words)` where
    /// `words` is the number of bitmap words examined. The position is
    /// always identical to `seek`'s.
    pub(crate) fn seek_counted(
        &self,
        group: u32,
        group_start: u32,
        pos: u32,
        hi: u32,
        target: ValueId,
    ) -> (u32, u64) {
        let g = group as usize;
        let base = self.base[g];
        if target <= base {
            return (pos, 0);
        }
        let off = (target.0 - base.0) as usize;
        let w_end = self.word_start[g + 1] as usize;
        let mut w = self.word_start[g] as usize + off / 64;
        if w >= w_end {
            return (hi, 0);
        }
        let mut words = 1u64;
        let mut word = self.words[w] & (!0u64 << (off % 64));
        while word == 0 {
            w += 1;
            if w >= w_end {
                return (hi, words);
            }
            word = self.words[w];
            words += 1;
        }
        let bit = word.trailing_zeros();
        let below = (self.words[w] & ((1u64 << bit) - 1)).count_ones();
        ((group_start + self.rank[w] + below).clamp(pos, hi), words)
    }

    fn bytes(&self) -> usize {
        self.word_start.len() * std::mem::size_of::<u32>()
            + self.base.len() * std::mem::size_of::<ValueId>()
            + self.words.len() * std::mem::size_of::<u64>()
            + self.rank.len() * std::mem::size_of::<u32>()
    }
}

/// Minimum node count for a level to be considered for [`LevelLayout::Bitset`];
/// tiny levels seek fast enough through the sorted array alone.
const BITSET_MIN_NODES: usize = 64;
/// Maximum total value span (summed over sibling groups: `last − first + 1`)
/// relative to the node count for a level to qualify as dense.
const BITSET_SPAN_FACTOR: usize = 8;

/// Deterministic post-pass choosing each level's [`LevelLayout`] from the
/// emitted `vals`/`child_start` arrays and attaching bitmap indexes to the
/// dense levels. Invoked by **both** [`TrieBuilder::build`] and
/// [`Trie::build_reference`] with the same threshold, so differential suites
/// comparing whole tries (derived `PartialEq`, `estimated_bytes`) hold.
fn attach_bitsets(levels: &mut [TrieLevel], min_nodes: usize) {
    for d in 0..levels.len() {
        let (parents, rest) = levels.split_at_mut(d);
        let level = &mut rest[0];
        level.bits = None;
        let n = level.vals.len();
        if n < min_nodes {
            continue;
        }
        // Sibling-group boundaries: the previous level's child ranges, or a
        // single group spanning the whole level at the root.
        let root_bounds = [0u32, n as u32];
        let bounds: &[u32] = if d == 0 {
            &root_bounds
        } else {
            &parents[d - 1].child_start
        };
        let mut span_total = 0u64;
        for g in bounds.windows(2) {
            let (s, e) = (g[0] as usize, g[1] as usize);
            if e > s {
                span_total += u64::from(level.vals[e - 1].0 - level.vals[s].0) + 1;
            }
        }
        if span_total > (BITSET_SPAN_FACTOR * n) as u64 {
            continue;
        }
        let groups = bounds.len() - 1;
        let mut bits = LevelBits {
            word_start: Vec::with_capacity(groups + 1),
            base: Vec::with_capacity(groups),
            words: Vec::with_capacity(span_total.div_ceil(64) as usize),
            rank: Vec::new(),
        };
        bits.word_start.push(0);
        for g in bounds.windows(2) {
            let (s, e) = (g[0] as usize, g[1] as usize);
            let base = if e > s { level.vals[s] } else { ValueId(0) };
            bits.base.push(base);
            let w0 = bits.words.len();
            if e > s {
                let span = (level.vals[e - 1].0 - base.0) as usize + 1;
                bits.words.resize(w0 + span.div_ceil(64), 0);
                for &v in &level.vals[s..e] {
                    let off = (v.0 - base.0) as usize;
                    bits.words[w0 + off / 64] |= 1u64 << (off % 64);
                }
            }
            let mut running = 0u32;
            for w in w0..bits.words.len() {
                bits.rank.push(running);
                running += bits.words[w].count_ones();
            }
            bits.word_start.push(bits.words.len() as u32);
        }
        bits.rank.shrink_to_fit();
        level.bits = Some(bits);
    }
}

/// Deterministic post-pass computing each level's [`LevelSummary`]. Like
/// [`attach_bitsets`], it is invoked by **both** [`TrieBuilder::build`] and
/// [`Trie::build_reference`], so differential suites comparing whole tries
/// (derived `PartialEq`) keep holding. `scratch` is a reusable sort buffer
/// (the builder keeps one across builds; the reference path allocates).
fn attach_summaries(levels: &mut [TrieLevel], scratch: &mut Vec<ValueId>) {
    for (d, level) in levels.iter_mut().enumerate() {
        let nodes = level.vals.len() as u64;
        let distinct = if d == 0 {
            // The root level is one globally sorted, deduplicated group.
            nodes
        } else {
            scratch.clear();
            scratch.extend_from_slice(&level.vals);
            scratch.sort_unstable();
            scratch.dedup();
            scratch.len() as u64
        };
        level.summary = LevelSummary { nodes, distinct };
    }
}

/// A flat sorted trie over a relation under a fixed attribute order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trie {
    attrs: Vec<Attr>,
    levels: Vec<TrieLevel>,
    tuples: usize,
}

thread_local! {
    /// Per-thread scratch builder behind [`Trie::build`], so every build on
    /// a thread — engine plan assembly, `xjoin-store` registry fills,
    /// `PreparedQuery` cold paths — reuses the same scratch allocations.
    static SHARED_BUILDER: RefCell<TrieBuilder> = RefCell::new(TrieBuilder::new());
}

impl Trie {
    /// Builds a trie over `rel`'s distinct tuples, with levels ordered by
    /// `order` (which must be a permutation of `rel`'s schema).
    ///
    /// Routes through a thread-local [`TrieBuilder`], so repeated builds on
    /// one thread reuse scratch buffers; hold your own builder via
    /// [`TrieBuilder::new`] when you also want the [`BuildStats`].
    pub fn build(rel: &Relation, order: &[Attr]) -> Result<Trie> {
        SHARED_BUILDER.with(|b| b.borrow_mut().build(rel, order))
    }

    /// Builds a trie using the relation's own schema order.
    pub fn from_relation(rel: &Relation) -> Trie {
        Trie::build(rel, rel.schema().attrs()).expect("schema order is always valid")
    }

    /// The original row-materialising builder, kept **only** as the
    /// reference implementation for differential tests and benchmarks (it
    /// allocates a fresh key `Vec` per comparison and a `Vec` per row).
    /// Production code paths must use [`Trie::build`].
    #[doc(hidden)]
    pub fn build_reference(rel: &Relation, order: &[Attr]) -> Result<Trie> {
        let arity = rel.arity();
        let positions = check_order(rel, order)?;

        if arity == 0 {
            return Ok(Trie {
                attrs: Vec::new(),
                levels: Vec::new(),
                tuples: usize::from(!rel.is_empty()),
            });
        }

        // Sort (a permutation of) the row indices by the reordered columns
        // and drop duplicate tuples.
        let n = rel.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let key = |r: u32| -> Vec<ValueId> {
            let row = rel.row(r as usize);
            positions.iter().map(|&p| row[p]).collect()
        };
        perm.sort_unstable_by_key(|&r| key(r));
        perm.dedup_by_key(|r| key(*r));
        let rows: Vec<Vec<ValueId>> = perm.iter().map(|&r| key(r)).collect();

        let mut levels: Vec<TrieLevel> = Vec::with_capacity(arity);
        // Groups of row indices sharing the length-`d` prefix. Group `g` at
        // depth `d` holds the children rows of node `g` of level `d - 1`.
        #[allow(clippy::single_range_in_vec_init)]
        let mut groups: Vec<Range<usize>> = vec![0..rows.len()];
        for d in 0..arity {
            let mut vals = Vec::new();
            let mut next_groups = Vec::new();
            // Node-index boundary in `vals` where each group's nodes begin;
            // this is exactly the previous level's `child_start`.
            let mut group_node_start: Vec<u32> = Vec::with_capacity(groups.len() + 1);
            for g in &groups {
                group_node_start.push(vals.len() as u32);
                let mut i = g.start;
                while i < g.end {
                    let v = rows[i][d];
                    let mut j = i + 1;
                    while j < g.end && rows[j][d] == v {
                        j += 1;
                    }
                    vals.push(v);
                    next_groups.push(i..j);
                    i = j;
                }
            }
            group_node_start.push(vals.len() as u32);
            if d > 0 {
                levels[d - 1].child_start = group_node_start;
            }
            levels.push(TrieLevel {
                vals,
                child_start: Vec::new(),
                bits: None,
                summary: LevelSummary::default(),
            });
            groups = next_groups;
        }
        attach_bitsets(&mut levels, BITSET_MIN_NODES);
        attach_summaries(&mut levels, &mut Vec::new());

        Ok(Trie {
            attrs: order.to_vec(),
            levels,
            tuples: rows.len(),
        })
    }

    /// The attribute order of the trie's levels (root level first).
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Number of levels (the relation's arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of distinct tuples stored.
    pub fn num_tuples(&self) -> usize {
        self.tuples
    }

    /// Number of nodes at `level`.
    pub fn level_len(&self, level: usize) -> usize {
        self.levels[level].vals.len()
    }

    /// The sibling range of the root's children (all of level 0).
    pub fn root_range(&self) -> Range<u32> {
        if self.levels.is_empty() {
            0..0
        } else {
            0..self.levels[0].vals.len() as u32
        }
    }

    /// The child range (into `level + 1`) of node `node` at `level`.
    ///
    /// # Panics
    /// Panics if `level` is the deepest level.
    pub fn children(&self, level: usize, node: u32) -> Range<u32> {
        let l = &self.levels[level];
        assert!(
            !l.child_start.is_empty(),
            "children() on leaf level {level}"
        );
        l.child_start[node as usize]..l.child_start[node as usize + 1]
    }

    /// The values of the nodes in `range` at `level`, as a sorted slice.
    pub fn values(&self, level: usize, range: Range<u32>) -> &[ValueId] {
        &self.levels[level].vals[range.start as usize..range.end as usize]
    }

    /// The value of a single node.
    pub fn value(&self, level: usize, node: u32) -> ValueId {
        self.levels[level].vals[node as usize]
    }

    /// The cardinality summary of `level`, attached at build time (exact
    /// for this trie's contents).
    pub fn level_summary(&self, level: usize) -> LevelSummary {
        self.levels[level].summary
    }

    /// The physical [`LevelLayout`] of `level`.
    pub fn level_layout(&self, level: usize) -> LevelLayout {
        self.levels[level].layout()
    }

    /// The layout of every level, root level first.
    pub fn level_layouts(&self) -> Vec<LevelLayout> {
        self.levels.iter().map(TrieLevel::layout).collect()
    }

    /// Number of levels carrying the [`LevelLayout::Bitset`] layout.
    pub fn bitset_level_count(&self) -> usize {
        self.levels.iter().filter(|l| l.bits.is_some()).count()
    }

    /// The full value array and optional bitmap index of `level` — the raw
    /// view the batched probe kernel caches once per batch refill.
    pub(crate) fn level_view(&self, level: usize) -> (&[ValueId], Option<&LevelBits>) {
        let l = &self.levels[level];
        (&l.vals, l.bits.as_ref())
    }

    /// Materialises the trie back into a relation with attributes in trie
    /// order. Mostly used by tests to check the round-trip invariant.
    ///
    /// The walk is iterative (an explicit per-level cursor stack), so deep
    /// tries cannot overflow the call stack.
    pub fn to_relation(&self) -> Relation {
        let schema = Schema::new(self.attrs.iter().cloned()).expect("trie attrs are distinct");
        let mut rel = Relation::with_capacity(schema, self.tuples);
        if self.levels.is_empty() {
            for _ in 0..self.tuples {
                rel.push(&[]).expect("nullary push");
            }
            return rel;
        }
        let arity = self.arity();
        let mut prefix: Vec<ValueId> = Vec::with_capacity(arity);
        // cursors[d] = the sibling range still to visit at level d.
        let mut cursors: Vec<Range<u32>> = Vec::with_capacity(arity);
        cursors.push(self.root_range());
        while !cursors.is_empty() {
            let level = cursors.len() - 1;
            let range = cursors.last_mut().expect("non-empty stack");
            let Some(node) = range.next() else {
                cursors.pop();
                prefix.pop();
                continue;
            };
            prefix.truncate(level);
            prefix.push(self.value(level, node));
            if level + 1 == arity {
                rel.push(&prefix).expect("arity matches");
            } else {
                cursors.push(self.children(level, node));
            }
        }
        rel
    }

    /// Total number of trie nodes across all levels (a size metric used by
    /// benchmarks).
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(|l| l.vals.len()).sum()
    }

    /// Approximate heap footprint in bytes (value, child-range, and bitmap
    /// index arrays; attribute names excluded). Trie caches charge entries
    /// against their byte budget using this estimate, so bitset layouts pay
    /// for their index space there too.
    pub fn estimated_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                l.vals.len() * std::mem::size_of::<ValueId>()
                    + l.child_start.len() * std::mem::size_of::<u32>()
                    + l.bits.as_ref().map_or(0, LevelBits::bytes)
            })
            .sum()
    }
}

/// Validates that `order` is a permutation of `rel`'s schema and resolves
/// each order attribute to its column position.
fn check_order(rel: &Relation, order: &[Attr]) -> Result<Vec<usize>> {
    if order.len() != rel.arity() {
        return Err(RelError::InvalidOrder(format!(
            "trie order has {} attributes, relation has arity {}",
            order.len(),
            rel.arity()
        )));
    }
    let positions: Vec<usize> = order
        .iter()
        .map(|a| rel.schema().require(a))
        .collect::<Result<_>>()?;
    // Schema attributes are distinct, so a repeated order attribute maps to
    // a repeated position — which, with the length check above, would
    // silently drop some other column.
    for (i, p) in positions.iter().enumerate() {
        if positions[..i].contains(p) {
            return Err(RelError::InvalidOrder(format!(
                "duplicate attribute `{}` in trie order",
                order[i]
            )));
        }
    }
    Ok(positions)
}

/// An allocation-conscious columnar trie builder with reusable scratch
/// buffers.
///
/// One `build` performs **zero per-row allocations**:
///
/// 1. the relation's columns are scattered once, in the requested level
///    order, into a flat scratch buffer (`cols`, level-major);
/// 2. a `u32` row permutation is sorted by comparing those columns in
///    place — no per-key `Vec` is ever materialised. Three sort paths:
///    * **pre-sorted** — a linear pre-check detects input already sorted
///      under the requested order and skips sorting entirely (the common
///      case for tries rebuilt from `sort_dedup`ed relations);
///    * **radix** — when the value domain is *dense* relative to the row
///      count (`max_id < max(4·rows, 1024)` and at least 64 rows), an LSD
///      counting sort runs one stable O(rows + domain) pass per level,
///      beating comparison sorting by a wide margin on dictionary-encoded
///      data (ids are dense by construction);
///    * **comparison** — otherwise, `sort_unstable_by` over the permutation
///      comparing columns in place;
/// 3. duplicates are dropped and every level's `vals` / `child_start` arrays
///    are emitted by scanning prefix change-points over the permuted
///    columns directly — the sorted rows are never materialised.
///
/// The scratch buffers (`cols`, the permutation, the radix histogram, the
/// change-point array) persist across builds, so a builder that serves many
/// constructions — a query's plan assembly, an `xjoin-store` registry fill —
/// stops allocating once warm. [`Trie::build`] routes through a thread-local
/// instance; hold your own when you want [`TrieBuilder::last_stats`].
#[derive(Debug)]
pub struct TrieBuilder {
    /// Level-major column scratch: level `d` of the current build occupies
    /// `cols[d*n .. (d+1)*n]`.
    cols: Vec<ValueId>,
    /// Row permutation being sorted.
    perm: Vec<u32>,
    /// Double buffer for the radix scatter passes.
    perm_tmp: Vec<u32>,
    /// Radix histogram / prefix-sum buffer.
    counts: Vec<u32>,
    /// `diff[i]` = first level at which deduped rows `i` and `i+1` differ.
    diff: Vec<u32>,
    /// Sort buffer for the per-level distinct counts ([`attach_summaries`]).
    summary_scratch: Vec<ValueId>,
    /// Profile of the most recent build.
    last: Option<BuildStats>,
    /// Whether dense levels get the [`LevelLayout::Bitset`] layout
    /// (default `true`; benchmarks disable it to measure plain layouts).
    bitset_enabled: bool,
    /// Node-count threshold for the bitset layout; overridable (hidden) so
    /// small-input tests can force bitsets on.
    bitset_min_nodes: usize,
}

impl Default for TrieBuilder {
    fn default() -> TrieBuilder {
        TrieBuilder {
            cols: Vec::new(),
            perm: Vec::new(),
            perm_tmp: Vec::new(),
            counts: Vec::new(),
            diff: Vec::new(),
            summary_scratch: Vec::new(),
            last: None,
            bitset_enabled: true,
            bitset_min_nodes: BITSET_MIN_NODES,
        }
    }
}

/// Minimum row count for the radix path; below this the histogram setup
/// costs more than a comparison sort of the tiny permutation.
const RADIX_MIN_ROWS: usize = 64;
/// Scratch buffers are released after a build when their capacity exceeds
/// this multiple of what the build actually needed (and the floor below):
/// one huge outlier build must not pin peak-sized scratch in every
/// long-lived builder (including the thread-local one) forever.
const SCRATCH_SLACK_FACTOR: usize = 4;
/// Capacity (in elements) scratch buffers may always keep, whatever the
/// current input size.
const SCRATCH_KEEP_FLOOR: usize = 1 << 16;
/// Domain slack allowed before radix is still considered dense: the
/// histogram may be up to `4·rows` wide (or 1024 for small inputs).
const RADIX_DOMAIN_FACTOR: usize = 4;
const RADIX_DOMAIN_FLOOR: usize = 1024;

impl TrieBuilder {
    /// A builder with empty scratch buffers.
    pub fn new() -> TrieBuilder {
        TrieBuilder::default()
    }

    /// Cost profile of the most recent [`TrieBuilder::build`] (`None` before
    /// the first build).
    pub fn last_stats(&self) -> Option<&BuildStats> {
        self.last.as_ref()
    }

    /// Enables or disables the per-level [`LevelLayout::Bitset`] selection
    /// (on by default). Probe benchmarks build with it off to measure the
    /// plain sorted layout under identical data.
    pub fn with_bitset_levels(mut self, enabled: bool) -> TrieBuilder {
        self.bitset_enabled = enabled;
        self
    }

    /// Overrides the node-count threshold above which dense levels get the
    /// bitset layout. Test-only: differential suites use a threshold of 1 to
    /// force bitsets onto small random inputs. Tries built with a
    /// non-default threshold compare unequal to reference-built ones.
    #[doc(hidden)]
    pub fn set_bitset_min_nodes(&mut self, min_nodes: usize) {
        self.bitset_min_nodes = min_nodes.max(1);
    }

    /// Builds a trie over `rel`'s distinct tuples with levels ordered by
    /// `order` — same contract and output as [`Trie::build`], reusing this
    /// builder's scratch buffers.
    pub fn build(&mut self, rel: &Relation, order: &[Attr]) -> Result<Trie> {
        let start = Instant::now();
        let arity = rel.arity();
        let positions = check_order(rel, order)?;

        if arity == 0 {
            let tuples = usize::from(!rel.is_empty());
            self.last = Some(BuildStats {
                rows_in: rel.len(),
                tuples,
                path: SortPath::AlreadySorted,
                layouts: Vec::new(),
                elapsed: start.elapsed(),
            });
            return Ok(Trie {
                attrs: Vec::new(),
                levels: Vec::new(),
                tuples,
            });
        }

        let n = rel.len();
        let max_id = self.scatter_columns(rel, &positions, n);
        let path = self.sort_permutation(arity, n, max_id);
        let tuples = self.dedup_and_diff(arity, n);
        let mut levels = self.emit_levels(arity, n, tuples);
        if self.bitset_enabled {
            attach_bitsets(&mut levels, self.bitset_min_nodes);
        }
        attach_summaries(&mut levels, &mut self.summary_scratch);
        self.trim_scratch(arity, n);

        self.last = Some(BuildStats {
            rows_in: n,
            tuples,
            path,
            layouts: levels.iter().map(TrieLevel::layout).collect(),
            elapsed: start.elapsed(),
        });
        Ok(Trie {
            attrs: order.to_vec(),
            levels,
            tuples,
        })
    }

    /// Scatters `rel`'s columns into the level-major scratch buffer and
    /// returns the largest value id seen (0 for an empty relation).
    fn scatter_columns(&mut self, rel: &Relation, positions: &[usize], n: usize) -> u32 {
        let arity = positions.len();
        self.cols.clear();
        self.cols.resize(arity * n, ValueId(0));
        let mut max_id = 0u32;
        for (i, row) in rel.rows().enumerate() {
            for (d, &p) in positions.iter().enumerate() {
                let v = row[p];
                max_id = max_id.max(v.0);
                self.cols[d * n + i] = v;
            }
        }
        max_id
    }

    /// Fills `perm` with a permutation of `0..n` sorted lexicographically by
    /// the scattered columns, choosing the cheapest applicable sort path.
    fn sort_permutation(&mut self, arity: usize, n: usize, max_id: u32) -> SortPath {
        self.perm.clear();
        self.perm.extend(0..n as u32);
        if self.input_is_sorted(arity, n) {
            return SortPath::AlreadySorted;
        }
        let domain = max_id as usize + 1;
        let dense_limit = (RADIX_DOMAIN_FACTOR * n).max(RADIX_DOMAIN_FLOOR);
        if n >= RADIX_MIN_ROWS && domain <= dense_limit {
            self.radix_sort(arity, n, domain);
            SortPath::Radix
        } else {
            let cols = &self.cols;
            self.perm.sort_unstable_by(|&x, &y| {
                for d in 0..arity {
                    match cols[d * n + x as usize].cmp(&cols[d * n + y as usize]) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                Ordering::Equal
            });
            SortPath::Comparison
        }
    }

    /// Linear pre-check: is row `i-1 <= i` lexicographically for all rows
    /// under the scattered column order?
    fn input_is_sorted(&self, arity: usize, n: usize) -> bool {
        'rows: for i in 1..n {
            for d in 0..arity {
                let prev = self.cols[d * n + i - 1];
                let cur = self.cols[d * n + i];
                match prev.cmp(&cur) {
                    Ordering::Less => continue 'rows,
                    Ordering::Greater => return false,
                    Ordering::Equal => {}
                }
            }
            // Equal rows (duplicates) keep the input sorted.
        }
        true
    }

    /// Stable LSD counting sort of `perm`: one O(n + domain) pass per level,
    /// least-significant level first, so the final permutation is sorted
    /// lexicographically.
    fn radix_sort(&mut self, arity: usize, n: usize, domain: usize) {
        self.perm_tmp.clear();
        self.perm_tmp.resize(n, 0);
        for d in (0..arity).rev() {
            let col = &self.cols[d * n..(d + 1) * n];
            self.counts.clear();
            self.counts.resize(domain + 1, 0);
            for &r in &self.perm {
                self.counts[col[r as usize].0 as usize + 1] += 1;
            }
            for i in 1..=domain {
                self.counts[i] += self.counts[i - 1];
            }
            for &r in &self.perm {
                let v = col[r as usize].0 as usize;
                self.perm_tmp[self.counts[v] as usize] = r;
                self.counts[v] += 1;
            }
            std::mem::swap(&mut self.perm, &mut self.perm_tmp);
        }
    }

    /// Compacts `perm` to distinct tuples and records, for each surviving
    /// adjacent pair, the first level at which they differ. Returns the
    /// number of distinct tuples.
    fn dedup_and_diff(&mut self, arity: usize, n: usize) -> usize {
        self.diff.clear();
        if n == 0 {
            return 0;
        }
        let mut kept = 1usize;
        for i in 1..n {
            let prev = self.perm[kept - 1] as usize;
            let cur = self.perm[i] as usize;
            let mut first = arity;
            for d in 0..arity {
                if self.cols[d * n + prev] != self.cols[d * n + cur] {
                    first = d;
                    break;
                }
            }
            if first == arity {
                continue; // duplicate tuple
            }
            self.diff.push(first as u32);
            self.perm[kept] = cur as u32;
            kept += 1;
        }
        kept
    }

    /// Releases scratch capacity far in excess of what the build just done
    /// needed, so a single outlier build does not pin peak-sized buffers in
    /// a long-lived (e.g. thread-local) builder indefinitely. Within the
    /// slack bounds, capacity is kept — steady-state builds stay
    /// allocation-free.
    fn trim_scratch(&mut self, arity: usize, n: usize) {
        fn trim<T>(buf: &mut Vec<T>, needed: usize) {
            let keep = (needed * SCRATCH_SLACK_FACTOR).max(SCRATCH_KEEP_FLOOR);
            if buf.capacity() > keep {
                buf.shrink_to(keep);
            }
        }
        trim(&mut self.cols, arity * n);
        trim(&mut self.perm, n);
        trim(&mut self.perm_tmp, n);
        trim(&mut self.diff, n);
        trim(&mut self.summary_scratch, n);
        // The histogram is sized by the value domain, not the row count; its
        // own dense-domain bound is already ~4n, so trim it on the same
        // scale.
        trim(&mut self.counts, n);
    }

    /// Emits every level's `vals` and `child_start` by scanning the prefix
    /// change-points (`diff`) over the deduped permutation — the sorted rows
    /// are never materialised. `m` is the distinct-tuple count.
    fn emit_levels(&self, arity: usize, n: usize, m: usize) -> Vec<TrieLevel> {
        let mut levels: Vec<TrieLevel> = (0..arity)
            .map(|_| TrieLevel {
                vals: Vec::new(),
                child_start: Vec::new(),
                bits: None,
                summary: LevelSummary::default(),
            })
            .collect();
        for d in 0..arity {
            let col = &self.cols[d * n..(d + 1) * n];
            // A node starts at row i of level d iff the length-(d+1) prefix
            // changes there; a *parent* node starts iff the length-d prefix
            // changes, which is exactly where the previous level's
            // child_start boundaries go.
            let mut nodes_at_d: u32 = 0;
            let mut vals: Vec<ValueId> = Vec::new();
            let mut parent_starts: Vec<u32> = Vec::new();
            for i in 0..m {
                let first_diff = if i == 0 { 0 } else { self.diff[i - 1] as usize };
                if d > 0 && (i == 0 || first_diff < d) {
                    parent_starts.push(nodes_at_d);
                }
                if i == 0 || first_diff <= d {
                    vals.push(col[self.perm[i] as usize]);
                    nodes_at_d += 1;
                }
            }
            if d > 0 {
                parent_starts.push(nodes_at_d);
                levels[d - 1].child_start = parent_starts;
            }
            levels[d].vals = vals;
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    fn sample() -> Relation {
        // R(a, b) = {(1,4), (1,5), (3,5), (1,4) dup}
        Relation::from_rows(
            Schema::of(&["a", "b"]),
            [[v(1), v(4)], [v(1), v(5)], [v(3), v(5)], [v(1), v(4)]],
        )
        .unwrap()
    }

    #[test]
    fn build_groups_and_sorts() {
        let t = Trie::from_relation(&sample());
        assert_eq!(t.arity(), 2);
        assert_eq!(t.num_tuples(), 3);
        assert_eq!(t.values(0, t.root_range()), &[v(1), v(3)]);
        let c1 = t.children(0, 0);
        assert_eq!(t.values(1, c1), &[v(4), v(5)]);
        let c3 = t.children(0, 1);
        assert_eq!(t.values(1, c3), &[v(5)]);
    }

    #[test]
    fn level_summaries_are_exact() {
        // R(a, b) = {(1,4), (1,5), (3,5)}: level 0 has 2 nodes / 2 distinct,
        // level 1 has 3 nodes but only 2 distinct values (5 repeats).
        let t = Trie::from_relation(&sample());
        assert_eq!(
            t.level_summary(0),
            LevelSummary {
                nodes: 2,
                distinct: 2
            }
        );
        assert_eq!(
            t.level_summary(1),
            LevelSummary {
                nodes: 3,
                distinct: 2
            }
        );
        let r = Trie::build_reference(&sample(), &["a".into(), "b".into()]).unwrap();
        assert_eq!(r.level_summary(0), t.level_summary(0));
        assert_eq!(r.level_summary(1), t.level_summary(1));
    }

    #[test]
    fn build_respects_custom_order() {
        let t = Trie::build(&sample(), &["b".into(), "a".into()]).unwrap();
        assert_eq!(t.values(0, t.root_range()), &[v(4), v(5)]);
        let c4 = t.children(0, 0);
        assert_eq!(t.values(1, c4), &[v(1)]);
        let c5 = t.children(0, 1);
        assert_eq!(t.values(1, c5), &[v(1), v(3)]);
    }

    #[test]
    fn build_rejects_bad_orders() {
        let r = sample();
        assert!(Trie::build(&r, &["a".into()]).is_err());
        assert!(Trie::build(&r, &["a".into(), "zz".into()]).is_err());
        assert!(Trie::build_reference(&r, &["a".into()]).is_err());
        // A duplicated attribute would silently drop another column.
        assert!(Trie::build(&r, &["a".into(), "a".into()]).is_err());
        assert!(Trie::build_reference(&r, &["b".into(), "b".into()]).is_err());
    }

    #[test]
    fn builder_matches_reference_on_sample() {
        let r = sample();
        for order in [
            vec![Attr::new("a"), Attr::new("b")],
            vec![Attr::new("b"), Attr::new("a")],
        ] {
            let mut b = TrieBuilder::new();
            let fast = b.build(&r, &order).unwrap();
            let reference = Trie::build_reference(&r, &order).unwrap();
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn builder_reports_sort_paths() {
        let mut b = TrieBuilder::new();

        // Unsorted small input → comparison sort.
        b.build(&sample(), &[Attr::new("a"), Attr::new("b")])
            .unwrap();
        assert_eq!(b.last_stats().unwrap().path, SortPath::Comparison);
        assert_eq!(b.last_stats().unwrap().rows_in, 4);
        assert_eq!(b.last_stats().unwrap().tuples, 3);

        // Already sorted input → the sort is skipped.
        let mut sorted = sample();
        sorted.sort_dedup();
        b.build(&sorted, &[Attr::new("a"), Attr::new("b")]).unwrap();
        assert_eq!(b.last_stats().unwrap().path, SortPath::AlreadySorted);

        // Dense domain with enough rows → radix engages. 128 rows over a
        // domain of 8 values, written in descending order so the pre-check
        // fails.
        let mut dense = Relation::new(Schema::of(&["x", "y"]));
        for i in (0..128u32).rev() {
            dense.push(&[v(i % 8), v((i * 3) % 8)]).unwrap();
        }
        let t = b.build(&dense, &[Attr::new("x"), Attr::new("y")]).unwrap();
        assert_eq!(b.last_stats().unwrap().path, SortPath::Radix);
        assert_eq!(t, Trie::build_reference(&dense, t.attrs()).unwrap());
    }

    #[test]
    fn builder_scratch_survives_relation_shape_changes() {
        // One builder serving growing/shrinking arities and sizes must keep
        // producing reference-equal tries.
        let mut b = TrieBuilder::new();
        let r1 = sample();
        let r2 = Relation::from_rows(Schema::of(&["x"]), [[v(5)], [v(2)], [v(5)]]).unwrap();
        let mut r3 = Relation::new(Schema::of(&["p", "q", "r"]));
        for i in 0..100u32 {
            r3.push(&[v(i % 5), v(i % 7), v(i % 3)]).unwrap();
        }
        for _ in 0..2 {
            for r in [&r1, &r2, &r3] {
                let order = r.schema().attrs().to_vec();
                assert_eq!(
                    b.build(r, &order).unwrap(),
                    Trie::build_reference(r, &order).unwrap()
                );
            }
        }
    }

    #[test]
    fn outlier_builds_do_not_pin_peak_scratch() {
        let mut b = TrieBuilder::new();
        // A large build grows the column scratch well past the keep floor…
        let mut big = Relation::new(Schema::of(&["x", "y", "z"]));
        for i in 0..40_000u32 {
            big.push(&[v(i), v(i.wrapping_mul(7) % 1000), v(i % 17)])
                .unwrap();
        }
        b.build(&big, big.schema().attrs()).unwrap();
        assert!(b.cols.capacity() >= 120_000);
        // …and a subsequent tiny build releases the excess down to the
        // allowed slack.
        b.build(&sample(), &[Attr::new("a"), Attr::new("b")])
            .unwrap();
        assert!(b.cols.capacity() <= SCRATCH_KEEP_FLOOR * 2);
        assert!(b.perm.capacity() <= SCRATCH_KEEP_FLOOR * 2);
        // Correctness is unaffected after trimming.
        assert_eq!(
            b.build(&big, big.schema().attrs()).unwrap(),
            Trie::build_reference(&big, big.schema().attrs()).unwrap()
        );
    }

    #[test]
    fn to_relation_round_trips_sorted_distinct() {
        let r = sample();
        let t = Trie::from_relation(&r);
        let back = t.to_relation();
        let mut expect = r;
        expect.sort_dedup();
        assert_eq!(back, expect);
    }

    #[test]
    fn round_trip_under_permuted_order() {
        let r = sample();
        let t = Trie::build(&r, &["b".into(), "a".into()]).unwrap();
        let back = t.to_relation();
        let expect = r.project(&["b".into(), "a".into()]).unwrap();
        assert!(back.set_eq(&expect));
    }

    #[test]
    fn empty_relation_produces_empty_trie() {
        let r = Relation::new(Schema::of(&["a", "b"]));
        let t = Trie::from_relation(&r);
        assert_eq!(t.num_tuples(), 0);
        assert_eq!(t.root_range(), 0..0);
        assert!(t.to_relation().is_empty());
        assert_eq!(t, Trie::build_reference(&r, r.schema().attrs()).unwrap());
    }

    #[test]
    fn unary_trie() {
        let r = Relation::from_rows(Schema::of(&["x"]), [[v(5)], [v(2)], [v(5)]]).unwrap();
        let t = Trie::from_relation(&r);
        assert_eq!(t.arity(), 1);
        assert_eq!(t.num_tuples(), 2);
        assert_eq!(t.values(0, t.root_range()), &[v(2), v(5)]);
    }

    #[test]
    fn nullary_trie_tracks_presence() {
        let mut r = Relation::new(Schema::new(Vec::<&str>::new()).unwrap());
        let t0 = Trie::from_relation(&r);
        assert_eq!(t0.num_tuples(), 0);
        r.push(&[]).unwrap();
        let t1 = Trie::from_relation(&r);
        assert_eq!(t1.num_tuples(), 1);
    }

    #[test]
    fn node_count_counts_all_levels() {
        let t = Trie::from_relation(&sample());
        // level 0: values 1,3 -> 2 nodes; level 1: 4,5 under 1 and 5 under 3 -> 3 nodes.
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn estimated_bytes_counts_vals_and_child_ranges() {
        let t = Trie::from_relation(&sample());
        // level 0: 2 vals + 3 child_start entries; level 1: 3 vals.
        assert_eq!(t.estimated_bytes(), (2 + 3 + 3) * 4);
        let empty = Trie::from_relation(&Relation::new(Schema::of(&["a"])));
        assert_eq!(empty.estimated_bytes(), 0);
    }

    #[test]
    fn dense_level_gets_bitset_layout() {
        // 200 consecutive unary values: 200 nodes spanning exactly 200 ids —
        // maximally dense, comfortably past BITSET_MIN_NODES.
        let mut r = Relation::new(Schema::of(&["x"]));
        for i in 0..200u32 {
            r.push(&[v(i)]).unwrap();
        }
        let t = Trie::from_relation(&r);
        assert_eq!(t.level_layout(0), LevelLayout::Bitset);
        assert_eq!(t.level_layouts(), vec![LevelLayout::Bitset]);
        assert_eq!(t.bitset_level_count(), 1);
        // The index is extra footprint on top of the value array.
        assert!(t.estimated_bytes() > 200 * 4);
        // Reference builder must attach the identical index.
        assert_eq!(t, Trie::build_reference(&r, r.schema().attrs()).unwrap());
    }

    #[test]
    fn sparse_level_stays_sorted_vec() {
        // 200 values spaced 100 apart: span 19901 > 8×200 — too sparse.
        let mut r = Relation::new(Schema::of(&["x"]));
        for i in 0..200u32 {
            r.push(&[v(i * 100)]).unwrap();
        }
        let t = Trie::from_relation(&r);
        assert_eq!(t.level_layout(0), LevelLayout::SortedVec);
        assert_eq!(t.bitset_level_count(), 0);
        assert_eq!(t.estimated_bytes(), 200 * 4);
    }

    #[test]
    fn small_level_stays_sorted_vec() {
        let t = Trie::from_relation(&sample());
        assert_eq!(
            t.level_layouts(),
            vec![LevelLayout::SortedVec, LevelLayout::SortedVec]
        );
    }

    #[test]
    fn builder_bitset_toggle_strips_index() {
        let mut r = Relation::new(Schema::of(&["x"]));
        for i in 0..200u32 {
            r.push(&[v(i)]).unwrap();
        }
        let mut b = TrieBuilder::new().with_bitset_levels(false);
        let t = b.build(&r, r.schema().attrs()).unwrap();
        assert_eq!(t.level_layout(0), LevelLayout::SortedVec);
        assert_eq!(t.estimated_bytes(), 200 * 4);
        assert_eq!(
            b.last_stats().unwrap().layouts,
            vec![LevelLayout::SortedVec]
        );
    }

    #[test]
    fn bitset_seek_matches_block_seek_on_every_group() {
        use crate::leapfrog::block_seek;
        // Two-level trie with bitsets forced on tiny sibling groups, so the
        // per-group base/rank arithmetic is exercised on non-root levels.
        let mut r = Relation::new(Schema::of(&["a", "b"]));
        for a in 0..12u32 {
            for b in 0..6u32 {
                r.push(&[v(a * 2), v(a + b * 3)]).unwrap();
            }
        }
        let mut builder = TrieBuilder::new();
        builder.set_bitset_min_nodes(1);
        let t = builder.build(&r, r.schema().attrs()).unwrap();
        assert_eq!(t.bitset_level_count(), 2);
        for level in 0..2usize {
            let bits = t.level_view(level).1.expect("forced bitset");
            let groups: Vec<std::ops::Range<u32>> = if level == 0 {
                vec![t.root_range()]
            } else {
                (0..t.level_len(0) as u32)
                    .map(|n| t.children(0, n))
                    .collect()
            };
            for (g, range) in groups.iter().enumerate() {
                let slice = t.values(level, range.clone());
                for target in 0..40u32 {
                    let want = range.start + block_seek(slice, 0, v(target)) as u32;
                    let got = bits.seek(g as u32, range.start, range.start, range.end, v(target));
                    assert_eq!(got, want, "level {level} group {g} target {target}");
                }
            }
        }
    }

    #[test]
    fn three_level_trie_structure() {
        let r = Relation::from_rows(
            Schema::of(&["a", "b", "c"]),
            [
                [v(1), v(1), v(1)],
                [v(1), v(1), v(2)],
                [v(1), v(2), v(1)],
                [v(2), v(1), v(1)],
            ],
        )
        .unwrap();
        let t = Trie::from_relation(&r);
        assert_eq!(t.values(0, t.root_range()), &[v(1), v(2)]);
        let b_under_1 = t.children(0, 0);
        assert_eq!(t.values(1, b_under_1.clone()), &[v(1), v(2)]);
        let c_under_11 = t.children(1, b_under_1.start);
        assert_eq!(t.values(2, c_under_11), &[v(1), v(2)]);
        assert_eq!(t.num_tuples(), 4);
    }

    #[test]
    #[should_panic(expected = "children() on leaf level")]
    fn children_on_leaf_level_panics() {
        let t = Trie::from_relation(&sample());
        // Level 1 is the deepest level of the binary sample; asking for its
        // children must panic with a clear message, not index garbage.
        let _ = t.children(1, 0);
    }

    #[test]
    fn deep_trie_round_trips_iteratively() {
        // A 12-level trie with branching; the iterative walk must reproduce
        // the sorted distinct rows exactly.
        let names: Vec<String> = (0..12).map(|i| format!("a{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut r = Relation::new(Schema::of(&name_refs));
        let mut buf = [ValueId(0); 12];
        for row in 0..40u32 {
            for (d, slot) in buf.iter_mut().enumerate() {
                *slot = v((row * 7 + d as u32 * 3) % 4);
            }
            r.push(&buf).unwrap();
        }
        let t = Trie::from_relation(&r);
        let mut expect = r;
        expect.sort_dedup();
        assert_eq!(t.to_relation(), expect);
    }
}
