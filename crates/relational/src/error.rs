//! Error types for the relational substrate.

use std::fmt;

/// Errors produced by relational operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// An attribute name was not found in the schema it was looked up in.
    UnknownAttribute(String),
    /// A tuple's arity did not match the relation's schema.
    ArityMismatch {
        /// Arity required by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// The same attribute appeared twice in a schema.
    DuplicateAttribute(String),
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// A join was requested over zero atoms.
    EmptyQuery,
    /// A variable order was invalid (missing or duplicate variables).
    InvalidOrder(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            RelError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} attributes, tuple has {got}"
                )
            }
            RelError::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}` in schema"),
            RelError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            RelError::EmptyQuery => write!(f, "join query has no atoms"),
            RelError::InvalidOrder(m) => write!(f, "invalid variable order: {m}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Convenient result alias for the relational substrate.
pub type Result<T> = std::result::Result<T, RelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelError::UnknownAttribute("x".into());
        assert!(e.to_string().contains('x'));
        let e = RelError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        let e = RelError::DuplicateAttribute("a".into());
        assert!(e.to_string().contains('a'));
        let e = RelError::UnknownRelation("R".into());
        assert!(e.to_string().contains('R'));
        assert!(!RelError::EmptyQuery.to_string().is_empty());
        let e = RelError::InvalidOrder("missing v".into());
        assert!(e.to_string().contains("missing v"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RelError::EmptyQuery, RelError::EmptyQuery);
        assert_ne!(
            RelError::UnknownAttribute("a".into()),
            RelError::UnknownAttribute("b".into())
        );
    }
}
