//! LSM-style layered tries: an immutable base plus small sorted delta runs.
//!
//! A [`DeltaTrie`] represents the logical relation `base ∪ run₀ ∪ run₁ ∪ …`
//! without merging anything eagerly. Each layer is an ordinary [`Trie`]
//! leveled by the same attribute order, so a layered atom is consumed by the
//! walk as a *k-way union view*: at every trie level the engine unions the
//! layers' sorted sibling ranges through the usual leapfrog
//! `key / next / seek` contract (see `lftj::UnionCursor`), and the
//! cross-atom intersection on top of those unions is unchanged — the merged
//! view is still a sorted, duplicate-free trie, so worst-case optimality of
//! the walk is preserved.
//!
//! Runs are expected to be *small* relative to the base (one run per write
//! batch). Once [`DeltaTrie::delta_ratio`] exceeds the store's compaction
//! ratio, [`DeltaTrie::compact`] merges all layers into a fresh solid
//! [`Trie`] in one linear pass (every layer yields rows in sorted order, so
//! the k-way merge never sorts).

use crate::error::{RelError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::trie::{LevelSummary, Trie};
use std::sync::Arc;

/// An immutable base trie overlaid with zero or more sorted delta runs.
///
/// All layers share one attribute order; [`DeltaTrie::push_run`] enforces
/// this. Layers may overlap (a delta may re-insert a tuple already present
/// in the base): the union view and [`DeltaTrie::compact`] both deduplicate,
/// so overlap affects only the [`DeltaTrie::delta_tuples`] accounting (an
/// upper bound, not an exact distinct count).
#[derive(Debug, Clone)]
pub struct DeltaTrie {
    base: Arc<Trie>,
    runs: Vec<Arc<Trie>>,
}

impl DeltaTrie {
    /// Wraps `base` with no delta runs yet.
    pub fn new(base: Arc<Trie>) -> DeltaTrie {
        DeltaTrie {
            base,
            runs: Vec::new(),
        }
    }

    /// Appends one delta run, which must be leveled by the same attribute
    /// order as the base.
    pub fn push_run(&mut self, run: Arc<Trie>) -> Result<()> {
        if run.attrs() != self.base.attrs() {
            return Err(RelError::InvalidOrder(format!(
                "delta run order {:?} does not match base order {:?}",
                run.attrs(),
                self.base.attrs()
            )));
        }
        self.runs.push(run);
        Ok(())
    }

    /// Builder-style [`DeltaTrie::push_run`].
    pub fn with_run(mut self, run: Arc<Trie>) -> Result<DeltaTrie> {
        self.push_run(run)?;
        Ok(self)
    }

    /// The immutable base layer.
    pub fn base(&self) -> &Arc<Trie> {
        &self.base
    }

    /// The delta runs, oldest first.
    pub fn runs(&self) -> &[Arc<Trie>] {
        &self.runs
    }

    /// The shared attribute order of every layer.
    pub fn attrs(&self) -> &[crate::schema::Attr] {
        self.base.attrs()
    }

    /// Number of levels (the relation's arity).
    pub fn arity(&self) -> usize {
        self.base.arity()
    }

    /// Tuples in the base layer.
    pub fn base_tuples(&self) -> usize {
        self.base.num_tuples()
    }

    /// Total tuples across all delta runs (an upper bound on the distinct
    /// tuples the deltas add — runs may overlap the base or each other).
    pub fn delta_tuples(&self) -> usize {
        self.runs.iter().map(|r| r.num_tuples()).sum()
    }

    /// Upper bound on the distinct tuples of the merged view.
    pub fn tuple_upper_bound(&self) -> usize {
        self.base_tuples() + self.delta_tuples()
    }

    /// `delta_tuples / base_tuples` — the compaction trigger signal. An
    /// empty base with non-empty deltas reports `f64::INFINITY`.
    pub fn delta_ratio(&self) -> f64 {
        let d = self.delta_tuples();
        if d == 0 {
            return 0.0;
        }
        let b = self.base_tuples();
        if b == 0 {
            f64::INFINITY
        } else {
            d as f64 / b as f64
        }
    }

    /// Whether the delta layers have outgrown `ratio` and the view should be
    /// merged into a fresh solid base.
    pub fn needs_compaction(&self, ratio: f64) -> bool {
        self.delta_ratio() > ratio
    }

    /// Approximate heap footprint of the delta runs only (the base is
    /// shared and accounted for wherever it is cached).
    pub fn delta_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.estimated_bytes()).sum()
    }

    /// Upper-bound cardinality summary of `level` for the merged view: the
    /// sum of the layers' (individually exact) [`LevelSummary`]s. Values
    /// shared between layers are double-counted, so the bound tightens back
    /// to exact when [`DeltaTrie::compact`] rebuilds a solid trie — whose
    /// builder re-attaches exact summaries. This is the number the adaptive
    /// walk effectively scores a layered atom by (it sums spans across live
    /// runs), kept honest here for estimation and reporting.
    pub fn level_summary_bound(&self, level: usize) -> LevelSummary {
        let mut total = self.base.level_summary(level);
        for run in &self.runs {
            let s = run.level_summary(level);
            total.nodes += s.nodes;
            total.distinct += s.distinct;
        }
        total
    }

    /// Merges base and runs into a fresh solid [`Trie`].
    ///
    /// The runs are expected to be tiny next to the base, so the merge is
    /// asymmetric: a k-way merge collapses the runs into one sorted,
    /// duplicate-free delta (k-way cost proportional to the *delta* size),
    /// then a single two-way pass splices that delta into the base, bulk-
    /// copying the untouched base spans between insertion points instead of
    /// pushing the base row by row.
    pub fn compact(&self) -> Result<Trie> {
        let attrs = self.base.attrs().to_vec();
        if self.runs.is_empty() {
            // Nothing to merge; rebuild from the base's rows (callers that
            // want zero work should just keep the base Arc instead).
            return Trie::build(&self.base.to_relation(), &attrs);
        }
        let schema = Schema::new(attrs.iter().cloned())?;
        let arity = self.arity();
        if arity == 0 {
            // Nullary layers: the union holds the empty tuple iff any layer
            // is non-empty.
            let mut merged = Relation::new(schema);
            if self.base_tuples() > 0 || self.runs.iter().any(|r| r.num_tuples() > 0) {
                merged.push(&[])?;
            }
            return Trie::build(&merged, &attrs);
        }

        // 1. Collapse the runs into one sorted, deduplicated delta. The
        //    per-row min-scan is fine here: it only touches delta tuples.
        let run_rels: Vec<Relation> = self.runs.iter().map(|r| r.to_relation()).collect();
        let mut delta: Vec<&[crate::value::ValueId]> = Vec::with_capacity(self.delta_tuples());
        let mut streams: Vec<_> = run_rels.iter().map(|l| l.rows().peekable()).collect();
        while let Some(min) = streams.iter_mut().filter_map(|s| s.peek().copied()).min() {
            delta.push(min);
            for s in &mut streams {
                if s.peek().copied() == Some(min) {
                    s.next();
                }
            }
        }

        // 2. Splice the delta into the base in one pass. Delta rows arrive
        //    in ascending order, so each insertion point is found by a
        //    binary search over the not-yet-copied base suffix and the base
        //    span below it is copied wholesale.
        let base_rel = self.base.to_relation();
        let base = base_rel.raw_data();
        let n = base_rel.len();
        let mut merged = Relation::with_capacity(schema, self.tuple_upper_bound());
        let mut lo = 0usize; // first base row not yet copied out
        for row in delta {
            let mut left = lo;
            let mut right = n;
            while left < right {
                let mid = left + (right - left) / 2;
                if &base[mid * arity..(mid + 1) * arity] < row {
                    left = mid + 1;
                } else {
                    right = mid;
                }
            }
            merged.extend_raw(&base[lo * arity..left * arity]);
            merged.extend_raw(row);
            // Skip the base copy when the delta re-inserts an existing row.
            lo = if left < n && &base[left * arity..(left + 1) * arity] == row {
                left + 1
            } else {
                left
            };
        }
        merged.extend_raw(&base[lo * arity..]);
        Trie::build(&merged, &attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attr;
    use crate::value::ValueId;

    fn rel(names: &[&str], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(Schema::of(names));
        for row in rows {
            let ids: Vec<ValueId> = row.iter().map(|&x| ValueId(x)).collect();
            r.push(&ids).unwrap();
        }
        r.sort_dedup();
        r
    }

    fn trie(names: &[&str], rows: &[&[u32]]) -> Arc<Trie> {
        Arc::new(Trie::from_relation(&rel(names, rows)))
    }

    #[test]
    fn ratio_and_compaction_trigger() {
        let base = trie(&["a", "b"], &[&[1, 1], &[2, 2], &[3, 3], &[4, 4]]);
        let mut d = DeltaTrie::new(base);
        assert_eq!(d.delta_ratio(), 0.0);
        assert!(!d.needs_compaction(0.0));
        d.push_run(trie(&["a", "b"], &[&[5, 5]])).unwrap();
        assert_eq!(d.delta_tuples(), 1);
        assert!((d.delta_ratio() - 0.25).abs() < 1e-9);
        assert!(d.needs_compaction(0.2));
        assert!(!d.needs_compaction(0.25));
    }

    #[test]
    fn empty_base_ratio_is_infinite() {
        let d = DeltaTrie::new(trie(&["a"], &[]))
            .with_run(trie(&["a"], &[&[1]]))
            .unwrap();
        assert!(d.delta_ratio().is_infinite());
        assert!(d.needs_compaction(1e9));
    }

    #[test]
    fn push_run_rejects_mismatched_order() {
        let mut d = DeltaTrie::new(trie(&["a", "b"], &[&[1, 2]]));
        let bad = trie(&["b", "a"], &[&[1, 2]]);
        assert!(d.push_run(bad).is_err());
    }

    #[test]
    fn compact_merges_and_dedups() {
        let base = trie(&["a", "b"], &[&[1, 1], &[2, 2], &[3, 3]]);
        let d = DeltaTrie::new(base)
            .with_run(trie(&["a", "b"], &[&[2, 2], &[0, 9]]))
            .unwrap()
            .with_run(trie(&["a", "b"], &[&[3, 3], &[2, 5]]))
            .unwrap();
        let solid = d.compact().unwrap();
        assert_eq!(solid.attrs(), &[Attr::new("a"), Attr::new("b")][..]);
        let got = solid.to_relation();
        let want = rel(&["a", "b"], &[&[0, 9], &[1, 1], &[2, 2], &[2, 5], &[3, 3]]);
        assert!(got.set_eq(&want));
        assert_eq!(solid.num_tuples(), 5);
    }

    #[test]
    fn compact_splices_rows_past_the_base_end() {
        let base = trie(&["a", "b"], &[&[1, 1], &[2, 2]]);
        let d = DeltaTrie::new(base)
            .with_run(trie(&["a", "b"], &[&[7, 7], &[9, 9]]))
            .unwrap();
        let solid = d.compact().unwrap();
        let want = rel(&["a", "b"], &[&[1, 1], &[2, 2], &[7, 7], &[9, 9]]);
        assert!(solid.to_relation().set_eq(&want));
    }

    #[test]
    fn compact_without_runs_round_trips_base() {
        let base = trie(&["a"], &[&[3], &[1], &[2]]);
        let d = DeltaTrie::new(Arc::clone(&base));
        let solid = d.compact().unwrap();
        assert!(solid.to_relation().set_eq(&base.to_relation()));
    }

    #[test]
    fn compact_nullary_layers() {
        let empty = trie(&[], &[]);
        let d = DeltaTrie::new(Arc::clone(&empty));
        assert_eq!(d.compact().unwrap().num_tuples(), 0);
        // A non-empty nullary run makes the union hold the empty tuple.
        let mut one = Relation::new(Schema::of(&[]));
        one.push(&[]).unwrap();
        let run = Arc::new(Trie::from_relation(&one));
        let d = DeltaTrie::new(empty).with_run(run).unwrap();
        assert_eq!(d.compact().unwrap().num_tuples(), 1);
    }

    #[test]
    fn summary_bound_covers_view_and_compaction_restores_exactness() {
        let base = trie(&["a", "b"], &[&[1, 1], &[2, 2], &[3, 3]]);
        let d = DeltaTrie::new(base)
            .with_run(trie(&["a", "b"], &[&[2, 2], &[0, 9]]))
            .unwrap()
            .with_run(trie(&["a", "b"], &[&[3, 3], &[2, 5]]))
            .unwrap();
        let solid = d.compact().unwrap();
        for level in 0..d.arity() {
            let bound = d.level_summary_bound(level);
            let exact = solid.level_summary(level);
            assert!(bound.nodes >= exact.nodes, "nodes bound holds at {level}");
            assert!(
                bound.distinct >= exact.distinct,
                "distinct bound holds at {level}"
            );
            // Compaction ends in an ordinary build, whose summaries must
            // agree with a from-scratch build of the merged relation.
            let rebuilt = Trie::from_relation(&solid.to_relation());
            assert_eq!(exact, rebuilt.level_summary(level));
        }
    }

    #[test]
    fn delta_bytes_counts_runs_only() {
        let base = trie(&["a"], &[&[1], &[2], &[3]]);
        let run = trie(&["a"], &[&[9]]);
        let run_bytes = run.estimated_bytes();
        let d = DeltaTrie::new(base).with_run(run).unwrap();
        assert_eq!(d.delta_bytes(), run_bytes);
    }
}
