//! Leapfrog Triejoin (Veldhuizen 2012): a streaming, depth-first worst-case
//! optimal join.
//!
//! Unlike the level-wise engine in [`crate::generic`], LFTJ never
//! materialises intermediates: it walks all atom tries in lockstep,
//! performing a leapfrog intersection per variable and backtracking on
//! failure. Results are delivered in lexicographic order of the plan's
//! variable order.
//!
//! Two consumption styles are offered:
//!
//! * **pull** — [`LftjWalk`] owns its [`JoinPlan`] (tries are shared
//!   `Arc`s, so the plan is cheap to clone) and yields one tuple per
//!   [`LftjWalk::next_tuple`] call. Abandoning the walk after `k` tuples
//!   does strictly less work than full enumeration — this is the substrate
//!   for `LIMIT` pushdown in the multi-model `Rows` iterator;
//! * **push** — [`lftj_foreach_until`] drives a callback that can stop the
//!   walk by returning [`ControlFlow::Break`] ([`lftj_foreach`] is the
//!   never-stopping wrapper).

use crate::error::Result;
use crate::leapfrog::{block_seek, block_seek_counted, gallop, gallop_counted};
use crate::plan::{JoinPlan, Ladder, ValueRange, VarPlan};
use crate::relation::Relation;
use crate::schema::{Attr, Schema};
use crate::stats::LevelProbeStats;
use crate::trie::{LevelBits, Trie};
use crate::value::ValueId;
use std::ops::ControlFlow;

/// Which probe kernel drives a [`LftjWalk`]'s per-variable intersections.
///
/// Both kernels produce identical results (the differential probe suites
/// prove it); they differ in how much work each `advance` amortises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeKernel {
    /// One value per advance; every key access resolves through the tries
    /// and seeks are scalar gallops. Kept verbatim as the reference
    /// implementation and the benchmark baseline.
    Scalar,
    /// Batch-at-a-time (MonetDB/X100 style): each refill resolves every
    /// participant's level slice once, then runs the leapfrog rotation over
    /// raw slices — with [`crate::leapfrog::block_seek`] or the level's
    /// bitmap index for seeks — buffering a small vector of matched values
    /// and their per-atom node positions. The default.
    #[default]
    Block,
}

/// Matches buffered per [`LevelState`] refill under [`ProbeKernel::Block`].
const PROBE_BATCH: usize = 32;
/// Participant count up to which the per-refill level views live on the
/// stack (joins rarely exceed a handful of atoms per variable).
const MAX_INLINE_VIEWS: usize = 8;
/// Sentinel node index recorded on the per-atom node stacks for physical
/// runs of a layered atom that do not contain the bound prefix. Opening the
/// next level skips such runs entirely. (Real node indices never reach
/// `u32::MAX`: a trie level with 2³² nodes is unrepresentable here anyway.)
const ABSENT: u32 = u32::MAX;

/// A per-refill snapshot of one cursor's trie level: the full value array
/// plus the optional bitmap index, resolved once instead of per key access.
#[derive(Clone, Copy)]
struct LevelView<'a> {
    vals: &'a [ValueId],
    bits: Option<&'a LevelBits>,
}

const EMPTY_VIEW: LevelView<'static> = LevelView {
    vals: &[],
    bits: None,
};

impl<'a> LevelView<'a> {
    fn of(trie: &'a Trie, level: usize) -> LevelView<'a> {
        let (vals, bits) = trie.level_view(level);
        LevelView { vals, bits }
    }
}

/// An owned cursor over one contiguous sibling range of a trie level.
///
/// Unlike [`crate::leapfrog::SliceCursor`], positions are absolute node
/// indices resolved against the tries on each access, so the cursor borrows
/// nothing — which is what lets [`LftjWalk`] own its plan and hand out
/// tuples across calls.
#[derive(Debug, Clone)]
struct RangeCursor {
    atom: usize,
    level: usize,
    /// Which physical run of the atom this cursor walks: 0 is the base trie,
    /// `r >= 1` is delta run `r - 1` (see [`JoinPlan::run_trie`]). Always 0
    /// for solid atoms; non-zero only when a layered atom's union view
    /// degenerated to a single live run under the bound prefix.
    run: u32,
    hi: u32,
    pos: u32,
    /// Sibling-group id for the level's bitmap index: the parent node index
    /// at `level - 1`, or 0 at level 0 (one group spans the root level).
    group: u32,
    /// Absolute node index where the group begins (pre any root-range
    /// clamping), anchoring bitmap ranks to node positions.
    group_start: u32,
}

impl RangeCursor {
    #[inline]
    fn at_end(&self) -> bool {
        self.pos >= self.hi
    }

    #[inline]
    fn key(&self, plan: &JoinPlan) -> ValueId {
        plan.run_trie(self.atom, self.run as usize)
            .value(self.level, self.pos)
    }

    #[inline]
    fn next(&mut self) {
        self.pos += 1;
    }

    /// Seeks forward to the first node with value `>= target` — the scalar
    /// reference path, kept on plain galloping. With `TRACK` the gallop's
    /// probe steps land in `stats`; the `TRACK = false` instantiation
    /// compiles down to the untracked seek.
    fn seek<const TRACK: bool>(
        &mut self,
        plan: &JoinPlan,
        target: ValueId,
        stats: &mut LevelProbeStats,
    ) {
        let slice = plan
            .run_trie(self.atom, self.run as usize)
            .values(self.level, self.pos..self.hi);
        if TRACK {
            let (pos, steps) = gallop_counted(slice, 0, target);
            self.pos += pos as u32;
            stats.seeks += 1;
            stats.seek_steps += steps;
        } else {
            self.pos += gallop(slice, 0, target) as u32;
        }
    }

    /// Seek against a resolved [`LevelView`]: the level's bitmap index when
    /// it has one, block-wise galloping over the sibling slice otherwise.
    #[inline]
    fn seek_view<const TRACK: bool>(
        &mut self,
        view: &LevelView<'_>,
        target: ValueId,
        stats: &mut LevelProbeStats,
    ) {
        self.pos = match view.bits {
            Some(bits) => {
                if TRACK {
                    let (pos, words) =
                        bits.seek_counted(self.group, self.group_start, self.pos, self.hi, target);
                    stats.seeks += 1;
                    stats.bitset_words += words;
                    pos
                } else {
                    bits.seek(self.group, self.group_start, self.pos, self.hi, target)
                }
            }
            None => {
                let slice = &view.vals[self.pos as usize..self.hi as usize];
                if TRACK {
                    let (pos, steps) = block_seek_counted(slice, 0, target);
                    stats.seeks += 1;
                    stats.seek_steps += steps;
                    self.pos + pos as u32
                } else {
                    self.pos + block_seek(slice, 0, target) as u32
                }
            }
        };
    }
}

/// One physical run's slice of a layered atom's union view: the sibling
/// range of that run under the bound prefix.
#[derive(Debug, Clone)]
struct SubCursor {
    /// Physical run index (0 = base, `r >= 1` = delta run `r - 1`).
    run: u32,
    hi: u32,
    pos: u32,
    /// Sibling-group bookkeeping, carried so a union that degenerates to one
    /// live run can be downgraded to a plain [`RangeCursor`] (which may use
    /// the level's bitmap index).
    group: u32,
    group_start: u32,
}

/// The lazily-merged union of a layered atom's live runs at one trie level.
///
/// Exposes the same leapfrog `key / next / seek` contract as
/// [`RangeCursor`], so the per-variable rotation intersects union views and
/// solid cursors without caring which is which. `key` is the cached minimum
/// over the live runs' current values; `next` advances *every* run sitting
/// at that minimum (which is what deduplicates tuples present in several
/// layers); `seek` forwards the gallop to each lagging run. The merged
/// sequence is therefore sorted and duplicate-free — exactly a sorted trie
/// level — so the walk on top keeps its worst-case optimality argument.
#[derive(Debug, Clone)]
struct UnionCursor {
    atom: usize,
    level: usize,
    subs: Vec<SubCursor>,
    /// Cached minimum key across live subs; valid iff `!ended`.
    cur: ValueId,
    ended: bool,
}

impl UnionCursor {
    fn new(atom: usize, level: usize, subs: Vec<SubCursor>, plan: &JoinPlan) -> UnionCursor {
        let mut u = UnionCursor {
            atom,
            level,
            subs,
            cur: ValueId(0),
            ended: false,
        };
        u.refresh(plan);
        u
    }

    /// Recomputes the cached minimum; marks the union ended when every run
    /// is exhausted (terminal — a union never revives).
    fn refresh(&mut self, plan: &JoinPlan) {
        let mut min: Option<ValueId> = None;
        for s in &self.subs {
            if s.pos < s.hi {
                let v = plan
                    .run_trie(self.atom, s.run as usize)
                    .value(self.level, s.pos);
                min = Some(match min {
                    Some(m) if m <= v => m,
                    _ => v,
                });
            }
        }
        match min {
            Some(v) => self.cur = v,
            None => self.ended = true,
        }
    }

    #[inline]
    fn at_end(&self) -> bool {
        self.ended
    }

    #[inline]
    fn key(&self) -> ValueId {
        self.cur
    }

    /// Steps past the current minimum: every run parked on it advances, so
    /// each distinct value is emitted exactly once.
    fn next(&mut self, plan: &JoinPlan) {
        let cur = self.cur;
        for s in &mut self.subs {
            if s.pos < s.hi
                && plan
                    .run_trie(self.atom, s.run as usize)
                    .value(self.level, s.pos)
                    == cur
            {
                s.pos += 1;
            }
        }
        self.refresh(plan);
    }

    /// Forwards every lagging run to its first value `>= target` (one
    /// gallop per run), then re-derives the minimum.
    fn seek<const TRACK: bool>(
        &mut self,
        plan: &JoinPlan,
        target: ValueId,
        stats: &mut LevelProbeStats,
    ) {
        if TRACK {
            stats.seeks += 1;
        }
        for s in &mut self.subs {
            if s.pos < s.hi {
                let trie = plan.run_trie(self.atom, s.run as usize);
                if trie.value(self.level, s.pos) < target {
                    let slice = trie.values(self.level, s.pos..s.hi);
                    if TRACK {
                        let (pos, steps) = gallop_counted(slice, 0, target);
                        s.pos += pos as u32;
                        stats.seek_steps += steps;
                    } else {
                        s.pos += gallop(slice, 0, target) as u32;
                    }
                }
            }
        }
        self.refresh(plan);
    }

    /// Appends, for each of the atom's `nruns` physical runs in order, the
    /// node index matched at the current key — or [`ABSENT`] for runs not
    /// containing it. Only valid while parked at an emitted match.
    fn push_match_nodes(&self, plan: &JoinPlan, nruns: usize, out: &mut Vec<u32>) {
        for r in 0..nruns {
            let pos = self
                .subs
                .iter()
                .find(|s| s.run as usize == r && s.pos < s.hi)
                .filter(|s| plan.run_trie(self.atom, r).value(self.level, s.pos) == self.cur)
                .map(|s| s.pos)
                .unwrap_or(ABSENT);
            out.push(pos);
        }
    }
}

/// A level participant: either a single physical trie range (the fast,
/// overwhelmingly common case) or a live multi-run union view.
#[derive(Debug, Clone)]
enum Cursor {
    Solid(RangeCursor),
    Union(UnionCursor),
}

impl Cursor {
    #[inline]
    fn at_end(&self) -> bool {
        match self {
            Cursor::Solid(c) => c.at_end(),
            Cursor::Union(u) => u.at_end(),
        }
    }

    #[inline]
    fn key(&self, plan: &JoinPlan) -> ValueId {
        match self {
            Cursor::Solid(c) => c.key(plan),
            Cursor::Union(u) => u.key(),
        }
    }

    #[inline]
    fn next(&mut self, plan: &JoinPlan) {
        match self {
            Cursor::Solid(c) => c.next(),
            Cursor::Union(u) => u.next(plan),
        }
    }

    #[inline]
    fn seek<const TRACK: bool>(
        &mut self,
        plan: &JoinPlan,
        target: ValueId,
        stats: &mut LevelProbeStats,
    ) {
        match self {
            Cursor::Solid(c) => c.seek::<TRACK>(plan, target, stats),
            Cursor::Union(u) => u.seek::<TRACK>(plan, target, stats),
        }
    }

    /// Appends the `nruns` per-run node indices of the current match.
    fn push_match_nodes(&self, plan: &JoinPlan, nruns: usize, out: &mut Vec<u32>) {
        match self {
            Cursor::Solid(c) => {
                for r in 0..nruns {
                    out.push(if r == c.run as usize { c.pos } else { ABSENT });
                }
            }
            Cursor::Union(u) => u.push_match_nodes(plan, nruns, out),
        }
    }
}

/// The participants of one open level, split by shape so the all-solid fast
/// paths stay monomorphic.
#[derive(Debug)]
enum LevelCursors {
    /// Every participant resolved to exactly one physical run — either all
    /// atoms are solid, or each layered atom had a single run alive under
    /// the bound prefix (downgraded at [`LftjWalk::open_level`]). Runs the
    /// unchanged scalar / block kernels.
    Solid(Vec<RangeCursor>),
    /// At least one participant is a live multi-run union view; the level
    /// runs the union-aware rotation (one match per advance, gallop seeks).
    Mixed(Vec<Cursor>),
}

/// Resumable leapfrog intersection state for one variable: the cursors of
/// every participating atom plus the rotation bookkeeping of the classic
/// algorithm, restartable between [`LevelState::advance`] calls.
///
/// This mirrors [`crate::leapfrog::leapfrog_foreach_until`]'s rotation
/// (prime → emit at agreement → step the emitter → seek the rest) but over
/// owned index cursors, which is what makes the walk resumable across
/// calls. The two cores are kept honest against each other by the engine
/// equivalence suites (LFTJ vs the level-wise join on random instances).
#[derive(Debug)]
struct LevelState {
    cursors: LevelCursors,
    /// Cursor indices in ascending-key rotation order (filled on priming).
    rot: Vec<usize>,
    p: usize,
    max: ValueId,
    primed: bool,
    exhausted: bool,
    /// Whether this level's current match is bound onto the walk's prefix.
    bound: bool,
    /// Matched values buffered by the block kernel, drained in order.
    batch: Vec<ValueId>,
    /// Per match, the `k` cursor node positions at the agreement —
    /// `batch_pos[m*k .. (m+1)*k]` belongs to `batch[m]`.
    batch_pos: Vec<u32>,
    /// Index of the batch entry currently served.
    batch_idx: usize,
}

impl LevelState {
    fn new(cursors: LevelCursors) -> LevelState {
        let exhausted = match &cursors {
            LevelCursors::Solid(cs) => cs.iter().any(RangeCursor::at_end),
            LevelCursors::Mixed(cs) => cs.iter().any(Cursor::at_end),
        };
        LevelState {
            cursors,
            rot: Vec::new(),
            p: 0,
            max: ValueId(0),
            primed: false,
            exhausted,
            bound: false,
            batch: Vec::new(),
            batch_pos: Vec::new(),
            batch_idx: 0,
        }
    }

    /// Yields the next value present in every cursor; on `Some(v)` the
    /// per-cursor match positions are readable via
    /// [`LevelState::push_match_nodes`]. `TRACK` selects the probe-counting
    /// instantiation; with `TRACK = false` every counter touch compiles away
    /// and `stats` is untouched.
    ///
    /// Mixed (union-carrying) levels always run the union-aware scalar
    /// rotation regardless of `kernel`: batching buys nothing once key
    /// accesses go through a union view, and with the single-live-run
    /// downgrade in [`LftjWalk::open_level`] mixed levels are confined to
    /// the prefixes a delta actually overlaps.
    fn advance<const TRACK: bool>(
        &mut self,
        plan: &JoinPlan,
        kernel: ProbeKernel,
        stats: &mut LevelProbeStats,
    ) -> Option<ValueId> {
        match (&self.cursors, kernel) {
            (LevelCursors::Mixed(_), _) => self.advance_mixed::<TRACK>(plan, stats),
            (LevelCursors::Solid(_), ProbeKernel::Scalar) => {
                self.advance_scalar::<TRACK>(plan, stats)
            }
            (LevelCursors::Solid(_), ProbeKernel::Block) => {
                self.advance_block::<TRACK>(plan, stats)
            }
        }
    }

    /// Appends participant `c`'s node position(s) at the currently served
    /// match onto `out` — one entry per physical run of the atom (`nruns`),
    /// with [`ABSENT`] for runs not containing the match. For solid atoms
    /// (`nruns == 1`) this pushes exactly the single matched node, read from
    /// the buffered batch under the block kernel or the parked cursor
    /// otherwise.
    fn push_match_nodes(&self, c: usize, nruns: usize, plan: &JoinPlan, out: &mut Vec<u32>) {
        match &self.cursors {
            LevelCursors::Solid(cursors) => {
                let pos = if self.batch_idx < self.batch.len() {
                    self.batch_pos[self.batch_idx * cursors.len() + c]
                } else {
                    cursors[c].pos
                };
                if nruns == 1 {
                    out.push(pos);
                } else {
                    let run = cursors[c].run as usize;
                    for r in 0..nruns {
                        out.push(if r == run { pos } else { ABSENT });
                    }
                }
            }
            LevelCursors::Mixed(cursors) => cursors[c].push_match_nodes(plan, nruns, out),
        }
    }

    /// The union-aware rotation: structurally the scalar kernel, but over
    /// [`Cursor`]s so layered participants intersect through their lazily
    /// merged views. One match per call; cursors park at the agreement so
    /// [`LevelState::push_match_nodes`] can read per-run positions.
    fn advance_mixed<const TRACK: bool>(
        &mut self,
        plan: &JoinPlan,
        stats: &mut LevelProbeStats,
    ) -> Option<ValueId> {
        if self.exhausted {
            return None;
        }
        let LevelCursors::Mixed(cursors) = &mut self.cursors else {
            unreachable!("advance_mixed on a solid level");
        };
        let k = cursors.len();
        if !self.primed {
            self.primed = true;
            self.rot.clear();
            self.rot.extend(0..k);
            self.rot.sort_by_key(|&i| cursors[i].key(plan));
            self.p = 0;
            self.max = cursors[self.rot[k - 1]].key(plan);
        } else {
            let i = self.rot[self.p];
            cursors[i].next(plan);
            if cursors[i].at_end() {
                self.exhausted = true;
                return None;
            }
            self.max = cursors[i].key(plan);
            self.p = (self.p + 1) % k;
        }
        loop {
            let i = self.rot[self.p];
            let x = cursors[i].key(plan);
            if x == self.max {
                return Some(x);
            }
            cursors[i].seek::<TRACK>(plan, self.max, stats);
            if cursors[i].at_end() {
                self.exhausted = true;
                return None;
            }
            self.max = cursors[i].key(plan);
            self.p = (self.p + 1) % k;
        }
    }

    /// The scalar reference kernel: one match per call, cursors parked at
    /// the agreement, `p` staying put so the next call steps the emitter.
    fn advance_scalar<const TRACK: bool>(
        &mut self,
        plan: &JoinPlan,
        stats: &mut LevelProbeStats,
    ) -> Option<ValueId> {
        if self.exhausted {
            return None;
        }
        let LevelCursors::Solid(cursors) = &mut self.cursors else {
            unreachable!("scalar kernel on a mixed level");
        };
        let k = cursors.len();
        if !self.primed {
            self.primed = true;
            self.rot = (0..k).collect();
            self.rot.sort_by_key(|&i| cursors[i].key(plan));
            self.p = 0;
            self.max = cursors[self.rot[k - 1]].key(plan);
        } else {
            // Resume after an emitted match: step the cursor that emitted it.
            let i = self.rot[self.p];
            cursors[i].next();
            if cursors[i].at_end() {
                self.exhausted = true;
                return None;
            }
            self.max = cursors[i].key(plan);
            self.p = (self.p + 1) % k;
        }
        loop {
            let i = self.rot[self.p];
            let x = cursors[i].key(plan);
            if x == self.max {
                // All k cursors agree on x; `p` stays put so the next
                // `advance` steps this cursor past the match.
                return Some(x);
            }
            cursors[i].seek::<TRACK>(plan, self.max, stats);
            if cursors[i].at_end() {
                self.exhausted = true;
                return None;
            }
            self.max = cursors[i].key(plan);
            self.p = (self.p + 1) % k;
        }
    }

    /// The batch-at-a-time kernel: serves buffered matches until the batch
    /// runs dry, then refills up to [`PROBE_BATCH`] matches in one rotation
    /// run over per-level views resolved once.
    fn advance_block<const TRACK: bool>(
        &mut self,
        plan: &JoinPlan,
        stats: &mut LevelProbeStats,
    ) -> Option<ValueId> {
        if self.batch_idx + 1 < self.batch.len() {
            self.batch_idx += 1;
            return Some(self.batch[self.batch_idx]);
        }
        if self.exhausted {
            return None;
        }
        self.refill::<TRACK>(plan, stats);
        self.batch_idx = 0;
        self.batch.first().copied()
    }

    /// Runs the leapfrog rotation over resolved [`LevelView`]s, buffering
    /// matched values and their cursor positions. Stops when the batch is
    /// full or some cursor exhausts its range (which ends the level: the
    /// batch may still hold matches to serve, but no refill will follow).
    fn refill<const TRACK: bool>(&mut self, plan: &JoinPlan, stats: &mut LevelProbeStats) {
        if TRACK {
            stats.refills += 1;
        }
        self.batch.clear();
        self.batch_pos.clear();
        let LevelCursors::Solid(cursors) = &mut self.cursors else {
            unreachable!("block refill on a mixed level");
        };
        let k = cursors.len();
        let mut inline = [EMPTY_VIEW; MAX_INLINE_VIEWS];
        let heap: Vec<LevelView<'_>>;
        let views: &[LevelView<'_>] = if k <= MAX_INLINE_VIEWS {
            for (slot, c) in inline.iter_mut().zip(cursors.iter()) {
                *slot = LevelView::of(plan.run_trie(c.atom, c.run as usize), c.level);
            }
            &inline[..k]
        } else {
            heap = cursors
                .iter()
                .map(|c| LevelView::of(plan.run_trie(c.atom, c.run as usize), c.level))
                .collect();
            &heap
        };
        if k == 1 {
            // Single participant: the intersection is the range itself —
            // bulk-copy a batch of values and positions.
            let c = &mut cursors[0];
            let take = (c.hi - c.pos).min(PROBE_BATCH as u32);
            if take == 0 {
                self.exhausted = true;
                return;
            }
            self.batch
                .extend_from_slice(&views[0].vals[c.pos as usize..(c.pos + take) as usize]);
            self.batch_pos.extend(c.pos..c.pos + take);
            c.pos += take;
            return;
        }
        if !self.primed {
            self.primed = true;
            self.rot.clear();
            self.rot.extend(0..k);
            let sorted_cursors = &*cursors;
            self.rot
                .sort_by_key(|&i| views[i].vals[sorted_cursors[i].pos as usize]);
            self.p = 0;
            let last = self.rot[k - 1];
            self.max = views[last].vals[cursors[last].pos as usize];
        }
        loop {
            let i = self.rot[self.p];
            let x = views[i].vals[cursors[i].pos as usize];
            if x == self.max {
                // All k cursors agree on x (the rotation invariant): record
                // the match and immediately step the emitter past it — the
                // bound positions live in `batch_pos`, not the cursors.
                self.batch.push(x);
                for c in cursors.iter() {
                    self.batch_pos.push(c.pos);
                }
                let pos = cursors[i].pos + 1;
                cursors[i].pos = pos;
                if pos >= cursors[i].hi {
                    self.exhausted = true;
                    return;
                }
                self.max = views[i].vals[pos as usize];
                self.p = (self.p + 1) % k;
                if self.batch.len() >= PROBE_BATCH {
                    return;
                }
            } else {
                cursors[i].seek_view::<TRACK>(&views[i], self.max, stats);
                if cursors[i].at_end() {
                    self.exhausted = true;
                    return;
                }
                self.max = views[i].vals[cursors[i].pos as usize];
                self.p = (self.p + 1) % k;
            }
        }
    }
}

/// A pull-based depth-first LFTJ walk over a join plan.
///
/// The walk owns its plan (tries are `Arc`-shared, so construction from a
/// borrowed plan is a cheap clone) and yields result tuples one
/// [`LftjWalk::next_tuple`] call at a time, in lexicographic order of the
/// plan's variable order. Dropping the walk after `k` tuples abandons the
/// remaining search space — [`LftjWalk::bindings`] exposes how many variable
/// bindings were actually made, which early termination provably shrinks.
///
/// # Adaptive ordering
///
/// When the plan carries a [`Ladder`] ([`JoinPlan::with_ladder`]), the walk
/// defers level ordering to runtime: at every depth past the root it scores
/// each *admissible* unbound variable with the ladder rung and opens the
/// cheapest one, so different prefixes of one query may bind the remaining
/// variables in different orders (the fail-fast answer to skew). A variable
/// is admissible when every atom containing it has bound exactly the trie
/// levels above it — each atom's trie is leveled once, so the walk rotates
/// between *branches* of the plan rather than re-leveling anything.
///
/// The root variable stays pinned to the plan's first variable, which keeps
/// [`LftjWalk::with_root_range`] sub-walks (morsels) aligned with the
/// serial walk: adaptive choices depend only on the bound prefix, so a
/// disjoint root cover still partitions the result deterministically.
/// Yielded tuples are laid out per [`LftjWalk::order`] regardless of the
/// binding order actually taken; only the *sequence* of tuples may differ
/// from the static walk (it is no longer globally lexicographic past the
/// first column).
#[derive(Debug)]
pub struct LftjWalk {
    plan: JoinPlan,
    /// Restriction of the first variable's domain — the walk only visits
    /// tuples whose first binding falls in this range (see
    /// [`LftjWalk::with_root_range`]).
    root: ValueRange,
    /// The probe kernel driving every level's intersection.
    kernel: ProbeKernel,
    /// Open levels, one [`LevelState`] per currently-entered variable.
    levels: Vec<LevelState>,
    /// Per-atom stack of bound node indices (absolute within each level).
    nodes: Vec<Vec<u32>>,
    prefix: Vec<ValueId>,
    started: bool,
    done: bool,
    bindings: u64,
    /// Whether the walk runs the probe-counting instantiation.
    track: bool,
    /// Per-level probe counters, one slot per plan variable (all zero unless
    /// [`LftjWalk::with_probe_counters`] opted in). Adaptive walks index
    /// these by the *chosen variable*, not the depth, so the slots line up
    /// with [`LftjWalk::order`] in both modes.
    probe: Vec<LevelProbeStats>,
    /// Runtime-adaptive ordering rung, copied from the plan's ladder.
    adaptive: Option<Ladder>,
    /// `depth_to_var[d]` = plan-variable index bound at walk depth `d`
    /// (always the identity for static walks).
    depth_to_var: Vec<usize>,
    /// Whether each plan variable currently has an open level.
    var_open: Vec<bool>,
    /// Adaptive-mode result buffer permuted to plan order.
    out: Vec<ValueId>,
    /// Candidate scratch for adaptive choices (reused across levels).
    cand: Vec<usize>,
    /// Per-variable `(rows, distinct)` ladder terms. Both are functions of
    /// the tries alone — not of the bound prefix — so they are computed once
    /// here instead of on every descent (empty for static walks).
    static_scores: Vec<(u64, u64)>,
    /// Adaptive choices that deviated from the static schedule (picked a
    /// variable other than the first admissible one in plan order).
    reorders: u64,
    /// Candidate-variable estimates computed by adaptive choices.
    estimate_probes: u64,
    /// TRACK-only: `nvars × nvars` histogram; row `d`, column `v` counts
    /// how often variable `v` was opened at depth `d`.
    choice_hist: Vec<u64>,
    /// TRACK-only: per-variable sum of refined (sibling-span) estimates at
    /// choice time — the denominator of estimate-vs-actual error.
    est_bindings: Vec<u64>,
}

impl LftjWalk {
    /// Creates a walk over `plan` with the default (block) probe kernel. No
    /// work happens until the first [`LftjWalk::next_tuple`] call.
    pub fn new(plan: JoinPlan) -> LftjWalk {
        Self::with_root_range(plan, ValueRange::all())
    }

    /// Creates a walk restricted to the tuples whose **first** variable
    /// binding (in the plan's order) falls inside `root`. The sub-walk is an
    /// independent trie walk: running one walk per range of a disjoint cover
    /// of the value space enumerates exactly the full result, partitioned by
    /// first binding — the substrate of morsel-style parallel execution.
    pub fn with_root_range(plan: JoinPlan, root: ValueRange) -> LftjWalk {
        Self::with_kernel(plan, root, ProbeKernel::default())
    }

    /// Creates a range-restricted walk driven by an explicit
    /// [`ProbeKernel`]. Benchmarks and differential suites pin the kernel;
    /// everything else takes the default.
    pub fn with_kernel(plan: JoinPlan, root: ValueRange, kernel: ProbeKernel) -> LftjWalk {
        let natoms = plan.tries().len();
        let nvars = plan.var_plans().len();
        let adaptive = plan.ladder();
        let static_scores = if adaptive.is_some() {
            plan.var_plans()
                .iter()
                .map(|vp| {
                    let rows = vp
                        .participants
                        .iter()
                        .map(|part| {
                            (0..plan.runs(part.atom))
                                .map(|r| plan.run_trie(part.atom, r).num_tuples() as u64)
                                .sum::<u64>()
                        })
                        .min()
                        .unwrap_or(0);
                    let distinct = vp
                        .participants
                        .iter()
                        .map(|part| {
                            (0..plan.runs(part.atom))
                                .map(|r| {
                                    plan.run_trie(part.atom, r)
                                        .level_summary(part.level)
                                        .distinct
                                })
                                .sum::<u64>()
                        })
                        .min()
                        .unwrap_or(0);
                    (rows, distinct)
                })
                .collect()
        } else {
            Vec::new()
        };
        LftjWalk {
            plan,
            root,
            kernel,
            levels: Vec::new(),
            nodes: vec![Vec::new(); natoms],
            prefix: Vec::new(),
            started: false,
            done: false,
            bindings: 0,
            track: false,
            probe: vec![LevelProbeStats::default(); nvars],
            adaptive,
            depth_to_var: Vec::with_capacity(nvars),
            var_open: vec![false; nvars],
            out: if adaptive.is_some() {
                vec![ValueId(0); nvars]
            } else {
                Vec::new()
            },
            cand: Vec::new(),
            static_scores,
            reorders: 0,
            estimate_probes: 0,
            choice_hist: if adaptive.is_some() {
                vec![0; nvars * nvars]
            } else {
                Vec::new()
            },
            est_bindings: if adaptive.is_some() {
                vec![0; nvars]
            } else {
                Vec::new()
            },
        }
    }

    /// Opts the walk into per-level probe counting (see
    /// [`LftjWalk::probe_stats`]). Counting runs a separately-monomorphised
    /// probe path; untracked walks pay nothing for the feature's existence.
    #[must_use]
    pub fn with_probe_counters(mut self) -> LftjWalk {
        self.track = true;
        self
    }

    /// The probe kernel driving this walk.
    pub fn kernel(&self) -> ProbeKernel {
        self.kernel
    }

    /// The plan's global variable order (= the layout of yielded tuples).
    pub fn order(&self) -> &[Attr] {
        self.plan.order()
    }

    /// The plan driving the walk.
    pub fn plan(&self) -> &JoinPlan {
        &self.plan
    }

    /// Number of variable bindings made so far across all levels — the
    /// walk's work counter. Early termination (stopping after `k` tuples)
    /// leaves this strictly below the full-enumeration count whenever
    /// results remain.
    pub fn bindings(&self) -> u64 {
        self.bindings
    }

    /// Whether the walk has been exhausted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Per-level probe counters, one entry per plan variable in order. All
    /// zeros unless the walk was built via [`LftjWalk::with_probe_counters`].
    pub fn probe_stats(&self) -> &[LevelProbeStats] {
        &self.probe
    }

    /// The adaptive-ordering ladder rung the walk runs under (`None` for a
    /// static walk).
    pub fn ladder(&self) -> Option<Ladder> {
        self.adaptive
    }

    /// Adaptive choices that deviated from the static schedule — the walk
    /// opened a variable other than the first admissible one in plan order.
    /// Always zero for static walks.
    pub fn reorders(&self) -> u64 {
        self.reorders
    }

    /// Candidate-variable estimates the adaptive chooser computed (its
    /// maintenance cost meter; depths with a single admissible variable are
    /// decided for free and counted as zero).
    pub fn estimate_probes(&self) -> u64 {
        self.estimate_probes
    }

    /// TRACK-only chosen-order histogram: entry `d · nvars + v` counts how
    /// often variable `v` was opened at depth `d`. Empty unless the walk is
    /// adaptive *and* was built via [`LftjWalk::with_probe_counters`].
    pub fn choice_histogram(&self) -> &[u64] {
        &self.choice_hist
    }

    /// TRACK-only per-variable sum of refined (sibling-span) estimates at
    /// choice time; compare with [`LftjWalk::probe_stats`] bindings for the
    /// estimate-vs-actual error. Empty unless adaptive and tracked.
    pub fn estimated_bindings(&self) -> &[u64] {
        &self.est_bindings
    }

    /// Opens the leapfrog state for the next unentered variable, scoping
    /// every participating atom to the children of its bound parent node.
    ///
    /// Layered atoms open one sub-range per physical run that contains the
    /// bound prefix; when exactly one run survives, the union view is
    /// downgraded to a plain [`RangeCursor`] so the level keeps the batched
    /// fast path — below the root, subtrees a small delta never touched run
    /// at full solid-plan speed.
    fn open_level(&mut self) {
        let d = self.levels.len();
        let var = self.choose_var(d);
        self.depth_to_var.push(var);
        self.var_open[var] = true;
        let vp = &self.plan.var_plans()[var];
        let mut mixed = false;
        let mut cursors: Vec<Cursor> = Vec::with_capacity(vp.participants.len());
        for part in &vp.participants {
            let nruns = self.plan.runs(part.atom);
            if nruns == 1 {
                let trie = &self.plan.tries()[part.atom];
                let (mut range, group) = if part.level == 0 {
                    // Level 0 is one sibling group (group id 0) spanning the
                    // whole level.
                    (trie.root_range(), 0)
                } else {
                    let parent = *self.nodes[part.atom].last().expect("parent level bound");
                    (trie.children(part.level - 1, parent), parent)
                };
                // The bitmap index anchors ranks to the group's true first
                // node, so record it before any root-range clamping narrows
                // `range`.
                let group_start = range.start;
                // The first variable participates at level 0 of every atom
                // that contains it; narrowing all its cursors to the walk's
                // root range restricts the whole walk to that morsel.
                if d == 0 {
                    range = self.root.clamp_nodes(trie, part.level, range);
                }
                cursors.push(Cursor::Solid(RangeCursor {
                    atom: part.atom,
                    level: part.level,
                    run: 0,
                    hi: range.end,
                    pos: range.start,
                    group,
                    group_start,
                }));
                continue;
            }
            // Layered atom: collect the runs alive under the bound prefix.
            let mut subs: Vec<SubCursor> = Vec::with_capacity(nruns);
            for r in 0..nruns {
                let trie = self.plan.run_trie(part.atom, r);
                let (mut range, group) = if part.level == 0 {
                    (trie.root_range(), 0)
                } else {
                    let frame = &self.nodes[part.atom];
                    let parent = frame[frame.len() - nruns + r];
                    if parent == ABSENT {
                        continue;
                    }
                    (trie.children(part.level - 1, parent), parent)
                };
                let group_start = range.start;
                if d == 0 {
                    range = self.root.clamp_nodes(trie, part.level, range);
                }
                if range.start < range.end {
                    subs.push(SubCursor {
                        run: r as u32,
                        hi: range.end,
                        pos: range.start,
                        group,
                        group_start,
                    });
                }
            }
            if subs.len() == 1 {
                // Single live run: downgrade to a solid cursor.
                let s = subs.pop().expect("one sub");
                cursors.push(Cursor::Solid(RangeCursor {
                    atom: part.atom,
                    level: part.level,
                    run: s.run,
                    hi: s.hi,
                    pos: s.pos,
                    group: s.group,
                    group_start: s.group_start,
                }));
            } else {
                // Zero live runs yields an immediately-exhausted union,
                // which closes the level on the first advance.
                mixed = true;
                cursors.push(Cursor::Union(UnionCursor::new(
                    part.atom, part.level, subs, &self.plan,
                )));
            }
        }
        let cursors = if mixed {
            LevelCursors::Mixed(cursors)
        } else {
            LevelCursors::Solid(
                cursors
                    .into_iter()
                    .map(|c| match c {
                        Cursor::Solid(rc) => rc,
                        Cursor::Union(_) => unreachable!("mixed flag covers unions"),
                    })
                    .collect(),
            )
        };
        self.levels.push(LevelState::new(cursors));
    }

    /// Picks the plan variable to open at depth `d`.
    ///
    /// Static walks take the plan order verbatim. Adaptive walks pin the
    /// root (so [`ValueRange`]-partitioned sub-walks stay aligned) and past
    /// it score every **admissible** unbound variable with the ladder rung,
    /// opening the cheapest; ties cascade through the coarser rungs and
    /// finally plan position, so the choice is a pure function of the bound
    /// prefix — serial and morsel-parallel walks decide identically.
    fn choose_var(&mut self, d: usize) -> usize {
        let Some(ladder) = self.adaptive else {
            return d;
        };
        let nvars = self.plan.var_plans().len();
        if d == 0 {
            if self.track {
                self.choice_hist[0] += 1;
                self.est_bindings[0] +=
                    refined_span(&self.plan, &self.nodes, &self.plan.var_plans()[0]);
            }
            return 0;
        }
        let mut cand = std::mem::take(&mut self.cand);
        cand.clear();
        for (v, vp) in self.plan.var_plans().iter().enumerate() {
            if self.var_open[v] {
                continue;
            }
            // Admissible: every atom containing `v` has bound exactly the
            // trie levels above `v`'s level there (one node frame of width
            // `runs(atom)` is pushed per bound level).
            let admissible = vp
                .participants
                .iter()
                .all(|part| part.level == self.nodes[part.atom].len() / self.plan.runs(part.atom));
            if admissible {
                cand.push(v);
            }
        }
        debug_assert!(!cand.is_empty(), "some admissible variable always exists");
        let chosen = if cand.len() == 1 {
            cand[0]
        } else {
            self.estimate_probes += cand.len() as u64;
            let mut best = cand[0];
            let mut best_key = self.score_var(ladder, cand[0]);
            for &v in &cand[1..] {
                let key = self.score_var(ladder, v);
                if key < best_key {
                    best = v;
                    best_key = key;
                }
            }
            if best != cand[0] {
                self.reorders += 1;
            }
            best
        };
        if self.track {
            self.choice_hist[d * nvars + chosen] += 1;
            self.est_bindings[chosen] +=
                refined_span(&self.plan, &self.nodes, &self.plan.var_plans()[chosen]);
        }
        self.cand = cand;
        chosen
    }

    /// Scores variable `v` under `ladder`, smaller = cheaper to bind next.
    /// Each rung's key is suffixed with every coarser rung and finally the
    /// plan position, making the comparison total and deterministic.
    fn score_var(&self, ladder: Ladder, v: usize) -> (u64, u64, u64, u64) {
        // `rows` (the *Jessica* rung: cheapest participant's tuple count)
        // and `distinct` (the *Paul* rung: cheapest participant's build-time
        // distinct count at `v`'s level, delta runs summed as an upper bound
        // on the union view) come precomputed — only the *Ghanima* rung
        // reads the bound prefix.
        let (rows, distinct) = self.static_scores[v];
        match ladder {
            Ladder::RowCount => (rows, v as u64, 0, 0),
            Ladder::Distinct => (distinct, rows, v as u64, 0),
            Ladder::Refined => (
                refined_span(&self.plan, &self.nodes, &self.plan.var_plans()[v]),
                distinct,
                rows,
                v as u64,
            ),
        }
    }

    /// Yields the next result tuple (laid out per [`LftjWalk::order`]), or
    /// `None` when the join is exhausted. The returned slice is only valid
    /// until the next call.
    pub fn next_tuple(&mut self) -> Option<&[ValueId]> {
        if self.track {
            self.next_tuple_impl::<true>()
        } else {
            self.next_tuple_impl::<false>()
        }
    }

    fn next_tuple_impl<const TRACK: bool>(&mut self) -> Option<&[ValueId]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            if self.plan.has_empty_atom() {
                self.done = true;
                return None;
            }
            if self.plan.var_plans().is_empty() {
                // Zero-variable plan: the join of non-empty nullary atoms
                // holds exactly one empty tuple.
                self.done = true;
                return Some(&self.prefix);
            }
            self.open_level();
        }
        let nlevels = self.plan.var_plans().len();
        loop {
            let d = self.levels.len() - 1;
            // The plan variable this depth binds (identity for static walks).
            let var = self.depth_to_var[d];
            // Unbind this level's previous match (if any)…
            if self.levels[d].bound {
                self.levels[d].bound = false;
                self.prefix.pop();
                for part in &self.plan.var_plans()[var].participants {
                    // Each bind pushed one node frame of width `runs(atom)`.
                    let new_len = self.nodes[part.atom].len() - self.plan.runs(part.atom);
                    self.nodes[part.atom].truncate(new_len);
                }
            }
            // …and pull its next one.
            let kernel = self.kernel;
            let step = self.levels[d].advance::<TRACK>(&self.plan, kernel, &mut self.probe[var]);
            match step {
                Some(v) => {
                    self.prefix.push(v);
                    for (c, part) in self.plan.var_plans()[var].participants.iter().enumerate() {
                        let nruns = self.plan.runs(part.atom);
                        self.levels[d].push_match_nodes(
                            c,
                            nruns,
                            &self.plan,
                            &mut self.nodes[part.atom],
                        );
                    }
                    self.levels[d].bound = true;
                    self.bindings += 1;
                    if TRACK {
                        self.probe[var].bindings += 1;
                    }
                    if self.adaptive.is_some() {
                        self.out[var] = v;
                    }
                    if d + 1 == nlevels {
                        return if self.adaptive.is_some() {
                            Some(&self.out)
                        } else {
                            Some(&self.prefix)
                        };
                    }
                    self.open_level();
                }
                None => {
                    self.levels.pop();
                    let var = self.depth_to_var.pop().expect("depth stack aligned");
                    self.var_open[var] = false;
                    if self.levels.is_empty() {
                        self.done = true;
                        return None;
                    }
                }
            }
        }
    }
}

/// The *Ghanima* rung: the width of the sibling range variable `vp` would
/// actually scan under the currently bound prefix — per participant the sum
/// of the live runs' child spans (level-0 participants contribute their
/// whole root level), minimised across participants. An O(participants ×
/// runs) read of ranges the walk is about to open anyway, and a tight upper
/// bound on how many values the binding can produce.
fn refined_span(plan: &JoinPlan, nodes: &[Vec<u32>], vp: &VarPlan) -> u64 {
    let mut best = u64::MAX;
    for part in &vp.participants {
        let nruns = plan.runs(part.atom);
        let mut width = 0u64;
        for r in 0..nruns {
            let trie = plan.run_trie(part.atom, r);
            let range = if part.level == 0 {
                trie.root_range()
            } else {
                let frame = &nodes[part.atom];
                let parent = frame[frame.len() - nruns + r];
                if parent == ABSENT {
                    continue;
                }
                trie.children(part.level - 1, parent)
            };
            width += u64::from(range.end - range.start);
        }
        best = best.min(width);
    }
    best
}

/// Streams result tuples of the join to `cb` in lexicographic order of the
/// plan's variable order, stopping early when `cb` returns
/// [`ControlFlow::Break`]. Returns `Break(())` iff the callback broke.
pub fn lftj_foreach_until(
    plan: &JoinPlan,
    cb: impl FnMut(&[ValueId]) -> ControlFlow<()>,
) -> ControlFlow<()> {
    lftj_foreach_until_in_range(plan, &ValueRange::all(), cb)
}

/// Range-restricted [`lftj_foreach_until`]: streams only the result tuples
/// whose first variable binding falls inside `root` (an independent
/// sub-walk, see [`LftjWalk::with_root_range`]).
pub fn lftj_foreach_until_in_range(
    plan: &JoinPlan,
    root: &ValueRange,
    mut cb: impl FnMut(&[ValueId]) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let mut walk = LftjWalk::with_root_range(plan.clone(), root.clone());
    while let Some(t) = walk.next_tuple() {
        cb(t)?;
    }
    ControlFlow::Continue(())
}

/// Streams every result tuple of the join to `cb`, in lexicographic order of
/// the plan's variable order (the never-stopping wrapper of
/// [`lftj_foreach_until`]).
pub fn lftj_foreach(plan: &JoinPlan, mut cb: impl FnMut(&[ValueId])) {
    let flow = lftj_foreach_until(plan, |t| {
        cb(t);
        ControlFlow::Continue(())
    });
    debug_assert!(flow.is_continue());
}

/// Materialises the LFTJ result into a relation (schema = variable order).
pub fn lftj(plan: &JoinPlan) -> Relation {
    lftj_in_range(plan, &ValueRange::all())
}

/// Materialises the range-restricted LFTJ result: exactly the tuples whose
/// first variable binding falls inside `root`. Concatenating the results of
/// a disjoint cover of the value space (in range order) reproduces
/// [`lftj`]'s output, order included.
pub fn lftj_in_range(plan: &JoinPlan, root: &ValueRange) -> Relation {
    lftj_in_range_counted(plan, root).0
}

/// Adaptive-ordering counters of one exhausted walk, harvested by
/// materialising drivers into `JoinStats` (zero for static plans).
#[derive(Debug, Default, Clone, Copy)]
pub struct WalkCounters {
    /// See [`LftjWalk::reorders`].
    pub reorders: u64,
    /// See [`LftjWalk::estimate_probes`].
    pub estimate_probes: u64,
}

/// [`lftj_in_range`] that also returns the walk's adaptive-ordering
/// counters, so engines can surface reorder decisions and estimate
/// maintenance cost without re-running the join.
pub fn lftj_in_range_counted(plan: &JoinPlan, root: &ValueRange) -> (Relation, WalkCounters) {
    let schema = Schema::new(plan.order().iter().cloned()).expect("distinct order");
    let mut out = Relation::new(schema);
    let mut walk = LftjWalk::with_root_range(plan.clone(), root.clone());
    while let Some(t) = walk.next_tuple() {
        out.push(t).expect("arity matches");
    }
    let counters = WalkCounters {
        reorders: walk.reorders(),
        estimate_probes: walk.estimate_probes(),
    };
    (out, counters)
}

/// Counts result tuples without materialising them.
pub fn lftj_count(plan: &JoinPlan) -> usize {
    let mut n = 0usize;
    lftj_foreach(plan, |_| n += 1);
    n
}

/// Convenience wrapper: plans and runs LFTJ over `relations` under `order`.
pub fn lftj_join(relations: &[&Relation], order: &[Attr]) -> Result<Relation> {
    let plan = JoinPlan::new(relations, order)?;
    Ok(lftj(&plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::{generic_join, naive_join};
    use crate::schema::Schema;

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    fn attrs(names: &[&str]) -> Vec<Attr> {
        names.iter().map(|&n| Attr::new(n)).collect()
    }

    fn rel(names: &[&str], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(Schema::of(names));
        for row in rows {
            let ids: Vec<ValueId> = row.iter().map(|&x| v(x)).collect();
            r.push(&ids).unwrap();
        }
        r
    }

    #[test]
    fn triangle_matches_generic() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3], &[2, 1]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[1, 1]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[2, 2]]);
        let order = attrs(&["a", "b", "c"]);
        let from_lftj = lftj_join(&[&r, &s, &t], &order).unwrap();
        let (from_generic, _) = generic_join(&[&r, &s, &t], &order).unwrap();
        assert!(from_lftj.set_eq(&from_generic));
        let expect = naive_join(&[&r, &s, &t], &order).unwrap();
        assert!(from_lftj.set_eq(&expect));
    }

    #[test]
    fn results_stream_in_lexicographic_order() {
        let r = rel(&["a", "b"], &[&[2, 1], &[1, 2], &[1, 1]]);
        let plan = JoinPlan::new(&[&r], &attrs(&["a", "b"])).unwrap();
        let mut seen: Vec<Vec<ValueId>> = Vec::new();
        lftj_foreach(&plan, |t| seen.push(t.to_vec()));
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted);
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn count_without_materialising() {
        let r = rel(&["a"], &[&[1], &[2], &[3]]);
        let s = rel(&["b"], &[&[7], &[8]]);
        let plan = JoinPlan::new(&[&r, &s], &attrs(&["a", "b"])).unwrap();
        assert_eq!(lftj_count(&plan), 6);
    }

    #[test]
    fn empty_atom_yields_nothing() {
        let r = rel(&["a"], &[&[1]]);
        let s = rel(&["a"], &[]);
        let plan = JoinPlan::new(&[&r, &s], &attrs(&["a"])).unwrap();
        assert_eq!(lftj_count(&plan), 0);
    }

    #[test]
    fn single_atom_enumerates_relation() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4], &[1, 2]]);
        let out = lftj_join(&[&r], &attrs(&["a", "b"])).unwrap();
        assert_eq!(out.len(), 2); // set semantics
    }

    #[test]
    fn four_clique_query() {
        // K4 edges as a symmetric relation; count 4-cliques via 6 atoms.
        let edges: Vec<[u32; 2]> = vec![
            [1, 2],
            [1, 3],
            [1, 4],
            [2, 3],
            [2, 4],
            [3, 4],
            [2, 1],
            [3, 1],
            [4, 1],
            [3, 2],
            [4, 2],
            [4, 3],
        ];
        let rows: Vec<Vec<ValueId>> = edges.iter().map(|e| vec![v(e[0]), v(e[1])]).collect();
        let pairs = [
            ("a", "b"),
            ("a", "c"),
            ("a", "d"),
            ("b", "c"),
            ("b", "d"),
            ("c", "d"),
        ];
        let rels: Vec<Relation> = pairs
            .iter()
            .map(|(x, y)| Relation::from_rows(Schema::of(&[x, y]), rows.clone()).unwrap())
            .collect();
        let refs: Vec<&Relation> = rels.iter().collect();
        let out = lftj_join(&refs, &attrs(&["a", "b", "c", "d"])).unwrap();
        // All 4! orderings of {1,2,3,4}.
        assert_eq!(out.len(), 24);
    }

    #[test]
    fn walk_matches_foreach() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[3, 3]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[1, 1]]);
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        let mut pushed: Vec<Vec<ValueId>> = Vec::new();
        lftj_foreach(&plan, |t| pushed.push(t.to_vec()));
        let mut walk = LftjWalk::new(plan);
        let mut pulled: Vec<Vec<ValueId>> = Vec::new();
        while let Some(t) = walk.next_tuple() {
            pulled.push(t.to_vec());
        }
        assert_eq!(pushed, pulled);
        assert!(walk.is_done());
        assert!(
            walk.next_tuple().is_none(),
            "exhausted walk stays exhausted"
        );
    }

    #[test]
    fn foreach_until_stops_the_walk() {
        let r = rel(&["a"], &[&[1], &[2], &[3], &[4]]);
        let s = rel(&["b"], &[&[7], &[8]]);
        let plan = JoinPlan::new(&[&r, &s], &attrs(&["a", "b"])).unwrap();
        let mut seen = 0usize;
        let flow = lftj_foreach_until(&plan, |_| {
            seen += 1;
            if seen == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(flow.is_break());
        assert_eq!(seen, 3);
        let full = lftj_foreach_until(&plan, |_| ControlFlow::Continue(()));
        assert!(full.is_continue());
    }

    #[test]
    fn early_termination_does_less_work() {
        // A large cartesian product: stopping after one tuple must bind far
        // fewer values than full enumeration.
        let rows_a: Vec<Vec<ValueId>> = (0..50).map(|i| vec![v(i)]).collect();
        let rows_b: Vec<Vec<ValueId>> = (0..50).map(|i| vec![v(100 + i)]).collect();
        let a = Relation::from_rows(Schema::of(&["a"]), rows_a).unwrap();
        let b = Relation::from_rows(Schema::of(&["b"]), rows_b).unwrap();
        let plan = JoinPlan::new(&[&a, &b], &attrs(&["a", "b"])).unwrap();

        let mut full = LftjWalk::new(plan.clone());
        while full.next_tuple().is_some() {}
        let mut early = LftjWalk::new(plan);
        assert!(early.next_tuple().is_some());
        assert!(
            early.bindings() < full.bindings(),
            "early {} !< full {}",
            early.bindings(),
            full.bindings()
        );
        assert_eq!(full.bindings(), 50 + 50 * 50);
    }

    #[test]
    fn range_restricted_walks_partition_the_result() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3], &[2, 1]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[1, 1]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[2, 2]]);
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        let full = lftj(&plan);
        assert!(!full.is_empty());

        // Split the `a` domain at value 2: [0, 2) and [2, ∞).
        let lo_half = ValueRange {
            lo: v(0),
            hi: Some(v(2)),
        };
        let hi_half = ValueRange { lo: v(2), hi: None };
        let lo_part = lftj_in_range(&plan, &lo_half);
        let hi_part = lftj_in_range(&plan, &hi_half);
        assert!(lo_part.rows().all(|row| row[0] < v(2)));
        assert!(hi_part.rows().all(|row| row[0] >= v(2)));

        // Concatenation in range order reproduces the full result exactly.
        let mut merged = Relation::new(full.schema().clone());
        for row in lo_part.rows().chain(hi_part.rows()) {
            merged.push(row).unwrap();
        }
        assert_eq!(merged, full);

        // Bindings of the sub-walks sum to the full walk's bindings: every
        // bound prefix belongs to exactly one morsel (by its root value).
        let count_bindings = |root: ValueRange| {
            let mut w = LftjWalk::with_root_range(plan.clone(), root);
            while w.next_tuple().is_some() {}
            w.bindings()
        };
        let mut full_walk = LftjWalk::new(plan.clone());
        while full_walk.next_tuple().is_some() {}
        assert_eq!(
            count_bindings(lo_half) + count_bindings(hi_half),
            full_walk.bindings()
        );
    }

    #[test]
    fn empty_range_yields_nothing() {
        let r = rel(&["a"], &[&[1], &[2], &[3]]);
        let plan = JoinPlan::new(&[&r], &attrs(&["a"])).unwrap();
        let out = lftj_in_range(
            &plan,
            &ValueRange {
                lo: v(10),
                hi: Some(v(20)),
            },
        );
        assert!(out.is_empty());
        let flow = lftj_foreach_until_in_range(&plan, &ValueRange { lo: v(2), hi: None }, |_| {
            ControlFlow::Break(())
        });
        assert!(flow.is_break());
    }

    #[test]
    fn walk_exposes_order_and_plan() {
        let r = rel(&["a", "b"], &[&[1, 2]]);
        let plan = JoinPlan::new(&[&r], &attrs(&["a", "b"])).unwrap();
        let walk = LftjWalk::new(plan);
        assert_eq!(walk.order(), &attrs(&["a", "b"])[..]);
        assert_eq!(walk.plan().tries().len(), 1);
        assert_eq!(walk.bindings(), 0);
        assert_eq!(walk.kernel(), ProbeKernel::Block);
    }

    /// Runs `plan` to exhaustion under `kernel`, returning (tuples, bindings).
    fn drain(plan: &JoinPlan, root: ValueRange, kernel: ProbeKernel) -> (Vec<Vec<ValueId>>, u64) {
        let mut walk = LftjWalk::with_kernel(plan.clone(), root, kernel);
        let mut out = Vec::new();
        while let Some(t) = walk.next_tuple() {
            out.push(t.to_vec());
        }
        (out, walk.bindings())
    }

    #[test]
    fn scalar_and_block_kernels_agree_on_triangle() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3], &[2, 1]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[1, 1]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[2, 2]]);
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        let (scalar, scalar_b) = drain(&plan, ValueRange::all(), ProbeKernel::Scalar);
        let (block, block_b) = drain(&plan, ValueRange::all(), ProbeKernel::Block);
        assert_eq!(scalar, block);
        assert_eq!(scalar_b, block_b, "kernels must bind identically");
    }

    #[test]
    fn kernels_agree_across_batch_boundaries() {
        // A single-atom walk over > PROBE_BATCH keys exercises the bulk-copy
        // refill path across several batch refills.
        let rows: Vec<Vec<ValueId>> = (0..100u32).map(|i| vec![v(i), v(i % 7)]).collect();
        let r = Relation::from_rows(Schema::of(&["a", "b"]), rows).unwrap();
        let plan = JoinPlan::new(&[&r], &attrs(&["a", "b"])).unwrap();
        let (scalar, scalar_b) = drain(&plan, ValueRange::all(), ProbeKernel::Scalar);
        let (block, block_b) = drain(&plan, ValueRange::all(), ProbeKernel::Block);
        assert_eq!(scalar.len(), 100);
        assert_eq!(scalar, block);
        assert_eq!(scalar_b, block_b);
    }

    #[test]
    fn kernels_agree_under_root_ranges() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3], &[2, 1]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[1, 1]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[2, 2]]);
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        for (lo, hi) in [(0, Some(2)), (2, None), (1, Some(3)), (5, Some(9))] {
            let root = ValueRange {
                lo: v(lo),
                hi: hi.map(v),
            };
            let (scalar, _) = drain(&plan, root.clone(), ProbeKernel::Scalar);
            let (block, _) = drain(&plan, root, ProbeKernel::Block);
            assert_eq!(scalar, block, "root [{lo}, {hi:?})");
        }
    }

    #[test]
    fn block_kernel_uses_bitset_levels() {
        // Dense symmetric edge set large enough that levels cross
        // BITSET_MIN_NODES: both kernels, and both layouts, must agree.
        let mut edges: Vec<Vec<ValueId>> = Vec::new();
        for i in 0..90u32 {
            let j = (i * 37 + 11) % 90;
            if i != j {
                edges.push(vec![v(i), v(j)]);
                edges.push(vec![v(j), v(i)]);
            }
        }
        let make =
            |names: [&str; 2]| Relation::from_rows(Schema::of(&names), edges.clone()).unwrap();
        let (r, s, t) = (make(["a", "b"]), make(["b", "c"]), make(["a", "c"]));
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        assert!(
            plan.tries().iter().any(|t| t.bitset_level_count() > 0),
            "test instance too small to trigger bitset layouts"
        );
        let (scalar, _) = drain(&plan, ValueRange::all(), ProbeKernel::Scalar);
        let (block, _) = drain(&plan, ValueRange::all(), ProbeKernel::Block);
        assert_eq!(scalar, block);
    }

    fn drain_counted(
        plan: &JoinPlan,
        kernel: ProbeKernel,
    ) -> (Vec<Vec<ValueId>>, u64, Vec<LevelProbeStats>) {
        let mut walk =
            LftjWalk::with_kernel(plan.clone(), ValueRange::all(), kernel).with_probe_counters();
        let mut out = Vec::new();
        while let Some(t) = walk.next_tuple() {
            out.push(t.to_vec());
        }
        (out, walk.bindings(), walk.probe_stats().to_vec())
    }

    #[test]
    fn probe_counters_observe_without_perturbing() {
        // Same dense instance as `block_kernel_uses_bitset_levels`, so the
        // counted path crosses sorted, blocked, and bitset seeks alike.
        let mut edges: Vec<Vec<ValueId>> = Vec::new();
        for i in 0..90u32 {
            let j = (i * 37 + 11) % 90;
            if i != j {
                edges.push(vec![v(i), v(j)]);
                edges.push(vec![v(j), v(i)]);
            }
        }
        // Plant a triangle so the last level binds at least once.
        for (x, y) in [(0u32, 1u32), (1, 2), (0, 2)] {
            edges.push(vec![v(x), v(y)]);
            edges.push(vec![v(y), v(x)]);
        }
        let make =
            |names: [&str; 2]| Relation::from_rows(Schema::of(&names), edges.clone()).unwrap();
        let (r, s, t) = (make(["a", "b"]), make(["b", "c"]), make(["a", "c"]));
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        let has_bitset = plan.tries().iter().any(|t| t.bitset_level_count() > 0);
        for kernel in [ProbeKernel::Scalar, ProbeKernel::Block] {
            let (plain, plain_b) = drain(&plan, ValueRange::all(), kernel);
            let (counted, counted_b, probe) = drain_counted(&plan, kernel);
            assert_eq!(plain, counted, "{kernel:?}: counting changed the result");
            assert_eq!(plain_b, counted_b, "{kernel:?}: counting changed bindings");
            assert_eq!(probe.len(), 3);
            let per_level: u64 = probe.iter().map(|p| p.bindings).sum();
            assert_eq!(per_level, counted_b, "per-level bindings sum to the total");
            assert!(
                probe.iter().all(|p| p.bindings > 0),
                "{kernel:?}: every level bound something: {probe:?}"
            );
            assert!(
                probe.iter().any(|p| p.seeks > 0 && p.seek_steps > 0),
                "{kernel:?}: seeks went uncounted: {probe:?}"
            );
            if kernel == ProbeKernel::Block {
                assert!(probe.iter().any(|p| p.refills > 0), "refills uncounted");
                if has_bitset {
                    assert!(
                        probe.iter().any(|p| p.bitset_words > 0),
                        "bitset words uncounted: {probe:?}"
                    );
                }
            }
        }
        // Untracked walks leave the counters untouched.
        let mut untracked = LftjWalk::new(plan);
        while untracked.next_tuple().is_some() {}
        assert!(untracked
            .probe_stats()
            .iter()
            .all(|p| *p == LevelProbeStats::default()));
    }

    mod layered {
        use super::*;
        use std::sync::Arc;

        /// Splits `rows` pseudo-randomly into `parts` layers (each sorted and
        /// deduped into its own trie) and also returns the solid union
        /// relation of all rows.
        fn split_layers(
            names: &[&str],
            rows: &[Vec<u32>],
            parts: usize,
            seed: u64,
        ) -> (Vec<Arc<Trie>>, Relation) {
            let order: Vec<Attr> = names.iter().map(|&n| Attr::new(n)).collect();
            let mut buckets: Vec<Relation> = (0..parts)
                .map(|_| Relation::new(Schema::of(names)))
                .collect();
            let mut union_rel = Relation::new(Schema::of(names));
            let mut state = seed | 1;
            for row in rows {
                let ids: Vec<ValueId> = row.iter().map(|&x| v(x)).collect();
                union_rel.push(&ids).unwrap();
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                buckets[(state >> 33) as usize % parts].push(&ids).unwrap();
            }
            union_rel.sort_dedup();
            let tries = buckets
                .iter_mut()
                .map(|b| {
                    b.sort_dedup();
                    Arc::new(Trie::build(b, &order).unwrap())
                })
                .collect();
            (tries, union_rel)
        }

        /// A triangle instance where every atom is split into a base plus
        /// two delta runs; returns (layered plan, equivalent solid plan).
        fn triangle_layers(seed: u64, parts: usize) -> (JoinPlan, JoinPlan) {
            let mut edges: Vec<Vec<u32>> = Vec::new();
            let mut state = seed | 1;
            for _ in 0..140 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let i = ((state >> 33) % 40) as u32;
                let j = ((state >> 13) % 40) as u32;
                if i != j {
                    edges.push(vec![i, j]);
                    edges.push(vec![j, i]);
                }
            }
            // Plant triangles so the join is never trivially empty.
            for (x, y) in [(0, 1), (1, 2), (0, 2), (7, 9), (9, 11), (7, 11)] {
                edges.push(vec![x, y]);
                edges.push(vec![y, x]);
            }
            let order = attrs(&["a", "b", "c"]);
            let mut bases = Vec::new();
            let mut layers = Vec::new();
            let mut solids = Vec::new();
            for (i, names) in [["a", "b"], ["b", "c"], ["a", "c"]].iter().enumerate() {
                let (mut tries, solid) = split_layers(names, &edges, parts, seed ^ (i as u64 + 1));
                bases.push(tries.remove(0));
                layers.push(tries);
                solids.push(solid);
            }
            let layered = JoinPlan::from_shared_layered(bases, layers, &order).unwrap();
            let refs: Vec<&Relation> = solids.iter().collect();
            let solid = JoinPlan::new(&refs, &order).unwrap();
            (layered, solid)
        }

        #[test]
        fn layered_walk_matches_solid_plan_under_both_kernels() {
            let (layered, solid) = triangle_layers(0x9e37, 3);
            assert!(layered.has_layers());
            let (want, _) = drain(&solid, ValueRange::all(), ProbeKernel::Block);
            assert!(!want.is_empty(), "instance joins to something");
            let (scalar, scalar_b) = drain(&layered, ValueRange::all(), ProbeKernel::Scalar);
            let (block, block_b) = drain(&layered, ValueRange::all(), ProbeKernel::Block);
            assert_eq!(scalar, want);
            assert_eq!(block, want);
            assert_eq!(scalar_b, block_b, "kernels must bind identically");
        }

        #[test]
        fn layered_probe_counters_observe_without_perturbing() {
            let (layered, _) = triangle_layers(0x51ed, 3);
            for kernel in [ProbeKernel::Scalar, ProbeKernel::Block] {
                let (plain, plain_b) = drain(&layered, ValueRange::all(), kernel);
                let (counted, counted_b, probe) = drain_counted(&layered, kernel);
                assert_eq!(plain, counted, "{kernel:?}: counting changed the result");
                assert_eq!(plain_b, counted_b, "{kernel:?}: counting changed bindings");
                let per_level: u64 = probe.iter().map(|p| p.bindings).sum();
                assert_eq!(per_level, counted_b);
                assert!(
                    probe.iter().any(|p| p.seeks > 0),
                    "{kernel:?}: union seeks uncounted: {probe:?}"
                );
            }
        }

        #[test]
        fn layered_root_ranges_partition_the_result() {
            let (layered, _) = triangle_layers(0x2bad, 3);
            let (full, full_b) = drain(&layered, ValueRange::all(), ProbeKernel::Block);
            let ranges = [
                ValueRange {
                    lo: v(0),
                    hi: Some(v(11)),
                },
                ValueRange {
                    lo: v(11),
                    hi: Some(v(27)),
                },
                ValueRange {
                    lo: v(27),
                    hi: None,
                },
            ];
            let mut merged = Vec::new();
            let mut bindings = 0u64;
            for root in ranges {
                let (part, b) = drain(&layered, root, ProbeKernel::Block);
                merged.extend(part);
                bindings += b;
            }
            assert_eq!(merged, full, "disjoint cover reproduces the result");
            assert_eq!(bindings, full_b, "morsel bindings sum to the total");
        }

        #[test]
        fn layered_random_differential() {
            for seed in [1u64, 7, 42, 0xdead_beef] {
                for parts in [2usize, 3, 5] {
                    let (layered, solid) = triangle_layers(seed, parts);
                    let (want, _) = drain(&solid, ValueRange::all(), ProbeKernel::Block);
                    for kernel in [ProbeKernel::Scalar, ProbeKernel::Block] {
                        let (got, _) = drain(&layered, ValueRange::all(), kernel);
                        assert_eq!(got, want, "seed {seed} parts {parts} {kernel:?}");
                    }
                    let mid = ValueRange {
                        lo: v(9),
                        hi: Some(v(31)),
                    };
                    let (got_mid, _) = drain(&layered, mid.clone(), ProbeKernel::Block);
                    let (want_mid, _) = drain(&solid, mid, ProbeKernel::Block);
                    assert_eq!(got_mid, want_mid, "seed {seed} parts {parts} mid range");
                }
            }
        }

        #[test]
        fn layered_handles_empty_and_overlapping_layers() {
            let order = attrs(&["a", "b"]);
            let empty = Relation::new(Schema::of(&["a", "b"]));
            let mut two = rel(&["a", "b"], &[&[3, 4], &[1, 2]]);
            two.sort_dedup();
            let empty_t = Arc::new(Trie::build(&empty, &order).unwrap());
            let two_t = Arc::new(Trie::build(&two, &order).unwrap());

            // Empty base + live delta enumerates exactly the delta.
            let plan = JoinPlan::from_shared_layered(
                vec![Arc::clone(&empty_t)],
                vec![vec![Arc::clone(&two_t)]],
                &order,
            )
            .unwrap();
            assert!(!plan.has_empty_atom());
            let (got, _) = drain(&plan, ValueRange::all(), ProbeKernel::Block);
            assert_eq!(got.len(), 2);

            // Layers duplicating the base (and each other) still dedup.
            let plan2 = JoinPlan::from_shared_layered(
                vec![Arc::clone(&two_t)],
                vec![vec![Arc::clone(&two_t), Arc::clone(&two_t)]],
                &order,
            )
            .unwrap();
            for kernel in [ProbeKernel::Scalar, ProbeKernel::Block] {
                let (got2, _) = drain(&plan2, ValueRange::all(), kernel);
                assert_eq!(got2.len(), 2, "{kernel:?}");
            }

            // Empty base + empty delta is a logically empty atom.
            let plan3 = JoinPlan::from_shared_layered(
                vec![Arc::clone(&empty_t)],
                vec![vec![Arc::clone(&empty_t)]],
                &order,
            )
            .unwrap();
            assert!(plan3.has_empty_atom());
            let (got3, _) = drain(&plan3, ValueRange::all(), ProbeKernel::Block);
            assert!(got3.is_empty());
        }
    }

    mod adaptive {
        use super::*;

        /// The two-branch query `Q(a,b,c) :- R(a,b), S(a,c), F(b), G(c)`:
        /// after binding `a`, both `b` and `c` are admissible, so the
        /// adaptive walk has genuine reorder freedom. Even `a`s are heavy
        /// on the `b` branch, odd `a`s on the `c` branch, so *no* static
        /// order avoids expanding a heavy branch on half the keys while
        /// the refined ladder sidesteps both.
        fn branch_relations(keys: u32, heavy: u32) -> (Relation, Relation, Relation, Relation) {
            let hb: Vec<u32> = (1000..1000 + heavy).collect();
            let hc: Vec<u32> = (2000..2000 + heavy).collect();
            let mut r = Relation::new(Schema::of(&["a", "b"]));
            let mut s = Relation::new(Schema::of(&["a", "c"]));
            for a in 0..keys {
                if a % 2 == 0 {
                    for &b in &hb {
                        r.push(&[v(a), v(b)]).unwrap();
                    }
                    s.push(&[v(a), v(600 + a % 16)]).unwrap();
                } else {
                    r.push(&[v(a), v(500 + a % 16)]).unwrap();
                    for &c in &hc {
                        s.push(&[v(a), v(c)]).unwrap();
                    }
                }
            }
            // Heavy values always pass their filter (so a static order that
            // expands a heavy branch really pays for it), light values only
            // rarely (the fail-fast opportunity): F = {501} ∪ heavy-b,
            // G = {600} ∪ heavy-c, so a ≡ 1 (mod 16) odd keys and
            // a ≡ 0 (mod 16) even keys survive and keep the result
            // non-empty.
            let mut f = Relation::new(Schema::of(&["b"]));
            for b in std::iter::once(501).chain(hb.iter().copied()) {
                f.push(&[v(b)]).unwrap();
            }
            let mut g = Relation::new(Schema::of(&["c"]));
            for c in std::iter::once(600).chain(hc.iter().copied()) {
                g.push(&[v(c)]).unwrap();
            }
            (r, s, f, g)
        }

        fn branch_plan(ladder: Option<Ladder>) -> JoinPlan {
            let (r, s, f, g) = branch_relations(64, 24);
            let plan = JoinPlan::new(&[&r, &s, &f, &g], &attrs(&["a", "b", "c"])).unwrap();
            plan.with_ladder(ladder)
        }

        fn multiset(mut rows: Vec<Vec<ValueId>>) -> Vec<Vec<ValueId>> {
            rows.sort();
            rows
        }

        #[test]
        fn every_rung_matches_the_static_walk() {
            let (want, _) = drain(&branch_plan(None), ValueRange::all(), ProbeKernel::Block);
            assert!(!want.is_empty(), "branch workload must have survivors");
            let want = multiset(want);
            for ladder in [Ladder::RowCount, Ladder::Distinct, Ladder::Refined] {
                for kernel in [ProbeKernel::Scalar, ProbeKernel::Block] {
                    let (got, _) = drain(&branch_plan(Some(ladder)), ValueRange::all(), kernel);
                    assert_eq!(multiset(got), want, "{ladder:?} / {kernel:?}");
                }
            }
        }

        #[test]
        fn refined_rung_reorders_and_does_less_work() {
            let mut walk = LftjWalk::new(branch_plan(Some(Ladder::Refined)));
            while walk.next_tuple().is_some() {}
            let mut static_walk = LftjWalk::new(branch_plan(None));
            while static_walk.next_tuple().is_some() {}
            assert_eq!(static_walk.reorders(), 0);
            assert_eq!(static_walk.estimate_probes(), 0);
            assert!(walk.reorders() > 0, "skew must force deviations");
            assert!(walk.estimate_probes() > 0);
            assert!(
                walk.bindings() < static_walk.bindings() / 2,
                "adaptive {} !< static {} / 2",
                walk.bindings(),
                static_walk.bindings()
            );
        }

        #[test]
        fn adaptive_tuples_stay_in_plan_layout() {
            // Every yielded row must satisfy R(a,b) and S(a,c) under the
            // plan's (a, b, c) layout even when `c` was bound before `b`.
            let (r, s, _, _) = branch_relations(64, 24);
            let mut walk = LftjWalk::new(branch_plan(Some(Ladder::Refined)));
            let mut checked = 0usize;
            while let Some(t) = walk.next_tuple() {
                let (a, b, c) = (t[0], t[1], t[2]);
                assert!(r.rows().any(|row| row[0] == a && row[1] == b));
                assert!(s.rows().any(|row| row[0] == a && row[1] == c));
                checked += 1;
            }
            assert!(checked > 0);
        }

        #[test]
        fn adaptive_range_walks_partition_the_result() {
            let plan = branch_plan(Some(Ladder::Refined));
            let (full, _) = drain(&plan, ValueRange::all(), ProbeKernel::Block);
            let split = ValueId(32);
            let (lo, _) = drain(
                &plan,
                ValueRange {
                    lo: ValueId(0),
                    hi: Some(split),
                },
                ProbeKernel::Block,
            );
            let (hi, _) = drain(
                &plan,
                ValueRange {
                    lo: split,
                    hi: None,
                },
                ProbeKernel::Block,
            );
            let mut glued = lo;
            glued.extend(hi);
            assert_eq!(glued, full, "disjoint cover reproduces order too");
        }

        #[test]
        fn tracked_adaptive_walks_report_choices_and_estimates() {
            let plan = branch_plan(Some(Ladder::Refined));
            let mut walk = LftjWalk::new(plan).with_probe_counters();
            while walk.next_tuple().is_some() {}
            let nvars = 3;
            let hist = walk.choice_histogram();
            assert_eq!(hist.len(), nvars * nvars);
            // Depth 0 is pinned to the plan's first variable.
            assert!(hist[0] > 0);
            assert_eq!(hist[1], 0);
            assert_eq!(hist[2], 0);
            // Depth 1 must have opened both `b` and `c` at least once.
            assert!(hist[nvars + 1] > 0, "b chosen at depth 1 sometimes");
            assert!(hist[nvars + 2] > 0, "c chosen at depth 1 sometimes");
            // Refined estimates upper-bound the actual bindings per var.
            for (v, stats) in walk.probe_stats().iter().enumerate() {
                assert!(
                    walk.estimated_bindings()[v] >= stats.bindings,
                    "estimate at var {v} is an upper bound"
                );
            }
        }

        #[test]
        fn counted_materialisation_reports_reorders() {
            let plan = branch_plan(Some(Ladder::Refined));
            let (rel_adaptive, counters) = lftj_in_range_counted(&plan, &ValueRange::all());
            assert!(counters.reorders > 0);
            assert!(counters.estimate_probes > 0);
            let static_rel = lftj(&branch_plan(None));
            assert!(rel_adaptive.set_eq(&static_rel));
        }
    }
}
