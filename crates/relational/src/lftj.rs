//! Leapfrog Triejoin (Veldhuizen 2012): a streaming, depth-first worst-case
//! optimal join.
//!
//! Unlike the level-wise engine in [`crate::generic`], LFTJ never
//! materialises intermediates: it walks all atom tries in lockstep,
//! performing a leapfrog intersection per variable and backtracking on
//! failure. Results are delivered in lexicographic order of the plan's
//! variable order.
//!
//! Two consumption styles are offered:
//!
//! * **pull** — [`LftjWalk`] owns its [`JoinPlan`] (tries are shared
//!   `Arc`s, so the plan is cheap to clone) and yields one tuple per
//!   [`LftjWalk::next_tuple`] call. Abandoning the walk after `k` tuples
//!   does strictly less work than full enumeration — this is the substrate
//!   for `LIMIT` pushdown in the multi-model `Rows` iterator;
//! * **push** — [`lftj_foreach_until`] drives a callback that can stop the
//!   walk by returning [`ControlFlow::Break`] ([`lftj_foreach`] is the
//!   never-stopping wrapper).

use crate::error::Result;
use crate::leapfrog::{block_seek, block_seek_counted, gallop, gallop_counted};
use crate::plan::{JoinPlan, ValueRange};
use crate::relation::Relation;
use crate::schema::{Attr, Schema};
use crate::stats::LevelProbeStats;
use crate::trie::{LevelBits, Trie};
use crate::value::ValueId;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Which probe kernel drives a [`LftjWalk`]'s per-variable intersections.
///
/// Both kernels produce identical results (the differential probe suites
/// prove it); they differ in how much work each `advance` amortises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeKernel {
    /// One value per advance; every key access resolves through the tries
    /// and seeks are scalar gallops. Kept verbatim as the reference
    /// implementation and the benchmark baseline.
    Scalar,
    /// Batch-at-a-time (MonetDB/X100 style): each refill resolves every
    /// participant's level slice once, then runs the leapfrog rotation over
    /// raw slices — with [`crate::leapfrog::block_seek`] or the level's
    /// bitmap index for seeks — buffering a small vector of matched values
    /// and their per-atom node positions. The default.
    #[default]
    Block,
}

/// Matches buffered per [`LevelState`] refill under [`ProbeKernel::Block`].
const PROBE_BATCH: usize = 32;
/// Participant count up to which the per-refill level views live on the
/// stack (joins rarely exceed a handful of atoms per variable).
const MAX_INLINE_VIEWS: usize = 8;

/// A per-refill snapshot of one cursor's trie level: the full value array
/// plus the optional bitmap index, resolved once instead of per key access.
#[derive(Clone, Copy)]
struct LevelView<'a> {
    vals: &'a [ValueId],
    bits: Option<&'a LevelBits>,
}

const EMPTY_VIEW: LevelView<'static> = LevelView {
    vals: &[],
    bits: None,
};

impl<'a> LevelView<'a> {
    fn of(trie: &'a Trie, level: usize) -> LevelView<'a> {
        let (vals, bits) = trie.level_view(level);
        LevelView { vals, bits }
    }
}

/// An owned cursor over one contiguous sibling range of a trie level.
///
/// Unlike [`crate::leapfrog::SliceCursor`], positions are absolute node
/// indices resolved against the tries on each access, so the cursor borrows
/// nothing — which is what lets [`LftjWalk`] own its plan and hand out
/// tuples across calls.
#[derive(Debug, Clone)]
struct RangeCursor {
    atom: usize,
    level: usize,
    hi: u32,
    pos: u32,
    /// Sibling-group id for the level's bitmap index: the parent node index
    /// at `level - 1`, or 0 at level 0 (one group spans the root level).
    group: u32,
    /// Absolute node index where the group begins (pre any root-range
    /// clamping), anchoring bitmap ranks to node positions.
    group_start: u32,
}

impl RangeCursor {
    #[inline]
    fn at_end(&self) -> bool {
        self.pos >= self.hi
    }

    #[inline]
    fn key(&self, tries: &[Arc<Trie>]) -> ValueId {
        tries[self.atom].value(self.level, self.pos)
    }

    #[inline]
    fn next(&mut self) {
        self.pos += 1;
    }

    /// Seeks forward to the first node with value `>= target` — the scalar
    /// reference path, kept on plain galloping. With `TRACK` the gallop's
    /// probe steps land in `stats`; the `TRACK = false` instantiation
    /// compiles down to the untracked seek.
    fn seek<const TRACK: bool>(
        &mut self,
        tries: &[Arc<Trie>],
        target: ValueId,
        stats: &mut LevelProbeStats,
    ) {
        let slice = tries[self.atom].values(self.level, self.pos..self.hi);
        if TRACK {
            let (pos, steps) = gallop_counted(slice, 0, target);
            self.pos += pos as u32;
            stats.seeks += 1;
            stats.seek_steps += steps;
        } else {
            self.pos += gallop(slice, 0, target) as u32;
        }
    }

    /// Seek against a resolved [`LevelView`]: the level's bitmap index when
    /// it has one, block-wise galloping over the sibling slice otherwise.
    #[inline]
    fn seek_view<const TRACK: bool>(
        &mut self,
        view: &LevelView<'_>,
        target: ValueId,
        stats: &mut LevelProbeStats,
    ) {
        self.pos = match view.bits {
            Some(bits) => {
                if TRACK {
                    let (pos, words) =
                        bits.seek_counted(self.group, self.group_start, self.pos, self.hi, target);
                    stats.seeks += 1;
                    stats.bitset_words += words;
                    pos
                } else {
                    bits.seek(self.group, self.group_start, self.pos, self.hi, target)
                }
            }
            None => {
                let slice = &view.vals[self.pos as usize..self.hi as usize];
                if TRACK {
                    let (pos, steps) = block_seek_counted(slice, 0, target);
                    stats.seeks += 1;
                    stats.seek_steps += steps;
                    self.pos + pos as u32
                } else {
                    self.pos + block_seek(slice, 0, target) as u32
                }
            }
        };
    }
}

/// Resumable leapfrog intersection state for one variable: the cursors of
/// every participating atom plus the rotation bookkeeping of the classic
/// algorithm, restartable between [`LevelState::advance`] calls.
///
/// This mirrors [`crate::leapfrog::leapfrog_foreach_until`]'s rotation
/// (prime → emit at agreement → step the emitter → seek the rest) but over
/// owned index cursors, which is what makes the walk resumable across
/// calls. The two cores are kept honest against each other by the engine
/// equivalence suites (LFTJ vs the level-wise join on random instances).
#[derive(Debug)]
struct LevelState {
    cursors: Vec<RangeCursor>,
    /// Cursor indices in ascending-key rotation order (filled on priming).
    rot: Vec<usize>,
    p: usize,
    max: ValueId,
    primed: bool,
    exhausted: bool,
    /// Whether this level's current match is bound onto the walk's prefix.
    bound: bool,
    /// Matched values buffered by the block kernel, drained in order.
    batch: Vec<ValueId>,
    /// Per match, the `k` cursor node positions at the agreement —
    /// `batch_pos[m*k .. (m+1)*k]` belongs to `batch[m]`.
    batch_pos: Vec<u32>,
    /// Index of the batch entry currently served.
    batch_idx: usize,
}

impl LevelState {
    fn new(cursors: Vec<RangeCursor>) -> LevelState {
        let exhausted = cursors.iter().any(RangeCursor::at_end);
        LevelState {
            cursors,
            rot: Vec::new(),
            p: 0,
            max: ValueId(0),
            primed: false,
            exhausted,
            bound: false,
            batch: Vec::new(),
            batch_pos: Vec::new(),
            batch_idx: 0,
        }
    }

    /// Yields the next value present in every cursor; on `Some(v)` the
    /// per-cursor match positions are readable via [`LevelState::match_pos`].
    /// `TRACK` selects the probe-counting instantiation; with `TRACK =
    /// false` every counter touch compiles away and `stats` is untouched.
    fn advance<const TRACK: bool>(
        &mut self,
        tries: &[Arc<Trie>],
        kernel: ProbeKernel,
        stats: &mut LevelProbeStats,
    ) -> Option<ValueId> {
        match kernel {
            ProbeKernel::Scalar => self.advance_scalar::<TRACK>(tries, stats),
            ProbeKernel::Block => self.advance_block::<TRACK>(tries, stats),
        }
    }

    /// Node position of cursor `c` at the currently served match: the
    /// buffered positions under the block kernel, the parked cursor itself
    /// under the scalar one (whose batch is always empty).
    #[inline]
    fn match_pos(&self, c: usize) -> u32 {
        if self.batch_idx < self.batch.len() {
            self.batch_pos[self.batch_idx * self.cursors.len() + c]
        } else {
            self.cursors[c].pos
        }
    }

    /// The scalar reference kernel: one match per call, cursors parked at
    /// the agreement, `p` staying put so the next call steps the emitter.
    fn advance_scalar<const TRACK: bool>(
        &mut self,
        tries: &[Arc<Trie>],
        stats: &mut LevelProbeStats,
    ) -> Option<ValueId> {
        if self.exhausted {
            return None;
        }
        let k = self.cursors.len();
        if !self.primed {
            self.primed = true;
            self.rot = (0..k).collect();
            self.rot.sort_by_key(|&i| self.cursors[i].key(tries));
            self.p = 0;
            self.max = self.cursors[self.rot[k - 1]].key(tries);
        } else {
            // Resume after an emitted match: step the cursor that emitted it.
            let i = self.rot[self.p];
            self.cursors[i].next();
            if self.cursors[i].at_end() {
                self.exhausted = true;
                return None;
            }
            self.max = self.cursors[i].key(tries);
            self.p = (self.p + 1) % k;
        }
        loop {
            let i = self.rot[self.p];
            let x = self.cursors[i].key(tries);
            if x == self.max {
                // All k cursors agree on x; `p` stays put so the next
                // `advance` steps this cursor past the match.
                return Some(x);
            }
            self.cursors[i].seek::<TRACK>(tries, self.max, stats);
            if self.cursors[i].at_end() {
                self.exhausted = true;
                return None;
            }
            self.max = self.cursors[i].key(tries);
            self.p = (self.p + 1) % k;
        }
    }

    /// The batch-at-a-time kernel: serves buffered matches until the batch
    /// runs dry, then refills up to [`PROBE_BATCH`] matches in one rotation
    /// run over per-level views resolved once.
    fn advance_block<const TRACK: bool>(
        &mut self,
        tries: &[Arc<Trie>],
        stats: &mut LevelProbeStats,
    ) -> Option<ValueId> {
        if self.batch_idx + 1 < self.batch.len() {
            self.batch_idx += 1;
            return Some(self.batch[self.batch_idx]);
        }
        if self.exhausted {
            return None;
        }
        self.refill::<TRACK>(tries, stats);
        self.batch_idx = 0;
        self.batch.first().copied()
    }

    /// Runs the leapfrog rotation over resolved [`LevelView`]s, buffering
    /// matched values and their cursor positions. Stops when the batch is
    /// full or some cursor exhausts its range (which ends the level: the
    /// batch may still hold matches to serve, but no refill will follow).
    fn refill<const TRACK: bool>(&mut self, tries: &[Arc<Trie>], stats: &mut LevelProbeStats) {
        if TRACK {
            stats.refills += 1;
        }
        self.batch.clear();
        self.batch_pos.clear();
        let k = self.cursors.len();
        let mut inline = [EMPTY_VIEW; MAX_INLINE_VIEWS];
        let heap: Vec<LevelView<'_>>;
        let views: &[LevelView<'_>] = if k <= MAX_INLINE_VIEWS {
            for (slot, c) in inline.iter_mut().zip(&self.cursors) {
                *slot = LevelView::of(&tries[c.atom], c.level);
            }
            &inline[..k]
        } else {
            heap = self
                .cursors
                .iter()
                .map(|c| LevelView::of(&tries[c.atom], c.level))
                .collect();
            &heap
        };
        if k == 1 {
            // Single participant: the intersection is the range itself —
            // bulk-copy a batch of values and positions.
            let c = &mut self.cursors[0];
            let take = (c.hi - c.pos).min(PROBE_BATCH as u32);
            if take == 0 {
                self.exhausted = true;
                return;
            }
            self.batch
                .extend_from_slice(&views[0].vals[c.pos as usize..(c.pos + take) as usize]);
            self.batch_pos.extend(c.pos..c.pos + take);
            c.pos += take;
            return;
        }
        if !self.primed {
            self.primed = true;
            self.rot.clear();
            self.rot.extend(0..k);
            let cursors = &self.cursors;
            self.rot
                .sort_by_key(|&i| views[i].vals[cursors[i].pos as usize]);
            self.p = 0;
            let last = self.rot[k - 1];
            self.max = views[last].vals[self.cursors[last].pos as usize];
        }
        loop {
            let i = self.rot[self.p];
            let x = views[i].vals[self.cursors[i].pos as usize];
            if x == self.max {
                // All k cursors agree on x (the rotation invariant): record
                // the match and immediately step the emitter past it — the
                // bound positions live in `batch_pos`, not the cursors.
                self.batch.push(x);
                for c in &self.cursors {
                    self.batch_pos.push(c.pos);
                }
                let pos = self.cursors[i].pos + 1;
                self.cursors[i].pos = pos;
                if pos >= self.cursors[i].hi {
                    self.exhausted = true;
                    return;
                }
                self.max = views[i].vals[pos as usize];
                self.p = (self.p + 1) % k;
                if self.batch.len() >= PROBE_BATCH {
                    return;
                }
            } else {
                self.cursors[i].seek_view::<TRACK>(&views[i], self.max, stats);
                if self.cursors[i].at_end() {
                    self.exhausted = true;
                    return;
                }
                self.max = views[i].vals[self.cursors[i].pos as usize];
                self.p = (self.p + 1) % k;
            }
        }
    }
}

/// A pull-based depth-first LFTJ walk over a join plan.
///
/// The walk owns its plan (tries are `Arc`-shared, so construction from a
/// borrowed plan is a cheap clone) and yields result tuples one
/// [`LftjWalk::next_tuple`] call at a time, in lexicographic order of the
/// plan's variable order. Dropping the walk after `k` tuples abandons the
/// remaining search space — [`LftjWalk::bindings`] exposes how many variable
/// bindings were actually made, which early termination provably shrinks.
#[derive(Debug)]
pub struct LftjWalk {
    plan: JoinPlan,
    /// Restriction of the first variable's domain — the walk only visits
    /// tuples whose first binding falls in this range (see
    /// [`LftjWalk::with_root_range`]).
    root: ValueRange,
    /// The probe kernel driving every level's intersection.
    kernel: ProbeKernel,
    /// Open levels, one [`LevelState`] per currently-entered variable.
    levels: Vec<LevelState>,
    /// Per-atom stack of bound node indices (absolute within each level).
    nodes: Vec<Vec<u32>>,
    prefix: Vec<ValueId>,
    started: bool,
    done: bool,
    bindings: u64,
    /// Whether the walk runs the probe-counting instantiation.
    track: bool,
    /// Per-level probe counters, one slot per plan variable (all zero unless
    /// [`LftjWalk::with_probe_counters`] opted in).
    probe: Vec<LevelProbeStats>,
}

impl LftjWalk {
    /// Creates a walk over `plan` with the default (block) probe kernel. No
    /// work happens until the first [`LftjWalk::next_tuple`] call.
    pub fn new(plan: JoinPlan) -> LftjWalk {
        Self::with_root_range(plan, ValueRange::all())
    }

    /// Creates a walk restricted to the tuples whose **first** variable
    /// binding (in the plan's order) falls inside `root`. The sub-walk is an
    /// independent trie walk: running one walk per range of a disjoint cover
    /// of the value space enumerates exactly the full result, partitioned by
    /// first binding — the substrate of morsel-style parallel execution.
    pub fn with_root_range(plan: JoinPlan, root: ValueRange) -> LftjWalk {
        Self::with_kernel(plan, root, ProbeKernel::default())
    }

    /// Creates a range-restricted walk driven by an explicit
    /// [`ProbeKernel`]. Benchmarks and differential suites pin the kernel;
    /// everything else takes the default.
    pub fn with_kernel(plan: JoinPlan, root: ValueRange, kernel: ProbeKernel) -> LftjWalk {
        let natoms = plan.tries().len();
        let nvars = plan.var_plans().len();
        LftjWalk {
            plan,
            root,
            kernel,
            levels: Vec::new(),
            nodes: vec![Vec::new(); natoms],
            prefix: Vec::new(),
            started: false,
            done: false,
            bindings: 0,
            track: false,
            probe: vec![LevelProbeStats::default(); nvars],
        }
    }

    /// Opts the walk into per-level probe counting (see
    /// [`LftjWalk::probe_stats`]). Counting runs a separately-monomorphised
    /// probe path; untracked walks pay nothing for the feature's existence.
    #[must_use]
    pub fn with_probe_counters(mut self) -> LftjWalk {
        self.track = true;
        self
    }

    /// The probe kernel driving this walk.
    pub fn kernel(&self) -> ProbeKernel {
        self.kernel
    }

    /// The plan's global variable order (= the layout of yielded tuples).
    pub fn order(&self) -> &[Attr] {
        self.plan.order()
    }

    /// The plan driving the walk.
    pub fn plan(&self) -> &JoinPlan {
        &self.plan
    }

    /// Number of variable bindings made so far across all levels — the
    /// walk's work counter. Early termination (stopping after `k` tuples)
    /// leaves this strictly below the full-enumeration count whenever
    /// results remain.
    pub fn bindings(&self) -> u64 {
        self.bindings
    }

    /// Whether the walk has been exhausted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Per-level probe counters, one entry per plan variable in order. All
    /// zeros unless the walk was built via [`LftjWalk::with_probe_counters`].
    pub fn probe_stats(&self) -> &[LevelProbeStats] {
        &self.probe
    }

    /// Opens the leapfrog state for the next unentered variable, scoping
    /// every participating atom to the children of its bound parent node.
    fn open_level(&mut self) {
        let d = self.levels.len();
        let vp = &self.plan.var_plans()[d];
        let mut cursors = Vec::with_capacity(vp.participants.len());
        for part in &vp.participants {
            let trie = &self.plan.tries()[part.atom];
            let (mut range, group) = if part.level == 0 {
                // Level 0 is one sibling group (group id 0) spanning the
                // whole level.
                (trie.root_range(), 0)
            } else {
                let parent = *self.nodes[part.atom].last().expect("parent level bound");
                (trie.children(part.level - 1, parent), parent)
            };
            // The bitmap index anchors ranks to the group's true first node,
            // so record it before any root-range clamping narrows `range`.
            let group_start = range.start;
            // The first variable participates at level 0 of every atom that
            // contains it; narrowing all its cursors to the walk's root
            // range restricts the whole walk to that morsel.
            if d == 0 {
                range = self.root.clamp_nodes(trie, part.level, range);
            }
            cursors.push(RangeCursor {
                atom: part.atom,
                level: part.level,
                hi: range.end,
                pos: range.start,
                group,
                group_start,
            });
        }
        self.levels.push(LevelState::new(cursors));
    }

    /// Yields the next result tuple (laid out per [`LftjWalk::order`]), or
    /// `None` when the join is exhausted. The returned slice is only valid
    /// until the next call.
    pub fn next_tuple(&mut self) -> Option<&[ValueId]> {
        if self.track {
            self.next_tuple_impl::<true>()
        } else {
            self.next_tuple_impl::<false>()
        }
    }

    fn next_tuple_impl<const TRACK: bool>(&mut self) -> Option<&[ValueId]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            if self.plan.has_empty_atom() {
                self.done = true;
                return None;
            }
            if self.plan.var_plans().is_empty() {
                // Zero-variable plan: the join of non-empty nullary atoms
                // holds exactly one empty tuple.
                self.done = true;
                return Some(&self.prefix);
            }
            self.open_level();
        }
        let nlevels = self.plan.var_plans().len();
        loop {
            let d = self.levels.len() - 1;
            // Unbind this level's previous match (if any)…
            if self.levels[d].bound {
                self.levels[d].bound = false;
                self.prefix.pop();
                for part in &self.plan.var_plans()[d].participants {
                    self.nodes[part.atom].pop();
                }
            }
            // …and pull its next one.
            let tries = self.plan.tries();
            let kernel = self.kernel;
            let step = self.levels[d].advance::<TRACK>(tries, kernel, &mut self.probe[d]);
            match step {
                Some(v) => {
                    self.prefix.push(v);
                    for (c, part) in self.plan.var_plans()[d].participants.iter().enumerate() {
                        self.nodes[part.atom].push(self.levels[d].match_pos(c));
                    }
                    self.levels[d].bound = true;
                    self.bindings += 1;
                    if TRACK {
                        self.probe[d].bindings += 1;
                    }
                    if d + 1 == nlevels {
                        return Some(&self.prefix);
                    }
                    self.open_level();
                }
                None => {
                    self.levels.pop();
                    if self.levels.is_empty() {
                        self.done = true;
                        return None;
                    }
                }
            }
        }
    }
}

/// Streams result tuples of the join to `cb` in lexicographic order of the
/// plan's variable order, stopping early when `cb` returns
/// [`ControlFlow::Break`]. Returns `Break(())` iff the callback broke.
pub fn lftj_foreach_until(
    plan: &JoinPlan,
    cb: impl FnMut(&[ValueId]) -> ControlFlow<()>,
) -> ControlFlow<()> {
    lftj_foreach_until_in_range(plan, &ValueRange::all(), cb)
}

/// Range-restricted [`lftj_foreach_until`]: streams only the result tuples
/// whose first variable binding falls inside `root` (an independent
/// sub-walk, see [`LftjWalk::with_root_range`]).
pub fn lftj_foreach_until_in_range(
    plan: &JoinPlan,
    root: &ValueRange,
    mut cb: impl FnMut(&[ValueId]) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let mut walk = LftjWalk::with_root_range(plan.clone(), root.clone());
    while let Some(t) = walk.next_tuple() {
        cb(t)?;
    }
    ControlFlow::Continue(())
}

/// Streams every result tuple of the join to `cb`, in lexicographic order of
/// the plan's variable order (the never-stopping wrapper of
/// [`lftj_foreach_until`]).
pub fn lftj_foreach(plan: &JoinPlan, mut cb: impl FnMut(&[ValueId])) {
    let flow = lftj_foreach_until(plan, |t| {
        cb(t);
        ControlFlow::Continue(())
    });
    debug_assert!(flow.is_continue());
}

/// Materialises the LFTJ result into a relation (schema = variable order).
pub fn lftj(plan: &JoinPlan) -> Relation {
    lftj_in_range(plan, &ValueRange::all())
}

/// Materialises the range-restricted LFTJ result: exactly the tuples whose
/// first variable binding falls inside `root`. Concatenating the results of
/// a disjoint cover of the value space (in range order) reproduces
/// [`lftj`]'s output, order included.
pub fn lftj_in_range(plan: &JoinPlan, root: &ValueRange) -> Relation {
    let schema = Schema::new(plan.order().iter().cloned()).expect("distinct order");
    let mut out = Relation::new(schema);
    let flow = lftj_foreach_until_in_range(plan, root, |t| {
        out.push(t).expect("arity matches");
        ControlFlow::Continue(())
    });
    debug_assert!(flow.is_continue());
    out
}

/// Counts result tuples without materialising them.
pub fn lftj_count(plan: &JoinPlan) -> usize {
    let mut n = 0usize;
    lftj_foreach(plan, |_| n += 1);
    n
}

/// Convenience wrapper: plans and runs LFTJ over `relations` under `order`.
pub fn lftj_join(relations: &[&Relation], order: &[Attr]) -> Result<Relation> {
    let plan = JoinPlan::new(relations, order)?;
    Ok(lftj(&plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::{generic_join, naive_join};
    use crate::schema::Schema;

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    fn attrs(names: &[&str]) -> Vec<Attr> {
        names.iter().map(|&n| Attr::new(n)).collect()
    }

    fn rel(names: &[&str], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(Schema::of(names));
        for row in rows {
            let ids: Vec<ValueId> = row.iter().map(|&x| v(x)).collect();
            r.push(&ids).unwrap();
        }
        r
    }

    #[test]
    fn triangle_matches_generic() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3], &[2, 1]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[1, 1]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[2, 2]]);
        let order = attrs(&["a", "b", "c"]);
        let from_lftj = lftj_join(&[&r, &s, &t], &order).unwrap();
        let (from_generic, _) = generic_join(&[&r, &s, &t], &order).unwrap();
        assert!(from_lftj.set_eq(&from_generic));
        let expect = naive_join(&[&r, &s, &t], &order).unwrap();
        assert!(from_lftj.set_eq(&expect));
    }

    #[test]
    fn results_stream_in_lexicographic_order() {
        let r = rel(&["a", "b"], &[&[2, 1], &[1, 2], &[1, 1]]);
        let plan = JoinPlan::new(&[&r], &attrs(&["a", "b"])).unwrap();
        let mut seen: Vec<Vec<ValueId>> = Vec::new();
        lftj_foreach(&plan, |t| seen.push(t.to_vec()));
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted);
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn count_without_materialising() {
        let r = rel(&["a"], &[&[1], &[2], &[3]]);
        let s = rel(&["b"], &[&[7], &[8]]);
        let plan = JoinPlan::new(&[&r, &s], &attrs(&["a", "b"])).unwrap();
        assert_eq!(lftj_count(&plan), 6);
    }

    #[test]
    fn empty_atom_yields_nothing() {
        let r = rel(&["a"], &[&[1]]);
        let s = rel(&["a"], &[]);
        let plan = JoinPlan::new(&[&r, &s], &attrs(&["a"])).unwrap();
        assert_eq!(lftj_count(&plan), 0);
    }

    #[test]
    fn single_atom_enumerates_relation() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4], &[1, 2]]);
        let out = lftj_join(&[&r], &attrs(&["a", "b"])).unwrap();
        assert_eq!(out.len(), 2); // set semantics
    }

    #[test]
    fn four_clique_query() {
        // K4 edges as a symmetric relation; count 4-cliques via 6 atoms.
        let edges: Vec<[u32; 2]> = vec![
            [1, 2],
            [1, 3],
            [1, 4],
            [2, 3],
            [2, 4],
            [3, 4],
            [2, 1],
            [3, 1],
            [4, 1],
            [3, 2],
            [4, 2],
            [4, 3],
        ];
        let rows: Vec<Vec<ValueId>> = edges.iter().map(|e| vec![v(e[0]), v(e[1])]).collect();
        let pairs = [
            ("a", "b"),
            ("a", "c"),
            ("a", "d"),
            ("b", "c"),
            ("b", "d"),
            ("c", "d"),
        ];
        let rels: Vec<Relation> = pairs
            .iter()
            .map(|(x, y)| Relation::from_rows(Schema::of(&[x, y]), rows.clone()).unwrap())
            .collect();
        let refs: Vec<&Relation> = rels.iter().collect();
        let out = lftj_join(&refs, &attrs(&["a", "b", "c", "d"])).unwrap();
        // All 4! orderings of {1,2,3,4}.
        assert_eq!(out.len(), 24);
    }

    #[test]
    fn walk_matches_foreach() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[3, 3]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[1, 1]]);
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        let mut pushed: Vec<Vec<ValueId>> = Vec::new();
        lftj_foreach(&plan, |t| pushed.push(t.to_vec()));
        let mut walk = LftjWalk::new(plan);
        let mut pulled: Vec<Vec<ValueId>> = Vec::new();
        while let Some(t) = walk.next_tuple() {
            pulled.push(t.to_vec());
        }
        assert_eq!(pushed, pulled);
        assert!(walk.is_done());
        assert!(
            walk.next_tuple().is_none(),
            "exhausted walk stays exhausted"
        );
    }

    #[test]
    fn foreach_until_stops_the_walk() {
        let r = rel(&["a"], &[&[1], &[2], &[3], &[4]]);
        let s = rel(&["b"], &[&[7], &[8]]);
        let plan = JoinPlan::new(&[&r, &s], &attrs(&["a", "b"])).unwrap();
        let mut seen = 0usize;
        let flow = lftj_foreach_until(&plan, |_| {
            seen += 1;
            if seen == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(flow.is_break());
        assert_eq!(seen, 3);
        let full = lftj_foreach_until(&plan, |_| ControlFlow::Continue(()));
        assert!(full.is_continue());
    }

    #[test]
    fn early_termination_does_less_work() {
        // A large cartesian product: stopping after one tuple must bind far
        // fewer values than full enumeration.
        let rows_a: Vec<Vec<ValueId>> = (0..50).map(|i| vec![v(i)]).collect();
        let rows_b: Vec<Vec<ValueId>> = (0..50).map(|i| vec![v(100 + i)]).collect();
        let a = Relation::from_rows(Schema::of(&["a"]), rows_a).unwrap();
        let b = Relation::from_rows(Schema::of(&["b"]), rows_b).unwrap();
        let plan = JoinPlan::new(&[&a, &b], &attrs(&["a", "b"])).unwrap();

        let mut full = LftjWalk::new(plan.clone());
        while full.next_tuple().is_some() {}
        let mut early = LftjWalk::new(plan);
        assert!(early.next_tuple().is_some());
        assert!(
            early.bindings() < full.bindings(),
            "early {} !< full {}",
            early.bindings(),
            full.bindings()
        );
        assert_eq!(full.bindings(), 50 + 50 * 50);
    }

    #[test]
    fn range_restricted_walks_partition_the_result() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3], &[2, 1]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[1, 1]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[2, 2]]);
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        let full = lftj(&plan);
        assert!(!full.is_empty());

        // Split the `a` domain at value 2: [0, 2) and [2, ∞).
        let lo_half = ValueRange {
            lo: v(0),
            hi: Some(v(2)),
        };
        let hi_half = ValueRange { lo: v(2), hi: None };
        let lo_part = lftj_in_range(&plan, &lo_half);
        let hi_part = lftj_in_range(&plan, &hi_half);
        assert!(lo_part.rows().all(|row| row[0] < v(2)));
        assert!(hi_part.rows().all(|row| row[0] >= v(2)));

        // Concatenation in range order reproduces the full result exactly.
        let mut merged = Relation::new(full.schema().clone());
        for row in lo_part.rows().chain(hi_part.rows()) {
            merged.push(row).unwrap();
        }
        assert_eq!(merged, full);

        // Bindings of the sub-walks sum to the full walk's bindings: every
        // bound prefix belongs to exactly one morsel (by its root value).
        let count_bindings = |root: ValueRange| {
            let mut w = LftjWalk::with_root_range(plan.clone(), root);
            while w.next_tuple().is_some() {}
            w.bindings()
        };
        let mut full_walk = LftjWalk::new(plan.clone());
        while full_walk.next_tuple().is_some() {}
        assert_eq!(
            count_bindings(lo_half) + count_bindings(hi_half),
            full_walk.bindings()
        );
    }

    #[test]
    fn empty_range_yields_nothing() {
        let r = rel(&["a"], &[&[1], &[2], &[3]]);
        let plan = JoinPlan::new(&[&r], &attrs(&["a"])).unwrap();
        let out = lftj_in_range(
            &plan,
            &ValueRange {
                lo: v(10),
                hi: Some(v(20)),
            },
        );
        assert!(out.is_empty());
        let flow = lftj_foreach_until_in_range(&plan, &ValueRange { lo: v(2), hi: None }, |_| {
            ControlFlow::Break(())
        });
        assert!(flow.is_break());
    }

    #[test]
    fn walk_exposes_order_and_plan() {
        let r = rel(&["a", "b"], &[&[1, 2]]);
        let plan = JoinPlan::new(&[&r], &attrs(&["a", "b"])).unwrap();
        let walk = LftjWalk::new(plan);
        assert_eq!(walk.order(), &attrs(&["a", "b"])[..]);
        assert_eq!(walk.plan().tries().len(), 1);
        assert_eq!(walk.bindings(), 0);
        assert_eq!(walk.kernel(), ProbeKernel::Block);
    }

    /// Runs `plan` to exhaustion under `kernel`, returning (tuples, bindings).
    fn drain(plan: &JoinPlan, root: ValueRange, kernel: ProbeKernel) -> (Vec<Vec<ValueId>>, u64) {
        let mut walk = LftjWalk::with_kernel(plan.clone(), root, kernel);
        let mut out = Vec::new();
        while let Some(t) = walk.next_tuple() {
            out.push(t.to_vec());
        }
        (out, walk.bindings())
    }

    #[test]
    fn scalar_and_block_kernels_agree_on_triangle() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3], &[2, 1]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[1, 1]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[2, 2]]);
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        let (scalar, scalar_b) = drain(&plan, ValueRange::all(), ProbeKernel::Scalar);
        let (block, block_b) = drain(&plan, ValueRange::all(), ProbeKernel::Block);
        assert_eq!(scalar, block);
        assert_eq!(scalar_b, block_b, "kernels must bind identically");
    }

    #[test]
    fn kernels_agree_across_batch_boundaries() {
        // A single-atom walk over > PROBE_BATCH keys exercises the bulk-copy
        // refill path across several batch refills.
        let rows: Vec<Vec<ValueId>> = (0..100u32).map(|i| vec![v(i), v(i % 7)]).collect();
        let r = Relation::from_rows(Schema::of(&["a", "b"]), rows).unwrap();
        let plan = JoinPlan::new(&[&r], &attrs(&["a", "b"])).unwrap();
        let (scalar, scalar_b) = drain(&plan, ValueRange::all(), ProbeKernel::Scalar);
        let (block, block_b) = drain(&plan, ValueRange::all(), ProbeKernel::Block);
        assert_eq!(scalar.len(), 100);
        assert_eq!(scalar, block);
        assert_eq!(scalar_b, block_b);
    }

    #[test]
    fn kernels_agree_under_root_ranges() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3], &[2, 1]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[1, 1]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[2, 2]]);
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        for (lo, hi) in [(0, Some(2)), (2, None), (1, Some(3)), (5, Some(9))] {
            let root = ValueRange {
                lo: v(lo),
                hi: hi.map(v),
            };
            let (scalar, _) = drain(&plan, root.clone(), ProbeKernel::Scalar);
            let (block, _) = drain(&plan, root, ProbeKernel::Block);
            assert_eq!(scalar, block, "root [{lo}, {hi:?})");
        }
    }

    #[test]
    fn block_kernel_uses_bitset_levels() {
        // Dense symmetric edge set large enough that levels cross
        // BITSET_MIN_NODES: both kernels, and both layouts, must agree.
        let mut edges: Vec<Vec<ValueId>> = Vec::new();
        for i in 0..90u32 {
            let j = (i * 37 + 11) % 90;
            if i != j {
                edges.push(vec![v(i), v(j)]);
                edges.push(vec![v(j), v(i)]);
            }
        }
        let make =
            |names: [&str; 2]| Relation::from_rows(Schema::of(&names), edges.clone()).unwrap();
        let (r, s, t) = (make(["a", "b"]), make(["b", "c"]), make(["a", "c"]));
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        assert!(
            plan.tries().iter().any(|t| t.bitset_level_count() > 0),
            "test instance too small to trigger bitset layouts"
        );
        let (scalar, _) = drain(&plan, ValueRange::all(), ProbeKernel::Scalar);
        let (block, _) = drain(&plan, ValueRange::all(), ProbeKernel::Block);
        assert_eq!(scalar, block);
    }

    fn drain_counted(
        plan: &JoinPlan,
        kernel: ProbeKernel,
    ) -> (Vec<Vec<ValueId>>, u64, Vec<LevelProbeStats>) {
        let mut walk =
            LftjWalk::with_kernel(plan.clone(), ValueRange::all(), kernel).with_probe_counters();
        let mut out = Vec::new();
        while let Some(t) = walk.next_tuple() {
            out.push(t.to_vec());
        }
        (out, walk.bindings(), walk.probe_stats().to_vec())
    }

    #[test]
    fn probe_counters_observe_without_perturbing() {
        // Same dense instance as `block_kernel_uses_bitset_levels`, so the
        // counted path crosses sorted, blocked, and bitset seeks alike.
        let mut edges: Vec<Vec<ValueId>> = Vec::new();
        for i in 0..90u32 {
            let j = (i * 37 + 11) % 90;
            if i != j {
                edges.push(vec![v(i), v(j)]);
                edges.push(vec![v(j), v(i)]);
            }
        }
        // Plant a triangle so the last level binds at least once.
        for (x, y) in [(0u32, 1u32), (1, 2), (0, 2)] {
            edges.push(vec![v(x), v(y)]);
            edges.push(vec![v(y), v(x)]);
        }
        let make =
            |names: [&str; 2]| Relation::from_rows(Schema::of(&names), edges.clone()).unwrap();
        let (r, s, t) = (make(["a", "b"]), make(["b", "c"]), make(["a", "c"]));
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        let has_bitset = plan.tries().iter().any(|t| t.bitset_level_count() > 0);
        for kernel in [ProbeKernel::Scalar, ProbeKernel::Block] {
            let (plain, plain_b) = drain(&plan, ValueRange::all(), kernel);
            let (counted, counted_b, probe) = drain_counted(&plan, kernel);
            assert_eq!(plain, counted, "{kernel:?}: counting changed the result");
            assert_eq!(plain_b, counted_b, "{kernel:?}: counting changed bindings");
            assert_eq!(probe.len(), 3);
            let per_level: u64 = probe.iter().map(|p| p.bindings).sum();
            assert_eq!(per_level, counted_b, "per-level bindings sum to the total");
            assert!(
                probe.iter().all(|p| p.bindings > 0),
                "{kernel:?}: every level bound something: {probe:?}"
            );
            assert!(
                probe.iter().any(|p| p.seeks > 0 && p.seek_steps > 0),
                "{kernel:?}: seeks went uncounted: {probe:?}"
            );
            if kernel == ProbeKernel::Block {
                assert!(probe.iter().any(|p| p.refills > 0), "refills uncounted");
                if has_bitset {
                    assert!(
                        probe.iter().any(|p| p.bitset_words > 0),
                        "bitset words uncounted: {probe:?}"
                    );
                }
            }
        }
        // Untracked walks leave the counters untouched.
        let mut untracked = LftjWalk::new(plan);
        while untracked.next_tuple().is_some() {}
        assert!(untracked
            .probe_stats()
            .iter()
            .all(|p| *p == LevelProbeStats::default()));
    }
}
