//! Leapfrog Triejoin (Veldhuizen 2012): a streaming, depth-first worst-case
//! optimal join.
//!
//! Unlike the level-wise engine in [`crate::generic`], LFTJ never
//! materialises intermediates: it walks all atom tries in lockstep,
//! performing a leapfrog intersection per variable and backtracking on
//! failure. Results are delivered to a callback in lexicographic order of the
//! plan's variable order.

use crate::error::Result;
use crate::leapfrog::{leapfrog_foreach, SliceCursor};
use crate::plan::{JoinPlan, VarPlan};
use crate::relation::Relation;
use crate::schema::{Attr, Schema};
use crate::trie::Trie;
use crate::value::ValueId;
use std::sync::Arc;

/// Streams every result tuple of the join to `cb`, in lexicographic order of
/// the plan's variable order.
pub fn lftj_foreach(plan: &JoinPlan, mut cb: impl FnMut(&[ValueId])) {
    if plan.has_empty_atom() {
        return;
    }
    let mut stacks: Vec<Vec<u32>> = vec![Vec::new(); plan.tries().len()];
    let mut prefix: Vec<ValueId> = Vec::with_capacity(plan.order().len());
    rec(
        plan.tries(),
        plan.var_plans(),
        0,
        &mut stacks,
        &mut prefix,
        &mut cb,
    );
}

fn rec(
    tries: &[Arc<Trie>],
    var_plans: &[VarPlan],
    d: usize,
    stacks: &mut Vec<Vec<u32>>,
    prefix: &mut Vec<ValueId>,
    cb: &mut dyn FnMut(&[ValueId]),
) {
    if d == var_plans.len() {
        cb(prefix);
        return;
    }
    let vp = &var_plans[d];
    let mut range_starts: Vec<u32> = Vec::with_capacity(vp.participants.len());
    let mut cursors: Vec<SliceCursor<'_>> = Vec::with_capacity(vp.participants.len());
    for p in &vp.participants {
        let trie = &tries[p.atom];
        let range = if p.level == 0 {
            trie.root_range()
        } else {
            let parent = *stacks[p.atom].last().expect("parent level bound");
            trie.children(p.level - 1, parent)
        };
        range_starts.push(range.start);
        cursors.push(SliceCursor::new(trie.values(p.level, range)));
    }
    leapfrog_foreach(&mut cursors, |v, cs| {
        for (k, p) in vp.participants.iter().enumerate() {
            stacks[p.atom].push(range_starts[k] + cs[k].pos() as u32);
        }
        prefix.push(v);
        rec(tries, var_plans, d + 1, stacks, prefix, cb);
        prefix.pop();
        for p in &vp.participants {
            stacks[p.atom].pop();
        }
    });
}

/// Materialises the LFTJ result into a relation (schema = variable order).
pub fn lftj(plan: &JoinPlan) -> Relation {
    let schema = Schema::new(plan.order().iter().cloned()).expect("distinct order");
    let mut out = Relation::new(schema);
    lftj_foreach(plan, |t| out.push(t).expect("arity matches"));
    out
}

/// Counts result tuples without materialising them.
pub fn lftj_count(plan: &JoinPlan) -> usize {
    let mut n = 0usize;
    lftj_foreach(plan, |_| n += 1);
    n
}

/// Convenience wrapper: plans and runs LFTJ over `relations` under `order`.
pub fn lftj_join(relations: &[&Relation], order: &[Attr]) -> Result<Relation> {
    let plan = JoinPlan::new(relations, order)?;
    Ok(lftj(&plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::{generic_join, naive_join};
    use crate::schema::Schema;

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    fn attrs(names: &[&str]) -> Vec<Attr> {
        names.iter().map(|&n| Attr::new(n)).collect()
    }

    fn rel(names: &[&str], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(Schema::of(names));
        for row in rows {
            let ids: Vec<ValueId> = row.iter().map(|&x| v(x)).collect();
            r.push(&ids).unwrap();
        }
        r
    }

    #[test]
    fn triangle_matches_generic() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3], &[2, 1]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[1, 1]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[2, 2]]);
        let order = attrs(&["a", "b", "c"]);
        let from_lftj = lftj_join(&[&r, &s, &t], &order).unwrap();
        let (from_generic, _) = generic_join(&[&r, &s, &t], &order).unwrap();
        assert!(from_lftj.set_eq(&from_generic));
        let expect = naive_join(&[&r, &s, &t], &order).unwrap();
        assert!(from_lftj.set_eq(&expect));
    }

    #[test]
    fn results_stream_in_lexicographic_order() {
        let r = rel(&["a", "b"], &[&[2, 1], &[1, 2], &[1, 1]]);
        let plan = JoinPlan::new(&[&r], &attrs(&["a", "b"])).unwrap();
        let mut seen: Vec<Vec<ValueId>> = Vec::new();
        lftj_foreach(&plan, |t| seen.push(t.to_vec()));
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted);
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn count_without_materialising() {
        let r = rel(&["a"], &[&[1], &[2], &[3]]);
        let s = rel(&["b"], &[&[7], &[8]]);
        let plan = JoinPlan::new(&[&r, &s], &attrs(&["a", "b"])).unwrap();
        assert_eq!(lftj_count(&plan), 6);
    }

    #[test]
    fn empty_atom_yields_nothing() {
        let r = rel(&["a"], &[&[1]]);
        let s = rel(&["a"], &[]);
        let plan = JoinPlan::new(&[&r, &s], &attrs(&["a"])).unwrap();
        assert_eq!(lftj_count(&plan), 0);
    }

    #[test]
    fn single_atom_enumerates_relation() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4], &[1, 2]]);
        let out = lftj_join(&[&r], &attrs(&["a", "b"])).unwrap();
        assert_eq!(out.len(), 2); // set semantics
    }

    #[test]
    fn four_clique_query() {
        // K4 edges as a symmetric relation; count 4-cliques via 6 atoms.
        let edges: Vec<[u32; 2]> = vec![
            [1, 2],
            [1, 3],
            [1, 4],
            [2, 3],
            [2, 4],
            [3, 4],
            [2, 1],
            [3, 1],
            [4, 1],
            [3, 2],
            [4, 2],
            [4, 3],
        ];
        let rows: Vec<Vec<ValueId>> = edges.iter().map(|e| vec![v(e[0]), v(e[1])]).collect();
        let pairs = [
            ("a", "b"),
            ("a", "c"),
            ("a", "d"),
            ("b", "c"),
            ("b", "d"),
            ("c", "d"),
        ];
        let rels: Vec<Relation> = pairs
            .iter()
            .map(|(x, y)| Relation::from_rows(Schema::of(&[x, y]), rows.clone()).unwrap())
            .collect();
        let refs: Vec<&Relation> = rels.iter().collect();
        let out = lftj_join(&refs, &attrs(&["a", "b", "c", "d"])).unwrap();
        // All 4! orderings of {1,2,3,4}.
        assert_eq!(out.len(), 24);
    }
}
