//! Level-wise generic worst-case optimal join (Ngo et al. 2012 style).
//!
//! Variables are expanded one at a time in the plan's global order. The
//! engine materialises the intermediate relation after every expansion —
//! exactly the execution model of the paper's Algorithm 1 ("Get expanding
//! result E …; Filter E …; Expand R by E") — and records each intermediate's
//! cardinality in [`JoinStats`], which is what Lemma 3.5 bounds.
//!
//! Each intermediate tuple carries, per atom, the trie node reached by its
//! bound prefix, so candidate generation for the next variable is a leapfrog
//! intersection of contiguous sorted slices ("satisfying common values") and
//! consistency with already-bound variables is implicit ("satisfying relation
//! between p and A").

use crate::error::Result;
use crate::leapfrog::{leapfrog_foreach, SliceCursor};
use crate::plan::{JoinPlan, ValueRange};
use crate::relation::Relation;
use crate::schema::{Attr, Schema};
use crate::stats::JoinStats;
use crate::value::ValueId;
use std::time::Instant;

/// Sentinel for "no trie level bound yet" in per-atom node pointers.
const NO_NODE: u32 = u32::MAX;

/// Runs the level-wise generic join over a validated plan, returning the
/// result relation (schema = the plan's variable order) and per-level stats.
pub fn levelwise_join(plan: &JoinPlan) -> (Relation, JoinStats) {
    levelwise_join_in_range(plan, &ValueRange::all())
}

/// Range-restricted [`levelwise_join`]: expands only the tuples whose
/// **first** variable binding falls inside `root`. Over a disjoint cover of
/// the value space the per-level intermediates (and the results) partition
/// exactly, so per-stage tuple counts summed across the parts equal the
/// unrestricted run's counts — morsel-parallel execution preserves the
/// Lemma 3.5 measurements.
pub fn levelwise_join_in_range(plan: &JoinPlan, root: &ValueRange) -> (Relation, JoinStats) {
    let start = Instant::now();
    let order = plan.order();
    let natoms = plan.tries().len();
    let schema = Schema::new(order.iter().cloned()).expect("order vars are distinct");
    let mut stats = JoinStats::default();

    if plan.has_empty_atom() {
        for var in order {
            stats.record_var(var, 0);
        }
        stats.elapsed = start.elapsed();
        return (Relation::new(schema), stats);
    }

    // One initial tuple with empty prefix and no atom positioned anywhere.
    let mut width = 0usize;
    let mut tuples: Vec<ValueId> = Vec::new();
    let mut ptrs: Vec<u32> = vec![NO_NODE; natoms];
    let mut count = 1usize;

    for (d, vp) in plan.var_plans().iter().enumerate() {
        let mut next_tuples: Vec<ValueId> = Vec::new();
        let mut next_ptrs: Vec<u32> = Vec::new();
        let mut next_count = 0usize;

        let mut range_starts: Vec<u32> = Vec::with_capacity(vp.participants.len());
        let mut cursors: Vec<SliceCursor<'_>> = Vec::with_capacity(vp.participants.len());

        for t in 0..count {
            let prefix = &tuples[t * width..t * width + width];
            let tuple_ptrs = &ptrs[t * natoms..t * natoms + natoms];

            range_starts.clear();
            cursors.clear();
            for p in &vp.participants {
                let trie = &plan.tries()[p.atom];
                let mut range = if p.level == 0 {
                    trie.root_range()
                } else {
                    let parent = tuple_ptrs[p.atom];
                    debug_assert_ne!(parent, NO_NODE, "parent level must be bound");
                    trie.children(p.level - 1, parent)
                };
                if d == 0 {
                    range = root.clamp_nodes(trie, p.level, range);
                }
                range_starts.push(range.start);
                cursors.push(SliceCursor::new(trie.values(p.level, range)));
            }

            leapfrog_foreach(&mut cursors, |v, cs| {
                next_tuples.extend_from_slice(prefix);
                next_tuples.push(v);
                let base = next_ptrs.len();
                next_ptrs.extend_from_slice(tuple_ptrs);
                for (k, p) in vp.participants.iter().enumerate() {
                    next_ptrs[base + p.atom] = range_starts[k] + cs[k].pos() as u32;
                }
                next_count += 1;
            });
        }

        tuples = next_tuples;
        ptrs = next_ptrs;
        count = next_count;
        width = d + 1;
        stats.record_var(&vp.var, count);
        if count == 0 {
            // Remaining levels are trivially empty; record them for a
            // complete per-stage series.
            for rest in &plan.var_plans()[d + 1..] {
                stats.record_var(&rest.var, 0);
            }
            break;
        }
    }

    let mut out = Relation::with_capacity(schema, count);
    if count > 0 && width > 0 {
        for t in 0..count {
            out.push(&tuples[t * width..t * width + width])
                .expect("width matches arity");
        }
    }
    stats.output_rows = out.len();
    stats.elapsed = start.elapsed();
    (out, stats)
}

/// Convenience wrapper: plans and runs the generic join over `relations`
/// under the global variable `order`.
pub fn generic_join(relations: &[&Relation], order: &[Attr]) -> Result<(Relation, JoinStats)> {
    let plan = JoinPlan::new(relations, order)?;
    Ok(levelwise_join(&plan))
}

/// Reference nested-loop join used to cross-check the optimal engines in
/// tests: enumerates the full cartesian product of variable assignments drawn
/// from each variable's candidate values and filters by all atoms.
///
/// Exponential — only for tiny test instances.
pub fn naive_join(relations: &[&Relation], order: &[Attr]) -> Result<Relation> {
    use std::collections::BTreeSet;
    let plan = JoinPlan::new(relations, order)?; // reuse validation
    let _ = &plan;
    let schema = Schema::new(order.iter().cloned()).expect("distinct");
    // Candidate domain per variable: union of values in any relation column
    // with that attribute.
    let mut domains: Vec<Vec<ValueId>> = Vec::with_capacity(order.len());
    for var in order {
        let mut dom = BTreeSet::new();
        for rel in relations {
            if let Some(p) = rel.schema().position(var) {
                for row in rel.rows() {
                    dom.insert(row[p]);
                }
            }
        }
        domains.push(dom.into_iter().collect());
    }
    let mut out = Relation::new(schema);
    let mut assign: Vec<ValueId> = Vec::with_capacity(order.len());
    fn rec(
        d: usize,
        domains: &[Vec<ValueId>],
        order: &[Attr],
        relations: &[&Relation],
        assign: &mut Vec<ValueId>,
        out: &mut Relation,
    ) {
        if d == domains.len() {
            for rel in relations {
                let positions: Vec<usize> = rel
                    .schema()
                    .attrs()
                    .iter()
                    .map(|a| order.iter().position(|o| o == a).expect("validated"))
                    .collect();
                let projected: Vec<ValueId> = positions.iter().map(|&p| assign[p]).collect();
                if !rel.contains_row(&projected) {
                    return;
                }
            }
            out.push(assign).expect("arity");
            return;
        }
        for &v in &domains[d] {
            assign.push(v);
            rec(d + 1, domains, order, relations, assign, out);
            assign.pop();
        }
    }
    rec(0, &domains, order, relations, &mut assign, &mut out);
    out.sort_dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    fn attrs(names: &[&str]) -> Vec<Attr> {
        names.iter().map(|&n| Attr::new(n)).collect()
    }

    fn rel(names: &[&str], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(Schema::of(names));
        for row in rows {
            let ids: Vec<ValueId> = row.iter().map(|&x| v(x)).collect();
            r.push(&ids).unwrap();
        }
        r
    }

    #[test]
    fn triangle_join() {
        // R(a,b), S(b,c), T(a,c) with a single triangle (1,2,3) plus noise.
        let r = rel(&["a", "b"], &[&[1, 2], &[1, 9], &[4, 2]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[9, 8]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[4, 7]]);
        let (out, stats) = generic_join(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0), &[v(1), v(2), v(3)]);
        assert_eq!(stats.output_rows, 1);
        assert_eq!(stats.stages.len(), 3);
    }

    #[test]
    fn matches_naive_reference() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[3, 3]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[1, 1]]);
        let order = attrs(&["a", "b", "c"]);
        let (out, _) = generic_join(&[&r, &s, &t], &order).unwrap();
        let expect = naive_join(&[&r, &s, &t], &order).unwrap();
        assert!(out.set_eq(&expect), "generic {out:?} != naive {expect:?}");
    }

    #[test]
    fn two_way_equijoin() {
        let r = rel(&["a", "b"], &[&[1, 10], &[2, 20], &[3, 30]]);
        let s = rel(&["b", "c"], &[&[10, 100], &[10, 101], &[30, 300]]);
        let (out, _) = generic_join(&[&r, &s], &attrs(&["a", "b", "c"])).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.contains_row(&[v(1), v(10), v(100)]));
        assert!(out.contains_row(&[v(1), v(10), v(101)]));
        assert!(out.contains_row(&[v(3), v(30), v(300)]));
    }

    #[test]
    fn empty_atom_short_circuits() {
        let r = rel(&["a"], &[&[1]]);
        let s = rel(&["a"], &[]);
        let (out, stats) = generic_join(&[&r, &s], &attrs(&["a"])).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.max_intermediate(), 0);
    }

    #[test]
    fn disjoint_values_yield_empty_and_full_stage_series() {
        let r = rel(&["a", "b"], &[&[1, 2]]);
        let s = rel(&["a", "b"], &[&[3, 4]]);
        let (out, stats) = generic_join(&[&r, &s], &attrs(&["a", "b"])).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.stages.len(), 2);
        assert_eq!(stats.stages[0].tuples, 0);
        assert_eq!(stats.stages[1].tuples, 0);
    }

    #[test]
    fn order_affects_intermediates_not_result() {
        let r = rel(&["a", "b"], &[&[1, 1], &[1, 2], &[2, 1]]);
        let s = rel(&["b", "c"], &[&[1, 1], &[2, 1]]);
        let o1 = attrs(&["a", "b", "c"]);
        let o2 = attrs(&["c", "b", "a"]);
        let (out1, _) = generic_join(&[&r, &s], &o1).unwrap();
        let (out2, _) = generic_join(&[&r, &s], &o2).unwrap();
        let out2_reordered = out2.project(&o1).unwrap();
        assert!(out1.set_eq(&out2_reordered));
    }

    #[test]
    fn intermediate_counts_are_recorded_per_level() {
        // R(a) x S(b): after a -> 2 tuples, after b -> 4 tuples.
        let r = rel(&["a"], &[&[1], &[2]]);
        let s = rel(&["b"], &[&[5], &[6]]);
        let (out, stats) = generic_join(&[&r, &s], &attrs(&["a", "b"])).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(stats.stages[0].tuples, 2);
        assert_eq!(stats.stages[1].tuples, 4);
        assert_eq!(stats.max_intermediate(), 4);
        assert_eq!(stats.total_intermediate(), 6);
    }

    #[test]
    fn range_restricted_runs_partition_results_and_stage_counts() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[3, 3]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[1, 1]]);
        let plan = JoinPlan::new(&[&r, &s, &t], &attrs(&["a", "b", "c"])).unwrap();
        let (full, full_stats) = levelwise_join(&plan);
        let halves = [
            ValueRange {
                lo: v(0),
                hi: Some(v(2)),
            },
            ValueRange { lo: v(2), hi: None },
        ];
        let parts: Vec<(Relation, JoinStats)> = halves
            .iter()
            .map(|h| levelwise_join_in_range(&plan, h))
            .collect();
        let mut merged = Relation::new(full.schema().clone());
        for (part, _) in &parts {
            for row in part.rows() {
                merged.push(row).unwrap();
            }
        }
        assert_eq!(merged, full, "concatenation in range order = full result");
        // Per-stage counts partition exactly across the cover.
        for (i, stage) in full_stats.stages.iter().enumerate() {
            let summed: usize = parts.iter().map(|(_, st)| st.stages[i].tuples).sum();
            assert_eq!(summed, stage.tuples, "stage `{}`", stage.label);
        }
    }

    #[test]
    fn self_join_same_relation_twice() {
        // Path query: R(a,b) ⋈ R'(b,c) using renamed copies of one relation.
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 4]]);
        let r2 = r
            .rename(|a| {
                if a.name() == "a" {
                    "b".into()
                } else {
                    "c".into()
                }
            })
            .unwrap();
        let (out, _) = generic_join(&[&r, &r2], &attrs(&["a", "b", "c"])).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains_row(&[v(1), v(2), v(3)]));
        assert!(out.contains_row(&[v(2), v(3), v(4)]));
    }
}
