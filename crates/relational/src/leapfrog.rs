//! Leapfrog intersection of sorted value slices (Veldhuizen 2012).
//!
//! The unary kernel shared by every worst-case optimal engine here: given k
//! sorted, duplicate-free slices, enumerate their intersection in
//! `O(k · n_min · log(n_max / n_min))`-ish time using galloping seeks.

use crate::value::ValueId;
use std::ops::ControlFlow;

/// Stride of the branch-reduced block search: [`block_seek`] resolves the
/// final position inside a window of at most this many elements with a
/// branchless `count_lt` scan instead of a binary search.
pub const SEEK_BLOCK: usize = 32;

/// Counts elements of `window` strictly below `target`.
///
/// Branch-free (`(v < target) as usize` summed), so LLVM autovectorizes it;
/// on a sorted window the count equals the rank of the first element
/// `>= target`, which is how [`block_seek`] finishes without a data-dependent
/// branch per comparison.
#[inline]
fn count_lt(window: &[ValueId], target: ValueId) -> usize {
    window.iter().map(|&v| usize::from(v < target)).sum()
}

/// Returns the first index `i` in `lo..slice.len()` with `slice[i] >= target`
/// (or `slice.len()` when no such index exists), using exponential probing
/// followed by binary search. `slice` must be sorted ascending.
pub fn gallop(slice: &[ValueId], mut lo: usize, target: ValueId) -> usize {
    if lo >= slice.len() || slice[lo] >= target {
        return lo;
    }
    // Invariant below: slice[lo] < target.
    let mut step = 1usize;
    while lo + step < slice.len() && slice[lo + step] < target {
        lo += step;
        step <<= 1;
    }
    let mut hi = (lo + step).min(slice.len());
    // Invariant: slice[lo] < target, and slice[hi..] >= target (or hi == len).
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if slice[mid] < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Block-wise, branch-reduced variant of [`gallop`]: identical contract
/// (first index in `lo..slice.len()` with `slice[i] >= target`, `slice`
/// sorted ascending), different search shape.
///
/// Most leapfrog seeks land within a few elements of the cursor, so the fast
/// path scans one [`SEEK_BLOCK`]-wide window with the branchless
/// `count_lt` kernel. Longer seeks gallop at block granularity (keeping
/// the exponential worst case of [`gallop`]), binary-search down to a single
/// block, and finish with the same branchless scan — replacing the last
/// `log2(SEEK_BLOCK)` unpredictable branches of a plain binary search with
/// one vectorizable pass.
pub fn block_seek(slice: &[ValueId], lo: usize, target: ValueId) -> usize {
    let n = slice.len();
    if lo >= n || slice[lo] >= target {
        return lo;
    }
    // Fast path: the answer lies within the first block after the cursor.
    let b_end = (lo + SEEK_BLOCK).min(n);
    if slice[b_end - 1] >= target {
        return lo + count_lt(&slice[lo..b_end], target);
    }
    if b_end == n {
        return n;
    }
    // Invariant below: slice[cur] < target.
    let mut cur = b_end - 1;
    let mut step = SEEK_BLOCK;
    while cur + step < n && slice[cur + step] < target {
        cur += step;
        step <<= 1;
    }
    let mut hi = (cur + step).min(n);
    // Invariant: slice[cur] < target, and slice[hi..] >= target (or hi == n).
    while hi - cur > SEEK_BLOCK {
        let mid = cur + (hi - cur) / 2;
        if slice[mid] < target {
            cur = mid;
        } else {
            hi = mid;
        }
    }
    cur + 1 + count_lt(&slice[cur + 1..hi], target)
}

/// [`gallop`] with a probe-step count: returns `(position, steps)` where
/// `steps` tallies each exponential probe and each binary-search halving.
/// The position is always identical to `gallop`'s.
pub fn gallop_counted(slice: &[ValueId], mut lo: usize, target: ValueId) -> (usize, u64) {
    if lo >= slice.len() || slice[lo] >= target {
        return (lo, 1);
    }
    let mut steps = 1u64;
    let mut step = 1usize;
    while lo + step < slice.len() && slice[lo + step] < target {
        lo += step;
        step <<= 1;
        steps += 1;
    }
    let mut hi = (lo + step).min(slice.len());
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if slice[mid] < target {
            lo = mid;
        } else {
            hi = mid;
        }
        steps += 1;
    }
    (hi, steps)
}

/// [`block_seek`] with a probe-step count: returns `(position, steps)` where
/// `steps` tallies scanned blocks, block-gallop probes, and binary-search
/// halvings. The position is always identical to `block_seek`'s.
pub fn block_seek_counted(slice: &[ValueId], lo: usize, target: ValueId) -> (usize, u64) {
    let n = slice.len();
    if lo >= n || slice[lo] >= target {
        return (lo, 1);
    }
    let b_end = (lo + SEEK_BLOCK).min(n);
    if slice[b_end - 1] >= target {
        return (lo + count_lt(&slice[lo..b_end], target), 1);
    }
    if b_end == n {
        return (n, 1);
    }
    let mut steps = 1u64;
    let mut cur = b_end - 1;
    let mut step = SEEK_BLOCK;
    while cur + step < n && slice[cur + step] < target {
        cur += step;
        step <<= 1;
        steps += 1;
    }
    let mut hi = (cur + step).min(n);
    while hi - cur > SEEK_BLOCK {
        let mid = cur + (hi - cur) / 2;
        if slice[mid] < target {
            cur = mid;
        } else {
            hi = mid;
        }
        steps += 1;
    }
    // Final branchless block scan.
    steps += 1;
    (cur + 1 + count_lt(&slice[cur + 1..hi], target), steps)
}

/// A cursor over a sorted slice, supporting the leapfrog `key / next / seek`
/// interface.
#[derive(Debug, Clone)]
pub struct SliceCursor<'a> {
    slice: &'a [ValueId],
    pos: usize,
}

impl<'a> SliceCursor<'a> {
    /// Creates a cursor positioned at the slice's first element.
    pub fn new(slice: &'a [ValueId]) -> Self {
        SliceCursor { slice, pos: 0 }
    }

    /// Whether the cursor has moved past the last element.
    #[inline]
    pub fn at_end(&self) -> bool {
        self.pos >= self.slice.len()
    }

    /// The value under the cursor.
    ///
    /// # Panics
    /// Panics if the cursor is at end.
    #[inline]
    pub fn key(&self) -> ValueId {
        self.slice[self.pos]
    }

    /// Advances to the next element.
    #[inline]
    pub fn next(&mut self) {
        self.pos += 1;
    }

    /// Seeks forward to the first element `>= target` via [`block_seek`].
    #[inline]
    pub fn seek(&mut self, target: ValueId) {
        self.pos = block_seek(self.slice, self.pos, target);
    }

    /// The cursor's current index within its slice.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The underlying slice.
    pub fn slice(&self) -> &'a [ValueId] {
        self.slice
    }
}

/// Runs leapfrog intersection over `cursors`, invoking `f(v, cursors)` for
/// every value `v` present in all of them and stopping early when `f`
/// returns [`ControlFlow::Break`]. When `f` is called, every cursor is
/// positioned exactly at `v`, so callers can read [`SliceCursor::pos`] to
/// recover per-slice match positions (the join engines use this to derive
/// trie child indices).
///
/// Returns `Break(())` iff the callback broke; an exhausted intersection
/// returns `Continue(())`. An empty `cursors` list yields nothing (the
/// neutral intersection is handled by callers, who know the variable's
/// domain).
pub fn leapfrog_foreach_until(
    cursors: &mut [SliceCursor<'_>],
    mut f: impl FnMut(ValueId, &[SliceCursor<'_>]) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let k = cursors.len();
    if k == 0 || cursors.iter().any(|c| c.at_end()) {
        return ControlFlow::Continue(());
    }
    if k == 1 {
        while !cursors[0].at_end() {
            f(cursors[0].key(), cursors)?;
            cursors[0].next();
        }
        return ControlFlow::Continue(());
    }
    // `order` holds cursor indices sorted ascending by current key; `p`
    // cycles through it, always pointing at the (currently) smallest key.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&i| cursors[i].key());
    let mut p = 0usize;
    let mut max = cursors[order[k - 1]].key();
    loop {
        let i = order[p];
        let x = cursors[i].key();
        if x == max {
            // All k cursors agree on x.
            f(x, cursors)?;
            cursors[i].next();
        } else {
            cursors[i].seek(max);
        }
        if cursors[i].at_end() {
            return ControlFlow::Continue(());
        }
        max = cursors[i].key();
        p = (p + 1) % k;
    }
}

/// Runs leapfrog intersection to exhaustion — the infallible counterpart of
/// [`leapfrog_foreach_until`] for callers that never stop early.
pub fn leapfrog_foreach(
    cursors: &mut [SliceCursor<'_>],
    mut f: impl FnMut(ValueId, &[SliceCursor<'_>]),
) {
    let flow = leapfrog_foreach_until(cursors, |v, cs| {
        f(v, cs);
        ControlFlow::Continue(())
    });
    debug_assert!(flow.is_continue());
}

/// Materialises the sorted, duplicate-free union of the given sorted
/// duplicate-free slices — the eager counterpart of the lazy k-way union
/// view that layered (base + delta) tries expose to the walk, kept here as
/// the reference the union-cursor differential tests check against.
pub fn union(slices: &[&[ValueId]]) -> Vec<ValueId> {
    let mut out = Vec::with_capacity(slices.iter().map(|s| s.len()).sum());
    let mut pos = vec![0usize; slices.len()];
    loop {
        let mut min: Option<ValueId> = None;
        for (s, &p) in slices.iter().zip(&pos) {
            if p < s.len() {
                let v = s[p];
                min = Some(match min {
                    Some(m) if m <= v => m,
                    _ => v,
                });
            }
        }
        let Some(v) = min else { break };
        out.push(v);
        for (s, p) in slices.iter().zip(&mut pos) {
            if *p < s.len() && s[*p] == v {
                *p += 1;
            }
        }
    }
    out
}

/// Materialises the intersection of the given sorted slices.
pub fn intersect(slices: &[&[ValueId]]) -> Vec<ValueId> {
    let mut cursors: Vec<SliceCursor<'_>> = slices.iter().map(|s| SliceCursor::new(s)).collect();
    let mut out = Vec::new();
    leapfrog_foreach(&mut cursors, |v, _| out.push(v));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<ValueId> {
        xs.iter().map(|&x| ValueId(x)).collect()
    }

    #[test]
    fn gallop_finds_first_geq() {
        let s = ids(&[1, 3, 5, 7, 9, 11]);
        assert_eq!(gallop(&s, 0, ValueId(0)), 0);
        assert_eq!(gallop(&s, 0, ValueId(1)), 0);
        assert_eq!(gallop(&s, 0, ValueId(2)), 1);
        assert_eq!(gallop(&s, 0, ValueId(7)), 3);
        assert_eq!(gallop(&s, 0, ValueId(8)), 4);
        assert_eq!(gallop(&s, 0, ValueId(11)), 5);
        assert_eq!(gallop(&s, 0, ValueId(12)), 6);
    }

    #[test]
    fn gallop_respects_lower_bound() {
        let s = ids(&[1, 3, 5, 7]);
        assert_eq!(gallop(&s, 2, ValueId(2)), 2);
        assert_eq!(gallop(&s, 2, ValueId(6)), 3);
        assert_eq!(gallop(&s, 4, ValueId(0)), 4);
    }

    #[test]
    fn gallop_on_long_runs() {
        let s: Vec<ValueId> = (0..1000).map(|i| ValueId(2 * i)).collect();
        for probe in [0u32, 1, 2, 999, 1000, 1998, 1999, 2000, 5000] {
            let want = s
                .iter()
                .position(|&v| v >= ValueId(probe))
                .unwrap_or(s.len());
            assert_eq!(gallop(&s, 0, ValueId(probe)), want, "probe {probe}");
        }
    }

    #[test]
    fn block_seek_finds_first_geq() {
        let s = ids(&[1, 3, 5, 7, 9, 11]);
        assert_eq!(block_seek(&s, 0, ValueId(0)), 0);
        assert_eq!(block_seek(&s, 0, ValueId(1)), 0);
        assert_eq!(block_seek(&s, 0, ValueId(2)), 1);
        assert_eq!(block_seek(&s, 0, ValueId(7)), 3);
        assert_eq!(block_seek(&s, 0, ValueId(8)), 4);
        assert_eq!(block_seek(&s, 0, ValueId(11)), 5);
        assert_eq!(block_seek(&s, 0, ValueId(12)), 6);
    }

    #[test]
    fn block_seek_respects_lower_bound() {
        let s = ids(&[1, 3, 5, 7]);
        assert_eq!(block_seek(&s, 2, ValueId(2)), 2);
        assert_eq!(block_seek(&s, 2, ValueId(6)), 3);
        assert_eq!(block_seek(&s, 4, ValueId(0)), 4);
        assert_eq!(block_seek(&s, 9, ValueId(0)), 9);
        assert_eq!(block_seek(&[], 0, ValueId(5)), 0);
    }

    #[test]
    fn block_seek_matches_gallop_on_long_runs() {
        // Spans several blocks so the block-gallop + binary-search + residual
        // count_lt path is exercised, not just the first-block fast path.
        let s: Vec<ValueId> = (0..4096).map(|i| ValueId(3 * i)).collect();
        for lo in [0usize, 1, 31, 32, 33, 1000, 4095, 4096, 5000] {
            for probe in [0u32, 1, 95, 96, 97, 3000, 6143, 6144, 12285, 12288, 20000] {
                assert_eq!(
                    block_seek(&s, lo, ValueId(probe)),
                    gallop(&s, lo, ValueId(probe)),
                    "lo {lo} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn counted_seeks_agree_with_uncounted_and_count_work() {
        let s: Vec<ValueId> = (0..4096).map(|i| ValueId(3 * i)).collect();
        for lo in [0usize, 1, 31, 32, 33, 1000, 4095, 4096, 5000] {
            for probe in [0u32, 1, 95, 96, 97, 3000, 6143, 6144, 12285, 12288, 20000] {
                let t = ValueId(probe);
                let (gp, gs) = gallop_counted(&s, lo, t);
                assert_eq!(gp, gallop(&s, lo, t), "gallop lo {lo} probe {probe}");
                assert!(gs >= 1, "gallop steps lo {lo} probe {probe}");
                let (bp, bs) = block_seek_counted(&s, lo, t);
                assert_eq!(bp, block_seek(&s, lo, t), "block lo {lo} probe {probe}");
                assert!(bs >= 1, "block steps lo {lo} probe {probe}");
            }
        }
        // A long seek costs more steps than a no-op seek.
        let (_, near) = block_seek_counted(&s, 0, ValueId(0));
        let (_, far) = block_seek_counted(&s, 0, ValueId(12285));
        assert!(far > near, "far {far} near {near}");
    }

    #[test]
    fn union_merges_and_dedups() {
        let a = ids(&[1, 3, 5]);
        let b = ids(&[2, 3, 6]);
        let c = ids(&[3, 5, 9]);
        assert_eq!(union(&[&a, &b, &c]), ids(&[1, 2, 3, 5, 6, 9]));
        assert_eq!(union(&[&a]), a);
        assert!(union(&[]).is_empty());
        assert_eq!(union(&[&[], &a]), a);
    }

    #[test]
    fn intersect_basic() {
        let a = ids(&[1, 2, 3, 5, 8]);
        let b = ids(&[2, 3, 4, 8, 9]);
        let c = ids(&[0, 2, 8]);
        assert_eq!(intersect(&[&a, &b, &c]), ids(&[2, 8]));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = ids(&[1, 3, 5]);
        let b = ids(&[2, 4, 6]);
        assert!(intersect(&[&a, &b]).is_empty());
    }

    #[test]
    fn intersect_with_empty_slice_is_empty() {
        let a = ids(&[1, 2]);
        let b = ids(&[]);
        assert!(intersect(&[&a, &b]).is_empty());
    }

    #[test]
    fn intersect_single_slice_yields_all() {
        let a = ids(&[4, 6, 9]);
        assert_eq!(intersect(&[&a]), a);
    }

    #[test]
    fn intersect_identical_slices() {
        let a = ids(&[1, 5, 7]);
        assert_eq!(intersect(&[&a, &a, &a]), a);
    }

    #[test]
    fn no_cursors_yields_nothing() {
        assert!(intersect(&[]).is_empty());
    }

    #[test]
    fn emit_positions_point_at_match() {
        let a = ids(&[1, 2, 7]);
        let b = ids(&[0, 2, 3, 7]);
        let mut cursors = vec![SliceCursor::new(&a), SliceCursor::new(&b)];
        let mut seen = Vec::new();
        leapfrog_foreach(&mut cursors, |v, cs| {
            seen.push((v, cs[0].pos(), cs[1].pos()));
            assert_eq!(cs[0].slice()[cs[0].pos()], v);
            assert_eq!(cs[1].slice()[cs[1].pos()], v);
        });
        assert_eq!(seen, vec![(ValueId(2), 1, 1), (ValueId(7), 2, 3)]);
    }

    #[test]
    fn foreach_until_breaks_early() {
        let a = ids(&[1, 2, 3, 4, 5]);
        let b = ids(&[2, 3, 4, 5, 6]);
        let mut cursors = vec![SliceCursor::new(&a), SliceCursor::new(&b)];
        let mut seen = Vec::new();
        let flow = leapfrog_foreach_until(&mut cursors, |v, _| {
            seen.push(v);
            if seen.len() == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(flow.is_break());
        assert_eq!(seen, ids(&[2, 3]));
        // Cursors are parked on the value that triggered the break.
        assert_eq!(cursors[0].key(), ValueId(3));
        assert_eq!(cursors[1].key(), ValueId(3));
    }

    #[test]
    fn foreach_until_exhaustion_is_continue() {
        let a = ids(&[1, 2]);
        let mut cursors = vec![SliceCursor::new(&a)];
        let flow = leapfrog_foreach_until(&mut cursors, |_, _| ControlFlow::Continue(()));
        assert!(flow.is_continue());
    }

    #[test]
    fn single_cursor_breaks_early() {
        let a = ids(&[1, 2, 3]);
        let mut cursors = vec![SliceCursor::new(&a)];
        let mut n = 0usize;
        let flow = leapfrog_foreach_until(&mut cursors, |_, _| {
            n += 1;
            ControlFlow::Break(())
        });
        assert!(flow.is_break());
        assert_eq!(n, 1);
    }

    #[test]
    fn intersect_matches_naive_on_skewed_sizes() {
        let a: Vec<ValueId> = (0..500).map(|i| ValueId(i * 3)).collect();
        let b: Vec<ValueId> = (0..50).map(|i| ValueId(i * 30)).collect();
        let naive: Vec<ValueId> = a.iter().filter(|v| b.contains(v)).copied().collect();
        assert_eq!(intersect(&[&a, &b]), naive);
        assert_eq!(intersect(&[&b, &a]), naive);
    }
}
