//! Values and the global dictionary.
//!
//! All join processing operates on compact [`ValueId`]s. A [`Dict`] interns
//! user-facing [`Value`]s (integers and strings) into ids; equality of ids is
//! equality of values, and the numeric order of ids provides the consistent
//! total order that leapfrog intersection requires across *all* relations and
//! XML documents sharing the dictionary.

use std::collections::HashMap;
use std::fmt;

/// A compact, dictionary-encoded value identifier.
///
/// Ids are dense (assigned by insertion order) and totally ordered; the order
/// is arbitrary but consistent, which is all that worst-case optimal join
/// algorithms require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A user-facing value: either an integer or a string.
///
/// This is the type examples and loaders speak; engines only ever see
/// [`ValueId`]s.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// An owned string.
    Str(String),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns the integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// An interning dictionary mapping [`Value`]s to dense [`ValueId`]s.
///
/// One dictionary is shared by every relation and XML document participating
/// in a multi-model query, so that equal values — whether they came from a
/// relational column or an XML text node — receive the same id.
#[derive(Debug, Default, Clone)]
pub struct Dict {
    values: Vec<Value>,
    ids: HashMap<Value, ValueId>,
}

impl Dict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `v`, returning its id (allocating a fresh id on first sight).
    pub fn intern(&mut self, v: Value) -> ValueId {
        if let Some(&id) = self.ids.get(&v) {
            return id;
        }
        let id = ValueId(u32::try_from(self.values.len()).expect("dictionary overflow"));
        self.values.push(v.clone());
        self.ids.insert(v, id);
        id
    }

    /// Interns an integer value.
    pub fn int(&mut self, i: i64) -> ValueId {
        self.intern(Value::Int(i))
    }

    /// Interns a string value.
    pub fn str(&mut self, s: impl Into<String>) -> ValueId {
        self.intern(Value::Str(s.into()))
    }

    /// Looks up the id of `v` without interning it.
    pub fn lookup(&self, v: &Value) -> Option<ValueId> {
        self.ids.get(v).copied()
    }

    /// Decodes an id back into its value.
    ///
    /// # Panics
    /// Panics if the id was not produced by this dictionary.
    pub fn decode(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &Value)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ValueId(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dict::new();
        let a = d.str("isbn-1");
        let b = d.str("isbn-1");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ints_and_strings_do_not_collide() {
        let mut d = Dict::new();
        let a = d.int(42);
        let b = d.str("42");
        assert_ne!(a, b);
        assert_eq!(d.decode(a), &Value::Int(42));
        assert_eq!(d.decode(b), &Value::Str("42".into()));
    }

    #[test]
    fn ids_are_dense_and_ordered_by_insertion() {
        let mut d = Dict::new();
        let ids: Vec<ValueId> = (0..10).map(|i| d.int(i * 7)).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = Dict::new();
        assert_eq!(d.lookup(&Value::Int(1)), None);
        let id = d.int(1);
        assert_eq!(d.lookup(&Value::Int(1)), Some(id));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn iter_yields_pairs_in_id_order() {
        let mut d = Dict::new();
        d.str("a");
        d.int(5);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, ValueId(0));
        assert_eq!(pairs[1].1, &Value::Int(5));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(format!("{}", Value::Int(9)), "9");
        assert_eq!(format!("{}", Value::str("v")), "v");
        assert_eq!(format!("{}", ValueId(4)), "#4");
    }
}
