//! Values and the global dictionary.
//!
//! All join processing operates on compact [`ValueId`]s. A [`Dict`] interns
//! user-facing [`Value`]s (integers and strings) into ids; equality of ids is
//! equality of values, and the numeric order of ids provides the consistent
//! total order that leapfrog intersection requires across *all* relations and
//! XML documents sharing the dictionary.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasher;

/// A compact, dictionary-encoded value identifier.
///
/// Ids are dense (assigned by insertion order) and totally ordered; the order
/// is arbitrary but consistent, which is all that worst-case optimal join
/// algorithms require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A user-facing value: either an integer or a string.
///
/// This is the type examples and loaders speak; engines only ever see
/// [`ValueId`]s.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// An owned string.
    Str(String),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns the integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// The ids sharing one hash bucket. Sixty-four-bit hash collisions are
/// vanishingly rare, so almost every bucket is the allocation-free `One`
/// variant; `Many` exists only for correctness.
#[derive(Debug, Clone)]
enum IdSlot {
    /// The common case: exactly one interned value hashes here.
    One(ValueId),
    /// Hash collision: all ids whose values share this hash.
    Many(Vec<ValueId>),
}

impl IdSlot {
    fn ids(&self) -> &[ValueId] {
        match self {
            IdSlot::One(id) => std::slice::from_ref(id),
            IdSlot::Many(ids) => ids,
        }
    }

    fn push(&mut self, id: ValueId) {
        match self {
            IdSlot::One(first) => *self = IdSlot::Many(vec![*first, id]),
            IdSlot::Many(ids) => ids.push(id),
        }
    }
}

/// An interning dictionary mapping [`Value`]s to dense [`ValueId`]s.
///
/// One dictionary is shared by every relation and XML document participating
/// in a multi-model query, so that equal values — whether they came from a
/// relational column or an XML text node — receive the same id.
///
/// Each value is stored **once**, in the id-indexed `values` vec; the hash
/// index maps a value's hash to the id(s) carrying it and probes back into
/// `values` for equality. (An earlier revision keyed the map by `Value`,
/// holding every interned string twice.)
#[derive(Debug, Default, Clone)]
pub struct Dict {
    values: Vec<Value>,
    ids: HashMap<u64, IdSlot>,
    hasher: RandomState,
}

impl Dict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id already interned for `v` under hash `h`, if any.
    fn probe(&self, h: u64, v: &Value) -> Option<ValueId> {
        self.ids
            .get(&h)?
            .ids()
            .iter()
            .copied()
            .find(|id| &self.values[id.index()] == v)
    }

    /// Interns `v`, returning its id (allocating a fresh id on first sight).
    pub fn intern(&mut self, v: Value) -> ValueId {
        let h = self.hasher.hash_one(&v);
        if let Some(id) = self.probe(h, &v) {
            return id;
        }
        let id = ValueId(u32::try_from(self.values.len()).expect("dictionary overflow"));
        self.values.push(v);
        match self.ids.entry(h) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(id),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(IdSlot::One(id));
            }
        }
        id
    }

    /// Interns an integer value.
    pub fn int(&mut self, i: i64) -> ValueId {
        self.intern(Value::Int(i))
    }

    /// Interns a string value.
    pub fn str(&mut self, s: impl Into<String>) -> ValueId {
        self.intern(Value::Str(s.into()))
    }

    /// Looks up the id of `v` without interning it.
    pub fn lookup(&self, v: &Value) -> Option<ValueId> {
        self.probe(self.hasher.hash_one(v), v)
    }

    /// Decodes an id back into its value.
    ///
    /// # Panics
    /// Panics if the id was not produced by this dictionary.
    pub fn decode(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &Value)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ValueId(i as u32), v))
    }

    /// Approximate heap footprint in bytes: the value storage (string
    /// payloads included) plus the hash index. Memory budgeters (cache
    /// sizing, the `experiments` binary's reports) use this estimate; it
    /// deliberately ignores allocator slack and `HashMap` load-factor
    /// headroom.
    pub fn estimated_bytes(&self) -> usize {
        let values: usize = self
            .values
            .iter()
            .map(|v| {
                std::mem::size_of::<Value>()
                    + match v {
                        Value::Int(_) => 0,
                        Value::Str(s) => s.capacity(),
                    }
            })
            .sum();
        let index: usize = self
            .ids
            .values()
            .map(|slot| {
                std::mem::size_of::<u64>()
                    + std::mem::size_of::<IdSlot>()
                    + match slot {
                        IdSlot::One(_) => 0,
                        IdSlot::Many(ids) => ids.capacity() * std::mem::size_of::<ValueId>(),
                    }
            })
            .sum();
        values + index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dict::new();
        let a = d.str("isbn-1");
        let b = d.str("isbn-1");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ints_and_strings_do_not_collide() {
        let mut d = Dict::new();
        let a = d.int(42);
        let b = d.str("42");
        assert_ne!(a, b);
        assert_eq!(d.decode(a), &Value::Int(42));
        assert_eq!(d.decode(b), &Value::Str("42".into()));
    }

    #[test]
    fn ids_are_dense_and_ordered_by_insertion() {
        let mut d = Dict::new();
        let ids: Vec<ValueId> = (0..10).map(|i| d.int(i * 7)).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = Dict::new();
        assert_eq!(d.lookup(&Value::Int(1)), None);
        let id = d.int(1);
        assert_eq!(d.lookup(&Value::Int(1)), Some(id));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn iter_yields_pairs_in_id_order() {
        let mut d = Dict::new();
        d.str("a");
        d.int(5);
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, ValueId(0));
        assert_eq!(pairs[1].1, &Value::Int(5));
    }

    #[test]
    fn estimated_bytes_grows_with_interned_strings() {
        let mut d = Dict::new();
        let empty = d.estimated_bytes();
        d.int(1);
        let after_int = d.estimated_bytes();
        assert!(after_int > empty);
        d.str("a rather long string payload that must be charged");
        let after_str = d.estimated_bytes();
        // The string's heap payload is charged once (values vec), not twice.
        assert!(after_str >= after_int + 50);
        assert!(after_str < after_int + 2 * 50 + std::mem::size_of::<Value>() * 2);
        // Re-interning changes nothing.
        d.str("a rather long string payload that must be charged");
        assert_eq!(d.estimated_bytes(), after_str);
    }

    #[test]
    fn dense_interning_survives_many_values() {
        // Exercises the hash-bucket index (including any collisions) over a
        // larger id space, plus decode round-trips.
        let mut d = Dict::new();
        let ids: Vec<ValueId> = (0..2000i64)
            .map(|i| {
                if i % 2 == 0 {
                    d.int(i)
                } else {
                    d.str(format!("s{i}"))
                }
            })
            .collect();
        assert_eq!(d.len(), 2000);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
            let v = d.decode(*id).clone();
            assert_eq!(d.lookup(&v), Some(*id));
            assert_eq!(d.intern(v), *id);
        }
        assert_eq!(d.len(), 2000);
    }

    #[test]
    fn id_slot_collision_bucket_holds_all_ids() {
        let mut slot = IdSlot::One(ValueId(1));
        slot.push(ValueId(2));
        slot.push(ValueId(3));
        assert_eq!(slot.ids(), &[ValueId(1), ValueId(2), ValueId(3)]);
    }

    #[test]
    fn cloned_dict_is_independent() {
        let mut d = Dict::new();
        d.str("shared");
        let mut c = d.clone();
        let id = c.str("only in clone");
        assert_eq!(c.len(), 2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.lookup(&Value::str("only in clone")), None);
        assert_eq!(c.decode(id), &Value::str("only in clone"));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(format!("{}", Value::Int(9)), "9");
        assert_eq!(format!("{}", Value::str("v")), "v");
        assert_eq!(format!("{}", ValueId(4)), "#4");
    }
}
