//! Plain-text relation loading: CSV/TSV with typed columns.
//!
//! Keeps examples and experiments self-contained without an external CSV
//! crate: fields are split on a configurable delimiter, quoted fields
//! (`"…"`) may contain the delimiter, `""` escapes a quote, and unquoted
//! fields that parse as `i64` are loaded as integers (matching the XML
//! parser's text-to-value rule so values join across models).

use crate::catalog::Database;
use crate::error::{RelError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::{Value, ValueId};

/// Splits one line into fields, honouring double quotes.
fn split_line(line: &str, delim: char) -> std::result::Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' && cur.is_empty() {
            quoted = true;
        } else if c == delim {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if quoted {
        return Err("unterminated quoted field".to_owned());
    }
    fields.push(cur);
    Ok(fields)
}

/// Converts a raw field to a typed value (quoted fields come through as
/// strings already; this applies only the unquoted-int rule).
fn field_to_value(field: &str, was_quoted: bool) -> Value {
    if was_quoted {
        return Value::str(field);
    }
    match field.trim().parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::str(field.trim()),
    }
}

/// Parses delimiter-separated text into a relation. The first line is the
/// header (attribute names). Blank lines and `#` comments are skipped.
pub fn parse_table(db: &mut Database, text: &str, delim: char) -> Result<(String, Relation)> {
    let mut lines = text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
    let header = lines
        .next()
        .ok_or_else(|| RelError::InvalidOrder("empty table text".to_owned()))?;
    // Optional "name:" prefix on the header line names the relation.
    let (name, header) = match header.split_once(':') {
        Some((n, rest)) if !n.contains(delim) => (n.trim().to_owned(), rest),
        _ => ("table".to_owned(), header),
    };
    let cols = split_line(header, delim)
        .map_err(RelError::InvalidOrder)?
        .into_iter()
        .map(|c| c.trim().to_owned())
        .collect::<Vec<_>>();
    let schema = Schema::new(cols.iter().map(|c| c.as_str()))?;
    let arity = schema.arity();
    let mut rel = Relation::new(schema);
    let mut buf: Vec<ValueId> = Vec::with_capacity(arity);
    for (lineno, line) in lines.enumerate() {
        // Track quoting per field for typing: re-split and detect quotes.
        let raw = split_line(line, delim)
            .map_err(|e| RelError::InvalidOrder(format!("line {}: {e}", lineno + 2)))?;
        if raw.len() != arity {
            return Err(RelError::ArityMismatch {
                expected: arity,
                got: raw.len(),
            });
        }
        // Quote detection: a field was quoted iff the trimmed source field
        // starts with '"'. Recompute from the source line.
        let mut quoted_flags = Vec::with_capacity(arity);
        {
            let mut rest = line;
            for _ in 0..arity {
                let trimmed = rest.trim_start();
                quoted_flags.push(trimmed.starts_with('"'));
                match find_delim(trimmed, delim) {
                    Some(off) => rest = &trimmed[off + delim.len_utf8()..],
                    None => rest = "",
                }
            }
        }
        buf.clear();
        for (field, &was_quoted) in raw.iter().zip(&quoted_flags) {
            buf.push(db.dict_mut().intern(field_to_value(field, was_quoted)));
        }
        rel.push(&buf)?;
    }
    rel.sort_dedup();
    Ok((name, rel))
}

/// Finds the next unquoted delimiter offset in `s`.
fn find_delim(s: &str, delim: char) -> Option<usize> {
    let mut quoted = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => quoted = !quoted,
            _ if c == delim && !quoted => return Some(i),
            _ => {}
        }
    }
    None
}

impl Database {
    /// Loads a CSV table (`,` delimiter) into the database. The header may
    /// carry a relation name: `orders: orderID,userID`.
    pub fn load_csv(&mut self, text: &str) -> Result<String> {
        let (name, rel) = parse_table(self, text, ',')?;
        self.add_relation(name.clone(), rel);
        Ok(name)
    }

    /// Loads a TSV table (tab delimiter) into the database.
    pub fn load_tsv(&mut self, text: &str) -> Result<String> {
        let (name, rel) = parse_table(self, text, '\t')?;
        self.add_relation(name.clone(), rel);
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_csv_with_types() {
        let mut db = Database::new();
        let name = db
            .load_csv("orders: orderID,userID\n10963,jack\n20134,tom\n")
            .unwrap();
        assert_eq!(name, "orders");
        let rel = db.relation("orders").unwrap();
        assert_eq!(rel.len(), 2);
        let rows = db.decode(rel);
        assert!(rows.contains(&vec![Value::Int(10963), Value::str("jack")]));
    }

    #[test]
    fn quoted_fields_keep_commas_and_stay_strings() {
        let mut db = Database::new();
        db.load_csv("t: a,b\n\"1\",\"x, y\"\n").unwrap();
        let rows = db.decode(db.relation("t").unwrap());
        assert_eq!(rows[0], vec![Value::str("1"), Value::str("x, y")]);
    }

    #[test]
    fn quote_escaping() {
        let mut db = Database::new();
        db.load_csv("t: a\n\"say \"\"hi\"\"\"\n").unwrap();
        let rows = db.decode(db.relation("t").unwrap());
        assert_eq!(rows[0], vec![Value::str("say \"hi\"")]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let mut db = Database::new();
        db.load_csv("# a comment\n\nt: a\n1\n\n# end\n2\n").unwrap();
        assert_eq!(db.relation("t").unwrap().len(), 2);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut db = Database::new();
        let err = db.load_csv("t: a,b\n1\n").unwrap_err();
        assert!(matches!(
            err,
            RelError::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn unterminated_quote_is_reported() {
        let mut db = Database::new();
        assert!(db.load_csv("t: a\n\"oops\n").is_err());
    }

    #[test]
    fn tsv_delimiter() {
        let mut db = Database::new();
        db.load_tsv("t: a\tb\n1\thello world\n").unwrap();
        let rows = db.decode(db.relation("t").unwrap());
        assert_eq!(rows[0], vec![Value::Int(1), Value::str("hello world")]);
    }

    #[test]
    fn unnamed_table_gets_default_name() {
        let mut db = Database::new();
        let name = db.load_csv("a,b\n1,2\n").unwrap();
        assert_eq!(name, "table");
    }

    #[test]
    fn duplicate_rows_dedup() {
        let mut db = Database::new();
        db.load_csv("t: a\n1\n1\n1\n").unwrap();
        assert_eq!(db.relation("t").unwrap().len(), 1);
    }

    #[test]
    fn duplicate_header_columns_rejected() {
        let mut db = Database::new();
        assert!(db.load_csv("t: a,a\n1,2\n").is_err());
    }
}
