//! Join plans: a set of trie-backed atoms under one global variable order.
//!
//! Worst-case optimal engines bind variables one at a time in a fixed global
//! order (the paper's *priority of attributes expansion*, `PA`). Every atom's
//! trie must be leveled by the restriction of that global order to the atom's
//! attributes — [`JoinPlan`] enforces this, precomputing for each variable
//! the list of atoms containing it and at which trie level.

use crate::error::{RelError, Result};
use crate::leapfrog::block_seek;
use crate::relation::Relation;
use crate::schema::Attr;
use crate::trie::Trie;
use crate::value::ValueId;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A half-open value interval `[lo, hi)` over dictionary-encoded values —
/// the unit of work of morsel-style parallel execution.
///
/// Worst-case optimal joins bind the first variable of the global order by
/// intersecting the root levels of every participating trie; restricting
/// that intersection to a `ValueRange` yields an independent sub-join whose
/// results are exactly the tuples whose first binding falls in the range.
/// A set of ranges that [disjointly covers](ValueRange::all) the value space
/// therefore partitions the *result set* (and all per-level work) without
/// any coordination between the parts.
///
/// `hi = None` means unbounded above, so `ValueRange::all()` covers every
/// value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueRange {
    /// Inclusive lower bound.
    pub lo: ValueId,
    /// Exclusive upper bound (`None` = unbounded).
    pub hi: Option<ValueId>,
}

impl ValueRange {
    /// The full value space (restricting to it is a no-op).
    pub fn all() -> ValueRange {
        ValueRange {
            lo: ValueId(0),
            hi: None,
        }
    }

    /// Whether this range is the full value space.
    pub fn is_all(&self) -> bool {
        self.lo == ValueId(0) && self.hi.is_none()
    }

    /// Whether `v` falls inside `[lo, hi)`.
    pub fn contains(&self, v: ValueId) -> bool {
        v >= self.lo && self.hi.is_none_or(|h| v < h)
    }

    /// Narrows a sibling node range of `trie` at `level` to the nodes whose
    /// values fall inside this value range (block-searching the sorted level).
    pub fn clamp_nodes(&self, trie: &Trie, level: usize, range: Range<u32>) -> Range<u32> {
        if self.is_all() {
            return range;
        }
        let vals = trie.values(level, range.clone());
        let lo_off = block_seek(vals, 0, self.lo);
        let hi_off = match self.hi {
            Some(h) => block_seek(vals, lo_off, h),
            None => vals.len(),
        };
        range.start + lo_off as u32..range.start + hi_off as u32
    }
}

impl Default for ValueRange {
    fn default() -> Self {
        ValueRange::all()
    }
}

/// The cardinality-estimate ladder steering runtime-adaptive variable
/// ordering (the *Atreides* ladder).
///
/// Each rung names the estimate an adaptive [`crate::LftjWalk`] uses to
/// score the admissible unbound variables at a depth before binding the
/// cheapest one. The rungs trade estimate quality against read cost, and
/// every rung breaks ties with all the rungs below it (then with plan
/// position, so scoring is fully deterministic):
///
/// * [`Ladder::RowCount`] (*Jessica*) — the tuple count of the variable's
///   smallest participating atom. Static per atom, O(1) to read.
/// * [`Ladder::Distinct`] (*Paul*) — the distinct-value count of the
///   variable's trie level in its cheapest participant, read off the
///   build-time [`crate::trie::LevelSummary`]. Still prefix-independent.
/// * [`Ladder::Refined`] (*Ghanima*, the default) — the width of the
///   sibling range the variable's cursors would actually scan **under the
///   current prefix**: the tightest O(1) upper bound on how many values the
///   binding can produce, and the rung that reacts to skew one prefix at a
///   time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Ladder {
    /// Score by participating-atom row count (*Jessica*).
    RowCount,
    /// Score by build-time per-level distinct counts (*Paul*).
    Distinct,
    /// Score by the prefix-refined sibling-range width (*Ghanima*).
    #[default]
    Refined,
}

impl std::fmt::Display for Ladder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Ladder::RowCount => "rowcount",
            Ladder::Distinct => "distinct",
            Ladder::Refined => "refined",
        })
    }
}

/// One atom's participation in a variable's expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Participant {
    /// Index of the atom in [`JoinPlan::tries`].
    pub atom: usize,
    /// The trie level of the variable within that atom.
    pub level: usize,
}

/// Per-variable expansion plan.
#[derive(Debug, Clone)]
pub struct VarPlan {
    /// The variable being expanded.
    pub var: Attr,
    /// Atoms containing the variable, with its trie level in each.
    pub participants: Vec<Participant>,
}

/// A validated multiway join plan: atoms as tries, leveled consistently with
/// a global variable order.
///
/// Tries are held behind [`Arc`] so plans can be assembled from cached tries
/// (shared with other concurrent queries) without copying; [`JoinPlan::new`]
/// still builds fresh tries when no cache is involved.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    order: Vec<Attr>,
    tries: Vec<Arc<Trie>>,
    /// Per-atom delta runs overlaying [`JoinPlan::tries`] (empty vector =
    /// solid atom). A layered atom's logical content is the union
    /// `tries[i] ∪ layers[i][0] ∪ layers[i][1] ∪ …`; only walk-based
    /// engines (`LftjWalk` and everything built on it) consume layers —
    /// engines that read [`JoinPlan::tries`] directly must be handed
    /// pre-compacted plans.
    layers: Vec<Vec<Arc<Trie>>>,
    var_plans: Vec<VarPlan>,
    /// Wall-clock time [`JoinPlan::new`] spent in [`Trie::build`] (zero for
    /// plans assembled from pre-built tries).
    build_elapsed: Duration,
    /// How many tries [`JoinPlan::new`] built (zero for pre-built plans).
    tries_built: usize,
    /// When set, walk-based engines defer level ordering to runtime and
    /// score admissible variables with this ladder rung ([`Ladder`]);
    /// `order` then acts as the skeleton order tries are leveled by (and
    /// the static fallback schedule).
    ladder: Option<Ladder>,
}

impl JoinPlan {
    /// Builds a plan from relations: each atom's trie is constructed with the
    /// restriction of `order` to its schema.
    ///
    /// Errors if some relation attribute is missing from `order`, or if some
    /// variable of `order` occurs in no relation (its domain would be
    /// unconstrained).
    pub fn new(relations: &[&Relation], order: &[Attr]) -> Result<JoinPlan> {
        if relations.is_empty() {
            return Err(RelError::EmptyQuery);
        }
        for (i, a) in order.iter().enumerate() {
            if order[..i].contains(a) {
                return Err(RelError::InvalidOrder(format!("duplicate variable `{a}`")));
            }
        }
        let build_start = Instant::now();
        let mut tries = Vec::with_capacity(relations.len());
        for rel in relations {
            let restricted = rel.schema().restrict_order(order)?;
            tries.push(Trie::build(rel, &restricted)?);
        }
        let build_elapsed = build_start.elapsed();
        let tries_built = tries.len();
        let mut plan = Self::from_tries(tries, order)?;
        plan.build_elapsed = build_elapsed;
        plan.tries_built = tries_built;
        Ok(plan)
    }

    /// Builds a plan from pre-leveled owned tries, validating that every
    /// trie's attribute order is a subsequence of `order`.
    pub fn from_tries(tries: Vec<Trie>, order: &[Attr]) -> Result<JoinPlan> {
        Self::from_shared(tries.into_iter().map(Arc::new).collect(), order)
    }

    /// Builds a plan from shared (possibly cached) tries, validating that
    /// every trie's attribute order is a subsequence of `order`.
    pub fn from_shared(tries: Vec<Arc<Trie>>, order: &[Attr]) -> Result<JoinPlan> {
        if tries.is_empty() {
            return Err(RelError::EmptyQuery);
        }
        for trie in &tries {
            let mut last = None;
            for a in trie.attrs() {
                let pos = order.iter().position(|o| o == a).ok_or_else(|| {
                    RelError::InvalidOrder(format!("atom attribute `{a}` missing from order"))
                })?;
                if let Some(l) = last {
                    if pos <= l {
                        return Err(RelError::InvalidOrder(format!(
                            "atom order violates global order at `{a}`"
                        )));
                    }
                }
                last = Some(pos);
            }
        }
        let mut var_plans = Vec::with_capacity(order.len());
        for var in order {
            let mut participants = Vec::new();
            for (atom, trie) in tries.iter().enumerate() {
                if let Some(level) = trie.attrs().iter().position(|a| a == var) {
                    participants.push(Participant { atom, level });
                }
            }
            if participants.is_empty() {
                return Err(RelError::InvalidOrder(format!(
                    "variable `{var}` occurs in no atom"
                )));
            }
            var_plans.push(VarPlan {
                var: var.clone(),
                participants,
            });
        }
        let layers = vec![Vec::new(); tries.len()];
        Ok(JoinPlan {
            order: order.to_vec(),
            tries,
            layers,
            var_plans,
            build_elapsed: Duration::ZERO,
            tries_built: 0,
            ladder: None,
        })
    }

    /// Builds a plan whose atoms may carry delta-run overlays: atom `i`'s
    /// logical content is `tries[i]` unioned with every trie in `layers[i]`.
    ///
    /// Every run must be leveled by exactly the same attribute order as its
    /// base trie. Layered plans are only executable by walk-based engines
    /// ([`crate::LftjWalk`] and the streaming / morsel drivers built on it);
    /// hand engines that consume [`JoinPlan::tries`] directly a compacted
    /// plan instead.
    pub fn from_shared_layered(
        tries: Vec<Arc<Trie>>,
        layers: Vec<Vec<Arc<Trie>>>,
        order: &[Attr],
    ) -> Result<JoinPlan> {
        if layers.len() != tries.len() {
            return Err(RelError::InvalidOrder(format!(
                "layer list covers {} atoms, plan has {}",
                layers.len(),
                tries.len()
            )));
        }
        for (base, runs) in tries.iter().zip(&layers) {
            for run in runs {
                if run.attrs() != base.attrs() {
                    return Err(RelError::InvalidOrder(format!(
                        "delta run order {:?} does not match atom order {:?}",
                        run.attrs(),
                        base.attrs()
                    )));
                }
            }
        }
        let mut plan = Self::from_shared(tries, order)?;
        plan.layers = layers;
        Ok(plan)
    }

    /// The global variable order.
    pub fn order(&self) -> &[Attr] {
        &self.order
    }

    /// Attaches (or clears) a runtime-adaptive ordering ladder. Walks built
    /// from the returned plan — including every morsel sub-walk cloned from
    /// it — defer level ordering to runtime and score admissible variables
    /// with `ladder`; result *tuples* are still laid out per
    /// [`JoinPlan::order`].
    #[must_use]
    pub fn with_ladder(mut self, ladder: Option<Ladder>) -> JoinPlan {
        self.ladder = ladder;
        self
    }

    /// The runtime-adaptive ordering ladder, if one is attached.
    pub fn ladder(&self) -> Option<Ladder> {
        self.ladder
    }

    /// Time [`JoinPlan::new`] spent building tries ([`Duration::ZERO`] when
    /// the plan was assembled from pre-built / cached tries). Engines copy
    /// it into [`crate::JoinStats::build_elapsed`] so benchmarks can report
    /// build vs probe time separately.
    pub fn build_elapsed(&self) -> Duration {
        self.build_elapsed
    }

    /// Number of tries [`JoinPlan::new`] built (0 for pre-built plans).
    pub fn tries_built(&self) -> usize {
        self.tries_built
    }

    /// The atoms' base tries (leveled consistently with
    /// [`JoinPlan::order`]). For layered atoms this is the base layer only —
    /// walk-based engines additionally consume [`JoinPlan::layers`].
    pub fn tries(&self) -> &[Arc<Trie>] {
        &self.tries
    }

    /// Per-atom delta-run overlays, aligned with [`JoinPlan::tries`] (an
    /// empty vector means the atom is solid).
    pub fn layers(&self) -> &[Vec<Arc<Trie>>] {
        &self.layers
    }

    /// Whether any atom carries delta runs.
    pub fn has_layers(&self) -> bool {
        self.layers.iter().any(|l| !l.is_empty())
    }

    /// Number of physical layers of atom `atom`: 1 (the base) plus its
    /// delta runs.
    #[inline]
    pub fn runs(&self, atom: usize) -> usize {
        1 + self.layers[atom].len()
    }

    /// Layer `run` of atom `atom`: run 0 is the base trie, run `r >= 1` is
    /// delta run `r - 1`.
    #[inline]
    pub fn run_trie(&self, atom: usize, run: usize) -> &Arc<Trie> {
        if run == 0 {
            &self.tries[atom]
        } else {
            &self.layers[atom][run - 1]
        }
    }

    /// Per-variable plans, aligned with [`JoinPlan::order`].
    pub fn var_plans(&self) -> &[VarPlan] {
        &self.var_plans
    }

    /// Whether any atom is logically empty — base *and* every delta run
    /// empty — making the whole join empty.
    pub fn has_empty_atom(&self) -> bool {
        self.tries
            .iter()
            .zip(&self.layers)
            .any(|(t, runs)| t.num_tuples() == 0 && runs.iter().all(|r| r.num_tuples() == 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueId;

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    fn attrs(names: &[&str]) -> Vec<Attr> {
        names.iter().map(|&n| Attr::new(n)).collect()
    }

    fn rel(names: &[&str], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(Schema::of(names));
        for row in rows {
            let ids: Vec<ValueId> = row.iter().map(|&x| v(x)).collect();
            r.push(&ids).unwrap();
        }
        r
    }

    #[test]
    fn plan_builds_restricted_tries() {
        let r = rel(&["b", "a"], &[&[1, 2], &[3, 4]]);
        let s = rel(&["a", "c"], &[&[2, 5]]);
        let plan = JoinPlan::new(&[&r, &s], &attrs(&["a", "b", "c"])).unwrap();
        // R(b,a) must be re-leveled to (a, b).
        assert_eq!(plan.tries()[0].attrs(), &attrs(&["a", "b"])[..]);
        assert_eq!(plan.tries()[1].attrs(), &attrs(&["a", "c"])[..]);
        // Variable "a" participates in both atoms at level 0.
        let vp = &plan.var_plans()[0];
        assert_eq!(vp.participants.len(), 2);
        assert!(vp.participants.iter().all(|p| p.level == 0));
        // "b" only in atom 0 at level 1.
        assert_eq!(
            plan.var_plans()[1].participants,
            vec![Participant { atom: 0, level: 1 }]
        );
    }

    #[test]
    fn plan_rejects_uncovered_variable() {
        let r = rel(&["a"], &[&[1]]);
        let err = JoinPlan::new(&[&r], &attrs(&["a", "zz"])).unwrap_err();
        assert!(err.to_string().contains("zz"));
    }

    #[test]
    fn plan_rejects_attr_missing_from_order() {
        let r = rel(&["a", "b"], &[&[1, 2]]);
        assert!(JoinPlan::new(&[&r], &attrs(&["a"])).is_err());
    }

    #[test]
    fn plan_rejects_duplicate_order_variable() {
        let r = rel(&["a"], &[&[1]]);
        assert!(JoinPlan::new(&[&r], &attrs(&["a", "a"])).is_err());
    }

    #[test]
    fn plan_rejects_empty_query() {
        assert!(JoinPlan::new(&[], &attrs(&["a"])).is_err());
    }

    #[test]
    fn from_tries_rejects_misleveled_trie() {
        let r = rel(&["a", "b"], &[&[1, 2]]);
        let t = Trie::build(&r, &attrs(&["b", "a"])).unwrap();
        // Global order (a, b) conflicts with trie order (b, a).
        assert!(JoinPlan::from_tries(vec![t], &attrs(&["a", "b"])).is_err());
    }

    #[test]
    fn from_shared_reuses_trie_allocations() {
        let r = rel(&["a", "b"], &[&[1, 2], &[1, 3]]);
        let trie = Arc::new(Trie::from_relation(&r));
        let plan = JoinPlan::from_shared(vec![Arc::clone(&trie)], &attrs(&["a", "b"])).unwrap();
        assert!(Arc::ptr_eq(&plan.tries()[0], &trie));
        // The same Arc can back several plans simultaneously.
        let plan2 = JoinPlan::from_shared(vec![Arc::clone(&trie)], &attrs(&["a", "b"])).unwrap();
        assert!(Arc::ptr_eq(&plan2.tries()[0], &plan.tries()[0]));
    }

    #[test]
    fn value_range_contains_and_clamps() {
        let all = ValueRange::all();
        assert!(all.is_all());
        assert!(all.contains(v(0)));
        assert!(all.contains(v(u32::MAX)));
        let r = ValueRange {
            lo: v(3),
            hi: Some(v(7)),
        };
        assert!(!r.contains(v(2)));
        assert!(r.contains(v(3)));
        assert!(r.contains(v(6)));
        assert!(!r.contains(v(7)));

        // Root level values: 1, 3, 5, 9.
        let rel = rel(&["a"], &[&[1], &[3], &[5], &[9]]);
        let trie = Trie::from_relation(&rel);
        let root = trie.root_range();
        assert_eq!(all.clamp_nodes(&trie, 0, root.clone()), 0..4);
        let mid = ValueRange {
            lo: v(2),
            hi: Some(v(6)),
        };
        // Nodes with values 3 and 5.
        assert_eq!(mid.clamp_nodes(&trie, 0, root.clone()), 1..3);
        let tail = ValueRange { lo: v(6), hi: None };
        assert_eq!(tail.clamp_nodes(&trie, 0, root.clone()), 3..4);
        let empty = ValueRange {
            lo: v(6),
            hi: Some(v(9)),
        };
        assert_eq!(empty.clamp_nodes(&trie, 0, root), 3..3);
    }

    #[test]
    fn fresh_plans_report_build_cost_shared_plans_do_not() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4]]);
        let plan = JoinPlan::new(&[&r], &attrs(&["a", "b"])).unwrap();
        assert_eq!(plan.tries_built(), 1);
        let shared = JoinPlan::from_shared(plan.tries().to_vec(), &attrs(&["a", "b"])).unwrap();
        assert_eq!(shared.tries_built(), 0);
        assert_eq!(shared.build_elapsed(), Duration::ZERO);
    }

    #[test]
    fn empty_atom_detection() {
        let r = rel(&["a"], &[&[1]]);
        let empty = rel(&["a"], &[]);
        let plan = JoinPlan::new(&[&r, &empty], &attrs(&["a"])).unwrap();
        assert!(plan.has_empty_atom());
        let plan2 = JoinPlan::new(&[&r], &attrs(&["a"])).unwrap();
        assert!(!plan2.has_empty_atom());
    }

    #[test]
    fn layered_plan_accessors_and_validation() {
        let order = attrs(&["a", "b"]);
        let base = Arc::new(Trie::from_relation(&rel(&["a", "b"], &[&[1, 2]])));
        let run = Arc::new(Trie::from_relation(&rel(&["a", "b"], &[&[3, 4]])));
        let plan = JoinPlan::from_shared_layered(
            vec![Arc::clone(&base)],
            vec![vec![Arc::clone(&run)]],
            &order,
        )
        .unwrap();
        assert!(plan.has_layers());
        assert_eq!(plan.runs(0), 2);
        assert!(Arc::ptr_eq(plan.run_trie(0, 0), &base));
        assert!(Arc::ptr_eq(plan.run_trie(0, 1), &run));
        assert_eq!(plan.layers()[0].len(), 1);

        // One layer list per atom, no more, no fewer.
        assert!(JoinPlan::from_shared_layered(vec![Arc::clone(&base)], vec![], &order).is_err());
        // Runs must share the base's level order.
        let misleveled =
            Arc::new(Trie::build(&rel(&["a", "b"], &[&[1, 2]]), &attrs(&["b", "a"])).unwrap());
        assert!(JoinPlan::from_shared_layered(
            vec![Arc::clone(&base)],
            vec![vec![misleveled]],
            &order
        )
        .is_err());

        // Plans without runs report no layers.
        let solid =
            JoinPlan::from_shared_layered(vec![Arc::clone(&base)], vec![vec![]], &order).unwrap();
        assert!(!solid.has_layers());
        assert_eq!(solid.runs(0), 1);
    }

    #[test]
    fn layered_empty_atom_considers_all_runs() {
        let order = attrs(&["a"]);
        let empty = Arc::new(Trie::from_relation(&rel(&["a"], &[])));
        let one = Arc::new(Trie::from_relation(&rel(&["a"], &[&[1]])));
        // Empty base + live run: the atom is logically non-empty.
        let plan = JoinPlan::from_shared_layered(
            vec![Arc::clone(&empty)],
            vec![vec![Arc::clone(&one)]],
            &order,
        )
        .unwrap();
        assert!(!plan.has_empty_atom());
        // Empty base + empty run: logically empty.
        let plan2 = JoinPlan::from_shared_layered(
            vec![Arc::clone(&empty)],
            vec![vec![Arc::clone(&empty)]],
            &order,
        )
        .unwrap();
        assert!(plan2.has_empty_atom());
    }
}
