//! Synthetic relation generators for tests and benchmarks.
//!
//! Two families:
//! * uniform random tables — the "synthetic data" style evaluation of the
//!   paper's Figure 3;
//! * AGM-tight *product* instances — the construction of the paper's
//!   Lemma 3.2 (and AGM's lower bound): assign each attribute a domain sized
//!   `n^{y_a}` for a dual-feasible `y` and let each relation be the cartesian
//!   product of its attributes' domains, so the join truly reaches the
//!   worst-case bound.

use crate::relation::Relation;
use crate::schema::{Attr, Schema};
use crate::value::{Dict, Value, ValueId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Interns the `i`-th domain value. All attributes share one global integer
/// domain, so equal indices join across relations and (via the shared
/// dictionary) across data models.
pub fn domain_value(dict: &mut Dict, i: u64) -> ValueId {
    dict.int(i as i64)
}

/// Generates `rows` random tuples over `schema`, each attribute drawn
/// uniformly from `0..domain` (dictionary-encoded ints). Duplicates are
/// removed, so the result may hold slightly fewer than `rows` tuples.
pub fn random_relation(
    dict: &mut Dict,
    schema: Schema,
    rows: usize,
    domain: u64,
    seed: u64,
) -> Relation {
    let mut rel = random_relation_raw(dict, schema, rows, domain, seed);
    rel.sort_dedup();
    rel
}

/// Like [`random_relation`], but keeps the raw insertion order and any
/// duplicate tuples — i.e. a *shuffled* input. Trie-construction benchmarks
/// use this to measure the sorting cost that [`random_relation`]'s
/// `sort_dedup` would otherwise pay up front.
pub fn random_relation_raw(
    dict: &mut Dict,
    schema: Schema,
    rows: usize,
    domain: u64,
    seed: u64,
) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let arity = schema.arity();
    let mut rel = Relation::with_capacity(schema, rows);
    let mut buf = Vec::with_capacity(arity);
    for _ in 0..rows {
        buf.clear();
        for _ in 0..arity {
            buf.push(domain_value(dict, rng.gen_range(0..domain)));
        }
        rel.push(&buf).expect("arity matches");
    }
    rel
}

/// Builds the cartesian product of per-attribute domains: the relation
/// `D_1 × … × D_k` where `D_i = {offsets[i] .. offsets[i] + sizes[i]}`.
///
/// With `sizes[i] = n^{y_i}` for a fractional vertex packing `y`, this is the
/// AGM-tight instance: the relation has `∏ sizes[i]` tuples and the join of
/// such relations attains the worst-case bound.
pub fn product_relation(
    dict: &mut Dict,
    attrs: &[Attr],
    sizes: &[usize],
    offsets: &[u64],
) -> Relation {
    assert_eq!(attrs.len(), sizes.len());
    assert_eq!(attrs.len(), offsets.len());
    let schema = Schema::new(attrs.iter().cloned()).expect("distinct attrs");
    let total: usize = sizes.iter().product();
    let mut rel = Relation::with_capacity(schema, total);
    let mut idx = vec![0usize; sizes.len()];
    let mut buf: Vec<ValueId> = Vec::with_capacity(sizes.len());
    if sizes.contains(&0) {
        return rel;
    }
    loop {
        buf.clear();
        for (k, &i) in idx.iter().enumerate() {
            buf.push(domain_value(dict, offsets[k] + i as u64));
        }
        rel.push(&buf).expect("arity matches");
        // Odometer increment.
        let mut k = sizes.len();
        loop {
            if k == 0 {
                rel.sort_dedup();
                return rel;
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < sizes[k] {
                break;
            }
            idx[k] = 0;
        }
    }
}

/// A named-attribute helper for building small relations from integer rows
/// in tests and benchmarks.
pub fn relation_of_ints(dict: &mut Dict, names: &[&str], rows: &[&[i64]]) -> Relation {
    let mut rel = Relation::new(Schema::of(names));
    let mut buf = Vec::new();
    for row in rows {
        buf.clear();
        buf.extend(row.iter().map(|&i| dict.intern(Value::Int(i))));
        rel.push(&buf).expect("arity matches");
    }
    rel.sort_dedup();
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_relation_respects_domain() {
        let mut dict = Dict::new();
        let r = random_relation(&mut dict, Schema::of(&["a", "b"]), 100, 5, 7);
        assert!(r.len() <= 100);
        assert!(!r.is_empty());
        for row in r.rows() {
            for &v in row {
                let val = dict.decode(v).as_int().unwrap();
                assert!((0..5).contains(&val));
            }
        }
    }

    #[test]
    fn random_relation_is_deterministic_per_seed() {
        let mut d1 = Dict::new();
        let mut d2 = Dict::new();
        let r1 = random_relation(&mut d1, Schema::of(&["a"]), 50, 100, 42);
        let r2 = random_relation(&mut d2, Schema::of(&["a"]), 50, 100, 42);
        assert_eq!(r1, r2);
        let r3 = random_relation(&mut d2, Schema::of(&["a"]), 50, 100, 43);
        assert_ne!(r1, r3);
    }

    #[test]
    fn product_relation_has_product_cardinality() {
        let mut dict = Dict::new();
        let attrs: Vec<Attr> = ["a", "b", "c"].iter().map(|&n| Attr::new(n)).collect();
        let r = product_relation(&mut dict, &attrs, &[3, 1, 4], &[0, 100, 200]);
        assert_eq!(r.len(), 12);
    }

    #[test]
    fn product_relation_with_empty_domain_is_empty() {
        let mut dict = Dict::new();
        let attrs: Vec<Attr> = ["a"].iter().map(|&n| Attr::new(n)).collect();
        let r = product_relation(&mut dict, &attrs, &[0], &[0]);
        assert!(r.is_empty());
    }

    #[test]
    fn product_relations_join_to_product_bound() {
        // R(a,b) = [n] x {z}, S(b,c) = {z} x [n]  =>  |R ⋈ S| = n^2,
        // matching AGM for the path query with y = (1, 0, 1).
        use crate::generic::generic_join;
        let n = 7usize;
        let mut dict = Dict::new();
        let a: Vec<Attr> = vec!["a".into(), "b".into()];
        let b: Vec<Attr> = vec!["b".into(), "c".into()];
        let r = product_relation(&mut dict, &a, &[n, 1], &[0, 100]);
        let s = product_relation(&mut dict, &b, &[1, n], &[100, 200]);
        let order: Vec<Attr> = vec!["a".into(), "b".into(), "c".into()];
        let (out, _) = generic_join(&[&r, &s], &order).unwrap();
        assert_eq!(out.len(), n * n);
    }

    #[test]
    fn relation_of_ints_builder() {
        let mut dict = Dict::new();
        let r = relation_of_ints(&mut dict, &["x", "y"], &[&[1, 2], &[1, 2], &[3, 4]]);
        assert_eq!(r.len(), 2);
    }
}
