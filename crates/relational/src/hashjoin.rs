//! Binary hash joins and left-deep multiway plans — the classical relational
//! comparator.
//!
//! The paper's baseline evaluates the relational part of a mixed query with a
//! conventional pairwise plan; this module provides that engine, instrumented
//! with per-operator intermediate sizes so the blow-ups that worst-case
//! optimal joins avoid become visible in the stats.

use crate::error::Result;
use crate::relation::Relation;
use crate::stats::JoinStats;
use crate::value::ValueId;
use std::collections::HashMap;
use std::time::Instant;

/// Natural hash join of two relations (cartesian product when they share no
/// attributes). Output schema: `left`'s attributes then `right`'s remaining
/// attributes.
pub fn hash_join(left: &Relation, right: &Relation) -> Result<Relation> {
    let common = left.schema().common(right.schema());
    let lkey: Vec<usize> = common
        .iter()
        .map(|a| left.schema().require(a))
        .collect::<Result<_>>()?;
    let rkey: Vec<usize> = common
        .iter()
        .map(|a| right.schema().require(a))
        .collect::<Result<_>>()?;
    let rrest: Vec<usize> = right
        .schema()
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !common.contains(a))
        .map(|(i, _)| i)
        .collect();

    let out_schema = left.schema().join(right.schema());
    let mut out = Relation::new(out_schema);

    // Build on the right side: key -> row indices.
    let mut table: HashMap<Vec<ValueId>, Vec<u32>> = HashMap::with_capacity(right.len());
    for (i, row) in right.rows().enumerate() {
        let key: Vec<ValueId> = rkey.iter().map(|&p| row[p]).collect();
        table.entry(key).or_default().push(i as u32);
    }

    let mut buf: Vec<ValueId> = Vec::with_capacity(out.arity());
    let mut probe_key: Vec<ValueId> = Vec::with_capacity(lkey.len());
    for lrow in left.rows() {
        probe_key.clear();
        probe_key.extend(lkey.iter().map(|&p| lrow[p]));
        if let Some(matches) = table.get(&probe_key) {
            for &ri in matches {
                let rrow = right.row(ri as usize);
                buf.clear();
                buf.extend_from_slice(lrow);
                buf.extend(rrest.iter().map(|&p| rrow[p]));
                out.push(&buf)?;
            }
        }
    }
    Ok(out)
}

/// Greedy left-deep plan: start from the smallest relation, repeatedly join
/// the smallest relation sharing at least one attribute with the accumulated
/// schema (falling back to the smallest remaining relation — a cartesian
/// product — when the join graph is disconnected).
///
/// Returns the atom order (indices into `relations`).
pub fn left_deep_order(relations: &[&Relation]) -> Vec<usize> {
    let n = relations.len();
    if n == 0 {
        return Vec::new();
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    remaining.sort_by_key(|&i| relations[i].len());
    let mut order = vec![remaining.remove(0)];
    let mut schema = relations[order[0]].schema().clone();
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|&i| !relations[i].schema().common(&schema).is_empty())
            .unwrap_or(0);
        let i = remaining.remove(pick);
        schema = schema.join(relations[i].schema());
        order.push(i);
    }
    order
}

/// Multiway natural join via pairwise hash joins along a greedy left-deep
/// plan, recording every operator's intermediate cardinality.
pub fn multiway_hash_join(relations: &[&Relation]) -> Result<(Relation, JoinStats)> {
    let start = Instant::now();
    let mut stats = JoinStats::default();
    assert!(!relations.is_empty(), "multiway join over zero relations");
    let order = left_deep_order(relations);
    let mut acc = relations[order[0]].clone();
    stats.record(format!("scan {}", relations[order[0]].schema()), acc.len());
    for &i in &order[1..] {
        acc = hash_join(&acc, relations[i])?;
        stats.record(format!("join {}", relations[i].schema()), acc.len());
    }
    stats.output_rows = acc.len();
    stats.elapsed = start.elapsed();
    Ok((acc, stats))
}

/// Semi-join `left ⋉ right`: the left tuples with at least one match.
pub fn semi_join(left: &Relation, right: &Relation) -> Result<Relation> {
    let common = left.schema().common(right.schema());
    let lkey: Vec<usize> = common
        .iter()
        .map(|a| left.schema().require(a))
        .collect::<Result<_>>()?;
    let rkeys = right.project(&common)?;
    let set = rkeys.row_set();
    let mut out = Relation::new(left.schema().clone());
    for row in left.rows() {
        let key: Vec<ValueId> = lkey.iter().map(|&p| row[p]).collect();
        if set.contains(key.as_slice()) {
            out.push(row)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::generic_join;
    use crate::schema::{Attr, Schema};

    fn v(i: u32) -> ValueId {
        ValueId(i)
    }

    fn rel(names: &[&str], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(Schema::of(names));
        for row in rows {
            let ids: Vec<ValueId> = row.iter().map(|&x| v(x)).collect();
            r.push(&ids).unwrap();
        }
        r
    }

    #[test]
    fn natural_join_on_shared_attr() {
        let r = rel(&["a", "b"], &[&[1, 10], &[2, 20]]);
        let s = rel(&["b", "c"], &[&[10, 7], &[10, 8], &[30, 9]]);
        let out = hash_join(&r, &s).unwrap();
        assert_eq!(out.schema(), &Schema::of(&["a", "b", "c"]));
        assert_eq!(out.len(), 2);
        assert!(out.contains_row(&[v(1), v(10), v(7)]));
        assert!(out.contains_row(&[v(1), v(10), v(8)]));
    }

    #[test]
    fn join_without_shared_attrs_is_cartesian() {
        let r = rel(&["a"], &[&[1], &[2]]);
        let s = rel(&["b"], &[&[5], &[6], &[7]]);
        let out = hash_join(&r, &s).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn join_on_all_attrs_is_intersection() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4]]);
        let s = rel(&["a", "b"], &[&[3, 4], &[5, 6]]);
        let out = hash_join(&r, &s).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0), &[v(3), v(4)]);
    }

    #[test]
    fn multiway_matches_generic_join() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[3, 3]]);
        let t = rel(&["a", "c"], &[&[1, 3], &[2, 1], &[3, 2], &[1, 1]]);
        let (hash_out, stats) = multiway_hash_join(&[&r, &s, &t]).unwrap();
        let order: Vec<Attr> = ["a", "b", "c"].iter().map(|&n| Attr::new(n)).collect();
        let (gen_out, _) = generic_join(&[&r, &s, &t], &order).unwrap();
        let hash_reordered = hash_out.project(&order).unwrap();
        assert!(hash_reordered.set_eq(&gen_out));
        assert_eq!(stats.stages.len(), 3); // scan + 2 joins
    }

    #[test]
    fn left_deep_order_prefers_connected_atoms() {
        let r = rel(&["a", "b"], &[&[1, 1]]);
        let s = rel(&["x", "y"], &[&[1, 1], &[2, 2]]);
        let t = rel(&["b", "x"], &[&[1, 1], &[2, 2], &[3, 3]]);
        // Smallest is r; t connects to r via b; s connects via x after t.
        let order = left_deep_order(&[&r, &s, &t]);
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn intermediate_blowup_is_visible_in_stats() {
        // R(a,b) ⋈ S(b,c) explodes to n^2 before T(a,c) prunes to 0.
        let n = 20u32;
        let rows_r: Vec<Vec<ValueId>> = (0..n).map(|i| vec![v(i), v(1000)]).collect();
        let rows_s: Vec<Vec<ValueId>> = (0..n).map(|i| vec![v(1000), v(2000 + i)]).collect();
        let r = Relation::from_rows(Schema::of(&["a", "b"]), rows_r).unwrap();
        let s = Relation::from_rows(Schema::of(&["b", "c"]), rows_s).unwrap();
        let t = rel(&["a", "c"], &[]);
        let (out, stats) = multiway_hash_join(&[&t, &r, &s]).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.max_intermediate(), 0); // t first: everything empty
                                                 // Without the empty atom first, the blow-up appears:
        let (out2, stats2) = multiway_hash_join(&[&r, &s]).unwrap();
        assert_eq!(out2.len(), (n * n) as usize);
        assert_eq!(stats2.max_intermediate(), (n * n) as usize);
    }

    #[test]
    fn semi_join_filters_left() {
        let r = rel(&["a", "b"], &[&[1, 10], &[2, 20]]);
        let s = rel(&["b"], &[&[10]]);
        let out = semi_join(&r, &s).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0), &[v(1), v(10)]);
    }

    #[test]
    fn hash_join_respects_duplicate_free_inputs() {
        let r = rel(&["a"], &[&[1], &[1]]);
        let mut rr = r.clone();
        rr.sort_dedup();
        let s = rel(&["a"], &[&[1]]);
        let out = hash_join(&rr, &s).unwrap();
        assert_eq!(out.len(), 1);
    }
}
