//! Prepared queries: parse/validate/order once, re-execute cheaply.
//!
//! Preparation lowers a [`MultiModelQuery`] against a reference snapshot,
//! fixes the global variable order (the paper's `PA`), and pins for every
//! atom a *trie key template*: the atom's content identity plus the
//! restriction of the global order to its attributes. Execution against any
//! later snapshot then resolves each template to a concrete
//! [`TrieKey`] (filling in that snapshot's relation / document versions),
//! fetches the tries from the shared registry — building only on cache
//! misses — and runs the engine selected by the pinned
//! [`xjoin_core::ExecOptions`] over the assembled plan (any plan-based
//! [`xjoin_core::EngineKind`]: level-wise XJoin, streaming XJoin, LFTJ, or
//! the generic join — the baseline and hash join do not consume trie plans
//! and are rejected at prepare time).
//!
//! A fully warm execution performs **zero** [`relational::Trie::build`]
//! calls and never re-materialises path relations: the plan is assembled
//! purely from cached `Arc<Trie>`s.

use crate::cache::TrieKey;
use crate::error::{Result, StoreError};
use crate::store::Snapshot;
use relational::{Attr, JoinPlan, Relation, Trie};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use xjoin_core::{
    collect_atoms, compute_order, execute_with_plan, stream_with_plan, validate_output, CoreError,
    EngineKind, ExecOptions, MultiModelQuery, Parallelism, QueryOutput, ResolvedAtom, Rows, Term,
};
use xmldb::{decompose, path_fingerprint, path_relation, PathSpec};

/// How many streamed rows a deadline-aware drain yields between deadline
/// checks. Small enough that even a worst-case enumeration overruns its
/// deadline by only a batch of cheap trie steps; large enough that the
/// `Instant::now` syscall never shows up in probe profiles.
const DEADLINE_CHECK_EVERY: usize = 256;

/// Where an atom's trie content comes from — which version counter
/// invalidates it, and how to rebuild just this atom's relation on a cache
/// miss.
#[derive(Debug, Clone)]
enum AtomSource {
    /// A base relation served as stored; versioned by the relation.
    Relation(String),
    /// A relational atom derived from `base` by positional terms (renames,
    /// constant selections, repeated-variable equalities); versioned by the
    /// base relation.
    Derived { base: String, fingerprint: String },
    /// A twig path relation (`query.twigs[twig]` restricted to `path`);
    /// versioned by the document.
    TwigPath {
        twig: usize,
        path: PathSpec,
        fingerprint: String,
    },
}

/// One atom's pinned cache identity and trie level order.
#[derive(Debug, Clone)]
struct PreparedAtom {
    /// Display name (as reported in stats), from [`xjoin_core::Atoms::names`].
    display: String,
    source: AtomSource,
    /// The restriction of the global order to this atom's attributes — the
    /// trie's level order.
    order: Vec<Attr>,
}

/// A resolved delta overlay: the base trie, the run layers (empty when the
/// overlay was compacted to a solid trie), and how many run tries were
/// built on the way.
type ResolvedOverlay = (Arc<Trie>, Vec<Arc<Trie>>, usize);

/// A query prepared for repeated execution: validated, ordered, and with all
/// trie cache keys pinned. Cheap to execute against any [`Snapshot`] of the
/// same store; `Send + Sync`, so one prepared query can be shared by every
/// worker of a [`crate::QueryService`].
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    query: MultiModelQuery,
    options: ExecOptions,
    order: Vec<Attr>,
    atoms: Vec<PreparedAtom>,
    first_path_atom: usize,
}

/// Renders a derived atom's positional terms into a stable fingerprint.
fn terms_fingerprint(name: &str, terms: &[Term]) -> String {
    let mut fp = format!("atom:{name}(");
    for (i, t) in terms.iter().enumerate() {
        if i > 0 {
            fp.push(',');
        }
        match t {
            Term::Var(v) => {
                let _ = write!(fp, "?{v}");
            }
            Term::Const(c) => {
                let _ = write!(fp, "{c:?}");
            }
        }
    }
    fp.push(')');
    fp
}

impl PreparedQuery {
    /// Prepares `query` against a reference snapshot: lowers it to atoms,
    /// computes the variable order per `options.order`, validates the
    /// output projection, and pins every atom's trie key. The chosen order
    /// is kept for all later executions (for the `Cardinality` strategy it
    /// reflects the reference snapshot's statistics).
    ///
    /// `options.engine` must be a plan-based kind
    /// ([`xjoin_core::EngineKind::is_plan_based`]); the baseline and hash
    /// join do not execute from trie plans and are rejected here.
    pub fn prepare(
        snapshot: &Snapshot,
        query: &MultiModelQuery,
        options: ExecOptions,
    ) -> Result<PreparedQuery> {
        if !options.engine.is_plan_based() {
            return Err(StoreError::Core(CoreError::Unsupported(format!(
                "engine `{}` does not execute from a trie plan; run it through \
                 xjoin_core::execute instead",
                options.engine
            ))));
        }
        let ctx = snapshot.ctx();
        let atoms = collect_atoms(&ctx, query)?;
        let order = compute_order(&atoms, &options.order)?;
        validate_output(query, &order)?;

        // Reconstruct each atom's content source, mirroring the ordering of
        // `collect_atoms`: relational atoms first, then every twig's paths.
        let mut sources: Vec<AtomSource> = Vec::with_capacity(atoms.rels.len());
        for atom in &query.relations {
            sources.push(match &atom.terms {
                None => AtomSource::Relation(atom.name.clone()),
                Some(terms) => AtomSource::Derived {
                    base: atom.name.clone(),
                    fingerprint: terms_fingerprint(&atom.name, terms),
                },
            });
        }
        debug_assert_eq!(sources.len(), atoms.first_path_atom);
        for (t, twig) in query.twigs.iter().enumerate() {
            let dec = decompose(twig);
            for path in dec.paths {
                let fingerprint = path_fingerprint(twig, &path);
                sources.push(AtomSource::TwigPath {
                    twig: t,
                    path,
                    fingerprint,
                });
            }
        }
        assert_eq!(
            sources.len(),
            atoms.rels.len(),
            "atom sources must mirror collect_atoms"
        );

        let mut prepared = Vec::with_capacity(atoms.rels.len());
        for ((rel, name), source) in atoms.rels.iter().zip(&atoms.names).zip(sources) {
            let schema = rel.rel().schema();
            // Integrity of the source/atom pairing: a path source must carry
            // exactly the schema of the relation it is paired with. Catches
            // any future drift between `collect_atoms`' atom ordering and
            // the reconstruction above before it can poison cache keys.
            if let AtomSource::TwigPath { twig, path, .. } = &source {
                let vars: Vec<Attr> = path
                    .nodes
                    .iter()
                    .map(|&q| query.twigs[*twig].node(q).var.clone())
                    .collect();
                assert_eq!(
                    schema.attrs(),
                    &vars[..],
                    "atom sources drifted from collect_atoms ordering"
                );
            }
            let restricted = schema.restrict_order(&order).map_err(CoreError::from)?;
            prepared.push(PreparedAtom {
                display: name.clone(),
                source,
                order: restricted,
            });
        }

        Ok(PreparedQuery {
            query: query.clone(),
            options,
            order,
            atoms: prepared,
            first_path_atom: atoms.first_path_atom,
        })
    }

    /// The pinned global variable order.
    pub fn order(&self) -> &[Attr] {
        &self.order
    }

    /// A human-readable label for this query — its atom list — used in
    /// spans, metrics, and [`StoreError::WorkerLost`] reports.
    pub fn label(&self) -> String {
        let names: Vec<&str> = self.atoms.iter().map(|a| a.display.as_str()).collect();
        names.join(", ")
    }

    /// The underlying query.
    pub fn query(&self) -> &MultiModelQuery {
        &self.query
    }

    /// The pinned execution options (engine kind, order strategy, filters,
    /// limit, parallelism).
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// Overrides the pinned parallelism without re-preparing: the same
    /// prepared query (same order, same trie keys, same cached tries) can be
    /// served serial or morsel-parallel per call site. Workers of a parallel
    /// execution share the plan's `Arc<Trie>` registry entries — no trie is
    /// copied or rebuilt for the fan-out.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.options.parallelism = parallelism;
        self
    }

    /// Overrides the pinned row limit without re-preparing: the same order
    /// and trie keys, capped at `limit` rows. Serving uses this to apply
    /// per-request row budgets on top of a shared cached statement.
    pub fn with_limit(mut self, limit: Option<usize>) -> Self {
        self.options.limit = limit;
        self
    }

    /// The concrete trie keys this query resolves to on `snapshot` (exposed
    /// for cache introspection, pre-warming, and tests).
    pub fn trie_keys(&self, snapshot: &Snapshot) -> Result<Vec<TrieKey>> {
        self.atoms
            .iter()
            .map(|a| {
                // The `rel:` / `atom:` / `path:` prefixes keep the three
                // source namespaces disjoint — a relation whose *name*
                // happens to look like a fingerprint cannot collide.
                let (source, version) = match &a.source {
                    AtomSource::Relation(name) => {
                        (format!("rel:{name}"), self.rel_version(snapshot, name)?)
                    }
                    AtomSource::Derived { base, fingerprint } => {
                        (fingerprint.clone(), self.rel_version(snapshot, base)?)
                    }
                    AtomSource::TwigPath { fingerprint, .. } => {
                        (fingerprint.clone(), snapshot.doc_version())
                    }
                };
                Ok(TrieKey {
                    store: snapshot.store_id(),
                    source,
                    version,
                    order: a.order.clone(),
                })
            })
            .collect()
    }

    fn rel_version(&self, snapshot: &Snapshot, name: &str) -> Result<u64> {
        snapshot
            .relation_version(name)
            .ok_or_else(|| StoreError::Core(CoreError::UnknownRelation(name.to_owned())))
    }

    /// Resolves a post-write miss on a base-relation atom through the delta
    /// path: finds the newest cached base below `key.version`, checks the
    /// snapshot's append log covers the gap, and builds one small run trie
    /// per append batch. Returns `None` when no overlay is possible (no
    /// cached base, a rewrite in between, log truncated) — the caller falls
    /// back to a full rebuild.
    ///
    /// What comes back depends on `wants_layers` and the store's compaction
    /// ratio: a fresh overlay within budget is cached layered and returned
    /// as `(base, runs)`; an overlay past its ratio — or one a level-wise
    /// engine needs solid — is merged (linear k-way pass over sorted layers,
    /// cheaper than a full sort-build) and cached solid.
    fn overlay_for(
        &self,
        snapshot: &Snapshot,
        key: &TrieKey,
        spec: &PreparedAtom,
        name: &str,
        wants_layers: bool,
    ) -> Result<Option<ResolvedOverlay>> {
        let policy = snapshot.delta_policy();
        if !policy.enabled {
            return Ok(None);
        }
        let registry = snapshot.registry();
        let Some((base_version, base)) =
            registry.find_base(key.store, &key.source, &key.order, key.version)
        else {
            return Ok(None);
        };
        let Some(batches) = snapshot.delta_rows(name, base_version, key.version) else {
            return Ok(None);
        };
        let mut delta = relational::DeltaTrie::new(Arc::clone(&base));
        let mut built = 0usize;
        for batch in &batches {
            let run = Arc::new(Trie::build(batch, &spec.order)?);
            built += 1;
            delta.push_run(run)?;
        }
        if !wants_layers || delta.needs_compaction(policy.compact_ratio) {
            let solid = Arc::new(delta.compact()?);
            registry.replace_with_solid(key, Arc::clone(&solid));
            return Ok(Some((solid, Vec::new(), built)));
        }
        let runs = delta.runs().to_vec();
        registry.insert_layered(key, Arc::new(delta), base_version);
        Ok(Some((base, runs, built)))
    }

    /// Assembles the join plan for `snapshot`, fetching tries from the
    /// registry. A cache miss re-materialises only the missing atom's
    /// relation — an update to one relation never re-derives the other
    /// atoms (in particular, it never re-walks the document for path
    /// relations whose tries are still cached). A miss caused by an
    /// [`crate::VersionedStore::append`] resolves through the delta path
    /// instead when possible: the cached base is overlaid with small run
    /// tries built from the append log (see [`PreparedQuery::overlay_for`]).
    ///
    /// `wants_layers` says whether the consumer walks the plan through
    /// `relational::LftjWalk` (LFTJ, the streaming engine, and every
    /// [`PreparedQuery::rows`] drain), which unions base + delta layers
    /// lazily. Level-wise engines (XJoin, generic) read trie levels
    /// directly, so they pass `false` and layered entries are compacted to
    /// solid tries before planning.
    ///
    /// The returned [`PlanBuildCost`] covers exactly the misses *this* call
    /// paid for (relation materialisation + trie build, lock waits
    /// included); a fully warm assembly reports zero.
    #[allow(clippy::type_complexity)]
    fn plan_for(
        &self,
        snapshot: &Snapshot,
        wants_layers: bool,
    ) -> Result<(JoinPlan, Vec<(String, usize)>, PlanBuildCost)> {
        let keys = self.trie_keys(snapshot)?;
        let registry = snapshot.registry();
        let ctx = snapshot.ctx();

        // Resolved relational atoms, computed at most once per execution
        // (only when some derived atom misses); aligned with
        // `self.query.relations`.
        let mut resolved: Option<Vec<ResolvedAtom<'_>>> = None;
        let mut tries: Vec<Arc<Trie>> = Vec::with_capacity(keys.len());
        let mut layers: Vec<Vec<Arc<Trie>>> = Vec::with_capacity(keys.len());
        let mut cost = PlanBuildCost::default();
        for (i, (spec, key)) in self.atoms.iter().zip(&keys).enumerate() {
            match registry.lookup_cached(key) {
                Some(crate::cache::CachedTrie::Solid(trie)) => {
                    tries.push(trie);
                    layers.push(Vec::new());
                    continue;
                }
                Some(crate::cache::CachedTrie::Layered(delta)) => {
                    if wants_layers {
                        tries.push(Arc::clone(delta.base()));
                        layers.push(delta.runs().to_vec());
                        continue;
                    }
                    // A level-wise engine reached a layered entry first:
                    // merge it now and upgrade the cache entry so the next
                    // consumer (of either kind) is warm.
                    let build_start = Instant::now();
                    let solid = Arc::new(delta.compact()?);
                    registry.replace_with_solid(key, Arc::clone(&solid));
                    cost.elapsed += build_start.elapsed();
                    cost.tries_built += 1;
                    tries.push(solid);
                    layers.push(Vec::new());
                    continue;
                }
                None => {}
            }
            let build_start = Instant::now();
            let mut span = xjoin_obs::span("trie-build");
            span.set_attr(|| spec.display.clone());
            match &spec.source {
                AtomSource::Relation(name) => {
                    if let Some((base, runs, built)) =
                        self.overlay_for(snapshot, key, spec, name, wants_layers)?
                    {
                        cost.elapsed += build_start.elapsed();
                        cost.tries_built += built;
                        tries.push(base);
                        layers.push(runs);
                        continue;
                    }
                    let rel = ctx.db.relation(name).map_err(CoreError::from)?;
                    tries.push(registry.get_or_build(key, || Trie::build(rel, &spec.order))?);
                }
                AtomSource::Derived { .. } => {
                    // Resolution happens outside the build closure because it
                    // can fail with a CoreError the closure's RelError result
                    // cannot carry; a lost build race wastes one resolve.
                    if resolved.is_none() {
                        resolved = Some(ctx.resolve_atoms(&self.query)?);
                    }
                    let atoms = resolved.as_ref().expect("just resolved");
                    tries.push(
                        registry.get_or_build(key, || Trie::build(atoms[i].rel(), &spec.order))?,
                    );
                }
                AtomSource::TwigPath { twig, path, .. } => {
                    // Materialised lazily inside the closure: if a concurrent
                    // worker wins the build race, the document is not walked.
                    tries.push(registry.get_or_build(key, || {
                        let rel = path_relation(ctx.doc, ctx.index, &self.query.twigs[*twig], path);
                        Trie::build(&rel, &spec.order)
                    })?);
                }
            };
            layers.push(Vec::new());
            cost.elapsed += build_start.elapsed();
            cost.tries_built += 1;
        }

        // Atom cardinalities always come from the tries (distinct tuples),
        // never from the lowered relations, so the reported stats are
        // identical whether a run was cold or warm. For layered atoms the
        // count is base + delta tuples — an upper bound on the distinct
        // tuples (overlap collapses in the walk).
        let atom_sizes: Vec<(String, usize)> = self
            .atoms
            .iter()
            .zip(tries.iter().zip(&layers))
            .map(|(spec, (trie, runs))| {
                let n: usize =
                    trie.num_tuples() + runs.iter().map(|r| r.num_tuples()).sum::<usize>();
                (spec.display.clone(), n)
            })
            .collect();

        let plan = if layers.iter().any(|l| !l.is_empty()) {
            JoinPlan::from_shared_layered(tries, layers, &self.order).map_err(CoreError::from)?
        } else {
            JoinPlan::from_shared(tries, &self.order).map_err(CoreError::from)?
        };
        let plan = plan.with_ladder(self.options.order.ladder());
        Ok((plan, atom_sizes, cost))
    }

    /// Executes the prepared query against `snapshot` on the pinned engine,
    /// reusing cached tries. Results are identical to running
    /// [`xjoin_core::execute`] with the same options on the same snapshot
    /// (modulo the pinned order).
    ///
    /// The output's [`relational::JoinStats::build_elapsed`] /
    /// [`relational::JoinStats::tries_built`] report the trie-construction
    /// cost this execution actually paid: zero on a warm cache, the full
    /// build bill on a cold one — so serving benchmarks can split cold
    /// latency into build vs probe.
    pub fn execute(&self, snapshot: &Snapshot) -> Result<QueryOutput> {
        let start = Instant::now();
        // Only the walk-based kinds union delta layers in place; the
        // level-wise kinds read trie levels directly and need solid plans.
        let wants_layers = matches!(
            self.options.engine,
            EngineKind::Lftj | EngineKind::XJoinStream
        );
        let (plan, atom_sizes, cost) = self.plan_for(snapshot, wants_layers)?;
        let ctx = snapshot.ctx();
        let mut out = execute_with_plan(
            &ctx,
            &self.query,
            &self.options,
            &plan,
            atom_sizes,
            self.first_path_atom,
        )
        .map_err(StoreError::from)?;
        // Restamp elapsed to cover plan assembly too, so `build_elapsed`
        // stays a subset of `elapsed` (same convention as the fresh-plan
        // engines) and `elapsed - build_elapsed` is a valid probe time.
        out.stats.elapsed = start.elapsed();
        out.stats.build_elapsed = cost.elapsed;
        out.stats.tries_built = cost.tries_built;
        out.stats.bitset_levels = plan.tries().iter().map(|t| t.bitset_level_count()).sum();
        out.stats.delta_runs = plan.layers().iter().map(Vec::len).sum();
        Ok(out)
    }

    /// Executes the prepared query like [`PreparedQuery::execute`], but
    /// gives up with [`StoreError::DeadlineExceeded`] once `deadline`
    /// passes: the deadline is checked after plan assembly (trie builds can
    /// be slow) and every `DEADLINE_CHECK_EVERY` (256) rows of a streaming
    /// drain, so a runaway query stops burning its worker shortly after its
    /// budgeted time — not only when the caller stops waiting.
    ///
    /// The result *set* equals [`PreparedQuery::execute`] with the same
    /// options (the drain is the depth-first streaming walk, which yields
    /// the same tuples whatever plan-based kind is pinned); the per-stage
    /// Lemma 3.5 series is not recorded, exactly as for the streaming
    /// engine. `enqueued` is when the job entered the system — it stamps
    /// the error's `waited` field so callers see total queue + run time.
    pub fn execute_with_deadline(
        &self,
        snapshot: &Snapshot,
        deadline: Instant,
        enqueued: Instant,
    ) -> Result<QueryOutput> {
        let start = Instant::now();
        // The deadline drain is always the streaming walk: layers are fine.
        let (plan, atom_sizes, cost) = self.plan_for(snapshot, true)?;
        if Instant::now() >= deadline {
            return Err(StoreError::deadline_exceeded(
                self.label(),
                enqueued.elapsed(),
            ));
        }
        let bitset_levels = plan.tries().iter().map(|t| t.bitset_level_count()).sum();
        let delta_runs = plan.layers().iter().map(Vec::len).sum();
        let ctx = snapshot.ctx();
        let mut rows =
            stream_with_plan(&ctx, &self.query, plan, &self.options).map_err(StoreError::from)?;
        let mut rel = Relation::new(rows.schema().clone());
        let mut since_check = 0usize;
        for row in rows.by_ref() {
            rel.push(&row)?;
            since_check += 1;
            if since_check >= DEADLINE_CHECK_EVERY {
                since_check = 0;
                if Instant::now() >= deadline {
                    return Err(StoreError::deadline_exceeded(
                        self.label(),
                        enqueued.elapsed(),
                    ));
                }
            }
        }
        let mut stats = relational::JoinStats {
            output_rows: rel.len(),
            ..Default::default()
        };
        stats.elapsed = start.elapsed();
        stats.build_elapsed = cost.elapsed;
        stats.tries_built = cost.tries_built;
        stats.bitset_levels = bitset_levels;
        stats.delta_runs = delta_runs;
        Ok(QueryOutput {
            results: rel,
            stats,
            order: self.order.clone(),
            atom_sizes,
            engine: self.options.engine,
        })
    }

    /// Streams the prepared query's results as a pull-based
    /// [`Rows`] iterator against `snapshot`, reusing the same cached tries
    /// as [`PreparedQuery::execute`]. Tuples arrive in lexicographic order
    /// of [`PreparedQuery::order`]; the pinned `limit` (if any) is pushed
    /// into the trie walk.
    ///
    /// This is always the depth-first streaming walk (with per-tuple twig
    /// validation), regardless of which plan-based engine kind is pinned —
    /// the pinned kind and its XJoin-only flags govern
    /// [`PreparedQuery::execute`]; the result *set* is identical either
    /// way. A pinned (or [`PreparedQuery::with_parallelism`]-overridden)
    /// parallel setting walks the cached tries morsel-parallel, with the
    /// workers sharing the snapshot's `Arc<Trie>` registry entries.
    pub fn rows<'s>(&'s self, snapshot: &'s Snapshot) -> Result<Rows<'s>> {
        // The pull-based drain is always the streaming walk, whatever kind
        // is pinned — delta layers are consumed natively.
        let (plan, _, _) = self.plan_for(snapshot, true)?;
        stream_with_plan(&snapshot.ctx(), &self.query, plan, &self.options)
            .map_err(StoreError::from)
    }
}

/// The trie-construction cost one plan assembly paid (cache misses only).
#[derive(Debug, Clone, Copy, Default)]
struct PlanBuildCost {
    /// Wall-clock time spent materialising relations and building tries.
    elapsed: std::time::Duration,
    /// Number of tries built (i.e. cache misses served by this call) —
    /// delta run builds and compaction merges included.
    tries_built: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VersionedStore;
    use relational::{Database, Schema, Value};
    use xjoin_core::{xjoin, EngineKind, XJoinConfig};
    use xmldb::XmlDocument;

    fn bookstore_store() -> VersionedStore {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["orderID", "userID"]),
            vec![
                vec![Value::Int(10963), Value::str("jack")],
                vec![Value::Int(20134), Value::str("tom")],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("invoices");
        for (oid, isbn, price) in [(10963i64, "978-3-16-1", 30i64), (20134, "634-3-12-2", 20)] {
            b.begin("orderLine");
            b.leaf("orderID", oid);
            b.leaf("ISBN", isbn);
            b.leaf("price", price);
            b.end();
        }
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        VersionedStore::new(db, doc)
    }

    fn bookstore_query() -> MultiModelQuery {
        MultiModelQuery::new(&["R"], &["//invoices/orderLine[/orderID][/ISBN][/price]"])
            .unwrap()
            .with_output(&["userID", "ISBN", "price"])
    }

    #[test]
    fn prepared_matches_direct_xjoin() {
        let store = bookstore_store();
        let snap = store.snapshot();
        let q = bookstore_query();
        let prepared = PreparedQuery::prepare(&snap, &q, ExecOptions::default()).unwrap();
        let out = prepared.execute(&snap).unwrap();
        let direct = xjoin(&snap.ctx(), &q, &XJoinConfig::default()).unwrap();
        assert!(out.results.set_eq(&direct.results));
        assert_eq!(out.order, direct.order);
    }

    #[test]
    fn warm_execution_touches_no_builds() {
        let store = bookstore_store();
        let snap = store.snapshot();
        let prepared =
            PreparedQuery::prepare(&snap, &bookstore_query(), ExecOptions::default()).unwrap();
        let cold = prepared.execute(&snap).unwrap();
        let after_cold = store.registry().stats();
        assert!(after_cold.misses > 0);
        let warm = prepared.execute(&snap).unwrap();
        let after_warm = store.registry().stats();
        assert_eq!(
            after_warm.misses, after_cold.misses,
            "warm run rebuilt a trie"
        );
        assert_eq!(
            after_warm.hits,
            after_cold.hits + prepared.atoms.len() as u64
        );
        assert!(warm.results.set_eq(&cold.results));
    }

    #[test]
    fn cold_runs_report_build_cost_warm_runs_report_zero() {
        let store = bookstore_store();
        let snap = store.snapshot();
        let prepared =
            PreparedQuery::prepare(&snap, &bookstore_query(), ExecOptions::default()).unwrap();
        let cold = prepared.execute(&snap).unwrap();
        assert_eq!(cold.stats.tries_built, prepared.atoms.len());
        assert!(cold.stats.build_elapsed > std::time::Duration::ZERO);
        // Build time is a subset of the total: probe = elapsed - build is
        // always a valid Duration.
        assert!(cold.stats.build_elapsed <= cold.stats.elapsed);
        let warm = prepared.execute(&snap).unwrap();
        assert_eq!(warm.stats.tries_built, 0);
        assert_eq!(warm.stats.build_elapsed, std::time::Duration::ZERO);
        // The registry's own accounting agrees: builds happened once.
        let reg = store.registry().stats();
        assert_eq!(reg.builds, prepared.atoms.len() as u64);
        assert!(reg.build_time > std::time::Duration::ZERO);
    }

    #[test]
    fn execution_follows_relation_versions() {
        let store = bookstore_store();
        let snap1 = store.snapshot();
        let prepared =
            PreparedQuery::prepare(&snap1, &bookstore_query(), ExecOptions::default()).unwrap();
        let out1 = prepared.execute(&snap1).unwrap();
        assert_eq!(out1.results.len(), 2);
        store.update(|db| {
            db.load(
                "R",
                Schema::of(&["orderID", "userID"]),
                vec![vec![Value::Int(10963), Value::str("jack")]],
            )
            .unwrap();
        });
        let snap2 = store.snapshot();
        // Old snapshot still serves the old answer; the new one re-keys.
        assert_eq!(prepared.execute(&snap1).unwrap().results.len(), 2);
        assert_eq!(prepared.execute(&snap2).unwrap().results.len(), 1);
        let k1 = prepared.trie_keys(&snap1).unwrap();
        let k2 = prepared.trie_keys(&snap2).unwrap();
        assert_ne!(k1[0], k2[0], "R's key must re-version");
        assert_eq!(&k1[1..], &k2[1..], "path keys are unchanged");
    }

    #[test]
    fn rows_agree_with_execute() {
        let store = bookstore_store();
        let snap = store.snapshot();
        let q = MultiModelQuery::new(&["R"], &["//orderLine/orderID"]).unwrap();
        let prepared = PreparedQuery::prepare(&snap, &q, ExecOptions::default()).unwrap();
        let n = prepared.rows(&snap).unwrap().count();
        assert_eq!(n, prepared.execute(&snap).unwrap().results.len());
    }

    #[test]
    fn every_plan_based_engine_executes_from_the_cache() {
        let store = bookstore_store();
        let snap = store.snapshot();
        let q = bookstore_query();
        let reference = PreparedQuery::prepare(&snap, &q, ExecOptions::default())
            .unwrap()
            .execute(&snap)
            .unwrap();
        for kind in EngineKind::all() {
            let opts = ExecOptions::for_engine(kind);
            if !kind.is_plan_based() {
                assert!(
                    matches!(
                        PreparedQuery::prepare(&snap, &q, opts),
                        Err(StoreError::Core(CoreError::Unsupported(_)))
                    ),
                    "non-plan engine {kind} must be rejected at prepare"
                );
                continue;
            }
            let prepared = PreparedQuery::prepare(&snap, &q, opts).unwrap();
            let out = prepared.execute(&snap).unwrap();
            assert!(
                out.results.set_eq(&reference.results),
                "prepared engine {kind} diverged"
            );
            assert_eq!(out.engine, kind);
        }
    }

    #[test]
    fn parallelism_override_serves_identical_results_from_the_same_cache() {
        use xjoin_core::Parallelism;
        let store = bookstore_store();
        let snap = store.snapshot();
        let q = bookstore_query();
        for kind in EngineKind::all().into_iter().filter(|k| k.is_plan_based()) {
            let prepared =
                PreparedQuery::prepare(&snap, &q, ExecOptions::for_engine(kind)).unwrap();
            let serial = prepared.execute(&snap).unwrap();
            let misses_after_serial = store.registry().stats().misses;
            let parallel = prepared
                .clone()
                .with_parallelism(Parallelism::Threads(3))
                .execute(&snap)
                .unwrap();
            assert!(
                parallel.results.set_eq(&serial.results),
                "prepared engine {kind} diverged under parallel execution"
            );
            // The fan-out shares cached Arc<Trie>s: no extra builds.
            assert_eq!(
                store.registry().stats().misses,
                misses_after_serial,
                "parallel execution of {kind} rebuilt a trie"
            );
        }
        // The streaming path honours the override too.
        let prepared = PreparedQuery::prepare(&snap, &q, ExecOptions::default())
            .unwrap()
            .with_parallelism(Parallelism::Threads(2));
        let n = prepared.rows(&snap).unwrap().count();
        assert_eq!(n, prepared.execute(&snap).unwrap().results.len());
    }

    #[test]
    fn prepared_limit_pushes_into_the_walk() {
        let store = bookstore_store();
        let snap = store.snapshot();
        let q = MultiModelQuery::new(&["R"], &["//orderLine/orderID"]).unwrap();
        let full =
            PreparedQuery::prepare(&snap, &q, ExecOptions::for_engine(EngineKind::XJoinStream))
                .unwrap();
        let mut all = full.rows(&snap).unwrap();
        let total = all.by_ref().count();
        assert!(total > 1);
        let full_visited = all.stats().visited;

        let limited = PreparedQuery::prepare(
            &snap,
            &q,
            ExecOptions {
                engine: EngineKind::XJoinStream,
                limit: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let mut rows = limited.rows(&snap).unwrap();
        assert_eq!(rows.by_ref().count(), 1);
        assert!(rows.stats().visited < full_visited);
        // The materialising path honours the limit too.
        assert_eq!(limited.execute(&snap).unwrap().results.len(), 1);
    }

    #[test]
    fn deadline_checked_after_plan_assembly() {
        use std::time::Duration;
        let store = bookstore_store();
        let snap = store.snapshot();
        let prepared =
            PreparedQuery::prepare(&snap, &bookstore_query(), ExecOptions::default()).unwrap();
        let enqueued = Instant::now();
        // An already-expired deadline fails before any row is drained.
        assert!(matches!(
            prepared.execute_with_deadline(&snap, enqueued, enqueued),
            Err(StoreError::DeadlineExceeded { .. })
        ));
        // A generous deadline yields exactly execute()'s result set.
        let direct = prepared.execute(&snap).unwrap();
        let out = prepared
            .execute_with_deadline(
                &snap,
                Instant::now() + Duration::from_secs(60),
                Instant::now(),
            )
            .unwrap();
        assert!(out.results.set_eq(&direct.results));
        assert_eq!(out.order, direct.order);
        assert_eq!(out.engine, direct.engine);
        assert_eq!(out.atom_sizes, direct.atom_sizes);
    }

    #[test]
    fn deadline_interrupts_a_large_drain() {
        use std::time::Duration;
        // R(g,x) ⋈ S(g,y) with one shared group: a million-row output whose
        // drain cannot finish inside a 1 ms budget, so the per-batch checks
        // must stop it mid-stream.
        let mut db = Database::new();
        let rows = |attr_rows: i64| -> Vec<Vec<Value>> {
            (0..attr_rows)
                .map(|i| vec![Value::Int(0), Value::Int(i)])
                .collect()
        };
        db.load("R", Schema::of(&["g", "x"]), rows(1000)).unwrap();
        db.load("S", Schema::of(&["g", "y"]), rows(1000)).unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("root");
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        let store = VersionedStore::new(db, doc);
        let snap = store.snapshot();
        let q = MultiModelQuery::new(&["R", "S"], &[]).unwrap();
        let prepared = PreparedQuery::prepare(&snap, &q, ExecOptions::default()).unwrap();
        // Warm the trie cache with a limit-1 sibling (same atoms, same
        // order, hence the same trie keys) so the deadlined run spends its
        // whole budget inside the drain, not the build.
        let warm = PreparedQuery::prepare(
            &snap,
            &q,
            ExecOptions {
                limit: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(warm.execute(&snap).unwrap().results.len(), 1);
        let start = Instant::now();
        match prepared
            .execute_with_deadline(&snap, start + Duration::from_millis(1), start)
            .unwrap_err()
        {
            StoreError::DeadlineExceeded { waited, .. } => {
                assert!(waited >= Duration::from_millis(1))
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
    }

    #[test]
    fn unknown_output_attribute_rejected_at_prepare() {
        let store = bookstore_store();
        let snap = store.snapshot();
        let q = MultiModelQuery::new(&["R"], &["//orderLine/orderID"])
            .unwrap()
            .with_output(&["nope"]);
        assert!(matches!(
            PreparedQuery::prepare(&snap, &q, ExecOptions::default()),
            Err(StoreError::Core(CoreError::UnknownAttribute(_)))
        ));
    }

    #[test]
    fn shared_registry_never_mixes_stores() {
        use crate::cache::TrieRegistry;
        // Two stores with identical names/versions/orders but different
        // contents share one registry; each must be served its own tries.
        let registry = Arc::new(TrieRegistry::new());
        let make = |rows: Vec<Vec<Value>>| {
            let mut db = Database::new();
            db.load("R", Schema::of(&["x"]), rows).unwrap();
            let mut dict = db.dict().clone();
            let mut b = XmlDocument::builder();
            b.begin("root");
            b.end();
            let doc = b.build(&mut dict);
            *db.dict_mut() = dict;
            crate::store::VersionedStore::with_registry(db, doc, Arc::clone(&registry))
        };
        let s1 = make(vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let s2 = make(vec![vec![Value::Int(9)]]);
        assert_ne!(s1.id(), s2.id());
        let q = MultiModelQuery::new(&["R"], &[]).unwrap();
        let snap1 = s1.snapshot();
        let snap2 = s2.snapshot();
        let p1 = PreparedQuery::prepare(&snap1, &q, ExecOptions::default()).unwrap();
        let p2 = PreparedQuery::prepare(&snap2, &q, ExecOptions::default()).unwrap();
        assert_eq!(p1.execute(&snap1).unwrap().results.len(), 2);
        // Same relation name, version 1, order (x) — but a different store:
        // this must *miss* and build s2's own trie, not hit s1's.
        let before = registry.stats();
        assert_eq!(p2.execute(&snap2).unwrap().results.len(), 1);
        let after = registry.stats();
        assert_eq!(after.misses, before.misses + 1);
        assert_eq!(after.hits, before.hits);
    }

    #[test]
    fn append_resolves_through_a_delta_overlay_for_walk_engines() {
        use crate::store::DeltaPolicy;
        let store = bookstore_store();
        // The base relation is tiny; keep the ratio out of the way so the
        // overlay survives instead of compacting immediately.
        store.set_delta_policy(DeltaPolicy {
            enabled: true,
            compact_ratio: 10.0,
        });
        let q = bookstore_query();
        let prepared = PreparedQuery::prepare(
            &store.snapshot(),
            &q,
            ExecOptions::for_engine(EngineKind::Lftj),
        )
        .unwrap();
        // Warm the cache at version 1.
        let before_rows = prepared.execute(&store.snapshot()).unwrap().results.len();
        store
            .append("R", vec![vec![Value::Int(10963), Value::str("jill")]])
            .unwrap();
        let stats_before = store.registry().stats();
        let snap = store.snapshot();
        let out = prepared.execute(&snap).unwrap();
        assert_eq!(out.results.len(), before_rows + 1, "append must be visible");
        assert_eq!(out.stats.delta_runs, 1, "R resolves as base + one run");
        let stats_after = store.registry().stats();
        assert_eq!(
            stats_after.overlays,
            stats_before.overlays + 1,
            "the new version must be cached layered, not rebuilt"
        );
        assert_eq!(stats_after.builds, stats_before.builds, "no full rebuild");
        // The second execution is fully warm on the overlay.
        let out2 = prepared.execute(&snap).unwrap();
        assert_eq!(out2.stats.tries_built, 0);
        assert_eq!(out2.stats.delta_runs, 1);
        assert!(out2.results.set_eq(&out.results));
    }

    #[test]
    fn level_wise_engines_get_compacted_solid_plans_after_append() {
        use crate::store::DeltaPolicy;
        let store = bookstore_store();
        store.set_delta_policy(DeltaPolicy {
            enabled: true,
            compact_ratio: 10.0,
        });
        let q = bookstore_query();
        let walk = PreparedQuery::prepare(
            &store.snapshot(),
            &q,
            ExecOptions::for_engine(EngineKind::XJoinStream),
        )
        .unwrap();
        let levelwise = PreparedQuery::prepare(
            &store.snapshot(),
            &q,
            ExecOptions::for_engine(EngineKind::XJoin),
        )
        .unwrap();
        walk.execute(&store.snapshot()).unwrap();
        store
            .append("R", vec![vec![Value::Int(20134), Value::str("meg")]])
            .unwrap();
        let snap = store.snapshot();
        // The walk engine installs the overlay...
        let walked = walk.execute(&snap).unwrap();
        assert_eq!(walked.stats.delta_runs, 1);
        // ...and the level-wise engine finds it, compacts it in place, and
        // runs on a solid plan with identical results.
        let stats_before = store.registry().stats();
        let level = levelwise.execute(&snap).unwrap();
        assert_eq!(level.stats.delta_runs, 0);
        assert!(level.results.set_eq(&walked.results));
        assert_eq!(
            store.registry().stats().compactions,
            stats_before.compactions + 1
        );
        // After the upgrade the walk engine reads the solid entry (no runs).
        let walked2 = walk.execute(&snap).unwrap();
        assert_eq!(walked2.stats.delta_runs, 0);
        assert!(walked2.results.set_eq(&walked.results));
    }

    #[test]
    fn overlay_compacts_once_deltas_outgrow_the_ratio() {
        use crate::store::DeltaPolicy;
        let store = bookstore_store();
        store.set_delta_policy(DeltaPolicy {
            enabled: true,
            compact_ratio: 0.4, // 2 rows base: one-row appends trigger at run 1
        });
        let q = bookstore_query();
        let prepared = PreparedQuery::prepare(
            &store.snapshot(),
            &q,
            ExecOptions::for_engine(EngineKind::Lftj),
        )
        .unwrap();
        prepared.execute(&store.snapshot()).unwrap();
        store
            .append("R", vec![vec![Value::Int(10963), Value::str("amy")]])
            .unwrap();
        let out = prepared.execute(&store.snapshot()).unwrap();
        // 1 delta row / 2 base rows = 0.5 > 0.4: compacted straight away.
        assert_eq!(out.stats.delta_runs, 0);
        assert!(store.registry().stats().compactions >= 1);
        assert_eq!(out.results.len(), 3);
    }

    #[test]
    fn disabled_delta_policy_falls_back_to_full_rebuilds() {
        use crate::store::DeltaPolicy;
        let store = bookstore_store();
        store.set_delta_policy(DeltaPolicy {
            enabled: false,
            ..Default::default()
        });
        let q = bookstore_query();
        let prepared = PreparedQuery::prepare(
            &store.snapshot(),
            &q,
            ExecOptions::for_engine(EngineKind::Lftj),
        )
        .unwrap();
        prepared.execute(&store.snapshot()).unwrap();
        store
            .append("R", vec![vec![Value::Int(10963), Value::str("bob")]])
            .unwrap();
        let before = store.registry().stats();
        let out = prepared.execute(&store.snapshot()).unwrap();
        assert_eq!(out.results.len(), 3);
        assert_eq!(out.stats.delta_runs, 0);
        let after = store.registry().stats();
        assert_eq!(after.overlays, before.overlays);
        assert_eq!(after.builds, before.builds + 1, "R was rebuilt in full");
    }

    #[test]
    fn unknown_relation_is_reported_at_execute() {
        let store = bookstore_store();
        let snap = store.snapshot();
        let prepared =
            PreparedQuery::prepare(&snap, &bookstore_query(), ExecOptions::default()).unwrap();
        // A fresh, unrelated store lacks `R`.
        let mut db = Database::new();
        db.load("S", Schema::of(&["x"]), vec![vec![Value::Int(1)]])
            .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("invoices");
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        let other = VersionedStore::new(db, doc);
        assert!(matches!(
            prepared.execute(&other.snapshot()),
            Err(StoreError::Core(CoreError::UnknownRelation(_)))
        ));
    }
}
