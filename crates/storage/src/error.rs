//! Error type for the storage & serving subsystem.

use std::fmt;
use xjoin_core::CoreError;

/// Errors raised by the store, cache, prepared queries, or query service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An error from the multi-model engine (lowering, planning, execution).
    Core(CoreError),
    /// An error from the relational substrate (trie construction, schemas).
    Relational(relational::RelError),
    /// A query result will never arrive: the worker executing it died (or
    /// the service was shut down before the job ran).
    WorkerLost {
        /// Label of the lost job's query (its atom list), so the caller
        /// knows *which* submission will never resolve.
        label: String,
        /// The worker's panic payload, or a note that the service shut down
        /// before the job ran.
        panic: String,
    },
    /// The query's deadline expired before a result was produced — either
    /// while the job was still queued (checked at dequeue), mid-execution
    /// (checked between row batches of a deadline-aware drain), or while the
    /// caller waited on its [`crate::Ticket`].
    DeadlineExceeded {
        /// Label of the query whose deadline expired (its atom list).
        label: String,
        /// How long the query had been waited on / worked on when the
        /// deadline was declared exceeded.
        waited: std::time::Duration,
    },
}

impl StoreError {
    /// A [`StoreError::WorkerLost`] for the job labelled `label`.
    pub fn worker_lost(label: impl Into<String>, panic: impl Into<String>) -> StoreError {
        StoreError::WorkerLost {
            label: label.into(),
            panic: panic.into(),
        }
    }

    /// A [`StoreError::DeadlineExceeded`] for the job labelled `label`.
    pub fn deadline_exceeded(label: impl Into<String>, waited: std::time::Duration) -> StoreError {
        StoreError::DeadlineExceeded {
            label: label.into(),
            waited,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Core(e) => write!(f, "core: {e}"),
            StoreError::Relational(e) => write!(f, "relational: {e}"),
            StoreError::WorkerLost { label, panic } => {
                write!(f, "query worker died before replying to `{label}`: {panic}")
            }
            StoreError::DeadlineExceeded { label, waited } => {
                write!(f, "deadline exceeded for `{label}` after {waited:?}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<relational::RelError> for StoreError {
    fn from(e: relational::RelError) -> Self {
        StoreError::Relational(e)
    }
}

/// Result alias for the storage subsystem.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: StoreError = CoreError::EmptyQuery.into();
        assert!(e.to_string().contains("core"));
        let e: StoreError = relational::RelError::EmptyQuery.into();
        assert!(e.to_string().contains("relational"));
        let lost = StoreError::worker_lost("Q(a,b)", "index out of bounds");
        let text = lost.to_string();
        assert!(text.contains("worker"));
        assert!(text.contains("Q(a,b)"), "{text}");
        assert!(text.contains("index out of bounds"), "{text}");
        let late = StoreError::deadline_exceeded("Q(a,b)", std::time::Duration::from_millis(7));
        let text = late.to_string();
        assert!(text.contains("deadline"), "{text}");
        assert!(text.contains("Q(a,b)"), "{text}");
    }
}
