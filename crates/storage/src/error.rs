//! Error type for the storage & serving subsystem.

use std::fmt;
use xjoin_core::CoreError;

/// Errors raised by the store, cache, prepared queries, or query service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An error from the multi-model engine (lowering, planning, execution).
    Core(CoreError),
    /// An error from the relational substrate (trie construction, schemas).
    Relational(relational::RelError),
    /// A query result will never arrive: the worker executing it died (or
    /// the service was shut down before the job ran).
    WorkerLost,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Core(e) => write!(f, "core: {e}"),
            StoreError::Relational(e) => write!(f, "relational: {e}"),
            StoreError::WorkerLost => write!(f, "query worker died before replying"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<relational::RelError> for StoreError {
    fn from(e: relational::RelError) -> Self {
        StoreError::Relational(e)
    }
}

/// Result alias for the storage subsystem.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: StoreError = CoreError::EmptyQuery.into();
        assert!(e.to_string().contains("core"));
        let e: StoreError = relational::RelError::EmptyQuery.into();
        assert!(e.to_string().contains("relational"));
        assert!(StoreError::WorkerLost.to_string().contains("worker"));
    }
}
