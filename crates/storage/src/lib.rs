//! **xjoin-store** — versioned storage & serving for the multi-model join.
//!
//! The engine crates (`relational`, `xmldb`, `xjoin-core`) evaluate one
//! query over one in-memory state, rebuilding every trie from scratch. This
//! crate turns that library into a serving layer for repeated, concurrent
//! workloads:
//!
//! * [`store`] — a [`VersionedStore`] wrapping the multi-model database
//!   with epoch-based copy-on-write snapshots: writers swap in new state,
//!   readers hold immutable [`Snapshot`]s that are never invalidated;
//! * [`cache`] — a [`TrieRegistry`]: built tries behind `Arc`, keyed by
//!   `(source, version, attribute order)`, with an LRU byte budget and
//!   hit/miss/eviction counters. One cache serves LFTJ, the generic join,
//!   streaming XJoin, and the level-wise XJoin engine — XML path relations
//!   (lowered via `xmldb::transform`) included;
//! * [`prepared`] — [`PreparedQuery`]: parse/validate/order a
//!   [`xjoin_core::MultiModelQuery`] once (with its pinned
//!   [`xjoin_core::ExecOptions`] — any plan-based engine kind), pin its
//!   trie keys, and re-execute cheaply against any snapshot (a fully warm
//!   execution builds zero tries), materialised or as pull-based
//!   [`xjoin_core::Rows`];
//! * [`service`] — [`QueryService`]: a std-only worker pool executing
//!   prepared queries across snapshots in parallel, returning per-query
//!   [`relational::JoinStats`].
//!
//! ```
//! use relational::{Database, Schema, Value};
//! use xjoin_core::{ExecOptions, MultiModelQuery};
//! use xjoin_store::{PreparedQuery, VersionedStore};
//! use xmldb::XmlDocument;
//!
//! let mut db = Database::new();
//! db.load("orders", Schema::of(&["orderID", "userID"]), vec![
//!     vec![Value::Int(10963), Value::str("jack")],
//! ]).unwrap();
//! let mut dict = db.dict().clone();
//! let mut b = XmlDocument::builder();
//! b.begin("invoices");
//! b.begin("orderLine");
//! b.leaf("orderID", 10963i64);
//! b.leaf("price", 30i64);
//! b.end();
//! b.end();
//! let doc = b.build(&mut dict);
//! *db.dict_mut() = dict;
//!
//! let store = VersionedStore::new(db, doc);
//! let snap = store.snapshot();
//! let query = MultiModelQuery::new(&["orders"], &["//orderLine[/orderID][/price]"])
//!     .unwrap()
//!     .with_output(&["userID", "price"]);
//! let prepared = PreparedQuery::prepare(&snap, &query, ExecOptions::default()).unwrap();
//! let cold = prepared.execute(&snap).unwrap();   // builds + caches tries
//! let warm = prepared.execute(&snap).unwrap();   // zero trie builds
//! assert!(warm.results.set_eq(&cold.results));
//! assert!(store.registry().stats().hits > 0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod prepared;
pub mod service;
pub mod store;

pub use cache::{CacheStats, CachedTrie, TrieKey, TrieRegistry};
pub use error::{Result, StoreError};
pub use prepared::PreparedQuery;
pub use service::{QueryService, Ticket};
pub use store::{DeltaPolicy, Snapshot, VersionedStore};
