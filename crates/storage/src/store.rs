//! The versioned store: epoch-based snapshots over a multi-model database.
//!
//! A [`VersionedStore`] owns the current [`relational::Database`] and XML
//! document behind an [`Arc`]-swapped state. Writers ([`VersionedStore::update`],
//! [`VersionedStore::replace_document`]) clone the state, apply their
//! mutation (bumping relation versions through the catalog's own hooks, or
//! the document version here), and atomically swap the current pointer.
//! Readers take [`Snapshot`]s — cheap `Arc` clones that stay valid for as
//! long as they are held, so in-flight queries are never invalidated by
//! writes.
//!
//! Dictionary discipline: all snapshots along one store history share an
//! append-only [`Dict`]. Writers must only *intern* new values (which every
//! [`relational::Database::load`] / document build does); replacing the
//! dictionary wholesale would silently re-number values cached in tries.

use crate::cache::TrieRegistry;
use relational::{Database, Dict};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xjoin_core::DataContext;
use xmldb::{TagIndex, XmlDocument};

/// Process-wide store id source: cache keys carry the owning store's id so a
/// [`TrieRegistry`] shared between stores can never mix their tries (store
/// versions and dictionary-encoded values are only meaningful per store).
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

/// The XML side of a store state: document, its tag index, and a version
/// bumped on every document replacement.
#[derive(Debug)]
struct XmlPart {
    doc: XmlDocument,
    index: TagIndex,
    version: u64,
}

/// One immutable state of the store. Relational writes clone the database
/// (cheap relative to serving, and only on the write path) but share the XML
/// part; document replacements do the reverse.
#[derive(Debug)]
struct StoreState {
    db: Database,
    xml: Arc<XmlPart>,
}

/// A versioned multi-model store with copy-on-write snapshots and a shared
/// trie registry.
#[derive(Debug)]
pub struct VersionedStore {
    /// Unique (per process) store identity, embedded in trie cache keys.
    id: u64,
    /// The current state pointer. Held only for O(1) reads and swaps —
    /// snapshots never wait on a writer's clone.
    state: Mutex<Arc<StoreState>>,
    /// Serialises writers so clone-apply-swap sequences don't lose updates.
    write_lock: Mutex<()>,
    registry: Arc<TrieRegistry>,
}

impl VersionedStore {
    /// Creates a store over a database and a document (which must share the
    /// database's dictionary, as everywhere in this workspace), with an
    /// unbounded trie registry.
    pub fn new(db: Database, doc: XmlDocument) -> Self {
        Self::with_registry(db, doc, Arc::new(TrieRegistry::new()))
    }

    /// Creates a store whose cached tries are bounded by `budget` bytes.
    pub fn with_cache_budget(db: Database, doc: XmlDocument, budget: usize) -> Self {
        Self::with_registry(db, doc, Arc::new(TrieRegistry::with_budget(Some(budget))))
    }

    /// Creates a store sharing an externally owned trie registry (e.g. one
    /// registry across several stores).
    pub fn with_registry(db: Database, doc: XmlDocument, registry: Arc<TrieRegistry>) -> Self {
        let index = TagIndex::build(&doc);
        VersionedStore {
            id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(Arc::new(StoreState {
                db,
                xml: Arc::new(XmlPart {
                    doc,
                    index,
                    version: 1,
                }),
            })),
            write_lock: Mutex::new(()),
            registry,
        }
    }

    fn current(&self) -> Arc<StoreState> {
        Arc::clone(&self.state.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn swap(&self, next: Arc<StoreState>) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = next;
    }

    /// The store's process-unique id (embedded in its trie cache keys).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Takes an immutable snapshot of the current state. O(1); holding it
    /// pins the state (and its memory) but never blocks writers — and
    /// writers never block it, even mid-clone.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            store_id: self.id,
            state: self.current(),
            registry: Arc::clone(&self.registry),
        }
    }

    /// The shared trie registry (for cache statistics or pre-warming).
    pub fn registry(&self) -> &Arc<TrieRegistry> {
        &self.registry
    }

    /// Applies a relational write: `f` receives a private copy of the
    /// database, and the store atomically switches to it afterwards.
    /// Relation versions bump through [`Database::add_relation`] /
    /// [`Database::load`]; existing snapshots keep reading the old state.
    /// Writers are serialised against each other, but readers only wait for
    /// the O(1) pointer swap, never for the clone or `f`. Returns the new
    /// database epoch.
    pub fn update<R>(&self, f: impl FnOnce(&mut Database) -> R) -> (u64, R) {
        let _writer = self.write_lock.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.current();
        let mut db = base.db.clone();
        let out = f(&mut db);
        debug_assert!(
            db.dict().len() >= base.db.dict().len(),
            "store dictionaries are append-only: replacing the dict re-numbers \
             values and invalidates every cached trie"
        );
        let epoch = db.epoch();
        self.swap(Arc::new(StoreState {
            db,
            xml: Arc::clone(&base.xml),
        }));
        (epoch, out)
    }

    /// Replaces the XML document: `build` constructs the new document
    /// against the store's dictionary (interning any new values), and the
    /// document version bumps. Returns the new document version.
    pub fn replace_document(&self, build: impl FnOnce(&mut Dict) -> XmlDocument) -> u64 {
        let _writer = self.write_lock.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.current();
        let mut db = base.db.clone();
        let doc = build(db.dict_mut());
        debug_assert!(
            db.dict().len() >= base.db.dict().len(),
            "store dictionaries are append-only: replacing the dict re-numbers \
             values and invalidates every cached trie"
        );
        let index = TagIndex::build(&doc);
        let version = base.xml.version + 1;
        self.swap(Arc::new(StoreState {
            db,
            xml: Arc::new(XmlPart {
                doc,
                index,
                version,
            }),
        }));
        version
    }
}

/// An immutable view of one store state, shared by reference counting.
/// Queries run against a snapshot via [`Snapshot::ctx`]; the snapshot also
/// carries the registry so prepared queries resolve cached tries against the
/// right store.
#[derive(Debug, Clone)]
pub struct Snapshot {
    store_id: u64,
    state: Arc<StoreState>,
    registry: Arc<TrieRegistry>,
}

impl Snapshot {
    /// The id of the store this snapshot was taken from.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// The query context over this snapshot's database and document.
    pub fn ctx(&self) -> DataContext<'_> {
        DataContext::new(&self.state.db, &self.state.xml.doc, &self.state.xml.index)
    }

    /// The snapshot's database.
    pub fn db(&self) -> &Database {
        &self.state.db
    }

    /// The snapshot's XML document.
    pub fn doc(&self) -> &XmlDocument {
        &self.state.xml.doc
    }

    /// The database epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.state.db.epoch()
    }

    /// The version of the XML document (bumped per
    /// [`VersionedStore::replace_document`]).
    pub fn doc_version(&self) -> u64 {
        self.state.xml.version
    }

    /// The version of a named relation, if registered.
    pub fn relation_version(&self, name: &str) -> Option<u64> {
        self.state.db.relation_version(name)
    }

    /// The registry serving this snapshot's cached tries.
    pub fn registry(&self) -> &Arc<TrieRegistry> {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Schema, Value};

    fn store() -> VersionedStore {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["x", "y"]),
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("root");
        b.leaf("x", 1i64);
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        VersionedStore::new(db, doc)
    }

    #[test]
    fn snapshots_are_isolated_from_writes() {
        let s = store();
        let before = s.snapshot();
        let (epoch, ()) = s.update(|db| {
            db.load(
                "R",
                Schema::of(&["x", "y"]),
                vec![
                    vec![Value::Int(1), Value::Int(2)],
                    vec![Value::Int(3), Value::Int(4)],
                ],
            )
            .unwrap();
        });
        let after = s.snapshot();
        assert_eq!(before.db().relation("R").unwrap().len(), 1);
        assert_eq!(after.db().relation("R").unwrap().len(), 2);
        assert!(after.epoch() > before.epoch());
        assert_eq!(after.epoch(), epoch);
        assert_eq!(
            after.relation_version("R"),
            before.relation_version("R").map(|v| v + 1)
        );
        // The XML side is shared untouched.
        assert_eq!(before.doc_version(), after.doc_version());
    }

    #[test]
    fn replace_document_bumps_doc_version_only() {
        let s = store();
        let before = s.snapshot();
        let v = s.replace_document(|dict| {
            let mut b = XmlDocument::builder();
            b.begin("root");
            b.leaf("x", 99i64);
            b.end();
            b.build(dict)
        });
        let after = s.snapshot();
        assert_eq!(v, before.doc_version() + 1);
        assert_eq!(after.doc_version(), v);
        assert_eq!(after.relation_version("R"), before.relation_version("R"));
        assert_eq!(before.doc().len(), after.doc().len());
    }

    #[test]
    fn ctx_serves_queries_against_the_snapshot() {
        let s = store();
        let snap = s.snapshot();
        let q = xjoin_core::MultiModelQuery::new(&["R"], &["//root/x"]).unwrap();
        let out = xjoin_core::xjoin(&snap.ctx(), &q, &Default::default()).unwrap();
        assert_eq!(out.results.len(), 1);
    }
}
