//! The versioned store: epoch-based snapshots over a multi-model database.
//!
//! A [`VersionedStore`] owns the current [`relational::Database`] and XML
//! document behind an [`Arc`]-swapped state. Writers ([`VersionedStore::update`],
//! [`VersionedStore::replace_document`]) clone the state, apply their
//! mutation (bumping relation versions through the catalog's own hooks, or
//! the document version here), and atomically swap the current pointer.
//! Readers take [`Snapshot`]s — cheap `Arc` clones that stay valid for as
//! long as they are held, so in-flight queries are never invalidated by
//! writes.
//!
//! Dictionary discipline: all snapshots along one store history share an
//! append-only [`Dict`]. Writers must only *intern* new values (which every
//! [`relational::Database::load`] / document build does); replacing the
//! dictionary wholesale would silently re-number values cached in tries.

use crate::cache::TrieRegistry;
use relational::{Database, Dict, Relation, Value, ValueId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xjoin_core::DataContext;
use xmldb::{TagIndex, XmlDocument};

/// Process-wide store id source: cache keys carry the owning store's id so a
/// [`TrieRegistry`] shared between stores can never mix their tries (store
/// versions and dictionary-encoded values are only meaningful per store).
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

/// How many append batches a relation's delta log retains. Each segment
/// covers one version bump, so the log can overlay a cached base up to this
/// many versions behind the current one; older bases need a rebuild anyway
/// (their delta would rival the base). Truncation advances the purge floor
/// passed to [`TrieRegistry::purge_stale`].
const MAX_DELTA_SEGS: usize = 16;

/// One appended write batch: the rows added by the append that produced
/// `to_version` of its relation (sorted and deduped within the batch; rows
/// already present in the base may repeat here — union views and compaction
/// dedup them).
#[derive(Debug, Clone)]
struct DeltaSeg {
    to_version: u64,
    rows: Arc<Relation>,
}

/// Knobs for delta-trie maintenance on [`VersionedStore::append`] writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaPolicy {
    /// Whether query plans may overlay cached bases with delta runs at all.
    /// Off, every post-write query rebuilds its tries from scratch.
    pub enabled: bool,
    /// Compaction trigger: once an overlay's `delta_tuples / base_tuples`
    /// exceeds this ratio, the first query to notice merges it into a fresh
    /// solid trie ([`relational::DeltaTrie::needs_compaction`]).
    pub compact_ratio: f64,
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        DeltaPolicy {
            enabled: true,
            compact_ratio: 0.25,
        }
    }
}

/// The XML side of a store state: document, its tag index, and a version
/// bumped on every document replacement.
#[derive(Debug)]
struct XmlPart {
    doc: XmlDocument,
    index: TagIndex,
    version: u64,
}

/// One immutable state of the store. Relational writes clone the database
/// (cheap relative to serving, and only on the write path) but share the XML
/// part; document replacements do the reverse.
#[derive(Debug)]
struct StoreState {
    db: Database,
    xml: Arc<XmlPart>,
    /// Per-relation append logs, newest segment last. Carried copy-on-write
    /// with the state so snapshots see a log consistent with their relation
    /// versions; rewrites ([`VersionedStore::update`]) clear the affected
    /// relations' logs.
    deltas: BTreeMap<String, Vec<DeltaSeg>>,
}

/// A versioned multi-model store with copy-on-write snapshots and a shared
/// trie registry.
#[derive(Debug)]
pub struct VersionedStore {
    /// Unique (per process) store identity, embedded in trie cache keys.
    id: u64,
    /// The current state pointer. Held only for O(1) reads and swaps —
    /// snapshots never wait on a writer's clone.
    state: Mutex<Arc<StoreState>>,
    /// Serialises writers so clone-apply-swap sequences don't lose updates.
    write_lock: Mutex<()>,
    registry: Arc<TrieRegistry>,
    /// Delta-trie maintenance knobs, copied into every snapshot.
    delta_policy: Mutex<DeltaPolicy>,
}

impl VersionedStore {
    /// Creates a store over a database and a document (which must share the
    /// database's dictionary, as everywhere in this workspace), with an
    /// unbounded trie registry.
    pub fn new(db: Database, doc: XmlDocument) -> Self {
        Self::with_registry(db, doc, Arc::new(TrieRegistry::new()))
    }

    /// Creates a store whose cached tries are bounded by `budget` bytes.
    pub fn with_cache_budget(db: Database, doc: XmlDocument, budget: usize) -> Self {
        Self::with_registry(db, doc, Arc::new(TrieRegistry::with_budget(Some(budget))))
    }

    /// Creates a store sharing an externally owned trie registry (e.g. one
    /// registry across several stores).
    pub fn with_registry(db: Database, doc: XmlDocument, registry: Arc<TrieRegistry>) -> Self {
        let index = TagIndex::build(&doc);
        VersionedStore {
            id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(Arc::new(StoreState {
                db,
                xml: Arc::new(XmlPart {
                    doc,
                    index,
                    version: 1,
                }),
                deltas: BTreeMap::new(),
            })),
            write_lock: Mutex::new(()),
            registry,
            delta_policy: Mutex::new(DeltaPolicy::default()),
        }
    }

    fn current(&self) -> Arc<StoreState> {
        Arc::clone(&self.state.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn swap(&self, next: Arc<StoreState>) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = next;
    }

    /// The store's process-unique id (embedded in its trie cache keys).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Takes an immutable snapshot of the current state. O(1); holding it
    /// pins the state (and its memory) but never blocks writers — and
    /// writers never block it, even mid-clone.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            store_id: self.id,
            state: self.current(),
            registry: Arc::clone(&self.registry),
            delta_policy: self.delta_policy(),
        }
    }

    /// The shared trie registry (for cache statistics or pre-warming).
    pub fn registry(&self) -> &Arc<TrieRegistry> {
        &self.registry
    }

    /// The current delta-trie maintenance policy.
    pub fn delta_policy(&self) -> DeltaPolicy {
        *self.delta_policy.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Replaces the delta-trie maintenance policy. Takes effect for
    /// snapshots taken afterwards; in-flight snapshots keep the policy they
    /// were taken under.
    pub fn set_delta_policy(&self, policy: DeltaPolicy) {
        *self.delta_policy.lock().unwrap_or_else(|e| e.into_inner()) = policy;
    }

    /// Applies a relational write: `f` receives a private copy of the
    /// database, and the store atomically switches to it afterwards.
    /// Relation versions bump through [`Database::add_relation`] /
    /// [`Database::load`]; existing snapshots keep reading the old state.
    /// Writers are serialised against each other, but readers only wait for
    /// the O(1) pointer swap, never for the clone or `f`. Rewritten
    /// relations lose their append logs, and the registry's stale versions
    /// of them are purged (keeping overlay-referenced bases). Returns the
    /// new database epoch.
    pub fn update<R>(&self, f: impl FnOnce(&mut Database) -> R) -> (u64, R) {
        let _writer = self.write_lock.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.current();
        let mut db = base.db.clone();
        let out = f(&mut db);
        debug_assert!(
            db.dict().len() >= base.db.dict().len(),
            "store dictionaries are append-only: replacing the dict re-numbers \
             values and invalidates every cached trie"
        );
        let epoch = db.epoch();
        // A rewrite invalidates a relation's append log: its new content is
        // not base + segments, so overlays must never bridge across it.
        let mut changed: Vec<(String, u64)> = Vec::new();
        for name in db.relation_names() {
            let v = db.relation_version(name).expect("name was just listed");
            if base.db.relation_version(name) != Some(v) {
                changed.push((name.to_owned(), v));
            }
        }
        let mut deltas = base.deltas.clone();
        for (name, _) in &changed {
            deltas.remove(name);
        }
        self.swap(Arc::new(StoreState {
            db,
            xml: Arc::clone(&base.xml),
            deltas,
        }));
        for (name, version) in &changed {
            self.registry.purge_stale(self.id, name, *version);
        }
        (epoch, out)
    }

    /// Appends `rows` to relation `name` (interning their values), bumping
    /// its version, and records the batch in the relation's delta log so
    /// cached tries of the previous versions can serve the new one as a
    /// base + delta overlay instead of missing. Returns the new relation
    /// version.
    ///
    /// The batch is deduplicated within itself but *not* against the stored
    /// relation — overlap is legal (union views and compaction collapse it),
    /// so append cost stays proportional to the batch. The full relation is
    /// still updated eagerly (snapshots must serve exact state); what the
    /// log saves is the per-query *trie rebuild*, not the relation merge.
    pub fn append<R, V>(&self, name: &str, rows: R) -> crate::error::Result<u64>
    where
        R: IntoIterator,
        R::Item: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let _writer = self.write_lock.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.current();
        let mut db = base.db.clone();
        let schema = db.relation(name)?.schema().clone();
        let mut batch = Relation::new(schema);
        let mut buf: Vec<ValueId> = Vec::new();
        for row in rows {
            buf.clear();
            buf.extend(row.into_iter().map(|v| db.dict_mut().intern(v.into())));
            batch.push(&buf)?;
        }
        batch.sort_dedup();
        let mut full = db.relation(name)?.clone();
        for row in batch.rows() {
            full.push(row)?;
        }
        full.sort_dedup();
        db.add_relation(name, full);
        let version = db.relation_version(name).expect("relation just added");

        let mut deltas = base.deltas.clone();
        let log = deltas.entry(name.to_owned()).or_default();
        log.push(DeltaSeg {
            to_version: version,
            rows: Arc::new(batch),
        });
        if log.len() > MAX_DELTA_SEGS {
            let drop = log.len() - MAX_DELTA_SEGS;
            log.drain(..drop);
        }
        // The log's oldest segment bridges `keep_from → keep_from + 1`:
        // cached entries below that floor can never be overlaid again.
        let keep_from = version - log.len() as u64;
        self.swap(Arc::new(StoreState {
            db,
            xml: Arc::clone(&base.xml),
            deltas,
        }));
        self.registry.purge_stale(self.id, name, keep_from);
        Ok(version)
    }

    /// Replaces the XML document: `build` constructs the new document
    /// against the store's dictionary (interning any new values), and the
    /// document version bumps. Returns the new document version.
    pub fn replace_document(&self, build: impl FnOnce(&mut Dict) -> XmlDocument) -> u64 {
        let _writer = self.write_lock.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.current();
        let mut db = base.db.clone();
        let doc = build(db.dict_mut());
        debug_assert!(
            db.dict().len() >= base.db.dict().len(),
            "store dictionaries are append-only: replacing the dict re-numbers \
             values and invalidates every cached trie"
        );
        let index = TagIndex::build(&doc);
        let version = base.xml.version + 1;
        self.swap(Arc::new(StoreState {
            db,
            xml: Arc::new(XmlPart {
                doc,
                index,
                version,
            }),
            deltas: base.deltas.clone(),
        }));
        // Path tries of superseded documents can never be requested again.
        self.registry.purge_stale_paths(self.id, version);
        version
    }
}

/// An immutable view of one store state, shared by reference counting.
/// Queries run against a snapshot via [`Snapshot::ctx`]; the snapshot also
/// carries the registry so prepared queries resolve cached tries against the
/// right store.
#[derive(Debug, Clone)]
pub struct Snapshot {
    store_id: u64,
    state: Arc<StoreState>,
    registry: Arc<TrieRegistry>,
    delta_policy: DeltaPolicy,
}

impl Snapshot {
    /// The id of the store this snapshot was taken from.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// The query context over this snapshot's database and document.
    pub fn ctx(&self) -> DataContext<'_> {
        DataContext::new(&self.state.db, &self.state.xml.doc, &self.state.xml.index)
    }

    /// The snapshot's database.
    pub fn db(&self) -> &Database {
        &self.state.db
    }

    /// The snapshot's XML document.
    pub fn doc(&self) -> &XmlDocument {
        &self.state.xml.doc
    }

    /// The database epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.state.db.epoch()
    }

    /// The version of the XML document (bumped per
    /// [`VersionedStore::replace_document`]).
    pub fn doc_version(&self) -> u64 {
        self.state.xml.version
    }

    /// The version of a named relation, if registered.
    pub fn relation_version(&self, name: &str) -> Option<u64> {
        self.state.db.relation_version(name)
    }

    /// The registry serving this snapshot's cached tries.
    pub fn registry(&self) -> &Arc<TrieRegistry> {
        &self.registry
    }

    /// The delta-trie policy in force when this snapshot was taken.
    pub fn delta_policy(&self) -> DeltaPolicy {
        self.delta_policy
    }

    /// The appended row batches that turn version `from` of relation `name`
    /// into version `to`, oldest first — `None` unless this snapshot's delta
    /// log contiguously covers every version bump in `(from, to]` (a rewrite
    /// in between, or log truncation, breaks coverage and forces a rebuild).
    pub fn delta_rows(&self, name: &str, from: u64, to: u64) -> Option<Vec<Arc<Relation>>> {
        if from >= to {
            return None;
        }
        let log = self.state.deltas.get(name)?;
        let need = (to - from) as usize;
        let segs: Vec<&DeltaSeg> = log
            .iter()
            .filter(|s| s.to_version > from && s.to_version <= to)
            .collect();
        if segs.len() != need {
            return None;
        }
        for (i, s) in segs.iter().enumerate() {
            if s.to_version != from + 1 + i as u64 {
                return None;
            }
        }
        Some(segs.iter().map(|s| Arc::clone(&s.rows)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Schema, Value};

    fn store() -> VersionedStore {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["x", "y"]),
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("root");
        b.leaf("x", 1i64);
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        VersionedStore::new(db, doc)
    }

    #[test]
    fn snapshots_are_isolated_from_writes() {
        let s = store();
        let before = s.snapshot();
        let (epoch, ()) = s.update(|db| {
            db.load(
                "R",
                Schema::of(&["x", "y"]),
                vec![
                    vec![Value::Int(1), Value::Int(2)],
                    vec![Value::Int(3), Value::Int(4)],
                ],
            )
            .unwrap();
        });
        let after = s.snapshot();
        assert_eq!(before.db().relation("R").unwrap().len(), 1);
        assert_eq!(after.db().relation("R").unwrap().len(), 2);
        assert!(after.epoch() > before.epoch());
        assert_eq!(after.epoch(), epoch);
        assert_eq!(
            after.relation_version("R"),
            before.relation_version("R").map(|v| v + 1)
        );
        // The XML side is shared untouched.
        assert_eq!(before.doc_version(), after.doc_version());
    }

    #[test]
    fn replace_document_bumps_doc_version_only() {
        let s = store();
        let before = s.snapshot();
        let v = s.replace_document(|dict| {
            let mut b = XmlDocument::builder();
            b.begin("root");
            b.leaf("x", 99i64);
            b.end();
            b.build(dict)
        });
        let after = s.snapshot();
        assert_eq!(v, before.doc_version() + 1);
        assert_eq!(after.doc_version(), v);
        assert_eq!(after.relation_version("R"), before.relation_version("R"));
        assert_eq!(before.doc().len(), after.doc().len());
    }

    #[test]
    fn append_bumps_version_and_logs_the_batch() {
        let s = store();
        let v1 = s.snapshot().relation_version("R").unwrap();
        let v2 = s
            .append("R", vec![vec![Value::Int(3), Value::Int(4)]])
            .unwrap();
        assert_eq!(v2, v1 + 1);
        let snap = s.snapshot();
        assert_eq!(snap.db().relation("R").unwrap().len(), 2);
        // The log covers v1 → v2 with exactly the appended batch.
        let segs = snap.delta_rows("R", v1, v2).expect("covered");
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len(), 1);
        // Batches dedup within themselves; overlap with the base is kept.
        let v3 = s
            .append(
                "R",
                vec![
                    vec![Value::Int(1), Value::Int(2)], // already stored
                    vec![Value::Int(5), Value::Int(6)],
                    vec![Value::Int(5), Value::Int(6)], // in-batch duplicate
                ],
            )
            .unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.db().relation("R").unwrap().len(), 3);
        let segs = snap.delta_rows("R", v1, v3).expect("two-segment cover");
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].len(), 2, "batch deduped to two distinct rows");
        // Requests the log cannot bridge report no coverage.
        assert!(snap.delta_rows("R", v1, v3 + 1).is_none());
        assert!(snap.delta_rows("R", v3, v3).is_none());
        assert!(snap.delta_rows("S", v1, v3).is_none());
    }

    #[test]
    fn append_to_unknown_relation_fails_cleanly() {
        let s = store();
        let before = s.snapshot();
        assert!(s.append("nope", vec![vec![Value::Int(1)]]).is_err());
        // Arity mismatches fail before any state is swapped in.
        assert!(s.append("R", vec![vec![Value::Int(1)]]).is_err());
        let after = s.snapshot();
        assert_eq!(before.epoch(), after.epoch());
        assert_eq!(before.relation_version("R"), after.relation_version("R"));
    }

    #[test]
    fn rewrites_clear_the_delta_log() {
        let s = store();
        let v1 = s.snapshot().relation_version("R").unwrap();
        let v2 = s
            .append("R", vec![vec![Value::Int(3), Value::Int(4)]])
            .unwrap();
        assert!(s.snapshot().delta_rows("R", v1, v2).is_some());
        s.update(|db| {
            db.load(
                "R",
                Schema::of(&["x", "y"]),
                vec![vec![Value::Int(9), Value::Int(9)]],
            )
            .unwrap();
        });
        let v3 = s.snapshot().relation_version("R").unwrap();
        assert!(s.snapshot().delta_rows("R", v1, v2).is_none());
        assert!(s.snapshot().delta_rows("R", v2, v3).is_none());
        // Appends after the rewrite restart the log from the new base.
        let v4 = s
            .append("R", vec![vec![Value::Int(7), Value::Int(7)]])
            .unwrap();
        assert!(s.snapshot().delta_rows("R", v3, v4).is_some());
    }

    #[test]
    fn delta_log_truncates_to_its_cap() {
        let s = store();
        let v0 = s.snapshot().relation_version("R").unwrap();
        let mut last = v0;
        for i in 0..(super::MAX_DELTA_SEGS as i64 + 4) {
            last = s
                .append("R", vec![vec![Value::Int(100 + i), Value::Int(i)]])
                .unwrap();
        }
        let snap = s.snapshot();
        // The oldest coverable base is `last - MAX_DELTA_SEGS`.
        let floor = last - super::MAX_DELTA_SEGS as u64;
        assert!(snap.delta_rows("R", floor, last).is_some());
        assert!(snap.delta_rows("R", floor - 1, last).is_none());
        assert!(snap.delta_rows("R", v0, last).is_none());
    }

    #[test]
    fn delta_policy_is_snapshotted() {
        let s = store();
        assert!(s.delta_policy().enabled);
        let old = s.snapshot();
        s.set_delta_policy(DeltaPolicy {
            enabled: false,
            compact_ratio: 1.5,
        });
        assert!(old.delta_policy().enabled, "snapshots pin their policy");
        let new = s.snapshot();
        assert!(!new.delta_policy().enabled);
        assert!((new.delta_policy().compact_ratio - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ctx_serves_queries_against_the_snapshot() {
        let s = store();
        let snap = s.snapshot();
        let q = xjoin_core::MultiModelQuery::new(&["R"], &["//root/x"]).unwrap();
        let out = xjoin_core::xjoin(&snap.ctx(), &q, &Default::default()).unwrap();
        assert_eq!(out.results.len(), 1);
    }
}
