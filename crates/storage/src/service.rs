//! A concurrent query service: a std-only worker pool executing prepared
//! queries across snapshots.
//!
//! Workers are plain `std::thread`s pulling jobs from a shared channel (the
//! classic `Arc<Mutex<Receiver>>` pool — no external dependencies). Each job
//! pairs an `Arc<PreparedQuery>` with a [`Snapshot`]; because snapshots are
//! immutable and tries are shared through the registry, any number of
//! workers can execute against the same (or different) store states
//! simultaneously, each returning its own [`QueryOutput`] with per-query
//! [`relational::JoinStats`].
//!
//! Inter-query and intra-query parallelism compose: a prepared query pinned
//! (or overridden via [`PreparedQuery::with_parallelism`]) to a parallel
//! setting fans each job out across a morsel pool of its own, with all
//! morsel workers reading the same immutable snapshot and the same cached
//! `Arc<relational::Trie>`s — snapshot isolation is per job, whatever the
//! fan-out. Under write churn the shared plans may resolve to *layered*
//! tries (an immutable base plus the appended delta runs, see
//! [`relational::DeltaTrie`]): layers are themselves immutable `Arc`s, so
//! concurrent jobs on different snapshots simply see different overlay
//! stacks over one shared base without copying or locking.
//!
//! # Observability
//!
//! The service feeds the global [`xjoin_obs`] registries on every job:
//!
//! * gauge `xjoin.service.queue_depth` — jobs submitted but not yet picked
//!   up by a worker;
//! * histogram `xjoin.service.queue_wait_us` — submit → pickup latency;
//! * histogram `xjoin.service.exec_us` — pickup → reply execution time;
//! * counters `xjoin.service.jobs` and `xjoin.service.panics`;
//! * spans `enqueue` (instant) and `execute` (labelled with the query's
//!   atom list) when tracing is enabled.
//!
//! A worker panic no longer silently drops the reply channel: the payload is
//! caught and forwarded as [`StoreError::WorkerLost`], carrying the lost
//! job's query label and the panic message.

use crate::error::{Result, StoreError};
use crate::prepared::PreparedQuery;
use crate::store::Snapshot;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{Builder, JoinHandle};
use std::time::Instant;
use xjoin_core::QueryOutput;

struct Job {
    prepared: Arc<PreparedQuery>,
    snapshot: Snapshot,
    reply: Sender<Result<QueryOutput>>,
    label: String,
    enqueued: Instant,
    /// Absolute deadline, if any: checked at dequeue (a job whose deadline
    /// passed while queued is failed without executing) and between row
    /// batches during execution (see [`PreparedQuery::execute_with_deadline`]).
    deadline: Option<Instant>,
}

/// Renders a panic payload as text (the common `&str` / `String` payloads;
/// anything else becomes a fixed note).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A handle to one submitted query; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<QueryOutput>>,
    label: String,
}

impl Ticket {
    /// Blocks until the query finishes, returning its output (or
    /// [`StoreError::WorkerLost`] if the executing worker died or the
    /// service shut down before the job ran).
    pub fn wait(self) -> Result<QueryOutput> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(StoreError::worker_lost(
                self.label,
                "service shut down before the job ran",
            ))
        })
    }

    /// Blocks for at most `timeout`, returning
    /// [`StoreError::DeadlineExceeded`] if no result arrived in time. The
    /// job itself is *not* cancelled by an expired wait — a worker may still
    /// be executing it (and will drop the reply unread); jobs submitted via
    /// [`QueryService::submit_with_deadline`] additionally stop themselves
    /// at dequeue or between row batches once their deadline passes.
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<QueryOutput> {
        use std::sync::mpsc::RecvTimeoutError;
        match self.rx.recv_timeout(timeout) {
            Ok(out) => out,
            Err(RecvTimeoutError::Timeout) => {
                Err(StoreError::deadline_exceeded(self.label, timeout))
            }
            Err(RecvTimeoutError::Disconnected) => Err(StoreError::worker_lost(
                self.label,
                "service shut down before the job ran",
            )),
        }
    }
}

/// A fixed-size pool of query workers. Dropping the service shuts the pool
/// down: queued jobs still run, then workers exit and are joined.
pub struct QueryService {
    tx: Mutex<Option<Sender<Job>>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Spawns a service with `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                Builder::new()
                    .name(format!("xjoin-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn query worker")
            })
            .collect();
        QueryService {
            tx: Mutex::new(Some(tx)),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted to any service but not yet picked up by a worker
    /// (the global `xjoin.service.queue_depth` gauge).
    pub fn queue_depth() -> i64 {
        xjoin_obs::global_metrics()
            .gauge("xjoin.service.queue_depth")
            .get()
    }

    /// Enqueues one query execution; returns immediately with a [`Ticket`].
    pub fn submit(&self, prepared: Arc<PreparedQuery>, snapshot: Snapshot) -> Ticket {
        self.submit_with_deadline(prepared, snapshot, None)
    }

    /// Enqueues one query execution with an optional absolute deadline.
    ///
    /// A deadline is enforced inside the service, not just at the ticket: a
    /// worker picking up a job whose deadline already passed fails it with
    /// [`StoreError::DeadlineExceeded`] without executing anything, and a
    /// live execution re-checks the deadline between row batches (see
    /// [`PreparedQuery::execute_with_deadline`]), so a runaway query stops
    /// burning its worker shortly after its deadline expires.
    pub fn submit_with_deadline(
        &self,
        prepared: Arc<PreparedQuery>,
        snapshot: Snapshot,
        deadline: Option<Instant>,
    ) -> Ticket {
        let (reply, rx) = channel();
        let label = prepared.label();
        let guard = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(tx) = guard.as_ref() {
            xjoin_obs::global_metrics()
                .gauge("xjoin.service.queue_depth")
                .inc();
            xjoin_obs::instant("enqueue");
            // A send error means every worker is gone; the dropped `reply`
            // sender then surfaces as WorkerLost at wait(). The pickup side
            // never runs for such a job, so undo the depth charge here.
            let sent = tx.send(Job {
                prepared,
                snapshot,
                reply,
                label: label.clone(),
                enqueued: Instant::now(),
                deadline,
            });
            if sent.is_err() {
                xjoin_obs::global_metrics()
                    .gauge("xjoin.service.queue_depth")
                    .dec();
            }
        }
        Ticket { rx, label }
    }

    /// Submits a batch and waits for all results, in submission order.
    pub fn run_all(
        &self,
        jobs: impl IntoIterator<Item = (Arc<PreparedQuery>, Snapshot)>,
    ) -> Vec<Result<QueryOutput>> {
        let tickets: Vec<Ticket> = jobs.into_iter().map(|(p, s)| self.submit(p, s)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    let metrics = xjoin_obs::global_metrics();
    loop {
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => break,
        };
        match job {
            Ok(job) => {
                metrics.gauge("xjoin.service.queue_depth").dec();
                metrics
                    .histogram("xjoin.service.queue_wait_us")
                    .record(job.enqueued.elapsed().as_micros() as u64);
                metrics.counter("xjoin.service.jobs").inc();
                // Deadline check at dequeue: a job that aged out while
                // queued is failed without building or probing anything.
                if let Some(deadline) = job.deadline {
                    if Instant::now() >= deadline {
                        metrics.counter("xjoin.service.deadline_exceeded").inc();
                        let _ = job.reply.send(Err(StoreError::deadline_exceeded(
                            job.label.clone(),
                            job.enqueued.elapsed(),
                        )));
                        continue;
                    }
                }
                let start = Instant::now();
                let mut span = xjoin_obs::span("execute-job");
                span.set_attr(|| job.label.clone());
                let out = catch_unwind(AssertUnwindSafe(|| match job.deadline {
                    Some(deadline) => {
                        job.prepared
                            .execute_with_deadline(&job.snapshot, deadline, job.enqueued)
                    }
                    None => job.prepared.execute(&job.snapshot),
                }));
                drop(span);
                metrics
                    .histogram("xjoin.service.exec_us")
                    .record(start.elapsed().as_micros() as u64);
                let out = out.unwrap_or_else(|payload| {
                    metrics.counter("xjoin.service.panics").inc();
                    Err(StoreError::worker_lost(
                        job.label.clone(),
                        panic_text(payload.as_ref()),
                    ))
                });
                if matches!(&out, Err(StoreError::DeadlineExceeded { .. })) {
                    metrics.counter("xjoin.service.deadline_exceeded").inc();
                }
                let _ = job.reply.send(out);
            }
            Err(_) => break, // sender dropped: shutdown
        }
    }
    xjoin_obs::flush_thread();
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // Close the job channel so workers drain the queue and exit. Recover
        // from poisoning — leaving the Sender alive would make the joins
        // below wait forever on workers blocked in recv().
        self.tx.lock().unwrap_or_else(|e| e.into_inner()).take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VersionedStore;
    use relational::{Database, Schema, Value};
    use xjoin_core::{ExecOptions, MultiModelQuery};
    use xmldb::XmlDocument;

    fn store() -> VersionedStore {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Int(i), Value::Int(i % 5)])
            .collect();
        db.load("R", Schema::of(&["id", "grp"]), rows).unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("root");
        for i in 0..5i64 {
            b.leaf("grp", i);
        }
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        VersionedStore::new(db, doc)
    }

    #[test]
    fn service_executes_jobs_and_matches_inline_execution() {
        let store = store();
        let snap = store.snapshot();
        let q = MultiModelQuery::new(&["R"], &["//root/grp"]).unwrap();
        let prepared = Arc::new(PreparedQuery::prepare(&snap, &q, ExecOptions::default()).unwrap());
        let expect = prepared.execute(&snap).unwrap();

        let service = QueryService::new(4);
        let results = service.run_all((0..16).map(|_| (Arc::clone(&prepared), snap.clone())));
        assert_eq!(results.len(), 16);
        for r in results {
            assert!(r.unwrap().results.set_eq(&expect.results));
        }
        let snap = xjoin_obs::global_metrics().snapshot();
        let jobs = snap
            .counters
            .iter()
            .find(|(name, _)| name == "xjoin.service.jobs")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(jobs >= 16, "job counter must cover this batch: {jobs}");
        let waits = snap
            .histograms
            .iter()
            .find(|h| h.name == "xjoin.service.queue_wait_us")
            .expect("queue-wait histogram recorded");
        assert!(waits.count >= 16);
    }

    #[test]
    fn tickets_resolve_out_of_order_submissions() {
        let store = store();
        let snap = store.snapshot();
        let q = MultiModelQuery::new(&["R"], &[]).unwrap();
        let prepared = Arc::new(PreparedQuery::prepare(&snap, &q, ExecOptions::default()).unwrap());
        let service = QueryService::new(2);
        let t1 = service.submit(Arc::clone(&prepared), snap.clone());
        let t2 = service.submit(Arc::clone(&prepared), snap.clone());
        // Wait in reverse submission order: each ticket carries its own
        // reply channel, so ordering cannot deadlock or cross wires.
        let r2 = t2.wait().unwrap();
        let r1 = t1.wait().unwrap();
        assert!(r1.results.set_eq(&r2.results));
    }

    #[test]
    fn dropping_the_service_joins_workers() {
        let service = QueryService::new(3);
        assert_eq!(service.workers(), 3);
        drop(service); // must not hang
    }

    #[test]
    fn zero_worker_request_still_gets_one() {
        let service = QueryService::new(0);
        assert_eq!(service.workers(), 1);
    }

    #[test]
    fn expired_deadline_fails_at_dequeue_without_executing() {
        use std::time::Duration;
        let store = store();
        let snap = store.snapshot();
        let q = MultiModelQuery::new(&["R"], &[]).unwrap();
        let prepared = Arc::new(PreparedQuery::prepare(&snap, &q, ExecOptions::default()).unwrap());
        let service = QueryService::new(1);
        let before = store.registry().stats().misses;
        // A deadline that is already `now` at submit is necessarily in the
        // past by the time a worker dequeues the job.
        let ticket =
            service.submit_with_deadline(Arc::clone(&prepared), snap.clone(), Some(Instant::now()));
        match ticket.wait().unwrap_err() {
            StoreError::DeadlineExceeded { label, .. } => assert_eq!(label, prepared.label()),
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        // The job was failed before executing: no trie build was paid.
        assert_eq!(store.registry().stats().misses, before);
        // A future deadline leaves execution untouched.
        let ticket = service.submit_with_deadline(
            Arc::clone(&prepared),
            snap.clone(),
            Some(Instant::now() + Duration::from_secs(60)),
        );
        assert!(ticket.wait().is_ok());
    }

    #[test]
    fn wait_timeout_reports_deadline_disconnect_and_success() {
        use std::sync::mpsc::channel;
        use std::time::Duration;
        // No reply within the timeout → DeadlineExceeded with the label.
        let (_tx, rx) = channel();
        let ticket = Ticket {
            rx,
            label: "Q(a)".into(),
        };
        match ticket.wait_timeout(Duration::from_millis(5)).unwrap_err() {
            StoreError::DeadlineExceeded { label, waited } => {
                assert_eq!(label, "Q(a)");
                assert_eq!(waited, Duration::from_millis(5));
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        // Sender gone → WorkerLost, mirroring `Ticket::wait`.
        let (tx, rx) = channel::<Result<QueryOutput>>();
        let ticket = Ticket {
            rx,
            label: "Q(a)".into(),
        };
        drop(tx);
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(5)).unwrap_err(),
            StoreError::WorkerLost { .. }
        ));
        // A reply that arrives in time comes back as-is.
        let store = store();
        let snap = store.snapshot();
        let q = MultiModelQuery::new(&["R"], &[]).unwrap();
        let prepared = Arc::new(PreparedQuery::prepare(&snap, &q, ExecOptions::default()).unwrap());
        let service = QueryService::new(1);
        let out = service
            .submit(prepared, snap)
            .wait_timeout(Duration::from_secs(60))
            .unwrap();
        assert_eq!(out.results.len(), 20);
    }

    #[test]
    fn shutdown_before_run_reports_the_lost_label() {
        let store = store();
        let snap = store.snapshot();
        let q = MultiModelQuery::new(&["R"], &[]).unwrap();
        let prepared = Arc::new(PreparedQuery::prepare(&snap, &q, ExecOptions::default()).unwrap());
        let service = QueryService::new(1);
        let label = prepared.label();
        // Submit after the channel is closed: take the sender directly so
        // the job can never reach a worker.
        service.tx.lock().unwrap().take();
        let ticket = service.submit(prepared, snap);
        let err = ticket.wait().unwrap_err();
        match err {
            StoreError::WorkerLost { label: lost, panic } => {
                assert_eq!(lost, label);
                assert!(panic.contains("shut down"), "{panic}");
            }
            other => panic!("expected WorkerLost, got {other}"),
        }
    }
}
