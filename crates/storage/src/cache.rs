//! The trie registry: a shared, byte-budgeted LRU cache of built tries.
//!
//! Building a trie is the dominant per-query cost on repeated workloads —
//! every engine in the workspace (LFTJ, the level-wise generic join,
//! streaming XJoin, and the level-wise XJoin engine) consumes the same flat
//! sorted [`Trie`] representation, so one cache serves them all. Entries are
//! keyed by [`TrieKey`]: *what* the trie was built from (a relation name or
//! a derived-atom fingerprint), *which version* of it, and *under which
//! attribute order* it was leveled. Storage versioning guarantees that a key
//! never maps to two different tries; superseded versions are invalidated
//! eagerly by [`TrieRegistry::purge_stale`] (called from the store's write
//! path) and anything that escapes the purge ages out of the LRU.
//!
//! An entry is either a [`CachedTrie::Solid`] trie or a
//! [`CachedTrie::Layered`] overlay — an immutable base plus small sorted
//! delta runs ([`DeltaTrie`]). Overlays are how an appended-to relation's
//! *new* version resolves without a full rebuild: the walk-based engines
//! union the layers lazily, and once the deltas outgrow the store's
//! compaction ratio the overlay is merged and swapped for a solid entry via
//! [`TrieRegistry::replace_with_solid`].
//!
//! Budget discipline: resident bytes never exceed the configured budget. A
//! build larger than the whole budget is *served but not cached* (counted in
//! [`CacheStats::oversized`]), and eviction removes least-recently-used
//! entries — never the entry the current operation is inserting — until the
//! budget is respected.

use crate::error::StoreError;
use relational::{Attr, DeltaTrie, Trie};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Identity of a cached trie: owning store, source, version, and level
/// order.
///
/// * base relations use their catalog name, versioned by
///   [`relational::Database::relation_version`];
/// * derived relational atoms (positional renames, constant selections) use
///   a fingerprint of the atom's terms, versioned by the base relation;
/// * twig path relations use [`xmldb::path_fingerprint`], versioned by the
///   document (see [`crate::Snapshot::doc_version`]).
///
/// Versions are only comparable within one store's history (every fresh
/// store starts at version 1, and [`relational::ValueId`]s are relative to
/// its dictionary), so the key also carries the process-unique id of the
/// owning [`crate::VersionedStore`] — a registry shared between stores can
/// never serve one store's trie to another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrieKey {
    /// Process-unique id of the store the trie belongs to.
    pub store: u64,
    /// Content identity of the relation the trie was built from.
    pub source: String,
    /// Version of that content (relation version or document version).
    pub version: u64,
    /// The trie's level order (the restriction of a global variable order to
    /// the source's attributes).
    pub order: Vec<Attr>,
}

/// What a registry entry resolves to: a solid trie, or a layered overlay
/// (base + sorted delta runs) that walk-based engines union lazily.
#[derive(Debug, Clone)]
pub enum CachedTrie {
    /// A fully merged trie — what every engine can consume.
    Solid(Arc<Trie>),
    /// An immutable base overlaid with delta runs. Only the walk-based
    /// engines (LFTJ, streaming XJoin) consume this directly; level-wise
    /// engines compact it first.
    Layered(Arc<DeltaTrie>),
}

impl CachedTrie {
    /// The solid trie, if this entry is one.
    pub fn as_solid(&self) -> Option<&Arc<Trie>> {
        match self {
            CachedTrie::Solid(t) => Some(t),
            CachedTrie::Layered(_) => None,
        }
    }
}

/// A point-in-time view of the registry's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to build a trie.
    pub misses: u64,
    /// Trie builds actually executed. Usually equals `misses`; it can exceed
    /// them when concurrent misses on one key race (the losing build is
    /// dropped but its cost was still paid, so it is still counted here).
    pub builds: u64,
    /// Total wall-clock time spent inside build closures — the cold
    /// trie-construction cost this cache has absorbed. Together with
    /// `hits`/`misses` this lets serving layers report build vs probe time.
    pub build_time: Duration,
    /// Entries dropped to respect the byte budget.
    pub evictions: u64,
    /// Builds served uncached because they alone exceed the whole budget.
    pub oversized: u64,
    /// Layered (base + delta) entries installed.
    pub overlays: u64,
    /// Layered entries merged and replaced by a solid trie.
    pub compactions: u64,
    /// Stale-version entries removed by the purge hooks.
    pub purged: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated bytes currently charged against the budget.
    pub bytes_in_use: usize,
    /// The configured byte budget (`None` = unbounded).
    pub budget: Option<usize>,
}

impl CacheStats {
    /// Fraction of requests served from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    cached: CachedTrie,
    bytes: usize,
    last_used: u64,
    /// For layered entries: the version of the solid base entry (same
    /// store/source/order) the overlay's runs sit on. [`Inner::purge`]
    /// keeps that superseded base resident while the overlay lives.
    base_version: Option<u64>,
}

struct Inner {
    map: HashMap<TrieKey, Entry>,
    /// Recency index: `last_used` tick → key. Ticks are unique (one
    /// monotonic counter), so the map's ascending order *is* the LRU order
    /// and eviction pops the oldest tick in O(log n) instead of scanning
    /// every entry.
    lru: BTreeMap<u64, TrieKey>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    bytes_in_use: usize,
    budget: Option<usize>,
    hits: u64,
    misses: u64,
    builds: u64,
    build_time: Duration,
    evictions: u64,
    oversized: u64,
    overlays: u64,
    compactions: u64,
    purged: u64,
}

impl Inner {
    /// Refreshes `key`'s recency and returns a clone of its entry.
    fn touch(&mut self, key: &TrieKey) -> Option<CachedTrie> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(key)?;
        let prev = e.last_used;
        e.last_used = tick;
        let cached = e.cached.clone();
        self.lru.remove(&prev);
        self.lru.insert(tick, key.clone());
        Some(cached)
    }

    /// Removes `key` (map, LRU index, byte accounting). Returns whether an
    /// entry was resident.
    fn remove_entry(&mut self, key: &TrieKey) -> bool {
        if let Some(e) = self.map.remove(key) {
            self.lru.remove(&e.last_used);
            self.bytes_in_use -= e.bytes;
            true
        } else {
            false
        }
    }

    /// Installs (or replaces) `key`'s entry and charges its bytes.
    fn insert_entry(
        &mut self,
        key: TrieKey,
        cached: CachedTrie,
        bytes: usize,
        base_version: Option<u64>,
    ) {
        self.remove_entry(&key);
        self.tick += 1;
        let tick = self.tick;
        self.lru.insert(tick, key.clone());
        self.map.insert(
            key,
            Entry {
                cached,
                bytes,
                last_used: tick,
                base_version,
            },
        );
        self.bytes_in_use += bytes;
    }

    /// Whether an entry of `bytes` may be charged at all: anything larger
    /// than the whole budget is refused (served uncached by the caller).
    fn admissible(&self, bytes: usize) -> bool {
        self.budget.is_none_or(|b| bytes <= b)
    }

    /// Evicts least-recently-used entries (never `protect`) until the budget
    /// is respected. Because inserts refuse anything larger than the whole
    /// budget, this always terminates with `bytes_in_use <= budget` — at
    /// worst only the protected entry remains.
    fn evict_to_budget(&mut self, protect: &TrieKey) {
        let Some(budget) = self.budget else { return };
        while self.bytes_in_use > budget {
            // Ascending tick order is LRU order; the protected key is
            // skipped at most once, so each round is O(log n).
            let victim = self.lru.values().find(|k| *k != protect).cloned();
            let Some(victim) = victim else { break };
            self.remove_entry(&victim);
            self.evictions += 1;
            xjoin_obs::instant("trie-cache-evict");
        }
    }

    /// Removes entries of `store` matching `matches(source)` with a version
    /// below `keep_from`, except superseded bases still referenced by a live
    /// (version `>= keep_from`) layered overlay. Returns the purge count.
    fn purge(&mut self, store: u64, keep_from: u64, matches: impl Fn(&str) -> bool) -> usize {
        let protected: Vec<(String, u64, Vec<Attr>)> = self
            .map
            .iter()
            .filter(|(k, e)| {
                k.store == store
                    && k.version >= keep_from
                    && e.base_version.is_some()
                    && matches(&k.source)
            })
            .map(|(k, e)| {
                (
                    k.source.clone(),
                    e.base_version.expect("filtered on base_version"),
                    k.order.clone(),
                )
            })
            .collect();
        let victims: Vec<TrieKey> = self
            .map
            .keys()
            .filter(|k| {
                k.store == store
                    && k.version < keep_from
                    && matches(&k.source)
                    && !protected
                        .iter()
                        .any(|(s, v, o)| *s == k.source && *v == k.version && *o == k.order)
            })
            .cloned()
            .collect();
        let n = victims.len();
        for k in &victims {
            self.remove_entry(k);
        }
        self.purged += n as u64;
        n
    }
}

/// A thread-safe trie cache with an LRU byte budget and hit/miss/eviction
/// counters. Shared via [`Arc`] between the store, its snapshots, and the
/// query service's workers.
pub struct TrieRegistry {
    inner: Mutex<Inner>,
}

impl TrieRegistry {
    /// An unbounded registry (entries are never evicted).
    pub fn new() -> Self {
        Self::with_budget(None)
    }

    /// A registry evicting least-recently-used tries once the estimated
    /// resident bytes exceed `budget` (`None` = unbounded). Resident bytes
    /// never exceed the budget: a build larger than the whole budget is
    /// served to the caller but not cached (see [`CacheStats::oversized`]).
    pub fn with_budget(budget: Option<usize>) -> Self {
        TrieRegistry {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                tick: 0,
                bytes_in_use: 0,
                budget,
                hits: 0,
                misses: 0,
                builds: 0,
                build_time: Duration::ZERO,
                evictions: 0,
                oversized: 0,
                overlays: 0,
                compactions: 0,
                purged: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Peeks for a cached **solid** trie, counting a hit (and refreshing
    /// recency) when found. A resident layered overlay refreshes recency but
    /// reports `None` — callers that can consume overlays use
    /// [`TrieRegistry::lookup_cached`]. A miss is *not* counted — only
    /// [`TrieRegistry::get_or_build`] records misses, so peek-then-build
    /// call sites count each request once.
    pub fn lookup(&self, key: &TrieKey) -> Option<Arc<Trie>> {
        let mut g = self.lock();
        match g.touch(key) {
            Some(CachedTrie::Solid(t)) => {
                g.hits += 1;
                xjoin_obs::instant("trie-cache-hit");
                Some(t)
            }
            _ => None,
        }
    }

    /// Peeks for a cached entry of either kind, counting a hit (and
    /// refreshing recency) when found. Misses are not counted, exactly as
    /// for [`TrieRegistry::lookup`].
    pub fn lookup_cached(&self, key: &TrieKey) -> Option<CachedTrie> {
        let mut g = self.lock();
        let hit = g.touch(key)?;
        g.hits += 1;
        xjoin_obs::instant("trie-cache-hit");
        Some(hit)
    }

    /// Returns the cached solid trie for `key`, building (and caching) it
    /// with `build` on a miss. The lock is released while building, so
    /// concurrent misses on the same key may build twice; the first insert
    /// wins and the duplicate is dropped. A resident layered overlay counts
    /// as a miss here (the caller needs a solid trie) and is replaced by the
    /// built result.
    pub fn get_or_build(
        &self,
        key: &TrieKey,
        build: impl FnOnce() -> relational::Result<Trie>,
    ) -> Result<Arc<Trie>, StoreError> {
        {
            let mut g = self.lock();
            if let Some(CachedTrie::Solid(t)) = g.touch(key) {
                g.hits += 1;
                xjoin_obs::instant("trie-cache-hit");
                return Ok(t);
            }
            g.misses += 1;
        }
        xjoin_obs::instant("trie-cache-miss");
        let build_start = Instant::now();
        let built = build();
        let build_elapsed = build_start.elapsed();
        {
            // The build ran (even if it errored or loses the insert race
            // below); its cost was paid, so it is accounted either way.
            let mut g = self.lock();
            g.builds += 1;
            g.build_time += build_elapsed;
        }
        let trie = Arc::new(built?);
        let bytes = trie.estimated_bytes();
        let mut g = self.lock();
        if let Some(CachedTrie::Solid(t)) = g.touch(key) {
            // Lost a build race; serve the resident entry.
            return Ok(t);
        }
        if !g.admissible(bytes) {
            g.oversized += 1;
            xjoin_obs::instant("trie-cache-oversized");
            return Ok(trie);
        }
        g.insert_entry(
            key.clone(),
            CachedTrie::Solid(Arc::clone(&trie)),
            bytes,
            None,
        );
        g.evict_to_budget(key);
        Ok(trie)
    }

    /// Installs a layered overlay at `key`, replacing any resident entry.
    /// Only the overlay's delta runs are charged against the budget — the
    /// base is charged by its own solid entry at `base_version`, which the
    /// purge hooks keep resident while the overlay lives. Returns `false`
    /// (entry not cached) when the runs alone exceed the whole budget.
    pub fn insert_layered(&self, key: &TrieKey, delta: Arc<DeltaTrie>, base_version: u64) -> bool {
        let bytes = delta.delta_bytes();
        let mut g = self.lock();
        if !g.admissible(bytes) {
            g.oversized += 1;
            xjoin_obs::instant("trie-cache-oversized");
            return false;
        }
        g.insert_entry(
            key.clone(),
            CachedTrie::Layered(delta),
            bytes,
            Some(base_version),
        );
        g.overlays += 1;
        g.evict_to_budget(key);
        true
    }

    /// Replaces `key`'s entry (typically a layered overlay that hit its
    /// compaction ratio) with a solid trie. When the solid trie alone
    /// exceeds the whole budget the entry is dropped instead and the caller
    /// keeps serving its own copy uncached.
    pub fn replace_with_solid(&self, key: &TrieKey, trie: Arc<Trie>) {
        let bytes = trie.estimated_bytes();
        let mut g = self.lock();
        g.compactions += 1;
        if !g.admissible(bytes) {
            g.oversized += 1;
            xjoin_obs::instant("trie-cache-oversized");
            g.remove_entry(key);
            return;
        }
        g.insert_entry(key.clone(), CachedTrie::Solid(trie), bytes, None);
        g.evict_to_budget(key);
    }

    /// Finds the newest resident **solid** trie for `(store, source, order)`
    /// with a version strictly below `below` — the base candidate for a
    /// delta overlay after a write. Refreshes the base's recency (it is
    /// about to be referenced) without touching the hit counters; the
    /// request being resolved was already counted at its own key. O(n) in
    /// resident entries, paid once per first-query-after-write.
    pub fn find_base(
        &self,
        store: u64,
        source: &str,
        order: &[Attr],
        below: u64,
    ) -> Option<(u64, Arc<Trie>)> {
        let mut g = self.lock();
        let (key, trie) = g
            .map
            .iter()
            .filter(|(k, _)| {
                k.store == store && k.version < below && k.source == source && k.order == order
            })
            .filter_map(|(k, e)| e.cached.as_solid().map(|t| (k, t)))
            .max_by_key(|(k, _)| k.version)
            .map(|(k, t)| (k.clone(), Arc::clone(t)))?;
        let version = key.version;
        g.touch(&key);
        Some((version, trie))
    }

    /// Invalidates stale versions of relation `name` in `store`: every
    /// `rel:{name}` / `atom:{name}(…)` entry with a version below
    /// `keep_from` is removed, **except** superseded bases still referenced
    /// by a live layered overlay (same source/order, overlay version `>=
    /// keep_from`). The store's write path calls this; `keep_from` is the
    /// oldest version its delta log can still overlay (or the current
    /// version for rewrites, which keep no log). Returns the purge count.
    pub fn purge_stale(&self, store: u64, name: &str, keep_from: u64) -> usize {
        let rel_source = format!("rel:{name}");
        let atom_prefix = format!("atom:{name}(");
        self.lock().purge(store, keep_from, |source| {
            source == rel_source || source.starts_with(&atom_prefix)
        })
    }

    /// Invalidates stale document versions in `store`: every `path:…` entry
    /// with a version below `current_version` is removed (document
    /// replacement keeps no delta log, so nothing is base-protected in
    /// practice). Returns the purge count.
    pub fn purge_stale_paths(&self, store: u64, current_version: u64) -> usize {
        self.lock()
            .purge(store, current_version, |source| source.starts_with("path:"))
    }

    /// Whether `key` is currently resident (does not touch recency or
    /// counters).
    pub fn contains(&self, key: &TrieKey) -> bool {
        self.lock().map.contains_key(key)
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut g = self.lock();
        g.map.clear();
        g.lru.clear();
        g.bytes_in_use = 0;
    }

    /// A snapshot of the registry's counters.
    pub fn stats(&self) -> CacheStats {
        let g = self.lock();
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            builds: g.builds,
            build_time: g.build_time,
            evictions: g.evictions,
            oversized: g.oversized,
            overlays: g.overlays,
            compactions: g.compactions,
            purged: g.purged,
            entries: g.map.len(),
            bytes_in_use: g.bytes_in_use,
            budget: g.budget,
        }
    }
}

impl Default for TrieRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TrieRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrieRegistry")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Relation, Schema, ValueId};

    fn key(source: &str, version: u64) -> TrieKey {
        TrieKey {
            store: 0,
            source: source.into(),
            version,
            order: vec!["a".into(), "b".into()],
        }
    }

    fn sample_rel(rows: u32) -> Relation {
        let mut r = Relation::new(Schema::of(&["a", "b"]));
        for i in 0..rows {
            r.push(&[ValueId(i), ValueId(i + 1)]).unwrap();
        }
        r
    }

    fn build(rows: u32) -> relational::Result<Trie> {
        let r = sample_rel(rows);
        Ok(Trie::from_relation(&r))
    }

    #[test]
    fn first_request_builds_second_hits() {
        let reg = TrieRegistry::new();
        let t1 = reg.get_or_build(&key("R", 1), || build(4)).unwrap();
        let t2 = reg
            .get_or_build(&key("R", 1), || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        let s = reg.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn versions_orders_and_stores_key_separately() {
        let reg = TrieRegistry::new();
        reg.get_or_build(&key("R", 1), || build(4)).unwrap();
        reg.get_or_build(&key("R", 2), || build(5)).unwrap();
        let mut flipped = key("R", 1);
        flipped.order.reverse();
        reg.get_or_build(&flipped, || build(4)).unwrap();
        // Same name/version/order from a different store must not collide.
        let mut other_store = key("R", 1);
        other_store.store = 7;
        reg.get_or_build(&other_store, || build(6)).unwrap();
        let s = reg.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 4, 4));
    }

    #[test]
    fn lookup_counts_hits_but_not_misses() {
        let reg = TrieRegistry::new();
        assert!(reg.lookup(&key("R", 1)).is_none());
        assert_eq!(reg.stats().misses, 0);
        reg.get_or_build(&key("R", 1), || build(4)).unwrap();
        assert!(reg.lookup(&key("R", 1)).is_some());
        let s = reg.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        // Each 4-row trie costs a few dozen bytes; budget fits ~2 of them.
        let one = build(4).unwrap().estimated_bytes();
        let reg = TrieRegistry::with_budget(Some(2 * one));
        reg.get_or_build(&key("R1", 1), || build(4)).unwrap();
        reg.get_or_build(&key("R2", 1), || build(4)).unwrap();
        // Touch R1 so R2 is the LRU victim.
        reg.lookup(&key("R1", 1)).unwrap();
        reg.get_or_build(&key("R3", 1), || build(4)).unwrap();
        let s = reg.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes_in_use <= 2 * one);
        assert!(reg.contains(&key("R1", 1)));
        assert!(!reg.contains(&key("R2", 1)));
        assert!(reg.contains(&key("R3", 1)));
    }

    #[test]
    fn bitset_index_bytes_count_against_budget() {
        // A dense first column (200 consecutive values) makes the builder
        // attach a per-level bitset index; the cache must charge those extra
        // bytes, not just the raw value/offset arrays.
        let mut r = Relation::new(Schema::of(&["a", "b"]));
        for i in 0..200u32 {
            r.push(&[ValueId(i), ValueId(i)]).unwrap();
        }
        let order = r.schema().attrs().to_vec();
        let plain = relational::TrieBuilder::new()
            .with_bitset_levels(false)
            .build(&r, &order)
            .unwrap();
        let indexed = relational::TrieBuilder::new().build(&r, &order).unwrap();
        assert!(indexed.bitset_level_count() > 0, "workload must be dense");
        assert!(indexed.estimated_bytes() > plain.estimated_bytes());

        let reg = TrieRegistry::new();
        let bytes = indexed.estimated_bytes();
        reg.get_or_build(&key("dense", 1), move || Ok(indexed))
            .unwrap();
        assert_eq!(reg.stats().bytes_in_use, bytes);
    }

    #[test]
    fn oversized_builds_are_served_uncached() {
        // A budget of 1 byte admits nothing: the build must still be served,
        // but never charged — resident bytes stay within the budget.
        let reg = TrieRegistry::with_budget(Some(1));
        let t = reg.get_or_build(&key("R", 1), || build(8)).unwrap();
        assert_eq!(t.num_tuples(), 8);
        let s = reg.stats();
        assert_eq!((s.entries, s.bytes_in_use, s.oversized), (0, 0, 1));
        assert!(!reg.contains(&key("R", 1)));
        // The next request misses again (nothing was cached).
        reg.get_or_build(&key("R", 1), || build(8)).unwrap();
        assert_eq!(reg.stats().misses, 2);
    }

    #[test]
    fn resident_bytes_never_exceed_budget() {
        let one = build(4).unwrap().estimated_bytes();
        let big = build(64).unwrap().estimated_bytes();
        assert!(big > one);
        // Budget fits the big trie alone, or a couple of small ones.
        let reg = TrieRegistry::with_budget(Some(big));
        reg.get_or_build(&key("A", 1), || build(4)).unwrap();
        reg.get_or_build(&key("B", 1), || build(4)).unwrap();
        assert!(reg.stats().bytes_in_use <= big);
        // Inserting the big trie evicts both small ones — down to the
        // protected entry itself, never past the budget.
        reg.get_or_build(&key("C", 1), || build(64)).unwrap();
        let s = reg.stats();
        assert!(s.bytes_in_use <= big, "{} > {}", s.bytes_in_use, big);
        assert_eq!(s.entries, 1);
        assert!(reg.contains(&key("C", 1)));
    }

    #[test]
    fn clear_drops_entries_keeps_counters() {
        let reg = TrieRegistry::new();
        reg.get_or_build(&key("R", 1), || build(4)).unwrap();
        reg.clear();
        let s = reg.stats();
        assert_eq!((s.entries, s.bytes_in_use), (0, 0));
        assert_eq!(s.misses, 1);
        // The LRU index was cleared with the map: later inserts + evictions
        // must not resurrect stale index entries.
        let one = build(4).unwrap().estimated_bytes();
        let reg2 = TrieRegistry::with_budget(Some(one));
        reg2.get_or_build(&key("R", 1), || build(4)).unwrap();
        reg2.clear();
        reg2.get_or_build(&key("S", 1), || build(4)).unwrap();
        assert_eq!(reg2.stats().entries, 1);
    }

    #[test]
    fn build_counters_track_cold_construction_cost() {
        let reg = TrieRegistry::new();
        reg.get_or_build(&key("R", 1), || build(64)).unwrap();
        reg.get_or_build(&key("S", 1), || build(64)).unwrap();
        // A warm hit must not move the build counters.
        reg.get_or_build(&key("R", 1), || panic!("must not rebuild"))
            .unwrap();
        let s = reg.stats();
        assert_eq!((s.builds, s.misses, s.hits), (2, 2, 1));
        assert!(s.build_time > Duration::ZERO);
        // A failed build is still charged: the cost was paid.
        let _ = reg.get_or_build(&key("T", 1), || Err(relational::RelError::EmptyQuery));
        let s2 = reg.stats();
        assert_eq!(s2.builds, 3);
        assert!(s2.build_time >= s.build_time);
    }

    #[test]
    fn build_errors_propagate_and_cache_nothing() {
        let reg = TrieRegistry::new();
        let err = reg.get_or_build(&key("R", 1), || Err(relational::RelError::EmptyQuery));
        assert!(err.is_err());
        assert_eq!(reg.stats().entries, 0);
        // A later successful build still works.
        reg.get_or_build(&key("R", 1), || build(2)).unwrap();
        assert_eq!(reg.stats().entries, 1);
    }

    fn layered(base_rows: u32, run_rows: u32) -> Arc<DeltaTrie> {
        let base = Arc::new(build(base_rows).unwrap());
        let run = Arc::new(build(run_rows).unwrap());
        Arc::new(DeltaTrie::new(base).with_run(run).unwrap())
    }

    #[test]
    fn layered_entries_resolve_through_lookup_cached_only() {
        let reg = TrieRegistry::new();
        let k = key("rel:R", 2);
        assert!(reg.insert_layered(&k, layered(8, 2), 1));
        // Solid-only callers see nothing...
        assert!(reg.lookup(&k).is_none());
        // ...overlay-aware callers get the layered entry.
        match reg.lookup_cached(&k) {
            Some(CachedTrie::Layered(d)) => assert_eq!(d.delta_tuples(), 2),
            other => panic!("expected layered entry, got {other:?}"),
        }
        let s = reg.stats();
        assert_eq!((s.overlays, s.hits, s.entries), (1, 1, 1));
    }

    #[test]
    fn get_or_build_upgrades_a_layered_entry_to_solid() {
        let reg = TrieRegistry::new();
        let k = key("rel:R", 2);
        reg.insert_layered(&k, layered(8, 2), 1);
        // A solid-trie consumer misses on the overlay and replaces it.
        let t = reg.get_or_build(&k, || build(10)).unwrap();
        assert_eq!(t.num_tuples(), 10);
        assert_eq!(reg.stats().entries, 1);
        assert!(reg.lookup(&k).is_some());
    }

    #[test]
    fn replace_with_solid_compacts_in_place() {
        let reg = TrieRegistry::new();
        let k = key("rel:R", 2);
        let d = layered(8, 2);
        reg.insert_layered(&k, Arc::clone(&d), 1);
        let solid = Arc::new(d.compact().unwrap());
        reg.replace_with_solid(&k, Arc::clone(&solid));
        let got = reg.lookup(&k).expect("now solid");
        assert!(Arc::ptr_eq(&got, &solid));
        let s = reg.stats();
        assert_eq!((s.compactions, s.entries), (1, 1));
        assert_eq!(s.bytes_in_use, solid.estimated_bytes());
    }

    #[test]
    fn find_base_returns_newest_older_solid() {
        let reg = TrieRegistry::new();
        let order: Vec<Attr> = vec!["a".into(), "b".into()];
        reg.get_or_build(&key("rel:R", 1), || build(4)).unwrap();
        reg.get_or_build(&key("rel:R", 3), || build(6)).unwrap();
        // A layered entry is never a base candidate.
        reg.insert_layered(&key("rel:R", 4), layered(6, 1), 3);
        let (v, t) = reg.find_base(0, "rel:R", &order, 5).unwrap();
        assert_eq!((v, t.num_tuples()), (3, 6));
        let (v, _) = reg.find_base(0, "rel:R", &order, 3).unwrap();
        assert_eq!(v, 1);
        assert!(reg.find_base(0, "rel:R", &order, 1).is_none());
        assert!(reg.find_base(0, "rel:S", &order, 5).is_none());
        let flipped: Vec<Attr> = vec!["b".into(), "a".into()];
        assert!(reg.find_base(0, "rel:R", &flipped, 5).is_none());
        // Wrong store never matches.
        assert!(reg.find_base(9, "rel:R", &order, 5).is_none());
    }

    #[test]
    fn purge_stale_drops_old_versions_of_one_relation() {
        let reg = TrieRegistry::new();
        reg.get_or_build(&key("rel:R", 1), || build(4)).unwrap();
        reg.get_or_build(&key("rel:R", 2), || build(5)).unwrap();
        reg.get_or_build(&key("atom:R(?x,1)", 1), || build(4))
            .unwrap();
        // Prefix traps: `RS` shares `R` as a name prefix but is a different
        // relation; `S` is unrelated; paths have their own namespace.
        reg.get_or_build(&key("rel:RS", 1), || build(4)).unwrap();
        reg.get_or_build(&key("rel:S", 1), || build(4)).unwrap();
        reg.get_or_build(&key("path:/a$x", 1), || build(4)).unwrap();
        let n = reg.purge_stale(0, "R", 2);
        assert_eq!(n, 2);
        assert!(!reg.contains(&key("rel:R", 1)));
        assert!(!reg.contains(&key("atom:R(?x,1)", 1)));
        assert!(reg.contains(&key("rel:R", 2)));
        assert!(reg.contains(&key("rel:RS", 1)));
        assert!(reg.contains(&key("rel:S", 1)));
        assert!(reg.contains(&key("path:/a$x", 1)));
        assert_eq!(reg.stats().purged, 2);
        // Another store's entries are untouched.
        let mut other = key("rel:R", 1);
        other.store = 7;
        reg.get_or_build(&other, || build(4)).unwrap();
        reg.purge_stale(0, "R", 2);
        assert!(reg.contains(&other));
    }

    #[test]
    fn purge_keeps_bases_referenced_by_live_overlays() {
        let reg = TrieRegistry::new();
        reg.get_or_build(&key("rel:R", 1), || build(4)).unwrap();
        reg.insert_layered(&key("rel:R", 2), layered(4, 1), 1);
        // Version 1 is superseded but still the overlay's base: kept.
        assert_eq!(reg.purge_stale(0, "R", 2), 0);
        assert!(reg.contains(&key("rel:R", 1)));
        // Once the overlay compacts to a solid entry, the base is purgeable.
        reg.replace_with_solid(&key("rel:R", 2), Arc::new(build(5).unwrap()));
        assert_eq!(reg.purge_stale(0, "R", 2), 1);
        assert!(!reg.contains(&key("rel:R", 1)));
        assert!(reg.contains(&key("rel:R", 2)));
    }

    #[test]
    fn purge_stale_paths_uses_the_document_namespace() {
        let reg = TrieRegistry::new();
        reg.get_or_build(&key("path:/a$x", 1), || build(4)).unwrap();
        reg.get_or_build(&key("path:/a$x", 2), || build(4)).unwrap();
        reg.get_or_build(&key("rel:R", 1), || build(4)).unwrap();
        assert_eq!(reg.purge_stale_paths(0, 2), 1);
        assert!(!reg.contains(&key("path:/a$x", 1)));
        assert!(reg.contains(&key("path:/a$x", 2)));
        assert!(reg.contains(&key("rel:R", 1)));
    }

    #[test]
    fn oversized_overlay_runs_are_not_cached() {
        let reg = TrieRegistry::with_budget(Some(1));
        assert!(!reg.insert_layered(&key("rel:R", 2), layered(4, 4), 1));
        let s = reg.stats();
        assert_eq!((s.entries, s.oversized), (0, 1));
    }
}
