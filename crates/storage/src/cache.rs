//! The trie registry: a shared, byte-budgeted LRU cache of built tries.
//!
//! Building a trie is the dominant per-query cost on repeated workloads —
//! every engine in the workspace (LFTJ, the level-wise generic join,
//! streaming XJoin, and the level-wise XJoin engine) consumes the same flat
//! sorted [`Trie`] representation, so one cache serves them all. Entries are
//! keyed by [`TrieKey`]: *what* the trie was built from (a relation name or
//! a derived-atom fingerprint), *which version* of it, and *under which
//! attribute order* it was leveled. Storage versioning guarantees that a key
//! never maps to two different tries, so entries need no invalidation —
//! stale versions simply age out of the LRU.

use crate::error::StoreError;
use relational::{Attr, Trie};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Identity of a cached trie: owning store, source, version, and level
/// order.
///
/// * base relations use their catalog name, versioned by
///   [`relational::Database::relation_version`];
/// * derived relational atoms (positional renames, constant selections) use
///   a fingerprint of the atom's terms, versioned by the base relation;
/// * twig path relations use [`xmldb::path_fingerprint`], versioned by the
///   document (see [`crate::Snapshot::doc_version`]).
///
/// Versions are only comparable within one store's history (every fresh
/// store starts at version 1, and [`relational::ValueId`]s are relative to
/// its dictionary), so the key also carries the process-unique id of the
/// owning [`crate::VersionedStore`] — a registry shared between stores can
/// never serve one store's trie to another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrieKey {
    /// Process-unique id of the store the trie belongs to.
    pub store: u64,
    /// Content identity of the relation the trie was built from.
    pub source: String,
    /// Version of that content (relation version or document version).
    pub version: u64,
    /// The trie's level order (the restriction of a global variable order to
    /// the source's attributes).
    pub order: Vec<Attr>,
}

/// A point-in-time view of the registry's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to build a trie.
    pub misses: u64,
    /// Trie builds actually executed. Usually equals `misses`; it can exceed
    /// them when concurrent misses on one key race (the losing build is
    /// dropped but its cost was still paid, so it is still counted here).
    pub builds: u64,
    /// Total wall-clock time spent inside build closures — the cold
    /// trie-construction cost this cache has absorbed. Together with
    /// `hits`/`misses` this lets serving layers report build vs probe time.
    pub build_time: Duration,
    /// Entries dropped to respect the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated bytes currently charged against the budget.
    pub bytes_in_use: usize,
    /// The configured byte budget (`None` = unbounded).
    pub budget: Option<usize>,
}

impl CacheStats {
    /// Fraction of requests served from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    trie: Arc<Trie>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<TrieKey, Entry>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    bytes_in_use: usize,
    budget: Option<usize>,
    hits: u64,
    misses: u64,
    builds: u64,
    build_time: Duration,
    evictions: u64,
}

impl Inner {
    /// Evicts least-recently-used entries (never `protect`) until the budget
    /// is respected or only the protected entry remains.
    fn evict_to_budget(&mut self, protect: &TrieKey) {
        let Some(budget) = self.budget else { return };
        while self.bytes_in_use > budget && self.map.len() > 1 {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| *k != protect)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(e) = self.map.remove(&victim) {
                self.bytes_in_use -= e.bytes;
                self.evictions += 1;
                xjoin_obs::instant("trie-cache-evict");
            }
        }
    }
}

/// A thread-safe trie cache with an LRU byte budget and hit/miss/eviction
/// counters. Shared via [`Arc`] between the store, its snapshots, and the
/// query service's workers.
pub struct TrieRegistry {
    inner: Mutex<Inner>,
}

impl TrieRegistry {
    /// An unbounded registry (entries are never evicted).
    pub fn new() -> Self {
        Self::with_budget(None)
    }

    /// A registry evicting least-recently-used tries once the estimated
    /// resident bytes exceed `budget` (`None` = unbounded). The most recent
    /// entry is always kept, even if it alone exceeds the budget.
    pub fn with_budget(budget: Option<usize>) -> Self {
        TrieRegistry {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                bytes_in_use: 0,
                budget,
                hits: 0,
                misses: 0,
                builds: 0,
                build_time: Duration::ZERO,
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Peeks for a cached trie, counting a hit (and refreshing recency) when
    /// found. A miss is *not* counted — only [`TrieRegistry::get_or_build`]
    /// records misses, so peek-then-build call sites count each request once.
    pub fn lookup(&self, key: &TrieKey) -> Option<Arc<Trie>> {
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        if let Some(e) = g.map.get_mut(key) {
            e.last_used = tick;
            let trie = Arc::clone(&e.trie);
            g.hits += 1;
            xjoin_obs::instant("trie-cache-hit");
            Some(trie)
        } else {
            None
        }
    }

    /// Returns the cached trie for `key`, building (and caching) it with
    /// `build` on a miss. The lock is released while building, so concurrent
    /// misses on the same key may build twice; the first insert wins and the
    /// duplicate is dropped.
    pub fn get_or_build(
        &self,
        key: &TrieKey,
        build: impl FnOnce() -> relational::Result<Trie>,
    ) -> Result<Arc<Trie>, StoreError> {
        {
            let mut g = self.lock();
            g.tick += 1;
            let tick = g.tick;
            if let Some(e) = g.map.get_mut(key) {
                e.last_used = tick;
                let trie = Arc::clone(&e.trie);
                g.hits += 1;
                xjoin_obs::instant("trie-cache-hit");
                return Ok(trie);
            }
            g.misses += 1;
        }
        xjoin_obs::instant("trie-cache-miss");
        let build_start = Instant::now();
        let built = build();
        let build_elapsed = build_start.elapsed();
        {
            // The build ran (even if it errored or loses the insert race
            // below); its cost was paid, so it is accounted either way.
            let mut g = self.lock();
            g.builds += 1;
            g.build_time += build_elapsed;
        }
        let trie = Arc::new(built?);
        let bytes = trie.estimated_bytes();
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        if let Some(e) = g.map.get_mut(key) {
            // Lost a build race; serve the resident entry.
            e.last_used = tick;
            return Ok(Arc::clone(&e.trie));
        }
        g.map.insert(
            key.clone(),
            Entry {
                trie: Arc::clone(&trie),
                bytes,
                last_used: tick,
            },
        );
        g.bytes_in_use += bytes;
        g.evict_to_budget(key);
        Ok(trie)
    }

    /// Whether `key` is currently resident (does not touch recency or
    /// counters).
    pub fn contains(&self, key: &TrieKey) -> bool {
        self.lock().map.contains_key(key)
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut g = self.lock();
        g.map.clear();
        g.bytes_in_use = 0;
    }

    /// A snapshot of the registry's counters.
    pub fn stats(&self) -> CacheStats {
        let g = self.lock();
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            builds: g.builds,
            build_time: g.build_time,
            evictions: g.evictions,
            entries: g.map.len(),
            bytes_in_use: g.bytes_in_use,
            budget: g.budget,
        }
    }
}

impl Default for TrieRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TrieRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrieRegistry")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Relation, Schema, ValueId};

    fn key(source: &str, version: u64) -> TrieKey {
        TrieKey {
            store: 0,
            source: source.into(),
            version,
            order: vec!["a".into(), "b".into()],
        }
    }

    fn sample_rel(rows: u32) -> Relation {
        let mut r = Relation::new(Schema::of(&["a", "b"]));
        for i in 0..rows {
            r.push(&[ValueId(i), ValueId(i + 1)]).unwrap();
        }
        r
    }

    fn build(rows: u32) -> relational::Result<Trie> {
        let r = sample_rel(rows);
        Ok(Trie::from_relation(&r))
    }

    #[test]
    fn first_request_builds_second_hits() {
        let reg = TrieRegistry::new();
        let t1 = reg.get_or_build(&key("R", 1), || build(4)).unwrap();
        let t2 = reg
            .get_or_build(&key("R", 1), || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        let s = reg.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn versions_orders_and_stores_key_separately() {
        let reg = TrieRegistry::new();
        reg.get_or_build(&key("R", 1), || build(4)).unwrap();
        reg.get_or_build(&key("R", 2), || build(5)).unwrap();
        let mut flipped = key("R", 1);
        flipped.order.reverse();
        reg.get_or_build(&flipped, || build(4)).unwrap();
        // Same name/version/order from a different store must not collide.
        let mut other_store = key("R", 1);
        other_store.store = 7;
        reg.get_or_build(&other_store, || build(6)).unwrap();
        let s = reg.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 4, 4));
    }

    #[test]
    fn lookup_counts_hits_but_not_misses() {
        let reg = TrieRegistry::new();
        assert!(reg.lookup(&key("R", 1)).is_none());
        assert_eq!(reg.stats().misses, 0);
        reg.get_or_build(&key("R", 1), || build(4)).unwrap();
        assert!(reg.lookup(&key("R", 1)).is_some());
        let s = reg.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        // Each 4-row trie costs a few dozen bytes; budget fits ~2 of them.
        let one = build(4).unwrap().estimated_bytes();
        let reg = TrieRegistry::with_budget(Some(2 * one));
        reg.get_or_build(&key("R1", 1), || build(4)).unwrap();
        reg.get_or_build(&key("R2", 1), || build(4)).unwrap();
        // Touch R1 so R2 is the LRU victim.
        reg.lookup(&key("R1", 1)).unwrap();
        reg.get_or_build(&key("R3", 1), || build(4)).unwrap();
        let s = reg.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes_in_use <= 2 * one);
        assert!(reg.contains(&key("R1", 1)));
        assert!(!reg.contains(&key("R2", 1)));
        assert!(reg.contains(&key("R3", 1)));
    }

    #[test]
    fn bitset_index_bytes_count_against_budget() {
        // A dense first column (200 consecutive values) makes the builder
        // attach a per-level bitset index; the cache must charge those extra
        // bytes, not just the raw value/offset arrays.
        let mut r = Relation::new(Schema::of(&["a", "b"]));
        for i in 0..200u32 {
            r.push(&[ValueId(i), ValueId(i)]).unwrap();
        }
        let order = r.schema().attrs().to_vec();
        let plain = relational::TrieBuilder::new()
            .with_bitset_levels(false)
            .build(&r, &order)
            .unwrap();
        let indexed = relational::TrieBuilder::new().build(&r, &order).unwrap();
        assert!(indexed.bitset_level_count() > 0, "workload must be dense");
        assert!(indexed.estimated_bytes() > plain.estimated_bytes());

        let reg = TrieRegistry::new();
        let bytes = indexed.estimated_bytes();
        reg.get_or_build(&key("dense", 1), move || Ok(indexed))
            .unwrap();
        assert_eq!(reg.stats().bytes_in_use, bytes);
    }

    #[test]
    fn oversized_single_entry_is_kept() {
        let reg = TrieRegistry::with_budget(Some(1));
        reg.get_or_build(&key("R", 1), || build(8)).unwrap();
        let s = reg.stats();
        assert_eq!(s.entries, 1);
        assert!(reg.contains(&key("R", 1)));
    }

    #[test]
    fn clear_drops_entries_keeps_counters() {
        let reg = TrieRegistry::new();
        reg.get_or_build(&key("R", 1), || build(4)).unwrap();
        reg.clear();
        let s = reg.stats();
        assert_eq!((s.entries, s.bytes_in_use), (0, 0));
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn build_counters_track_cold_construction_cost() {
        let reg = TrieRegistry::new();
        reg.get_or_build(&key("R", 1), || build(64)).unwrap();
        reg.get_or_build(&key("S", 1), || build(64)).unwrap();
        // A warm hit must not move the build counters.
        reg.get_or_build(&key("R", 1), || panic!("must not rebuild"))
            .unwrap();
        let s = reg.stats();
        assert_eq!((s.builds, s.misses, s.hits), (2, 2, 1));
        assert!(s.build_time > Duration::ZERO);
        // A failed build is still charged: the cost was paid.
        let _ = reg.get_or_build(&key("T", 1), || Err(relational::RelError::EmptyQuery));
        let s2 = reg.stats();
        assert_eq!(s2.builds, 3);
        assert!(s2.build_time >= s.build_time);
    }

    #[test]
    fn build_errors_propagate_and_cache_nothing() {
        let reg = TrieRegistry::new();
        let err = reg.get_or_build(&key("R", 1), || Err(relational::RelError::EmptyQuery));
        assert!(err.is_err());
        assert_eq!(reg.stats().entries, 0);
        // A later successful build still works.
        reg.get_or_build(&key("R", 1), || build(2)).unwrap();
        assert_eq!(reg.stats().entries, 1);
    }
}
