//! Query hypergraphs: attributes as vertices, relations as hyperedges.
//!
//! The AGM bound of a join query is a property of its hypergraph plus the
//! relation cardinalities. The multi-model queries of the paper produce one
//! hyperedge per relational atom *and* one per root-leaf path relation of
//! each transformed twig (Figure 2).

use std::collections::BTreeMap;
use std::fmt;

/// Errors from hypergraph construction and bound computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgmError {
    /// A vertex belongs to no hyperedge, so no finite cover exists.
    UncoveredVertex(String),
    /// An edge referenced an unknown vertex name.
    UnknownVertex(String),
    /// The hypergraph has no edges.
    Empty,
}

impl fmt::Display for AgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgmError::UncoveredVertex(v) => {
                write!(
                    f,
                    "attribute `{v}` occurs in no relation: cover is infeasible"
                )
            }
            AgmError::UnknownVertex(v) => write!(f, "unknown attribute `{v}`"),
            AgmError::Empty => write!(f, "hypergraph has no edges"),
        }
    }
}

impl std::error::Error for AgmError {}

/// One hyperedge: a named relation over a set of vertices.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Display name (relation name).
    pub name: String,
    /// Vertex indices (sorted, distinct).
    pub vertices: Vec<usize>,
}

/// A query hypergraph.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    vertex_names: Vec<String>,
    vertex_ids: BTreeMap<String, usize>,
    edges: Vec<Edge>,
}

impl Hypergraph {
    /// Creates an empty hypergraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a vertex (attribute) name.
    pub fn vertex(&mut self, name: &str) -> usize {
        if let Some(&id) = self.vertex_ids.get(name) {
            return id;
        }
        let id = self.vertex_names.len();
        self.vertex_names.push(name.to_owned());
        self.vertex_ids.insert(name.to_owned(), id);
        id
    }

    /// Adds an edge over the given attribute names, interning new vertices.
    pub fn edge(&mut self, name: &str, attrs: &[&str]) -> usize {
        let mut vertices: Vec<usize> = attrs.iter().map(|a| self.vertex(a)).collect();
        vertices.sort_unstable();
        vertices.dedup();
        self.edges.push(Edge {
            name: name.to_owned(),
            vertices,
        });
        self.edges.len() - 1
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_names.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The vertex names, indexed by vertex id.
    pub fn vertex_names(&self) -> &[String] {
        &self.vertex_names
    }

    /// The id of a named vertex.
    pub fn vertex_id(&self, name: &str) -> Result<usize, AgmError> {
        self.vertex_ids
            .get(name)
            .copied()
            .ok_or_else(|| AgmError::UnknownVertex(name.to_owned()))
    }

    /// Whether every vertex occurs in at least one edge (else no cover).
    pub fn check_covered(&self) -> Result<(), AgmError> {
        let mut covered = vec![false; self.num_vertices()];
        for e in &self.edges {
            for &v in &e.vertices {
                covered[v] = true;
            }
        }
        if let Some(v) = covered.iter().position(|&c| !c) {
            return Err(AgmError::UncoveredVertex(self.vertex_names[v].clone()));
        }
        Ok(())
    }

    /// Restricts the hypergraph to a subset of vertices: each edge becomes
    /// its intersection with the subset (empty intersections are dropped).
    ///
    /// The AGM bound of the restriction bounds the size of the join's
    /// projection onto the subset — the quantity that level-wise engines
    /// materialise after binding those attributes.
    pub fn restrict(&self, vertex_subset: &[&str]) -> Result<Hypergraph, AgmError> {
        let mut keep = vec![false; self.num_vertices()];
        for name in vertex_subset {
            keep[self.vertex_id(name)?] = true;
        }
        let mut out = Hypergraph::new();
        for e in &self.edges {
            let attrs: Vec<&str> = e
                .vertices
                .iter()
                .filter(|&&v| keep[v])
                .map(|&v| self.vertex_names[v].as_str())
                .collect();
            if !attrs.is_empty() {
                out.edge(&e.name, &attrs);
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.edges {
            write!(f, "{}(", e.name)?;
            for (i, &v) in e.vertices.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.vertex_names[v])?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertices_are_interned() {
        let mut h = Hypergraph::new();
        h.edge("R", &["a", "b"]);
        h.edge("S", &["b", "c"]);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.vertex_id("b").unwrap(), 1);
        assert!(h.vertex_id("z").is_err());
    }

    #[test]
    fn duplicate_attrs_in_edge_collapse() {
        let mut h = Hypergraph::new();
        h.edge("R", &["a", "a", "b"]);
        assert_eq!(h.edges()[0].vertices.len(), 2);
    }

    #[test]
    fn coverage_check() {
        let mut h = Hypergraph::new();
        h.edge("R", &["a"]);
        h.vertex("lonely");
        assert!(matches!(h.check_covered(), Err(AgmError::UncoveredVertex(v)) if v == "lonely"));
        h.edge("S", &["lonely"]);
        assert!(h.check_covered().is_ok());
    }

    #[test]
    fn restriction_drops_and_trims_edges() {
        let mut h = Hypergraph::new();
        h.edge("R", &["a", "b"]);
        h.edge("S", &["c", "d"]);
        let r = h.restrict(&["a", "c"]).unwrap();
        assert_eq!(r.num_edges(), 2);
        assert_eq!(r.num_vertices(), 2);
        let r2 = h.restrict(&["a"]).unwrap();
        assert_eq!(r2.num_edges(), 1); // S vanishes entirely
        assert!(h.restrict(&["nope"]).is_err());
    }

    #[test]
    fn display_lists_edges() {
        let mut h = Hypergraph::new();
        h.edge("R", &["x", "y"]);
        let text = h.to_string();
        assert!(text.contains("R(x,y)"));
    }
}
