//! A dense two-phase primal simplex solver.
//!
//! Written from scratch for the fractional edge cover / vertex packing
//! programs behind the AGM bound (the paper's Equation 1). These LPs are
//! tiny (one variable per relation or attribute), so a dense tableau with
//! Bland's anti-cycling rule is both simple and robust.

/// Comparison operator of one linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `a · x <= b`
    Le,
    /// `a · x >= b`
    Ge,
    /// `a · x == b`
    Eq,
}

/// A linear program over `n` non-negative variables.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Objective coefficients (length `n`).
    pub objective: Vec<f64>,
    /// Constraints as `(coefficients, cmp, rhs)`; coefficient vectors must
    /// have length `n`.
    pub constraints: Vec<(Vec<f64>, Cmp, f64)>,
    /// Maximize instead of minimize.
    pub maximize: bool,
}

impl LinearProgram {
    /// Creates a minimization program with no constraints yet.
    pub fn minimize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
            maximize: false,
        }
    }

    /// Creates a maximization program with no constraints yet.
    pub fn maximize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
            maximize: true,
        }
    }

    /// Adds a constraint.
    pub fn constraint(&mut self, coeffs: Vec<f64>, cmp: Cmp, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.objective.len(),
            "coefficient arity mismatch"
        );
        self.constraints.push((coeffs, cmp, rhs));
        self
    }
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal variable assignment (length = number of original variables).
    pub x: Vec<f64>,
    /// Optimal objective value (in the user's sense: maximized value for
    /// maximization programs).
    pub value: f64,
}

/// Outcome of solving a linear program.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// An optimum was found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Unwraps the optimal solution, panicking otherwise (test helper).
    pub fn unwrap_optimal(self) -> LpSolution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal solution, got {other:?}"),
        }
    }
}

const EPS: f64 = 1e-9;

struct Tableau {
    /// `rows x (cols + 1)`; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row: reduced costs, last entry = -(objective value).
    obj: Vec<f64>,
    /// Basic variable per row.
    basis: Vec<usize>,
    cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.a[row][col];
        debug_assert!(p.abs() > EPS);
        for v in &mut self.a[row] {
            *v /= p;
        }
        for r in 0..self.a.len() {
            if r != row {
                let f = self.a[r][col];
                if f.abs() > EPS {
                    for c in 0..=self.cols {
                        self.a[r][c] -= f * self.a[row][c];
                    }
                }
            }
        }
        let f = self.obj[col];
        if f.abs() > EPS {
            for c in 0..=self.cols {
                self.obj[c] -= f * self.a[row][c];
            }
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop (minimization). Returns `false` on unbounded.
    fn run(&mut self, allowed: &dyn Fn(usize) -> bool) -> bool {
        loop {
            // Bland's rule: smallest-index column with negative reduced cost.
            let entering = (0..self.cols).find(|&j| allowed(j) && self.obj[j] < -EPS);
            let Some(j) = entering else { return true };
            // Ratio test (Bland tie-break on basis variable index).
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.a.len() {
                let aij = self.a[r][j];
                if aij > EPS {
                    let ratio = self.a[r][self.cols] / aij;
                    let better = match leave {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((r, _)) = leave else { return false };
            self.pivot(r, j);
        }
    }
}

/// Solves a linear program with the two-phase primal simplex method.
pub fn solve(lp: &LinearProgram) -> LpOutcome {
    let n = lp.objective.len();
    let m = lp.constraints.len();

    // Normalise: all RHS non-negative.
    let mut rows: Vec<(Vec<f64>, Cmp, f64)> = lp.constraints.clone();
    for (coeffs, cmp, rhs) in &mut rows {
        if *rhs < 0.0 {
            for c in coeffs.iter_mut() {
                *c = -*c;
            }
            *rhs = -*rhs;
            *cmp = match *cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    // Column layout: [originals | slacks/surpluses | artificials].
    let n_slack = rows
        .iter()
        .filter(|(_, c, _)| matches!(c, Cmp::Le | Cmp::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|(_, c, _)| matches!(c, Cmp::Ge | Cmp::Eq))
        .count();
    let cols = n + n_slack + n_art;
    let art_begin = n + n_slack;

    let mut a = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut next_slack = n;
    let mut next_art = art_begin;
    for (i, (coeffs, cmp, rhs)) in rows.iter().enumerate() {
        a[i][..n].copy_from_slice(coeffs);
        a[i][cols] = *rhs;
        match cmp {
            Cmp::Le => {
                a[i][next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                a[i][next_slack] = -1.0;
                next_slack += 1;
                a[i][next_art] = 1.0;
                basis[i] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                a[i][next_art] = 1.0;
                basis[i] = next_art;
                next_art += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        obj: vec![0.0; cols + 1],
        basis,
        cols,
    };

    // ---- Phase 1: minimise the sum of artificials.
    if n_art > 0 {
        for j in art_begin..cols {
            t.obj[j] = 1.0;
        }
        // Canonicalise: basic artificials must have zero reduced cost.
        for r in 0..m {
            if t.basis[r] >= art_begin {
                for c in 0..=cols {
                    t.obj[c] -= t.a[r][c];
                }
            }
        }
        if !t.run(&|_| true) {
            // Phase 1 objective is bounded below by 0; "unbounded" cannot
            // happen, but guard anyway.
            return LpOutcome::Infeasible;
        }
        let phase1 = -t.obj[cols];
        if phase1 > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive remaining artificials out of the basis.
        for r in 0..m {
            if t.basis[r] >= art_begin {
                if let Some(j) = (0..art_begin).find(|&j| t.a[r][j].abs() > EPS) {
                    t.pivot(r, j);
                }
                // Otherwise the row is redundant; the artificial stays basic
                // at value 0, which is harmless as long as artificial
                // columns are barred from entering in phase 2.
            }
        }
    }

    // ---- Phase 2: original objective.
    let sign = if lp.maximize { -1.0 } else { 1.0 };
    t.obj = vec![0.0; cols + 1];
    for j in 0..n {
        t.obj[j] = sign * lp.objective[j];
    }
    for r in 0..m {
        let b = t.basis[r];
        let cb = if b < n { sign * lp.objective[b] } else { 0.0 };
        if cb.abs() > EPS {
            for c in 0..=cols {
                t.obj[c] -= cb * t.a[r][c];
            }
        }
    }
    if !t.run(&|j| j < art_begin) {
        return LpOutcome::Unbounded;
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            x[t.basis[r]] = t.a[r][cols];
        }
    }
    let value = sign * -t.obj[cols];
    LpOutcome::Optimal(LpSolution { x, value })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn simple_maximization() {
        // max x + y  s.t. x <= 2, y <= 3  -> 5 at (2, 3).
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.constraint(vec![1.0, 0.0], Cmp::Le, 2.0);
        lp.constraint(vec![0.0, 1.0], Cmp::Le, 3.0);
        let s = solve(&lp).unwrap_optimal();
        assert!(close(s.value, 5.0));
        assert!(close(s.x[0], 2.0) && close(s.x[1], 3.0));
    }

    #[test]
    fn simple_minimization_with_ge() {
        // min 2x + 3y  s.t. x + y >= 4, x >= 1  -> x=4, y=0, value 8.
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.constraint(vec![1.0, 1.0], Cmp::Ge, 4.0);
        lp.constraint(vec![1.0, 0.0], Cmp::Ge, 1.0);
        let s = solve(&lp).unwrap_optimal();
        assert!(close(s.value, 8.0), "value {}", s.value);
        assert!(close(s.x[0], 4.0) && close(s.x[1], 0.0));
    }

    #[test]
    fn equality_constraints() {
        // min x + y  s.t. x + 2y == 4, x <= 2  -> x=2, y=1, value 3? Check:
        // alternatives: x=0,y=2 -> 2. So optimum is 2 at (0, 2).
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constraint(vec![1.0, 2.0], Cmp::Eq, 4.0);
        lp.constraint(vec![1.0, 0.0], Cmp::Le, 2.0);
        let s = solve(&lp).unwrap_optimal();
        assert!(close(s.value, 2.0), "value {}", s.value);
        assert!(close(s.x[1], 2.0));
    }

    #[test]
    fn infeasible_program() {
        // x >= 3 and x <= 1.
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constraint(vec![1.0], Cmp::Ge, 3.0);
        lp.constraint(vec![1.0], Cmp::Le, 1.0);
        assert!(matches!(solve(&lp), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_program() {
        // max x with x >= 1 only.
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.constraint(vec![1.0], Cmp::Ge, 1.0);
        assert!(matches!(solve(&lp), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // min x s.t. -x <= -2  (i.e. x >= 2) -> 2.
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constraint(vec![-1.0], Cmp::Le, -2.0);
        let s = solve(&lp).unwrap_optimal();
        assert!(close(s.value, 2.0));
    }

    #[test]
    fn triangle_fractional_cover() {
        // Vertices a,b,c; edges ab, bc, ca. min x1+x2+x3 with each vertex
        // covered -> 1.5 (all halves).
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0]);
        lp.constraint(vec![1.0, 0.0, 1.0], Cmp::Ge, 1.0); // a in ab, ca
        lp.constraint(vec![1.0, 1.0, 0.0], Cmp::Ge, 1.0); // b in ab, bc
        lp.constraint(vec![0.0, 1.0, 1.0], Cmp::Ge, 1.0); // c in bc, ca
        let s = solve(&lp).unwrap_optimal();
        assert!(close(s.value, 1.5), "value {}", s.value);
    }

    #[test]
    fn triangle_dual_packing() {
        // max ya+yb+yc s.t. pairwise sums <= 1 -> 1.5.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0, 1.0]);
        lp.constraint(vec![1.0, 1.0, 0.0], Cmp::Le, 1.0);
        lp.constraint(vec![0.0, 1.0, 1.0], Cmp::Le, 1.0);
        lp.constraint(vec![1.0, 0.0, 1.0], Cmp::Le, 1.0);
        let s = solve(&lp).unwrap_optimal();
        assert!(close(s.value, 1.5));
    }

    #[test]
    fn degenerate_pivots_terminate() {
        // A classic degenerate instance; Bland's rule must terminate.
        let mut lp = LinearProgram::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        lp.constraint(vec![0.25, -60.0, -0.04, 9.0], Cmp::Le, 0.0);
        lp.constraint(vec![0.5, -90.0, -0.02, 3.0], Cmp::Le, 0.0);
        lp.constraint(vec![0.0, 0.0, 1.0, 0.0], Cmp::Le, 1.0);
        let s = solve(&lp).unwrap_optimal();
        assert!(close(s.value, 0.05), "value {}", s.value);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y == 2 stated twice.
        let mut lp = LinearProgram::minimize(vec![1.0, 0.0]);
        lp.constraint(vec![1.0, 1.0], Cmp::Eq, 2.0);
        lp.constraint(vec![1.0, 1.0], Cmp::Eq, 2.0);
        let s = solve(&lp).unwrap_optimal();
        assert!(close(s.value, 0.0));
        assert!(close(s.x[1], 2.0));
    }

    #[test]
    fn solution_satisfies_constraints() {
        let mut lp = LinearProgram::maximize(vec![3.0, 2.0]);
        lp.constraint(vec![1.0, 1.0], Cmp::Le, 4.0);
        lp.constraint(vec![1.0, 3.0], Cmp::Le, 6.0);
        let s = solve(&lp).unwrap_optimal();
        for (coeffs, cmp, rhs) in &lp.constraints {
            let lhs: f64 = coeffs.iter().zip(&s.x).map(|(c, x)| c * x).sum();
            match cmp {
                Cmp::Le => assert!(lhs <= rhs + 1e-6),
                Cmp::Ge => assert!(lhs >= rhs - 1e-6),
                Cmp::Eq => assert!(close(lhs, *rhs)),
            }
        }
        assert!(close(s.value, 12.0), "value {}", s.value);
    }
}
