//! AGM worst-case size bounds via fractional edge cover, and the paper's
//! dual formulation (Equation 1).
//!
//! For a query hypergraph `H` with relation sizes `N_e`, the AGM bound is
//!
//! ```text
//!   |Q| <= min { Π_e N_e^{x_e}  :  x a fractional edge cover of H }
//! ```
//!
//! computed here in log space as an LP. For the uniform case `N_e = n` the
//! exponent is the fractional edge cover number `ρ*`, which by LP duality
//! equals the maximum fractional vertex packing — exactly the program the
//! paper writes in Equation 1 (maximise `Σ_a y_a` subject to
//! `Σ_{a ∈ e} y_a ≤ 1`). Both sides are exposed so tests can confirm strong
//! duality and extract the tight-instance construction of Lemma 3.2 from the
//! dual solution.

use crate::hypergraph::{AgmError, Hypergraph};
use crate::simplex::{solve, Cmp, LinearProgram, LpOutcome};

/// A fractional edge cover (primal) solution.
#[derive(Debug, Clone)]
pub struct CoverSolution {
    /// Cover weight `x_e` per edge, in edge order.
    pub weights: Vec<f64>,
    /// The objective value: `Σ_e x_e · w_e` (for [`fractional_edge_cover`]
    /// all `w_e = 1`, so this is the cover number `ρ*`).
    pub value: f64,
}

/// A fractional vertex packing (dual) solution — the paper's Equation 1.
#[derive(Debug, Clone)]
pub struct PackingSolution {
    /// Packing weight `y_a` per vertex, in vertex order.
    pub weights: Vec<f64>,
    /// The objective value `Σ_a y_a`.
    pub value: f64,
}

/// Computes the minimum fractional edge cover with unit weights: the
/// exponent `ρ*` such that the uniform-size bound is `n^{ρ*}`.
pub fn fractional_edge_cover(h: &Hypergraph) -> Result<CoverSolution, AgmError> {
    weighted_edge_cover(h, &vec![1.0; h.num_edges()])
}

/// Computes the minimum-weight fractional edge cover: minimise
/// `Σ_e x_e · w_e` subject to every vertex being covered.
///
/// With `w_e = ln N_e`, `exp(value)` is the AGM bound.
pub fn weighted_edge_cover(h: &Hypergraph, weights: &[f64]) -> Result<CoverSolution, AgmError> {
    if h.num_edges() == 0 {
        return Err(AgmError::Empty);
    }
    assert_eq!(weights.len(), h.num_edges(), "one weight per edge");
    h.check_covered()?;
    let mut lp = LinearProgram::minimize(weights.to_vec());
    for v in 0..h.num_vertices() {
        let mut row = vec![0.0; h.num_edges()];
        for (e, edge) in h.edges().iter().enumerate() {
            if edge.vertices.contains(&v) {
                row[e] = 1.0;
            }
        }
        lp.constraint(row, Cmp::Ge, 1.0);
    }
    match solve(&lp) {
        LpOutcome::Optimal(s) => Ok(CoverSolution {
            weights: s.x,
            value: s.value,
        }),
        // A covered hypergraph always has the all-ones feasible cover, and
        // non-negative weights can make the objective at worst 0-bounded;
        // negative weights (sizes < 1) could in principle drive portions
        // negative but the cover constraints keep it bounded.
        LpOutcome::Infeasible => Err(AgmError::Empty),
        LpOutcome::Unbounded => unreachable!("edge cover LP is bounded below"),
    }
}

/// Computes the maximum fractional vertex packing (the paper's Equation 1):
/// maximise `Σ_a y_a` subject to `Σ_{a ∈ e} y_a ≤ 1` per edge, `y ≥ 0`.
pub fn vertex_packing(h: &Hypergraph) -> Result<PackingSolution, AgmError> {
    if h.num_edges() == 0 {
        return Err(AgmError::Empty);
    }
    h.check_covered()?;
    let mut lp = LinearProgram::maximize(vec![1.0; h.num_vertices()]);
    for edge in h.edges() {
        let mut row = vec![0.0; h.num_vertices()];
        for &v in &edge.vertices {
            row[v] = 1.0;
        }
        lp.constraint(row, Cmp::Le, 1.0);
    }
    match solve(&lp) {
        LpOutcome::Optimal(s) => Ok(PackingSolution {
            weights: s.x,
            value: s.value,
        }),
        LpOutcome::Infeasible => unreachable!("y = 0 is always feasible"),
        LpOutcome::Unbounded => Err(AgmError::Empty),
    }
}

/// The AGM bound for the given per-edge cardinalities: `exp(min Σ x_e ln N_e)`.
///
/// Returns `0.0` if any relation is empty. For bounds beyond `f64` range the
/// result is `+∞` — callers comparing or accumulating bounds (admission
/// control, cost models) should prefer [`log_agm_bound`], which stays finite.
pub fn agm_bound(h: &Hypergraph, sizes: &[usize]) -> Result<f64, AgmError> {
    Ok(log_agm_bound(h, sizes)?.exp())
}

/// The natural logarithm of the AGM bound: the weighted-cover objective
/// `min Σ x_e ln N_e` itself, never exponentiated.
///
/// This is the overflow-robust form — a 6-atom clique over billion-tuple
/// relations has an AGM bound far beyond `f64::MAX`, but its log is a small
/// number that still orders, adds, and subtracts exactly the way a cost
/// model needs. Returns `f64::NEG_INFINITY` if any relation is empty (the
/// bound is 0).
pub fn log_agm_bound(h: &Hypergraph, sizes: &[usize]) -> Result<f64, AgmError> {
    assert_eq!(sizes.len(), h.num_edges(), "one size per edge");
    if sizes.contains(&0) {
        return Ok(f64::NEG_INFINITY);
    }
    let logs: Vec<f64> = sizes.iter().map(|&s| (s as f64).ln()).collect();
    let cover = weighted_edge_cover(h, &logs)?;
    Ok(cover.value)
}

/// The uniform-size exponent `ρ*`: the AGM bound is `n^{ρ*}` when every
/// relation has `n` tuples.
pub fn agm_exponent(h: &Hypergraph) -> Result<f64, AgmError> {
    Ok(fractional_edge_cover(h)?.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    fn triangle() -> Hypergraph {
        let mut h = Hypergraph::new();
        h.edge("R", &["a", "b"]);
        h.edge("S", &["b", "c"]);
        h.edge("T", &["a", "c"]);
        h
    }

    /// Example 3.3 of the paper: R1(B,D), R2(F,G,H) plus the transformed
    /// twig relations R3(A,B), R4(A,D), R5(C,E), R6(F,H), R7(G).
    fn example_3_3() -> Hypergraph {
        let mut h = Hypergraph::new();
        h.edge("R1", &["B", "D"]);
        h.edge("R2", &["F", "G", "H"]);
        h.edge("R3", &["A", "B"]);
        h.edge("R4", &["A", "D"]);
        h.edge("R5", &["C", "E"]);
        h.edge("R6", &["F", "H"]);
        h.edge("R7", &["G"]);
        h
    }

    /// Example 3.4 / Figure 3: R1(A,B,C,D), R2(E,F,G,H) plus the same twig.
    fn example_3_4() -> Hypergraph {
        let mut h = Hypergraph::new();
        h.edge("R1", &["A", "B", "C", "D"]);
        h.edge("R2", &["E", "F", "G", "H"]);
        h.edge("R3", &["A", "B"]);
        h.edge("R4", &["A", "D"]);
        h.edge("R5", &["C", "E"]);
        h.edge("R6", &["F", "H"]);
        h.edge("R7", &["G"]);
        h
    }

    #[test]
    fn triangle_exponent_is_three_halves() {
        assert!(close(agm_exponent(&triangle()).unwrap(), 1.5));
    }

    #[test]
    fn triangle_bound_with_sizes() {
        // All sizes n: bound n^1.5.
        let n = 64usize;
        let bound = agm_bound(&triangle(), &[n, n, n]).unwrap();
        assert!(close(bound, (n as f64).powf(1.5)));
        // Heterogeneous sizes: bound = sqrt(|R||S||T|).
        let bound = agm_bound(&triangle(), &[4, 16, 64]).unwrap();
        assert!(close(bound, (4.0f64 * 16.0 * 64.0).sqrt()));
    }

    #[test]
    fn example_3_3_mixed_bound_is_n_to_3_5() {
        // The paper: size bound of Q is n^{7/2}.
        assert!(close(agm_exponent(&example_3_3()).unwrap(), 3.5));
    }

    #[test]
    fn example_3_3_twig_only_bound_is_n_to_5() {
        // Drop R1, R2: the twig-only bound is n^5.
        let mut h = Hypergraph::new();
        h.edge("R3", &["A", "B"]);
        h.edge("R4", &["A", "D"]);
        h.edge("R5", &["C", "E"]);
        h.edge("R6", &["F", "H"]);
        h.edge("R7", &["G"]);
        assert!(close(agm_exponent(&h).unwrap(), 5.0));
    }

    #[test]
    fn example_3_4_bounds_match_paper() {
        // Q: n^2 (R1 and R2 cover everything).
        assert!(close(agm_exponent(&example_3_4()).unwrap(), 2.0));
        // Q1 (relational only): n^2.
        let mut q1 = Hypergraph::new();
        q1.edge("R1", &["A", "B", "C", "D"]);
        q1.edge("R2", &["E", "F", "G", "H"]);
        assert!(close(agm_exponent(&q1).unwrap(), 2.0));
    }

    #[test]
    fn duality_holds_on_examples() {
        for h in [triangle(), example_3_3(), example_3_4()] {
            let primal = fractional_edge_cover(&h).unwrap();
            let dual = vertex_packing(&h).unwrap();
            assert!(
                close(primal.value, dual.value),
                "primal {} != dual {}",
                primal.value,
                dual.value
            );
        }
    }

    #[test]
    fn cover_solution_is_feasible() {
        let h = example_3_3();
        let s = fractional_edge_cover(&h).unwrap();
        for v in 0..h.num_vertices() {
            let covered: f64 = h
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.vertices.contains(&v))
                .map(|(i, _)| s.weights[i])
                .sum();
            assert!(covered >= 1.0 - 1e-6, "vertex {v} covered only {covered}");
        }
    }

    #[test]
    fn packing_solution_is_feasible() {
        let h = example_3_3();
        let s = vertex_packing(&h).unwrap();
        for e in h.edges() {
            let load: f64 = e.vertices.iter().map(|&v| s.weights[v]).sum();
            assert!(load <= 1.0 + 1e-6);
        }
        assert!(s.weights.iter().all(|&y| y >= -1e-9));
    }

    #[test]
    fn empty_relation_gives_zero_bound() {
        let b = agm_bound(&triangle(), &[10, 0, 10]).unwrap();
        assert_eq!(b, 0.0);
    }

    #[test]
    fn single_edge_bound_is_its_size() {
        let mut h = Hypergraph::new();
        h.edge("R", &["a", "b"]);
        assert!(close(agm_bound(&h, &[37]).unwrap(), 37.0));
    }

    #[test]
    fn cartesian_product_bound_multiplies() {
        let mut h = Hypergraph::new();
        h.edge("R", &["a"]);
        h.edge("S", &["b"]);
        assert!(close(agm_bound(&h, &[10, 20]).unwrap(), 200.0));
    }

    #[test]
    fn log_bound_agrees_with_bound_and_survives_overflow() {
        // Where the plain bound is representable, log_agm_bound is its ln.
        let h = triangle();
        let log = log_agm_bound(&h, &[4, 16, 64]).unwrap();
        assert!(close(log.exp(), agm_bound(&h, &[4, 16, 64]).unwrap()));
        // An empty relation: bound 0, log bound -inf.
        assert_eq!(log_agm_bound(&h, &[4, 0, 64]).unwrap(), f64::NEG_INFINITY);
        assert_eq!(agm_bound(&h, &[4, 0, 64]).unwrap(), 0.0);
        // 20 independent quintillion-tuple relations: the product bound
        // (1e18)^20 overflows f64, but its log stays a small finite number.
        let mut big = Hypergraph::new();
        for i in 0..20 {
            let (name, var) = (format!("R{i}"), format!("v{i}"));
            big.edge(&name, &[var.as_str()]);
        }
        let sizes = vec![1_000_000_000_000_000_000usize; 20];
        assert_eq!(agm_bound(&big, &sizes).unwrap(), f64::INFINITY);
        let log = log_agm_bound(&big, &sizes).unwrap();
        assert!(log.is_finite());
        assert!(close(log, 20.0 * 1e18f64.ln()));
    }

    #[test]
    fn uncovered_vertex_is_an_error() {
        let mut h = Hypergraph::new();
        h.edge("R", &["a"]);
        h.vertex("b");
        assert!(agm_exponent(&h).is_err());
    }

    #[test]
    fn restricted_prefix_bounds_are_monotone_on_triangle() {
        // Prefix bounds for the order a, b, c: {a} -> n, {a,b} -> n, full -> n^1.5
        // (restriction of S to {a,b} is just... S∩{a,b}={b}; T∩={a}; R={a,b})
        let h = triangle();
        let n = 100usize;
        let b1 = {
            let r = h.restrict(&["a"]).unwrap();
            agm_bound(&r, &vec![n; r.num_edges()]).unwrap()
        };
        let b2 = {
            let r = h.restrict(&["a", "b"]).unwrap();
            agm_bound(&r, &vec![n; r.num_edges()]).unwrap()
        };
        let b3 = agm_bound(&h, &[n, n, n]).unwrap();
        assert!(close(b1, n as f64));
        assert!(close(b2, n as f64));
        assert!(close(b3, (n as f64).powf(1.5)));
    }
}
