//! Worst-case size bounds for join queries (AGM, FOCS 2008), including the
//! multi-model formulation of the paper.
//!
//! * [`simplex`] — a from-scratch two-phase primal simplex LP solver;
//! * [`hypergraph`] — query hypergraphs (attributes = vertices, relations =
//!   hyperedges), with the prefix restriction used to bound intermediate
//!   results;
//! * [`bound`] — fractional edge cover (primal) and fractional vertex
//!   packing (the paper's Equation 1, dual) with the resulting AGM bounds.

#![warn(missing_docs)]

pub mod bound;
pub mod hypergraph;
pub mod simplex;

pub use bound::{
    agm_bound, agm_exponent, fractional_edge_cover, log_agm_bound, vertex_packing,
    weighted_edge_cover, CoverSolution, PackingSolution,
};
pub use hypergraph::{AgmError, Edge, Hypergraph};
pub use simplex::{solve, Cmp, LinearProgram, LpOutcome, LpSolution};
