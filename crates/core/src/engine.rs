//! XJoin — the paper's Algorithm 1: a worst-case optimal join over
//! relational tables and XML twigs *as a whole*.
//!
//! ```text
//! S ← Sr ∪ transform(Sx)                  // atoms: tables + twig path relations
//! R ← ∅ ; A ← ∅
//! foreach p ∈ PA:
//!     E ← common values of p across S     // per-tuple leapfrog intersection
//!     filter E by relations between p and A   // implicit: candidates come
//!                                             // from trie nodes reached by A
//!     expand R by E
//!     A ← A ∪ {p}
//! filter R by validating structure of Sx  // final twig-structure check
//! ```
//!
//! Every intermediate `R` is the exact join of the atoms projected onto the
//! bound prefix, so its size obeys the AGM bound of the prefix hypergraph —
//! the paper's Lemma 3.5 (checked empirically by the test-suite and the
//! experiments harness).
//!
//! Two optional filters implement the paper's stated on-going work
//! ("filtering infeasible intermediate results and partially validating the
//! twig structure during the joining"):
//!
//! * `ad_filter` — prunes candidates violating a cut A-D edge's value pairs
//!   as soon as both endpoints are bound;
//! * `partial_validation` — runs the (memoised) structure check on bound
//!   prefixes instead of only at the end.

use crate::atoms::{collect_atoms, Atoms};
use crate::error::Result;
use crate::exec::{validate_output, EngineKind, QueryOutput};
use crate::order::{compute_order, OrderStrategy};
use crate::query::{DataContext, MultiModelQuery};
use crate::validate::TwigValidator;
use relational::leapfrog::{leapfrog_foreach, SliceCursor};
use relational::{Attr, JoinPlan, JoinStats, Relation, Schema, ValueId, ValueRange};
use std::collections::HashSet;
use std::time::Instant;
use xmldb::transform::{ad_edge_relation, decompose};

/// Configuration of an XJoin run.
#[derive(Debug, Clone, Default)]
pub struct XJoinConfig {
    /// Variable expansion priority (the paper's `PA`).
    pub order: OrderStrategy,
    /// Validate twig structure incrementally during expansion (paper's
    /// on-going-work extension) instead of only at the end.
    pub partial_validation: bool,
    /// Prune candidates using the value pairs of cut A-D edges as soon as
    /// both endpoints are bound (paper's "filtering infeasible intermediate
    /// results").
    pub ad_filter: bool,
}

/// Sentinel for "no trie level bound yet".
const NO_NODE: u32 = u32::MAX;

/// One A-D edge filter: order positions of the endpoints plus the legal
/// value pairs.
pub(crate) type AdCheck = (usize, usize, HashSet<(ValueId, ValueId)>);

/// Runs XJoin on a multi-model query: lowers the query to atoms, builds a
/// plan (constructing fresh tries), and executes it. `stats.elapsed` covers
/// the whole run — lowering, trie construction, and execution — matching
/// what [`crate::baseline::baseline`] times.
pub fn xjoin(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    cfg: &XJoinConfig,
) -> Result<QueryOutput> {
    let start = Instant::now();
    let atoms = collect_atoms(ctx, query)?;
    let order = compute_order(&atoms, &cfg.order)?;
    // Output attributes are checked here, before any trie is built, so a
    // typo'd projection fails fast instead of after the whole join.
    validate_output(query, &order)?;
    let refs = atoms.rel_refs();
    let plan = JoinPlan::new(&refs, &order)?;
    let mut out = xjoin_with_plan(ctx, query, cfg, &plan, atoms.sizes(), atoms.first_path_atom)?;
    out.stats.elapsed = start.elapsed();
    Ok(out)
}

/// Executes XJoin over an already-assembled [`JoinPlan`] (whose tries may
/// come from a shared cache — see the `xjoin-store` crate). The plan's order
/// must cover the query's variables; `atom_sizes` / `first_path_atom`
/// describe the plan's atoms as [`Atoms::sizes`] /
/// [`Atoms::first_path_atom`] would. `stats.elapsed` covers execution over
/// the given plan only — trie construction is the caller's (typically a
/// cache's) concern.
pub fn xjoin_with_plan(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    cfg: &XJoinConfig,
    plan: &JoinPlan,
    atom_sizes: Vec<(String, usize)>,
    first_path_atom: usize,
) -> Result<QueryOutput> {
    xjoin_with_plan_in_range(
        ctx,
        query,
        cfg,
        plan,
        atom_sizes,
        first_path_atom,
        &ValueRange::all(),
    )
}

/// Builds the A-D edge filters for a query under `order`: per expansion
/// level, the `(anc position, desc position, value-pair set)` checks
/// triggered at the level where the later endpoint binds. The sets are
/// immutable and depend only on the context, query, and order — the morsel
/// scheduler builds them **once** per query and shares them read-only
/// across all morsel workers (materialising each edge's value pairs is an
/// ancestor×descendant document scan, far too expensive to repeat per
/// morsel). Empty per-level vectors when `enabled` is false.
pub(crate) fn build_ad_checks(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    order: &[Attr],
    enabled: bool,
) -> Vec<Vec<AdCheck>> {
    let mut ad_checks: Vec<Vec<AdCheck>> = vec![Vec::new(); order.len()];
    if enabled {
        for twig in &query.twigs {
            let dec = decompose(twig);
            for &edge in &dec.ad_edges {
                let va = &twig.node(edge.0).var;
                let vd = &twig.node(edge.1).var;
                let pa = order
                    .iter()
                    .position(|o| o == va)
                    .expect("order covers vars");
                let pd = order
                    .iter()
                    .position(|o| o == vd)
                    .expect("order covers vars");
                let rel = ad_edge_relation(ctx.doc, ctx.index, twig, edge);
                let set: HashSet<(ValueId, ValueId)> = rel.rows().map(|r| (r[0], r[1])).collect();
                ad_checks[pa.max(pd)].push((pa, pd, set));
            }
        }
    }
    ad_checks
}

/// Range-restricted [`xjoin_with_plan`]: the level-wise expansion only
/// considers first-variable candidates inside `root`, making the run an
/// independent morsel of the full join. Over a disjoint cover of the value
/// space, per-stage intermediate counts (and results) partition exactly —
/// summing each stage across morsels reproduces the unrestricted run's
/// Lemma 3.5 series. The morsel scheduler in [`crate::morsel`] drives the
/// crate-internal body directly (sharing one set of A-D checks across
/// morsels, with a projection-free query and empty `atom_sizes` so each
/// morsel reports only its own expansion stages).
#[allow(clippy::too_many_arguments)]
pub fn xjoin_with_plan_in_range(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    cfg: &XJoinConfig,
    plan: &JoinPlan,
    atom_sizes: Vec<(String, usize)>,
    first_path_atom: usize,
    root: &ValueRange,
) -> Result<QueryOutput> {
    validate_output(query, plan.order())?;
    let ad_checks = build_ad_checks(ctx, query, plan.order(), cfg.ad_filter);
    xjoin_with_plan_body(
        ctx,
        query,
        cfg,
        plan,
        atom_sizes,
        first_path_atom,
        root,
        &ad_checks,
    )
}

/// The level-wise XJoin body over pre-built A-D checks (see
/// [`build_ad_checks`]); per-twig validators are constructed per call — they
/// carry mutable memoisation and cannot be shared across threads.
#[allow(clippy::too_many_arguments)]
pub(crate) fn xjoin_with_plan_body(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    cfg: &XJoinConfig,
    plan: &JoinPlan,
    atom_sizes: Vec<(String, usize)>,
    first_path_atom: usize,
    root: &ValueRange,
    ad_checks: &[Vec<AdCheck>],
) -> Result<QueryOutput> {
    let start = Instant::now();
    let order: Vec<Attr> = plan.order().to_vec();
    validate_output(query, &order)?;
    let mut stats = JoinStats::default();
    for (name, size) in atom_sizes.iter().skip(first_path_atom) {
        stats.record(format!("materialise {name}"), *size);
    }

    // Per-twig validators (used by partial validation and the final filter).
    let mut validators: Vec<TwigValidator<'_>> = query
        .twigs
        .iter()
        .map(|t| TwigValidator::new(ctx.doc, ctx.index, t, &order))
        .collect::<Result<_>>()?;

    let schema = Schema::new(order.iter().cloned()).expect("order vars distinct");
    let natoms = plan.tries().len();

    let (tuples, count) = if plan.has_empty_atom() {
        for var in &order {
            stats.record_var(var, 0);
        }
        (Vec::new(), 0)
    } else {
        let mut width = 0usize;
        let mut tuples: Vec<ValueId> = Vec::new();
        let mut ptrs: Vec<u32> = vec![NO_NODE; natoms];
        let mut count = 1usize;
        let mut cand: Vec<ValueId> = Vec::with_capacity(order.len());

        for (d, vp) in plan.var_plans().iter().enumerate() {
            let mut next_tuples: Vec<ValueId> = Vec::new();
            let mut next_ptrs: Vec<u32> = Vec::new();
            let mut next_count = 0usize;
            let mut range_starts: Vec<u32> = Vec::with_capacity(vp.participants.len());
            let mut cursors: Vec<SliceCursor<'_>> = Vec::with_capacity(vp.participants.len());

            for t in 0..count {
                let prefix = &tuples[t * width..t * width + width];
                let tuple_ptrs = &ptrs[t * natoms..t * natoms + natoms];
                range_starts.clear();
                cursors.clear();
                for p in &vp.participants {
                    let trie = &plan.tries()[p.atom];
                    let mut range = if p.level == 0 {
                        trie.root_range()
                    } else {
                        trie.children(p.level - 1, tuple_ptrs[p.atom])
                    };
                    if d == 0 {
                        range = root.clamp_nodes(trie, p.level, range);
                    }
                    range_starts.push(range.start);
                    cursors.push(SliceCursor::new(trie.values(p.level, range)));
                }

                leapfrog_foreach(&mut cursors, |v, cs| {
                    // "Filter E by satisfying relation between p and A":
                    // the cut A-D edges…
                    for (pa, pd, set) in &ad_checks[d] {
                        let va = if *pa == d { v } else { prefix[*pa] };
                        let vd = if *pd == d { v } else { prefix[*pd] };
                        if !set.contains(&(va, vd)) {
                            return;
                        }
                    }
                    // …and (optionally) partial structure validation.
                    if cfg.partial_validation {
                        cand.clear();
                        cand.extend_from_slice(prefix);
                        cand.push(v);
                        for val in validators.iter_mut() {
                            if val.involves_position(d) && !val.check_prefix(&cand, d + 1) {
                                return;
                            }
                        }
                    }
                    next_tuples.extend_from_slice(prefix);
                    next_tuples.push(v);
                    let base = next_ptrs.len();
                    next_ptrs.extend_from_slice(tuple_ptrs);
                    for (k, p) in vp.participants.iter().enumerate() {
                        next_ptrs[base + p.atom] = range_starts[k] + cs[k].pos() as u32;
                    }
                    next_count += 1;
                });
            }

            tuples = next_tuples;
            ptrs = next_ptrs;
            count = next_count;
            width = d + 1;
            stats.record_var(&vp.var, count);
            if count == 0 {
                for rest in &plan.var_plans()[d + 1..] {
                    stats.record_var(&rest.var, 0);
                }
                break;
            }
        }
        (tuples, count)
    };

    // Final structure validation ("Filter R by validating structure of Sx").
    let width = order.len();
    let mut result = Relation::with_capacity(schema, count);
    for t in 0..count {
        let tuple = &tuples[t * width..t * width + width];
        if validators.iter_mut().all(|v| v.check(tuple)) {
            result.push(tuple).expect("width matches arity");
        }
    }
    if !query.twigs.is_empty() {
        stats.record("validate structure", result.len());
    }

    if let Some(out_attrs) = &query.output {
        result = result.project(out_attrs)?;
    }
    stats.output_rows = result.len();
    stats.elapsed = start.elapsed();
    Ok(QueryOutput {
        results: result,
        stats,
        order,
        atom_sizes,
        engine: EngineKind::XJoin,
    })
}

/// Re-exported helper: lowers a query to its atom set without running the
/// join (the experiments harness uses this to compute bounds).
pub fn lower<'a>(ctx: &DataContext<'a>, query: &MultiModelQuery) -> Result<Atoms<'a>> {
    collect_atoms(ctx, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Database, Schema, Value};
    use xmldb::{TagIndex, XmlDocument};

    /// Figure 1 of the paper: orders table ⋈ invoice twig.
    fn bookstore() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["orderID", "userID"]),
            vec![
                vec![Value::Int(10963), Value::str("jack")],
                vec![Value::Int(20134), Value::str("tom")],
                vec![Value::Int(35768), Value::str("bob")],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("invoices");
        b.begin("orderLine");
        b.leaf("orderID", 10963i64);
        b.leaf("ISBN", "978-3-16-1");
        b.leaf("price", 30i64);
        b.leaf("discount", "0.1");
        b.end();
        b.begin("orderLine");
        b.leaf("orderID", 20134i64);
        b.leaf("ISBN", "634-3-12-2");
        b.leaf("price", 20i64);
        b.leaf("discount", "0.3");
        b.end();
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn figure_1_query_returns_expected_rows() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//invoices/orderLine[/orderID][/ISBN][/price]"])
            .unwrap()
            .with_output(&["userID", "ISBN", "price"]);
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert_eq!(out.results.len(), 2);
        let decoded = db.decode(&out.results);
        assert!(decoded.contains(&vec![
            Value::str("jack"),
            Value::str("978-3-16-1"),
            Value::Int(30)
        ]));
        assert!(decoded.contains(&vec![
            Value::str("tom"),
            Value::str("634-3-12-2"),
            Value::Int(20)
        ]));
    }

    #[test]
    fn pure_relational_query_works() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &[]).unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert_eq!(out.results.len(), 3);
    }

    #[test]
    fn pure_twig_query_works() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new::<&str>(&[], &["//orderLine/price"]).unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert_eq!(out.results.len(), 2); // ("", 30), ("", 20)
    }

    #[test]
    fn empty_query_is_an_error() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new::<&str>(&[], &[]).unwrap();
        assert!(xjoin(&ctx, &q, &XJoinConfig::default()).is_err());
    }

    #[test]
    fn validation_rejects_cross_node_combinations() {
        // Two orderLines with the same price but different ISBNs: the
        // value-level path join alone would fabricate (ISBN_1, discount_2)
        // pairs; validation must kill them.
        let mut db = Database::new();
        db.load("Dummy", Schema::of(&["price"]), vec![vec![Value::Int(30)]])
            .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("invoices");
        b.begin("orderLine");
        b.leaf("ISBN", "X");
        b.leaf("price", 30i64);
        b.end();
        b.begin("orderLine");
        b.leaf("ISBN", "Y");
        b.leaf("price", 30i64);
        b.end();
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        // Twig binds the *same* orderLine for ISBN and price; with output
        // (ISBN, price) there are exactly 2 valid combinations, not 2x2.
        let q = MultiModelQuery::new(&["Dummy"], &["//orderLine[/ISBN][/price]"])
            .unwrap()
            .with_output(&["ISBN", "price"]);
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn partial_validation_gives_same_results() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//invoices/orderLine[/orderID][/ISBN][/price]"])
            .unwrap();
        let base = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        let cfg = XJoinConfig {
            partial_validation: true,
            ad_filter: true,
            ..Default::default()
        };
        let opt = xjoin(&ctx, &q, &cfg).unwrap();
        assert!(base.results.set_eq(&opt.results));
        // Filtering can only shrink intermediates.
        assert!(opt.stats.max_intermediate() <= base.stats.max_intermediate());
    }

    #[test]
    fn ad_edges_are_enforced_by_validation() {
        // Twig //invoices//price with an A-D edge; prices exist under
        // orderLines which are under invoices -> both match; but a price
        // outside invoices must not.
        let mut db = Database::new();
        db.load(
            "Dummy",
            Schema::of(&["price"]),
            vec![vec![Value::Int(30)], vec![Value::Int(99)]],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("root");
        b.begin("invoices");
        b.begin("orderLine");
        b.leaf("price", 30i64);
        b.end();
        b.end();
        b.leaf("price", 99i64); // outside invoices
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["Dummy"], &["//invoices//price"])
            .unwrap()
            .with_output(&["price"]);
        for cfg in [
            XJoinConfig::default(),
            XJoinConfig {
                ad_filter: true,
                ..Default::default()
            },
            XJoinConfig {
                partial_validation: true,
                ..Default::default()
            },
        ] {
            let out = xjoin(&ctx, &q, &cfg).unwrap();
            assert_eq!(out.results.len(), 1, "cfg {cfg:?}");
            let decoded = db.decode(&out.results);
            assert_eq!(decoded[0][0], Value::Int(30));
        }
    }

    #[test]
    fn stats_track_every_stage() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//orderLine/orderID"]).unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        // Stages: materialise path, 4 vars, validate.
        let labels: Vec<&str> = out.stats.stages.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.starts_with("materialise")));
        assert!(labels.iter().any(|l| l.starts_with("expand")));
        assert!(labels.last().unwrap().starts_with("validate"));
        assert_eq!(out.stats.output_rows, out.results.len());
    }
}
