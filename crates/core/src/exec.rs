//! The unified execution API: **one** way to build and run a multi-model
//! query on **any** join engine.
//!
//! Historically every engine had its own entry point, configuration, and
//! output type (`xjoin`, the callback-only `xjoin_stream`, `baseline` with
//! `BaselineConfig`, and the relational crate's `lftj_join` /
//! `generic_join` / `multiway_hash_join`). This module folds them behind
//! three pieces:
//!
//! * [`EngineKind`] + [`ExecOptions`] — *what* to run and *how*: the engine
//!   selector, the variable-order strategy, the optional XJoin filters, and
//!   a `limit`;
//! * [`Engine`] — the `prepare` / `execute` / `stream` contract every engine
//!   implements. `prepare` validates (unknown relations, bad orders,
//!   unknown output attributes) *before any trie is built*; `execute`
//!   materialises one [`QueryOutput`]; `stream` returns a pull-based
//!   [`Rows`] iterator (engines that cannot stream lazily materialise
//!   first — only their `Rows` wrapper differs, never the result set);
//! * [`QueryBuilder`] / [`Query`] — one construction surface for MMQL text
//!   and programmatic queries, carrying the options alongside the query.
//!
//! Every engine returns the same result *set* on the same query (the
//! `engine_equivalence` and `exec_api` integration suites enforce this);
//! they differ in intermediate behaviour: the level-wise engines obey the
//! paper's Lemma 3.5 per-prefix bounds, the streaming engines enumerate in
//! constant memory with true `LIMIT` pushdown, and the baseline exhibits
//! exactly the per-model blow-up the paper measures.
//!
//! ```
//! use relational::{Database, Schema, Value};
//! use xjoin_core::{DataContext, EngineKind, QueryBuilder};
//! use xmldb::{parse_xml, TagIndex};
//!
//! let mut db = Database::new();
//! db.load("orders", Schema::of(&["orderID", "userID"]), vec![
//!     vec![Value::Int(1), Value::str("jack")],
//! ]).unwrap();
//! let mut dict = db.dict().clone();
//! let doc = parse_xml("<lines><line><orderID>1</orderID><price>30</price></line></lines>", &mut dict).unwrap();
//! *db.dict_mut() = dict;
//! let index = TagIndex::build(&doc);
//! let ctx = DataContext::new(&db, &doc, &index);
//!
//! let query = QueryBuilder::mmql("Q(userID, price) :- orders(orderID, userID), //line[/orderID][/price]")
//!     .unwrap()
//!     .engine(EngineKind::XJoinStream)
//!     .limit(10)
//!     .build()
//!     .unwrap();
//! let out = query.execute(&ctx).unwrap();
//! assert_eq!(out.results.len(), 1);
//! let rows: Vec<_> = query.rows(&ctx).unwrap().collect();
//! assert_eq!(rows.len(), 1);
//! ```

use crate::atoms::{collect_atoms, Atoms};
use crate::baseline::{baseline, BaselineConfig, RelAlg, XmlAlg};
use crate::engine::{xjoin_with_plan, XJoinConfig};
use crate::error::{CoreError, Result};
use crate::mmql::parse_query_with_options;
use crate::morsel::{execute_parallel, Parallelism};
use crate::order::{compute_order, OrderStrategy};
use crate::query::{variables_of, DataContext, MultiModelQuery, RelAtom, Term};
use crate::stream::{stream_with_plan, Rows};
use crate::validate::TwigValidator;
use relational::generic::levelwise_join;
use relational::hashjoin::multiway_hash_join;
use relational::lftj::lftj_in_range_counted;
use relational::{Attr, JoinPlan, JoinStats, Relation, ValueRange};
use std::fmt;
use std::time::Instant;
use xmldb::TwigPattern;

/// Selects which join engine executes a query. Every kind accepts the full
/// multi-model query language: the relational engines run over the same
/// lowered atom set (tables ∪ twig path relations) as XJoin, followed by
/// the same twig-structure validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The paper's Algorithm 1: level-wise worst-case optimal XJoin,
    /// materialising (and bounding) every intermediate. Honours
    /// [`ExecOptions::partial_validation`] and [`ExecOptions::ad_filter`].
    #[default]
    XJoin,
    /// Depth-first streaming XJoin: same atom set, LFTJ-style enumeration
    /// with per-tuple structure validation. The engine behind true
    /// `limit` pushdown — its [`Rows`] stop the trie walk after `k` rows.
    XJoinStream,
    /// Raw Leapfrog Triejoin over the lowered atoms, validating the twig
    /// structure *after* full enumeration (the relational engine wrapped
    /// for multi-model queries).
    Lftj,
    /// The relational crate's level-wise generic join over the lowered
    /// atoms (no A-D filtering / partial validation), then validation.
    Generic,
    /// Classical pairwise hash joins along a greedy left-deep plan over the
    /// lowered atoms, then validation. Not worst-case optimal — included as
    /// the conventional comparator.
    HashJoin,
    /// The paper's per-model baseline: Q1 with a relational engine, Q2 per
    /// twig with an XML engine, merged at the value level.
    Baseline {
        /// Engine for the relational part.
        rel_alg: RelAlg,
        /// Engine for each twig.
        xml_alg: XmlAlg,
    },
}

impl EngineKind {
    /// Every engine kind, baseline `RelAlg`×`XmlAlg` combinations included
    /// (the cross-engine equivalence tests sweep this list).
    pub fn all() -> Vec<EngineKind> {
        let mut kinds = vec![
            EngineKind::XJoin,
            EngineKind::XJoinStream,
            EngineKind::Lftj,
            EngineKind::Generic,
            EngineKind::HashJoin,
        ];
        for rel_alg in [RelAlg::Hash, RelAlg::Lftj] {
            for xml_alg in [XmlAlg::TwigStack, XmlAlg::Navigational, XmlAlg::Tjfast] {
                kinds.push(EngineKind::Baseline { rel_alg, xml_alg });
            }
        }
        kinds
    }

    /// Whether this engine executes from a pre-assembled trie [`JoinPlan`]
    /// (and can therefore be served by the `xjoin-store` cache). The
    /// baseline and the hash join consume raw relations instead.
    pub fn is_plan_based(&self) -> bool {
        matches!(
            self,
            EngineKind::XJoin | EngineKind::XJoinStream | EngineKind::Lftj | EngineKind::Generic
        )
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::XJoin => write!(f, "xjoin"),
            EngineKind::XJoinStream => write!(f, "xjoin-stream"),
            EngineKind::Lftj => write!(f, "lftj"),
            EngineKind::Generic => write!(f, "generic"),
            EngineKind::HashJoin => write!(f, "hash"),
            EngineKind::Baseline { rel_alg, xml_alg } => {
                write!(f, "baseline({rel_alg:?},{xml_alg:?})")
            }
        }
    }
}

/// Everything about *how* to run a query, engine choice included — the
/// union of the historical `XJoinConfig` / `BaselineConfig` knobs plus
/// `limit`, under one roof.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Which engine runs the query.
    pub engine: EngineKind,
    /// Variable expansion priority (the paper's `PA`); ignored by the
    /// baseline, which has no global order.
    pub order: OrderStrategy,
    /// Validate twig structure incrementally during expansion
    /// ([`EngineKind::XJoin`] only).
    pub partial_validation: bool,
    /// Prune candidates via cut A-D edge value pairs
    /// ([`EngineKind::XJoin`] only).
    pub ad_filter: bool,
    /// Stop after this many result rows. Streaming engines push the limit
    /// into the trie walk; materialising engines truncate their result —
    /// and under parallel execution, workers observe the emitted-row count
    /// and abandon their walks once the limit is reached.
    pub limit: Option<usize>,
    /// Intra-query parallelism of the plan-based engines: the top join
    /// attribute's value domain is split into morsels executed on a thread
    /// pool (see [`crate::morsel`]). Ignored by the baseline and the hash
    /// join, which always run serially. Results are identical to serial
    /// execution whatever the setting.
    pub parallelism: Parallelism,
    /// Allow a parallel [`Rows`] stream to yield tuples in worker arrival
    /// order instead of the deterministic serial order (morsels concatenated
    /// in domain order). Only observable with
    /// [`EngineKind::XJoinStream`]'s streaming path under parallel
    /// execution; materialised outputs always merge deterministically.
    pub unordered: bool,
}

impl ExecOptions {
    /// Options running `engine` with all defaults.
    pub fn for_engine(engine: EngineKind) -> ExecOptions {
        ExecOptions {
            engine,
            ..ExecOptions::default()
        }
    }

    /// The XJoin engine-body configuration embedded in these options.
    pub fn xjoin_config(&self) -> XJoinConfig {
        XJoinConfig {
            order: self.order.clone(),
            partial_validation: self.partial_validation,
            ad_filter: self.ad_filter,
        }
    }
}

/// The one output type every engine returns.
#[derive(Debug)]
pub struct QueryOutput {
    /// The query result (schema = output attributes, or the full variable
    /// layout when the query has no explicit output list).
    pub results: Relation,
    /// Per-stage intermediate sizes and timings.
    pub stats: JoinStats,
    /// Layout of the *unprojected* result tuples: the engine's global
    /// variable order (for the baseline, its merge layout).
    pub order: Vec<Attr>,
    /// `(name, cardinality)` of every lowered atom, path relations included
    /// (empty for the baseline, which does not lower twigs).
    pub atom_sizes: Vec<(String, usize)>,
    /// The engine that produced this output.
    pub engine: EngineKind,
}

/// An engine-agnostic description of a validated, resolvable query — what
/// [`Engine::prepare`] returns. Producing one proves the query will not fail
/// resolution: relations exist, terms match arities, the order covers every
/// variable, and all output attributes are query variables.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    /// The engine the plan was prepared for.
    pub engine: EngineKind,
    /// The global variable order execution will use.
    pub order: Vec<Attr>,
    /// `(name, cardinality)` of every lowered atom.
    pub atom_sizes: Vec<(String, usize)>,
    /// The validated output projection (`None` = all variables).
    pub output: Option<Vec<Attr>>,
}

/// The contract every join engine implements. Obtain an implementation via
/// [`engine_for`], or skip the trait entirely with the [`execute`] /
/// [`stream`] free functions (or [`Query::execute`] / [`Query::rows`]).
pub trait Engine {
    /// Which [`EngineKind`] this engine is.
    fn kind(&self) -> EngineKind;

    /// Resolves and validates the query without executing it: unknown
    /// relations, arity mismatches, unusable orders, and unknown output
    /// attributes all error **here**, before any trie is built.
    fn prepare(
        &self,
        ctx: &DataContext<'_>,
        query: &MultiModelQuery,
        opts: &ExecOptions,
    ) -> Result<ExecPlan> {
        let (atoms, order) = resolve(ctx, query, opts)?;
        Ok(ExecPlan {
            engine: self.kind(),
            order,
            atom_sizes: atoms.sizes(),
            output: query.output.clone(),
        })
    }

    /// Runs the query to completion, materialising one [`QueryOutput`].
    fn execute(
        &self,
        ctx: &DataContext<'_>,
        query: &MultiModelQuery,
        opts: &ExecOptions,
    ) -> Result<QueryOutput>;

    /// Returns a pull-based [`Rows`] iterator over the query's results.
    /// The default materialises via [`Engine::execute`] and iterates the
    /// buffer; streaming engines override this with true lazy enumeration.
    fn stream<'a>(
        &self,
        ctx: &DataContext<'a>,
        query: &'a MultiModelQuery,
        opts: &ExecOptions,
    ) -> Result<Rows<'a>> {
        let out = self.execute(ctx, query, opts)?;
        Ok(Rows::from_relation(out.results, out.order))
    }
}

/// Checks that every output attribute is a query variable. Engines (and
/// external preparers like `xjoin-store`) call this during preparation so
/// projection errors surface before execution — never after a join has run.
pub fn validate_output(query: &MultiModelQuery, vars: &[Attr]) -> Result<()> {
    if let Some(out) = &query.output {
        for a in out {
            if !vars.contains(a) {
                return Err(CoreError::UnknownAttribute(a.name().to_owned()));
            }
        }
    }
    Ok(())
}

/// Shared resolution front half: lower the query, fix the order, and
/// validate the output projection — no tries are built.
fn resolve<'a>(
    ctx: &DataContext<'a>,
    query: &MultiModelQuery,
    opts: &ExecOptions,
) -> Result<(Atoms<'a>, Vec<Attr>)> {
    let atoms = {
        let _span = xjoin_obs::span("resolve");
        collect_atoms(ctx, query)?
    };
    let order = {
        let mut span = xjoin_obs::span("order");
        let order = compute_order(&atoms, &opts.order)?;
        span.set_attr(|| order.iter().map(|a| a.name()).collect::<Vec<_>>().join(","));
        order
    };
    validate_output(query, &order)?;
    Ok((atoms, order))
}

/// Shared back half for the relational engines: validate twig structure on
/// the full-width result, project, apply the limit, and assemble the
/// [`QueryOutput`]. `rel`'s schema must be laid out per `order`. The morsel
/// scheduler reuses it to merge parallel runs identically to serial ones.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    order: Vec<Attr>,
    mut rel: Relation,
    mut stats: JoinStats,
    atom_sizes: Vec<(String, usize)>,
    opts: &ExecOptions,
    engine: EngineKind,
    start: Instant,
) -> Result<QueryOutput> {
    if !query.twigs.is_empty() {
        let mut validators: Vec<TwigValidator<'_>> = query
            .twigs
            .iter()
            .map(|t| TwigValidator::new(ctx.doc, ctx.index, t, &order))
            .collect::<Result<_>>()?;
        let mut valid = Relation::with_capacity(rel.schema().clone(), rel.len());
        for tuple in rel.rows() {
            if validators.iter_mut().all(|v| v.check(tuple)) {
                valid.push(tuple).expect("same schema");
            }
        }
        rel = valid;
        stats.record("validate structure", rel.len());
    }
    if let Some(out_attrs) = &query.output {
        rel = rel.project(out_attrs)?;
    }
    if let Some(k) = opts.limit {
        rel.truncate(k);
    }
    stats.output_rows = rel.len();
    stats.elapsed = start.elapsed();
    Ok(QueryOutput {
        results: rel,
        stats,
        order,
        atom_sizes,
        engine,
    })
}

/// Drains a walk-backed [`Rows`] into a materialised [`QueryOutput`] — the
/// shared execute path of the streaming engine, plan-assembled or not.
pub(crate) fn drain_rows(
    mut rows: Rows<'_>,
    order: Vec<Attr>,
    atom_sizes: Vec<(String, usize)>,
    engine: EngineKind,
    start: Instant,
) -> Result<QueryOutput> {
    let mut rel = Relation::new(rows.schema().clone());
    for row in rows.by_ref() {
        rel.push(&row).map_err(CoreError::from)?;
    }
    // No stage records: the streaming engine materialises nothing, so its
    // `max_intermediate()` is honestly zero — the walk's work counter lives
    // in [`crate::stream::RowsStats::visited`], not in the Lemma 3.5 axis.
    let stats = JoinStats {
        output_rows: rel.len(),
        elapsed: start.elapsed(),
        ..JoinStats::default()
    };
    Ok(QueryOutput {
        results: rel,
        stats,
        order,
        atom_sizes,
        engine,
    })
}

/// The shared execute body of every plan-based engine: resolve, build a
/// fresh trie plan, and delegate to [`execute_with_plan`] (so the per-kind
/// wiring exists exactly once). `stats.elapsed` is restamped to cover the
/// whole run — lowering and trie construction included — and
/// `stats.build_elapsed` / `stats.tries_built` carry the plan's
/// trie-construction bill so callers can split cold latency into build vs
/// probe.
fn execute_fresh_plan(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    opts: &ExecOptions,
    kind: EngineKind,
) -> Result<QueryOutput> {
    let start = Instant::now();
    let opts = ExecOptions {
        engine: kind,
        ..opts.clone()
    };
    let (atoms, order) = resolve(ctx, query, &opts)?;
    let plan = {
        let mut span = xjoin_obs::span("plan-build");
        let plan = JoinPlan::new(&atoms.rel_refs(), &order)?.with_ladder(opts.order.ladder());
        span.set_attr(|| format!("tries_built={}", plan.tries_built()));
        plan
    };
    let mut out = execute_with_plan(
        ctx,
        query,
        &opts,
        &plan,
        atoms.sizes(),
        atoms.first_path_atom,
    )?;
    out.stats.elapsed = start.elapsed();
    out.stats.build_elapsed = plan.build_elapsed();
    out.stats.tries_built = plan.tries_built();
    out.stats.bitset_levels = plan.tries().iter().map(|t| t.bitset_level_count()).sum();
    Ok(out)
}

/// Truncates a materialised output to the options' limit.
fn apply_limit(out: &mut QueryOutput, opts: &ExecOptions) {
    if let Some(k) = opts.limit {
        if out.results.len() > k {
            out.results.truncate(k);
            out.stats.output_rows = out.results.len();
        }
    }
}

/// The level-wise XJoin engine ([`EngineKind::XJoin`], Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct LevelWiseXJoin;

impl Engine for LevelWiseXJoin {
    fn kind(&self) -> EngineKind {
        EngineKind::XJoin
    }

    fn execute(
        &self,
        ctx: &DataContext<'_>,
        query: &MultiModelQuery,
        opts: &ExecOptions,
    ) -> Result<QueryOutput> {
        execute_fresh_plan(ctx, query, opts, self.kind())
    }
}

/// The depth-first streaming XJoin engine ([`EngineKind::XJoinStream`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamingXJoin;

impl Engine for StreamingXJoin {
    fn kind(&self) -> EngineKind {
        EngineKind::XJoinStream
    }

    fn execute(
        &self,
        ctx: &DataContext<'_>,
        query: &MultiModelQuery,
        opts: &ExecOptions,
    ) -> Result<QueryOutput> {
        execute_fresh_plan(ctx, query, opts, self.kind())
    }

    fn stream<'a>(
        &self,
        ctx: &DataContext<'a>,
        query: &'a MultiModelQuery,
        opts: &ExecOptions,
    ) -> Result<Rows<'a>> {
        let (atoms, order) = resolve(ctx, query, opts)?;
        let plan = {
            let _span = xjoin_obs::span("plan-build");
            JoinPlan::new(&atoms.rel_refs(), &order)?.with_ladder(opts.order.ladder())
        };
        stream_with_plan(ctx, query, plan, opts)
    }
}

/// Raw LFTJ over the lowered atoms ([`EngineKind::Lftj`]): enumerate fully,
/// then validate.
#[derive(Debug, Clone, Copy, Default)]
pub struct LftjEngine;

impl Engine for LftjEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Lftj
    }

    fn execute(
        &self,
        ctx: &DataContext<'_>,
        query: &MultiModelQuery,
        opts: &ExecOptions,
    ) -> Result<QueryOutput> {
        execute_fresh_plan(ctx, query, opts, self.kind())
    }
}

/// The relational level-wise generic join ([`EngineKind::Generic`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GenericEngine;

impl Engine for GenericEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Generic
    }

    fn execute(
        &self,
        ctx: &DataContext<'_>,
        query: &MultiModelQuery,
        opts: &ExecOptions,
    ) -> Result<QueryOutput> {
        execute_fresh_plan(ctx, query, opts, self.kind())
    }
}

/// Pairwise hash joins over the lowered atoms ([`EngineKind::HashJoin`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct HashJoinEngine;

impl Engine for HashJoinEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::HashJoin
    }

    fn execute(
        &self,
        ctx: &DataContext<'_>,
        query: &MultiModelQuery,
        opts: &ExecOptions,
    ) -> Result<QueryOutput> {
        let start = Instant::now();
        let (atoms, order) = resolve(ctx, query, opts)?;
        let atom_sizes = atoms.sizes();
        let refs = atoms.rel_refs();
        let (joined, mut stats) = multiway_hash_join(&refs)?;
        // Reorder the natural-join layout into the global order so the
        // shared validation/projection back half applies.
        let full = joined.project(&order)?;
        stats.record("reorder to global order", full.len());
        finish(
            ctx,
            query,
            order,
            full,
            stats,
            atom_sizes,
            opts,
            self.kind(),
            start,
        )
    }
}

/// The paper's per-model baseline ([`EngineKind::Baseline`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineEngine {
    /// Which relational / XML engine combination to run.
    pub config: BaselineConfig,
}

impl Engine for BaselineEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Baseline {
            rel_alg: self.config.rel_alg,
            xml_alg: self.config.xml_alg,
        }
    }

    /// The baseline never lowers twigs to path relations, so its prepare
    /// skips the default's lowering too: resolve the relational atoms,
    /// union in the twig variables, and validate the projection — no
    /// per-path document scans.
    fn prepare(
        &self,
        ctx: &DataContext<'_>,
        query: &MultiModelQuery,
        _opts: &ExecOptions,
    ) -> Result<ExecPlan> {
        if query.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        let resolved = ctx.resolve_atoms(query)?;
        let vars = variables_of(&resolved, &query.twigs);
        if vars.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        validate_output(query, &vars)?;
        let atom_sizes = query
            .relations
            .iter()
            .zip(&resolved)
            .map(|(atom, rel)| (atom.name.clone(), rel.rel().len()))
            .collect();
        Ok(ExecPlan {
            engine: self.kind(),
            order: vars,
            atom_sizes,
            output: query.output.clone(),
        })
    }

    fn execute(
        &self,
        ctx: &DataContext<'_>,
        query: &MultiModelQuery,
        opts: &ExecOptions,
    ) -> Result<QueryOutput> {
        let mut out = baseline(ctx, query, &self.config)?;
        apply_limit(&mut out, opts);
        Ok(out)
    }
}

/// Returns the engine implementing `kind`.
pub fn engine_for(kind: EngineKind) -> Box<dyn Engine> {
    match kind {
        EngineKind::XJoin => Box::new(LevelWiseXJoin),
        EngineKind::XJoinStream => Box::new(StreamingXJoin),
        EngineKind::Lftj => Box::new(LftjEngine),
        EngineKind::Generic => Box::new(GenericEngine),
        EngineKind::HashJoin => Box::new(HashJoinEngine),
        EngineKind::Baseline { rel_alg, xml_alg } => Box::new(BaselineEngine {
            config: BaselineConfig { rel_alg, xml_alg },
        }),
    }
}

/// Executes `query` on the engine selected by `opts` — the single blessed
/// entry point for one-shot execution.
pub fn execute(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    opts: &ExecOptions,
) -> Result<QueryOutput> {
    engine_for(opts.engine).execute(ctx, query, opts)
}

/// Streams `query` on the engine selected by `opts`, returning the
/// pull-based [`Rows`] iterator.
pub fn stream<'a>(
    ctx: &DataContext<'a>,
    query: &'a MultiModelQuery,
    opts: &ExecOptions,
) -> Result<Rows<'a>> {
    engine_for(opts.engine).stream(ctx, query, opts)
}

/// Executes a **plan-based** engine over an already-assembled [`JoinPlan`]
/// (whose tries typically come from the `xjoin-store` cache). Supports
/// exactly the kinds for which [`EngineKind::is_plan_based`] is true; the
/// baseline and the hash join error with [`CoreError::Unsupported`] since
/// they do not consume trie plans. `atom_sizes` / `first_path_atom`
/// describe the plan's atoms as [`Atoms::sizes`] /
/// [`Atoms::first_path_atom`] would.
///
/// When [`ExecOptions::parallelism`] resolves to more than one worker, the
/// execution routes through the morsel scheduler (see [`crate::morsel`]):
/// the first variable's domain is partitioned and each part runs as an
/// independent sub-join on a thread pool, with per-morsel outputs (and
/// per-stage stats) merged in domain order — results are identical to a
/// serial run. Zero-variable plans always run serially.
pub fn execute_with_plan(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    opts: &ExecOptions,
    plan: &JoinPlan,
    atom_sizes: Vec<(String, usize)>,
    first_path_atom: usize,
) -> Result<QueryOutput> {
    let start = Instant::now();
    let mut exec_span = xjoin_obs::span("execute");
    exec_span.set_attr(|| opts.engine.to_string());
    if opts.engine.is_plan_based() && opts.parallelism.workers() > 1 && !plan.var_plans().is_empty()
    {
        return execute_parallel(ctx, query, opts, plan, atom_sizes, first_path_atom);
    }
    match opts.engine {
        EngineKind::XJoin => {
            let mut out = xjoin_with_plan(
                ctx,
                query,
                &opts.xjoin_config(),
                plan,
                atom_sizes,
                first_path_atom,
            )?;
            apply_limit(&mut out, opts);
            Ok(out)
        }
        EngineKind::XJoinStream => {
            let rows = Rows::from_walk(ctx, query, plan.clone(), opts.limit)?;
            drain_rows(rows, plan.order().to_vec(), atom_sizes, opts.engine, start)
        }
        EngineKind::Lftj => {
            validate_output(query, plan.order())?;
            let (raw, counters) = lftj_in_range_counted(plan, &ValueRange::all());
            let mut stats = JoinStats {
                reorders: counters.reorders,
                estimate_probes: counters.estimate_probes,
                ..JoinStats::default()
            };
            stats.record("lftj enumerate", raw.len());
            finish(
                ctx,
                query,
                plan.order().to_vec(),
                raw,
                stats,
                atom_sizes,
                opts,
                opts.engine,
                start,
            )
        }
        EngineKind::Generic => {
            validate_output(query, plan.order())?;
            let (raw, stats) = levelwise_join(plan);
            finish(
                ctx,
                query,
                plan.order().to_vec(),
                raw,
                stats,
                atom_sizes,
                opts,
                opts.engine,
                start,
            )
        }
        kind @ (EngineKind::HashJoin | EngineKind::Baseline { .. }) => Err(CoreError::Unsupported(
            format!("engine `{kind}` does not execute from a trie plan"),
        )),
    }
}

/// Builds multi-model queries — MMQL text or programmatic atoms — together
/// with their [`ExecOptions`], replacing the historical per-engine
/// constructors. Construction methods never fail mid-chain: the first error
/// (e.g. a bad twig expression) is remembered and returned by
/// [`QueryBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    query: MultiModelQuery,
    options: ExecOptions,
    deferred: Option<CoreError>,
}

impl QueryBuilder {
    /// An empty builder (add atoms with [`QueryBuilder::relation`] /
    /// [`QueryBuilder::twig`]).
    pub fn new() -> QueryBuilder {
        QueryBuilder {
            query: MultiModelQuery {
                relations: Vec::new(),
                twigs: Vec::new(),
                output: None,
            },
            options: ExecOptions::default(),
            deferred: None,
        }
    }

    /// Seeds a builder from an MMQL query string (head = output). A trailing
    /// `WITH ORDER <strategy>` clause, when present, seeds the builder's
    /// [`OrderStrategy`] (see [`parse_query_with_options`]).
    pub fn mmql(text: &str) -> Result<QueryBuilder> {
        let (query, order) = parse_query_with_options(text)?;
        let mut options = ExecOptions::default();
        if let Some(order) = order {
            options.order = order;
        }
        Ok(QueryBuilder {
            query,
            options,
            deferred: None,
        })
    }

    /// Seeds a builder from an existing [`MultiModelQuery`].
    pub fn from_query(query: MultiModelQuery) -> QueryBuilder {
        QueryBuilder {
            query,
            options: ExecOptions::default(),
            deferred: None,
        }
    }

    /// Adds a relational atom using the stored schema unchanged.
    pub fn relation(mut self, name: &str) -> Self {
        self.query.relations.push(RelAtom::plain(name));
        self
    }

    /// Adds a relational atom with its columns rebound positionally.
    pub fn relation_as(mut self, name: &str, vars: &[&str]) -> Self {
        self.query.relations.push(RelAtom::renamed(
            name,
            vars.iter().map(|&v| Attr::new(v)).collect(),
        ));
        self
    }

    /// Adds a relational atom with arbitrary positional terms (variables,
    /// constants, repeated variables).
    pub fn relation_terms(mut self, name: &str, terms: Vec<Term>) -> Self {
        self.query.relations.push(RelAtom::with_terms(name, terms));
        self
    }

    /// Adds a twig atom from an XPath-like expression. A parse error is
    /// deferred to [`QueryBuilder::build`].
    pub fn twig(mut self, expr: &str) -> Self {
        match TwigPattern::parse(expr) {
            Ok(t) => self.query.twigs.push(t),
            Err(e) => {
                self.deferred.get_or_insert(CoreError::Twig(e));
            }
        }
        self
    }

    /// Restricts the output schema (the MMQL head).
    pub fn output(mut self, attrs: &[&str]) -> Self {
        self.query.output = Some(attrs.iter().map(|&a| Attr::new(a)).collect());
        self
    }

    /// Selects the engine.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.options.engine = engine;
        self
    }

    /// Sets the variable-order strategy.
    pub fn order(mut self, order: OrderStrategy) -> Self {
        self.options.order = order;
        self
    }

    /// Shorthand for [`OrderStrategy::Adaptive`] with the given ladder rung.
    pub fn adaptive(self, ladder: relational::Ladder) -> Self {
        self.order(OrderStrategy::Adaptive { ladder })
    }

    /// Enables partial twig validation during expansion (XJoin only).
    pub fn partial_validation(mut self, on: bool) -> Self {
        self.options.partial_validation = on;
        self
    }

    /// Enables A-D edge filtering (XJoin only).
    pub fn ad_filter(mut self, on: bool) -> Self {
        self.options.ad_filter = on;
        self
    }

    /// Stops after `k` result rows (pushed into the trie walk by streaming
    /// engines).
    pub fn limit(mut self, k: usize) -> Self {
        self.options.limit = Some(k);
        self
    }

    /// Sets the intra-query parallelism of the plan-based engines (see
    /// [`Parallelism`]).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.options.parallelism = parallelism;
        self
    }

    /// Allows a parallel stream to yield rows in worker arrival order
    /// instead of the deterministic serial order.
    pub fn unordered(mut self, on: bool) -> Self {
        self.options.unordered = on;
        self
    }

    /// Replaces the whole option set at once.
    pub fn options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Finalises the builder, surfacing any deferred construction error and
    /// rejecting atom-less queries.
    pub fn build(self) -> Result<Query> {
        if let Some(e) = self.deferred {
            return Err(e);
        }
        if self.query.is_empty() {
            return Err(CoreError::EmptyQuery);
        }
        Ok(Query {
            query: self.query,
            options: self.options,
        })
    }
}

/// A built query: the [`MultiModelQuery`] plus its [`ExecOptions`], ready
/// to run against any [`DataContext`].
#[derive(Debug, Clone)]
pub struct Query {
    /// The query itself.
    pub query: MultiModelQuery,
    /// How (and on which engine) to run it.
    pub options: ExecOptions,
}

impl Query {
    /// Validates the query against `ctx` without executing (see
    /// [`Engine::prepare`]).
    pub fn prepare(&self, ctx: &DataContext<'_>) -> Result<ExecPlan> {
        engine_for(self.options.engine).prepare(ctx, &self.query, &self.options)
    }

    /// Runs the query to completion on the selected engine.
    pub fn execute(&self, ctx: &DataContext<'_>) -> Result<QueryOutput> {
        execute(ctx, &self.query, &self.options)
    }

    /// Streams the query's results as a pull-based [`Rows`] iterator.
    pub fn rows<'a>(&'a self, ctx: &DataContext<'a>) -> Result<Rows<'a>> {
        stream(ctx, &self.query, &self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Database, Schema, Value};
    use xmldb::{TagIndex, XmlDocument};

    fn bookstore() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["orderID", "userID"]),
            vec![
                vec![Value::Int(1), Value::str("jack")],
                vec![Value::Int(2), Value::str("tom")],
                vec![Value::Int(3), Value::str("bob")],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("lines");
        for (oid, price) in [(1i64, 30i64), (2, 20), (9, 99)] {
            b.begin("line");
            b.leaf("orderID", oid);
            b.leaf("price", price);
            b.end();
        }
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn every_engine_kind_executes_the_same_query() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let query = MultiModelQuery::new(&["R"], &["//line[/orderID][/price]"])
            .unwrap()
            .with_output(&["userID", "price"]);
        let reference = execute(&ctx, &query, &ExecOptions::default()).unwrap();
        assert_eq!(reference.results.len(), 2);
        for kind in EngineKind::all() {
            let out = execute(&ctx, &query, &ExecOptions::for_engine(kind)).unwrap();
            assert!(
                out.results.set_eq(&reference.results),
                "engine {kind} diverged"
            );
            assert_eq!(out.engine, kind);
        }
    }

    #[test]
    fn unknown_output_attribute_errors_at_prepare() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let query = MultiModelQuery::new(&["R"], &["//line/orderID"])
            .unwrap()
            .with_output(&["nonexistent"]);
        for kind in EngineKind::all() {
            let engine = engine_for(kind);
            assert!(
                matches!(
                    engine.prepare(&ctx, &query, &ExecOptions::for_engine(kind)),
                    Err(CoreError::UnknownAttribute(a)) if a == "nonexistent"
                ),
                "engine {kind} did not reject at prepare"
            );
            assert!(
                matches!(
                    engine.execute(&ctx, &query, &ExecOptions::for_engine(kind)),
                    Err(CoreError::UnknownAttribute(_))
                ),
                "engine {kind} did not reject at execute"
            );
        }
    }

    #[test]
    fn limit_truncates_every_engine() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let query = MultiModelQuery::new(&["R"], &[]).unwrap();
        for kind in EngineKind::all() {
            let opts = ExecOptions {
                engine: kind,
                limit: Some(2),
                ..Default::default()
            };
            let out = execute(&ctx, &query, &opts).unwrap();
            assert_eq!(out.results.len(), 2, "engine {kind}");
        }
    }

    #[test]
    fn parallel_execution_matches_serial_for_every_plan_based_kind() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let query = MultiModelQuery::new(&["R"], &["//line[/orderID][/price]"])
            .unwrap()
            .with_output(&["userID", "price"]);
        for kind in EngineKind::all().into_iter().filter(|k| k.is_plan_based()) {
            let serial = execute(&ctx, &query, &ExecOptions::for_engine(kind)).unwrap();
            let parallel = execute(
                &ctx,
                &query,
                &ExecOptions {
                    engine: kind,
                    parallelism: Parallelism::Threads(3),
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                parallel.results.set_eq(&serial.results),
                "engine {kind} diverged under parallel execution"
            );
            assert_eq!(parallel.results.len(), serial.results.len());
            assert_eq!(
                parallel.stats.max_intermediate(),
                serial.stats.max_intermediate(),
                "engine {kind}: summed morsel stages must equal serial stages"
            );
        }
    }

    #[test]
    fn parallel_limit_truncates_like_serial() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let query = MultiModelQuery::new(&["R"], &[]).unwrap();
        for kind in EngineKind::all().into_iter().filter(|k| k.is_plan_based()) {
            let opts = ExecOptions {
                engine: kind,
                parallelism: Parallelism::Threads(2),
                limit: Some(2),
                ..Default::default()
            };
            let out = execute(&ctx, &query, &opts).unwrap();
            assert_eq!(out.results.len(), 2, "engine {kind}");
        }
    }

    #[test]
    fn plan_based_engines_report_trie_build_cost() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let query = MultiModelQuery::new(&["R"], &["//line[/orderID][/price]"]).unwrap();
        for kind in EngineKind::all() {
            let out = execute(&ctx, &query, &ExecOptions::for_engine(kind)).unwrap();
            if kind.is_plan_based() {
                // One trie per lowered atom, and the build time is part of
                // (hence bounded by) the total elapsed time.
                assert_eq!(out.stats.tries_built, out.atom_sizes.len(), "{kind}");
                assert!(out.stats.build_elapsed <= out.stats.elapsed, "{kind}");
            } else {
                assert_eq!(out.stats.tries_built, 0, "{kind}");
            }
        }
    }

    #[test]
    fn builder_and_mmql_agree() {
        let from_text = QueryBuilder::mmql("Q(userID) :- R(orderID, userID), //line/orderID")
            .unwrap()
            .build()
            .unwrap();
        let built = QueryBuilder::new()
            .relation_as("R", &["orderID", "userID"])
            .twig("//line/orderID")
            .output(&["userID"])
            .build()
            .unwrap();
        assert_eq!(from_text.query, built.query);
    }

    #[test]
    fn builder_defers_twig_errors_to_build() {
        let err = QueryBuilder::new()
            .relation("R")
            .twig("//bad[") // syntax error
            .twig("//ok")
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Twig(_)));
    }

    #[test]
    fn builder_rejects_empty_queries() {
        assert!(matches!(
            QueryBuilder::new().build(),
            Err(CoreError::EmptyQuery)
        ));
    }

    #[test]
    fn query_prepare_describes_without_running() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = QueryBuilder::mmql("Q(userID) :- R(orderID, userID), //line/orderID")
            .unwrap()
            .build()
            .unwrap();
        let plan = q.prepare(&ctx).unwrap();
        assert_eq!(plan.engine, EngineKind::XJoin);
        assert_eq!(plan.output, Some(vec![Attr::new("userID")]));
        assert!(plan.order.len() >= 3);
        assert!(!plan.atom_sizes.is_empty());
    }

    #[test]
    fn plan_based_kinds_are_classified() {
        assert!(EngineKind::XJoin.is_plan_based());
        assert!(EngineKind::XJoinStream.is_plan_based());
        assert!(EngineKind::Lftj.is_plan_based());
        assert!(EngineKind::Generic.is_plan_based());
        assert!(!EngineKind::HashJoin.is_plan_based());
        assert!(!EngineKind::Baseline {
            rel_alg: RelAlg::Hash,
            xml_alg: XmlAlg::TwigStack
        }
        .is_plan_based());
    }

    #[test]
    fn display_names_are_distinct() {
        let mut names: Vec<String> = EngineKind::all().iter().map(|k| k.to_string()).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}
