//! The paper's baseline: evaluate each data model independently, then join.
//!
//! Figure 3: `Q1` answers the relational part with a conventional engine,
//! `Q2` answers the twig with a (worst-case-optimal-for-XML) holistic twig
//! join, and the final answer is `Q1 ⋈ Q2` at the value level. The baseline
//! is *not* worst-case optimal for the combined query — `Q2` alone can reach
//! its own `n^5` bound while the combined bound is `n^2` — which is exactly
//! the gap the paper's bar chart shows.

use crate::error::{CoreError, Result};
use crate::exec::{validate_output, EngineKind, QueryOutput};
use crate::query::{variables_of, DataContext, MultiModelQuery};
use relational::hashjoin::{hash_join, multiway_hash_join};
use relational::lftj::lftj_join;
use relational::{Attr, JoinStats, Relation};
use std::time::Instant;
use xmldb::dewey::tjfast;
use xmldb::holistic::{node_matches_to_values, twig_stack};
use xmldb::matcher::all_matches;
use xmldb::TwigPattern;

/// Engine used for the relational part (`Q1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelAlg {
    /// Pairwise hash joins along a greedy left-deep plan (classical).
    #[default]
    Hash,
    /// Leapfrog Triejoin (worst-case optimal *within* the relational part —
    /// still not optimal for the combined query).
    Lftj,
}

/// Engine used for each twig (`Q2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum XmlAlg {
    /// TwigStack holistic twig join (Bruno et al. 2002).
    #[default]
    TwigStack,
    /// Naive navigational backtracking matcher.
    Navigational,
    /// TJFast-style matching over extended Dewey labels (leaf streams only).
    Tjfast,
}

/// Baseline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineConfig {
    /// Relational engine.
    pub rel_alg: RelAlg,
    /// XML engine.
    pub xml_alg: XmlAlg,
}

/// Evaluates the value-level tuples of one twig with the configured XML
/// engine, recording intermediate sizes.
fn eval_twig(
    ctx: &DataContext<'_>,
    twig: &TwigPattern,
    t: usize,
    alg: XmlAlg,
    stats: &mut JoinStats,
) -> Relation {
    match alg {
        XmlAlg::TwigStack => {
            let res = twig_stack(ctx.doc, ctx.index, twig);
            stats.record(format!("Q2.{t} path solutions"), res.path_solutions);
            stats.record(format!("Q2.{t} twig matches"), res.matches.len());
            let values = node_matches_to_values(ctx.doc, &res.matches);
            stats.record(format!("Q2.{t} value tuples"), values.len());
            values
        }
        XmlAlg::Tjfast => {
            let res = tjfast(ctx.doc, ctx.index, twig);
            stats.record(format!("Q2.{t} path solutions"), res.path_solutions);
            stats.record(format!("Q2.{t} twig matches"), res.matches.len());
            let values = node_matches_to_values(ctx.doc, &res.matches);
            stats.record(format!("Q2.{t} value tuples"), values.len());
            values
        }
        XmlAlg::Navigational => {
            let matches = all_matches(ctx.doc, ctx.index, twig);
            stats.record(format!("Q2.{t} twig matches"), matches.len());
            let vars = twig.vars();
            let schema = relational::Schema::new(vars).expect("distinct twig vars");
            let mut rel = Relation::with_capacity(schema, matches.len());
            let mut buf = Vec::with_capacity(twig.len());
            for m in &matches {
                buf.clear();
                buf.extend(m.iter().map(|&n| ctx.doc.node(n).value));
                rel.push(&buf).expect("arity matches");
            }
            rel.sort_dedup();
            stats.record(format!("Q2.{t} value tuples"), rel.len());
            rel
        }
    }
}

/// Runs the baseline on a multi-model query. Stats cover Q1's operators,
/// per-twig match counts, and cross-model merge sizes.
pub fn baseline(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    cfg: &BaselineConfig,
) -> Result<QueryOutput> {
    if query.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    // Timing starts here so `stats.elapsed` covers atom resolution, like
    // `xjoin`'s covers lowering — the Figure 3 comparison depends on parity.
    let start = Instant::now();
    let resolved = ctx.resolve_atoms(query)?;
    // Validate the output projection before any evaluation, mirroring the
    // XJoin engines' prepare-time check (the resolved atoms double as Q1's
    // input below).
    validate_output(query, &variables_of(&resolved, &query.twigs))?;
    let mut stats = JoinStats::default();

    // Q1: the relational part.
    let rels: Vec<&Relation> = resolved.iter().map(|a| a.rel()).collect();
    let mut acc: Option<Relation> = if rels.is_empty() {
        None
    } else {
        let q1 = match cfg.rel_alg {
            RelAlg::Hash => {
                let (q1, q1_stats) = multiway_hash_join(&rels)?;
                for s in q1_stats.stages {
                    stats.record(format!("Q1 {}", s.label), s.tuples);
                }
                q1
            }
            RelAlg::Lftj => {
                // Variable order: appearance across the relational atoms.
                let mut order: Vec<Attr> = Vec::new();
                for r in &rels {
                    for a in r.schema().attrs() {
                        if !order.contains(a) {
                            order.push(a.clone());
                        }
                    }
                }
                let q1 = lftj_join(&rels, &order)?;
                stats.record("Q1 lftj", q1.len());
                q1
            }
        };
        Some(q1)
    };

    // Q2 per twig, then merge.
    for (t, twig) in query.twigs.iter().enumerate() {
        let q2 = eval_twig(ctx, twig, t, cfg.xml_alg, &mut stats);
        acc = Some(match acc {
            None => q2,
            Some(prev) => {
                let joined = hash_join(&prev, &q2)?;
                stats.record(format!("merge Q2.{t}"), joined.len());
                joined
            }
        });
    }

    let mut result = acc.expect("query is non-empty");
    result.sort_dedup();
    let order = result.schema().attrs().to_vec();
    if let Some(out_attrs) = &query.output {
        result = result.project(out_attrs)?;
    }
    stats.output_rows = result.len();
    stats.elapsed = start.elapsed();
    Ok(QueryOutput {
        results: result,
        stats,
        order,
        atom_sizes: Vec::new(),
        engine: EngineKind::Baseline {
            rel_alg: cfg.rel_alg,
            xml_alg: cfg.xml_alg,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{xjoin, XJoinConfig};
    use relational::{Database, Schema, Value};
    use xmldb::{TagIndex, XmlDocument};

    fn bookstore() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["orderID", "userID"]),
            vec![
                vec![Value::Int(10963), Value::str("jack")],
                vec![Value::Int(20134), Value::str("tom")],
                vec![Value::Int(35768), Value::str("bob")],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("invoices");
        b.begin("orderLine");
        b.leaf("orderID", 10963i64);
        b.leaf("ISBN", "978-3-16-1");
        b.leaf("price", 30i64);
        b.end();
        b.begin("orderLine");
        b.leaf("orderID", 20134i64);
        b.leaf("ISBN", "634-3-12-2");
        b.leaf("price", 20i64);
        b.end();
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn baseline_matches_xjoin_on_bookstore() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//orderLine[/orderID][/ISBN][/price]"])
            .unwrap()
            .with_output(&["userID", "ISBN", "price"]);
        let b = baseline(&ctx, &q, &BaselineConfig::default()).unwrap();
        let x = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert!(b.results.set_eq(&x.results), "baseline != xjoin");
        assert_eq!(b.results.len(), 2);
    }

    #[test]
    fn all_engine_combinations_agree() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//orderLine[/orderID][/price]"])
            .unwrap()
            .with_output(&["userID", "price"]);
        let reference = baseline(&ctx, &q, &BaselineConfig::default()).unwrap();
        for rel_alg in [RelAlg::Hash, RelAlg::Lftj] {
            for xml_alg in [XmlAlg::TwigStack, XmlAlg::Navigational, XmlAlg::Tjfast] {
                let cfg = BaselineConfig { rel_alg, xml_alg };
                let out = baseline(&ctx, &q, &cfg).unwrap();
                assert!(
                    out.results.set_eq(&reference.results),
                    "config {cfg:?} diverged"
                );
            }
        }
    }

    #[test]
    fn relational_only_query() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &[]).unwrap();
        let out = baseline(&ctx, &q, &BaselineConfig::default()).unwrap();
        assert_eq!(out.results.len(), 3);
    }

    #[test]
    fn twig_only_query() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new::<&str>(&[], &["//orderLine/ISBN"]).unwrap();
        let out = baseline(&ctx, &q, &BaselineConfig::default()).unwrap();
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn stats_expose_q2_blowup() {
        // A twig whose match count exceeds the final result: baseline
        // materialises it, and the stats show it.
        let mut db = Database::new();
        db.load("S", Schema::of(&["b"]), vec![vec![Value::Int(0)]])
            .unwrap();
        let mut dict = db.dict().clone();
        let mut bld = XmlDocument::builder();
        bld.begin("a");
        for i in 0..10 {
            bld.leaf("b", i as i64);
        }
        bld.end();
        let doc = bld.build(&mut dict);
        *db.dict_mut() = dict;
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["S"], &["//a/b"]).unwrap();
        let out = baseline(&ctx, &q, &BaselineConfig::default()).unwrap();
        assert_eq!(out.results.len(), 1); // only b=0 joins
        assert!(out.stats.max_intermediate() >= 10, "{}", out.stats);
    }

    #[test]
    fn empty_query_errors() {
        let (db, doc) = bookstore();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new::<&str>(&[], &[]).unwrap();
        assert!(baseline(&ctx, &q, &BaselineConfig::default()).is_err());
    }
}
