//! Size bounds for multi-model queries (the paper's Section 3 applied to
//! concrete instances).
//!
//! The mixed hypergraph has one edge per relational atom and one per twig
//! path relation; with the atoms' actual cardinalities, the AGM bound of
//! that hypergraph is the worst-case result size the paper's Lemma 3.1
//! states. Prefix restrictions bound every intermediate of a level-wise
//! engine (Lemma 3.5).

use crate::atoms::Atoms;
use crate::error::Result;
use agm::{agm_bound, agm_exponent, log_agm_bound, Hypergraph};
use relational::Attr;

/// Builds the mixed-query hypergraph and the per-edge cardinalities.
pub fn mixed_hypergraph(atoms: &Atoms<'_>) -> (Hypergraph, Vec<usize>) {
    let mut h = Hypergraph::new();
    let mut sizes = Vec::with_capacity(atoms.rels.len());
    for (name, atom) in atoms.names.iter().zip(&atoms.rels) {
        let rel = atom.rel();
        let attr_names: Vec<&str> = rel.schema().attrs().iter().map(|a| a.name()).collect();
        h.edge(name, &attr_names);
        sizes.push(rel.len());
    }
    (h, sizes)
}

/// The AGM bound of the full query with the atoms' actual sizes
/// (Lemma 3.1's right-hand side).
pub fn query_bound(atoms: &Atoms<'_>) -> Result<f64> {
    let (h, sizes) = mixed_hypergraph(atoms);
    Ok(agm_bound(&h, &sizes)?)
}

/// The natural log of the query's AGM bound (see [`agm::log_agm_bound`]).
///
/// This is the form an admission controller or cost model should consume: a
/// clique over large relations can push the plain bound past `f64::MAX`,
/// but its log still compares and accumulates. `-∞` means some atom is
/// empty (the query provably returns nothing).
pub fn query_log_bound(atoms: &Atoms<'_>) -> Result<f64> {
    let (h, sizes) = mixed_hypergraph(atoms);
    Ok(log_agm_bound(&h, &sizes)?)
}

/// The uniform-size exponent `ρ*` of the query's hypergraph: the bound is
/// `n^{ρ*}` when every atom has `n` tuples (how the paper states Examples
/// 3.3 and 3.4).
pub fn query_exponent(atoms: &Atoms<'_>) -> Result<f64> {
    let (h, _) = mixed_hypergraph(atoms);
    Ok(agm_exponent(&h)?)
}

/// Bounds every expansion stage of a level-wise engine: entry `d` is the AGM
/// bound of the hypergraph restricted to `order[..=d]` with actual sizes —
/// the quantity the paper's Lemma 3.5 says XJoin's intermediates respect.
pub fn prefix_bounds(atoms: &Atoms<'_>, order: &[Attr]) -> Result<Vec<f64>> {
    let (h, sizes) = mixed_hypergraph(atoms);
    let mut out = Vec::with_capacity(order.len());
    for d in 0..order.len() {
        let prefix: Vec<&str> = order[..=d].iter().map(|a| a.name()).collect();
        let restricted = h.restrict(&prefix)?;
        // Edges that vanish in the restriction drop their size entry too.
        let kept_sizes: Vec<usize> = h
            .edges()
            .iter()
            .zip(&sizes)
            .filter(|(e, _)| {
                e.vertices
                    .iter()
                    .any(|&v| prefix.contains(&h.vertex_names()[v].as_str()))
            })
            .map(|(_, &s)| s)
            .collect();
        out.push(agm_bound(&restricted, &kept_sizes)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{lower, xjoin, XJoinConfig};
    use crate::query::{DataContext, MultiModelQuery};
    use relational::{Database, Schema, Value};
    use xmldb::{TagIndex, XmlDocument};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    fn setup() -> (Database, XmlDocument) {
        let mut db = Database::new();
        // R(B, D) with 3 tuples.
        db.load(
            "R",
            Schema::of(&["B", "D"]),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
                vec![Value::Int(3), Value::Int(30)],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("A");
        b.value(100i64);
        for i in 1..=3i64 {
            b.leaf("B", i);
            b.leaf("D", i * 10);
        }
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn mixed_hypergraph_has_relational_and_path_edges() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B][/D]"]).unwrap();
        let atoms = lower(&ctx, &q).unwrap();
        let (h, sizes) = mixed_hypergraph(&atoms);
        assert_eq!(h.num_edges(), 3); // R + (A,B) + (A,D)
        assert_eq!(sizes, vec![3, 3, 3]);
    }

    #[test]
    fn exponent_of_paper_example_structure() {
        // R(B,D) + paths (A,B), (A,D): triangle on {A,B,D} -> rho* = 1.5.
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B][/D]"]).unwrap();
        let atoms = lower(&ctx, &q).unwrap();
        assert!(close(query_exponent(&atoms).unwrap(), 1.5));
        // Bound with |each atom| = 3 is 3^1.5.
        assert!(close(query_bound(&atoms).unwrap(), 3f64.powf(1.5)));
        // The log form agrees: ln(3^1.5) = 1.5 ln 3.
        assert!(close(query_log_bound(&atoms).unwrap(), 1.5 * 3f64.ln()));
    }

    #[test]
    fn lemma_3_5_intermediates_obey_prefix_bounds() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B][/D]"]).unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        let atoms = lower(&ctx, &q).unwrap();
        let bounds = prefix_bounds(&atoms, &out.order).unwrap();
        // The "expand v" stages (skip path materialisation and validation).
        let expand_stages: Vec<usize> = out
            .stats
            .stages
            .iter()
            .filter(|s| s.label.starts_with("expand"))
            .map(|s| s.tuples)
            .collect();
        assert_eq!(expand_stages.len(), bounds.len());
        for (d, (&tuples, &bound)) in expand_stages.iter().zip(&bounds).enumerate() {
            assert!(
                (tuples as f64) <= bound + 1e-6,
                "level {d}: {tuples} tuples > bound {bound}"
            );
        }
    }

    #[test]
    fn prefix_bounds_grow_toward_full_bound() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B][/D]"]).unwrap();
        let atoms = lower(&ctx, &q).unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        let bounds = prefix_bounds(&atoms, &out.order).unwrap();
        let full = query_bound(&atoms).unwrap();
        assert!(close(*bounds.last().unwrap(), full));
    }
}
