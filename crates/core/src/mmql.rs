//! MMQL — a tiny datalog-style surface syntax for multi-model queries.
//!
//! ```text
//! Q(userID, price) :- orders(orderID, userID), //orderLine[/orderID][/price]
//! Q(who) :- orders(oid, who), ratings(oid, 5), //line[/oid]
//! ```
//!
//! * an optional **head** `Q(v1, …, vk) :-` fixes the output variables;
//! * **relational atoms** `name(t1, …, tk)` bind the stored relation's
//!   columns positionally. A term is a variable, an integer constant, or a
//!   double-quoted string constant (a selection); a variable repeated within
//!   one atom is an intra-atom equality, datalog style. Arity is checked at
//!   resolution time, so the same table can appear twice under different
//!   variables;
//! * **twig atoms** are the XPath-like twig expressions of
//!   [`xmldb::TwigPattern`], starting with `/` or `//`; variables default to
//!   tag names and can be renamed with `tag$var`.
//!
//! Atoms are separated by commas at bracket depth zero (commas inside a
//! twig's `[...]` predicates belong to the twig).

use crate::error::{CoreError, Result};
use crate::order::OrderStrategy;
use crate::query::{MultiModelQuery, RelAtom, Term};
use relational::{Attr, Ladder, Value};
use xmldb::TwigPattern;

/// Parses an MMQL query string, honouring an optional trailing
/// `WITH ORDER <strategy>` clause:
///
/// ```text
/// Q(a, c) :- R(a, b), S(b, c) WITH ORDER cardinality
/// Q(a, c) :- R(a, b), S(b, c) WITH ORDER adaptive(refined)
/// ```
///
/// The strategy is one of `appearance`, `cardinality`, or
/// `adaptive[(rowcount|distinct|refined)]` (case-insensitive; a bare
/// `adaptive` defaults to the `refined` rung). Returns the parsed query and
/// the strategy (`None` when the clause is absent, leaving the caller's
/// default in force). The clause is only recognised at bracket depth zero
/// outside string literals, so `"with order"` inside a constant stays data.
pub fn parse_query_with_options(input: &str) -> Result<(MultiModelQuery, Option<OrderStrategy>)> {
    match split_order_clause(input) {
        Some((query_src, order_src)) => {
            let order = parse_order_strategy(order_src)?;
            Ok((parse_query(query_src)?, Some(order)))
        }
        None => Ok((parse_query(input)?, None)),
    }
}

/// Finds the last `WITH ORDER` keyword pair at depth 0 outside strings and
/// splits the input around it.
fn split_order_clause(input: &str) -> Option<(&str, &str)> {
    let bytes = input.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut found: Option<usize> = None;
    for (i, c) in input.char_indices() {
        match c {
            '"' => in_str = !in_str,
            _ if in_str => {}
            '[' | '(' => depth += 1,
            ']' | ')' => depth -= 1,
            'w' | 'W' if depth == 0 => {
                // Keyword boundary: preceded by whitespace (or start), then
                // `with`, whitespace, `order` (case-insensitive).
                let rest = &input[i..];
                if (i == 0 || bytes[i - 1].is_ascii_whitespace())
                    && rest.len() > 4
                    && rest
                        .get(..4)
                        .is_some_and(|w| w.eq_ignore_ascii_case("with"))
                    && rest.as_bytes()[4].is_ascii_whitespace()
                {
                    let after_with = rest[4..].trim_start();
                    if after_with
                        .get(..5)
                        .is_some_and(|o| o.eq_ignore_ascii_case("order"))
                    {
                        found = Some(i);
                    }
                }
            }
            _ => {}
        }
    }
    let i = found?;
    let query_src = &input[..i];
    // Strip `with`, whitespace, `order` to leave the strategy spec.
    let tail = input[i + 4..].trim_start();
    let tail = tail[5..].trim_start();
    Some((query_src, tail))
}

/// Parses the strategy spec following `WITH ORDER`.
fn parse_order_strategy(src: &str) -> Result<OrderStrategy> {
    let spec = src.trim();
    if spec.eq_ignore_ascii_case("appearance") {
        return Ok(OrderStrategy::Appearance);
    }
    if spec.eq_ignore_ascii_case("cardinality") {
        return Ok(OrderStrategy::Cardinality);
    }
    if spec.eq_ignore_ascii_case("adaptive") {
        return Ok(OrderStrategy::Adaptive {
            ladder: Ladder::default(),
        });
    }
    if spec
        .get(..8)
        .is_some_and(|head| head.eq_ignore_ascii_case("adaptive"))
    {
        let rest = spec[8..].trim();
        let rung = rest
            .strip_prefix('(')
            .and_then(|r| r.strip_suffix(')'))
            .map(str::trim)
            .ok_or_else(|| {
                CoreError::BadOrder(format!("bad adaptive rung syntax in `WITH ORDER {spec}`"))
            })?;
        let ladder = if rung.eq_ignore_ascii_case("rowcount") {
            Ladder::RowCount
        } else if rung.eq_ignore_ascii_case("distinct") {
            Ladder::Distinct
        } else if rung.eq_ignore_ascii_case("refined") {
            Ladder::Refined
        } else {
            return Err(CoreError::BadOrder(format!(
                "unknown ladder rung `{rung}` (expected rowcount, distinct, or refined)"
            )));
        };
        return Ok(OrderStrategy::Adaptive { ladder });
    }
    Err(CoreError::BadOrder(format!(
        "unknown order strategy `{spec}` (expected appearance, cardinality, or adaptive)"
    )))
}

/// Parses an MMQL query string.
pub fn parse_query(input: &str) -> Result<MultiModelQuery> {
    let _span = xjoin_obs::span("parse");
    let (head, body) = match input.split_once(":-") {
        Some((h, b)) => (Some(h.trim()), b.trim()),
        None => (None, input.trim()),
    };
    if body.is_empty() {
        return Err(CoreError::BadOrder("query body is empty".into()));
    }

    let output = match head {
        None => None,
        Some(h) => {
            let (_, terms) = parse_atom_shape(h)?;
            let vars: Vec<Attr> = terms
                .into_iter()
                .map(|t| match t {
                    Term::Var(v) => Ok(v),
                    Term::Const(c) => {
                        Err(CoreError::BadOrder(format!("constant `{c}` in query head")))
                    }
                })
                .collect::<Result<_>>()?;
            Some(vars)
        }
    };

    let mut relations = Vec::new();
    let mut twigs = Vec::new();
    for atom_src in split_atoms(body) {
        let atom_src = atom_src.trim();
        if atom_src.is_empty() {
            return Err(CoreError::BadOrder("empty atom in query body".into()));
        }
        if atom_src.starts_with('/') {
            twigs.push(TwigPattern::parse(atom_src)?);
        } else {
            let (name, terms) = parse_atom_shape(atom_src)?;
            relations.push(RelAtom::with_terms(name, terms));
        }
    }
    if relations.is_empty() && twigs.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    Ok(MultiModelQuery {
        relations,
        twigs,
        output,
    })
}

/// Splits the body on commas at bracket depth 0 (`[` / `]` and `(` / `)`),
/// ignoring commas inside string literals.
fn split_atoms(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            _ if in_str => {}
            '[' | '(' => depth += 1,
            ']' | ')' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

/// Parses `name(t1, …, tk)` into its name and term list.
fn parse_atom_shape(src: &str) -> Result<(String, Vec<Term>)> {
    let src = src.trim();
    let open = src
        .find('(')
        .ok_or_else(|| CoreError::BadOrder(format!("expected `name(terms…)` in `{src}`")))?;
    if !src.ends_with(')') {
        return Err(CoreError::BadOrder(format!("missing `)` in atom `{src}`")));
    }
    let name = src[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(CoreError::BadOrder(format!("bad relation name in `{src}`")));
    }
    let inner = &src[open + 1..src.len() - 1];
    let terms: Vec<Term> = split_terms(inner)
        .into_iter()
        .map(|t| parse_term(t.trim()))
        .collect::<Result<_>>()?;
    if terms.is_empty() {
        return Err(CoreError::BadOrder(format!("atom `{src}` binds no terms")));
    }
    Ok((name.to_owned(), terms))
}

/// Splits the argument list on commas outside string literals.
fn split_terms(inner: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut in_str = false;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !inner[start..].trim().is_empty() || !parts.is_empty() {
        parts.push(&inner[start..]);
    }
    parts
}

fn parse_term(t: &str) -> Result<Term> {
    if t.is_empty() {
        return Err(CoreError::BadOrder("empty term".into()));
    }
    if let Some(stripped) = t.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| CoreError::BadOrder(format!("unterminated string `{t}`")))?;
        return Ok(Term::Const(Value::str(inner)));
    }
    if t.chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-')
    {
        let i: i64 = t
            .parse()
            .map_err(|_| CoreError::BadOrder(format!("bad numeric constant `{t}`")))?;
        return Ok(Term::Const(Value::Int(i)));
    }
    if !t.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(CoreError::BadOrder(format!("bad variable name `{t}`")));
    }
    Ok(Term::Var(Attr::new(t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{xjoin, XJoinConfig};
    use crate::query::DataContext;
    use relational::{Database, Schema, Value};
    use xmldb::{TagIndex, XmlDocument};

    #[test]
    fn parses_head_and_mixed_body() {
        let q = parse_query(
            "Q(userID, price) :- orders(orderID, userID), //orderLine[/orderID][/price]",
        )
        .unwrap();
        assert_eq!(
            q.output,
            Some(vec![Attr::new("userID"), Attr::new("price")])
        );
        assert_eq!(q.relations.len(), 1);
        assert_eq!(q.relations[0].name, "orders");
        assert_eq!(
            q.relations[0].terms,
            Some(vec![
                Term::Var(Attr::new("orderID")),
                Term::Var(Attr::new("userID"))
            ])
        );
        assert_eq!(q.twigs.len(), 1);
        assert_eq!(q.twigs[0].len(), 3);
    }

    #[test]
    fn parses_constants() {
        let q = parse_query(r#"R(a, 5, "new york")"#).unwrap();
        assert_eq!(
            q.relations[0].terms,
            Some(vec![
                Term::Var(Attr::new("a")),
                Term::Const(Value::Int(5)),
                Term::Const(Value::str("new york")),
            ])
        );
        let q = parse_query("R(a, -3)").unwrap();
        assert_eq!(
            q.relations[0].terms.as_ref().unwrap()[1],
            Term::Const(Value::Int(-3))
        );
    }

    #[test]
    fn headless_query_outputs_everything() {
        let q = parse_query("orders(a, b), //x/y").unwrap();
        assert!(q.output.is_none());
        assert_eq!(q.relations.len(), 1);
        assert_eq!(q.twigs.len(), 1);
    }

    #[test]
    fn repeated_variables_are_allowed_in_atoms() {
        let q = parse_query("R(a, a)").unwrap();
        assert_eq!(q.relations[0].terms.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("").is_err());
        assert!(parse_query("Q() :- R(a)").is_err());
        assert!(parse_query("R(a").is_err());
        assert!(parse_query("bad name(a)").is_err());
        assert!(parse_query("//a[").is_err());
        assert!(parse_query("Q(a) :- ").is_err());
        assert!(parse_query(r#"R("unterminated)"#).is_err());
        assert!(parse_query("Q(3) :- R(a)").is_err()); // constant in head
        assert!(parse_query("R(a-b)").is_err());
    }

    fn orders_db() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "orders",
            Schema::of(&["col0", "col1"]),
            vec![
                vec![Value::Int(1), Value::str("jack")],
                vec![Value::Int(2), Value::str("tom")],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("lines");
        b.begin("line");
        b.leaf("oid", 1i64);
        b.leaf("price", 30i64);
        b.end();
        b.begin("line");
        b.leaf("oid", 2i64);
        b.leaf("price", 99i64);
        b.end();
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn parsed_query_runs_end_to_end() {
        let (db, doc) = orders_db();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = parse_query("Q(who, price) :- orders(oid, who), //line[/oid][/price]").unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert_eq!(out.results.len(), 2);
    }

    #[test]
    fn constant_selection_filters_rows() {
        let (db, doc) = orders_db();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = parse_query(r#"Q(oid) :- orders(oid, "jack"), //line/oid"#).unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(db.decode(&out.results)[0], vec![Value::Int(1)]);
    }

    #[test]
    fn unknown_constant_yields_empty_result() {
        let (db, doc) = orders_db();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = parse_query(r#"Q(oid) :- orders(oid, "nobody"), //line/oid"#).unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert!(out.results.is_empty());
    }

    #[test]
    fn repeated_variable_selects_diagonal() {
        let mut db = Database::new();
        db.load(
            "E",
            Schema::of(&["s", "t"]),
            vec![
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(3), Value::Int(3)],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("g");
        b.leaf("n", 1i64);
        b.leaf("n", 3i64);
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = parse_query("Q(n) :- E(n, n), //g/n").unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        let mut vals = db.decode(&out.results);
        vals.sort();
        assert_eq!(vals, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }

    #[test]
    fn with_order_clause_parses_every_strategy() {
        let (q, order) =
            parse_query_with_options("Q(a) :- R(a, b) WITH ORDER cardinality").unwrap();
        assert_eq!(q.relations.len(), 1);
        assert!(matches!(order, Some(OrderStrategy::Cardinality)));

        let (_, order) = parse_query_with_options("R(a, b) with order appearance").unwrap();
        assert!(matches!(order, Some(OrderStrategy::Appearance)));

        let (_, order) = parse_query_with_options("R(a, b) WITH ORDER adaptive").unwrap();
        assert!(matches!(
            order,
            Some(OrderStrategy::Adaptive {
                ladder: Ladder::Refined
            })
        ));

        let (_, order) =
            parse_query_with_options("R(a, b) With Order Adaptive( RowCount )").unwrap();
        assert!(matches!(
            order,
            Some(OrderStrategy::Adaptive {
                ladder: Ladder::RowCount
            })
        ));

        let (_, order) = parse_query_with_options("R(a, b) WITH ORDER adaptive(distinct)").unwrap();
        assert!(matches!(
            order,
            Some(OrderStrategy::Adaptive {
                ladder: Ladder::Distinct
            })
        ));
    }

    #[test]
    fn with_order_clause_is_optional_and_guarded() {
        let (q, order) = parse_query_with_options("Q(a) :- R(a, b)").unwrap();
        assert_eq!(q.relations.len(), 1);
        assert!(order.is_none());

        // `with order` inside a string constant is data, not a clause.
        let (q, order) = parse_query_with_options(r#"R(a, "with order x")"#).unwrap();
        assert!(order.is_none());
        assert_eq!(
            q.relations[0].terms.as_ref().unwrap()[1],
            Term::Const(Value::str("with order x"))
        );

        assert!(parse_query_with_options("R(a, b) WITH ORDER bogus").is_err());
        assert!(parse_query_with_options("R(a, b) WITH ORDER adaptive(bogus)").is_err());
        assert!(parse_query_with_options("R(a, b) WITH ORDER adaptive(refined").is_err());
    }

    #[test]
    fn same_relation_twice_with_different_bindings() {
        let mut db = Database::new();
        db.load(
            "E",
            Schema::of(&["src", "dst"]),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(3)],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("g");
        b.leaf("n", 2i64);
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);

        let q = parse_query("Q(a, n, c) :- E(a, n), E(n, c), //g/n").unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert_eq!(out.results.len(), 1);
        let rows = db.decode(&out.results);
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }
}
