//! **XJoin** — worst-case optimal joins on relational and XML data.
//!
//! This crate is the paper's primary contribution: a multi-model join that
//! treats relational tables and XML twig patterns *as a whole*, guaranteeing
//! that every intermediate result respects the AGM bound of the combined
//! query (Lemma 3.5 of the paper), instead of combining per-model answers
//! whose intermediate sizes are only bounded per model.
//!
//! * [`query`] — multi-model queries ([`MultiModelQuery`]) over a
//!   [`DataContext`] (relational [`relational::Database`] + XML document);
//! * [`atoms`] — lowering: `S ← Sr ∪ transform(Sx)` (twig path relations);
//! * [`order`] — the attribute priority `PA` (Algorithm 1's input);
//! * [`engine`] — [`engine::xjoin`], Algorithm 1, with the paper's on-going
//!   work (A-D filtering, partial structure validation) as options;
//! * [`mod@baseline`] — the paper's comparison point: per-model evaluation
//!   (hash joins / LFTJ for `Q1`, TwigStack for `Q2`) followed by a
//!   cross-model join;
//! * [`bounds`] — Lemma 3.1/3.5 instantiated: AGM bounds for the mixed
//!   query and all its prefixes;
//! * [`validate`] — the final (and partial) twig-structure validation;
//! * [`mod@stream`] — the pull-based [`Rows`] iterator: depth-first (LFTJ-style)
//!   enumeration without materialised intermediates, with `LIMIT` pushdown;
//! * [`exec`] — **the unified execution API**: every engine (level-wise
//!   XJoin, streaming XJoin, baseline combinations, LFTJ, generic, hash)
//!   behind one [`Engine`] trait, selected by [`EngineKind`], configured by
//!   [`ExecOptions`], built via [`QueryBuilder`], returning one
//!   [`QueryOutput`];
//! * [`mmql`] — a datalog-style surface syntax
//!   (`Q(x,y) :- R(x,y), //twig`), with constants and intra-atom equalities;
//! * [`mod@explain`] — `EXPLAIN`: lowered atoms, chosen order, per-prefix bounds.
//!
//! ```
//! use relational::{Database, Schema, Value};
//! use xmldb::{parse_xml, TagIndex};
//! use xjoin_core::{DataContext, QueryBuilder};
//!
//! let mut db = Database::new();
//! db.load("orders", Schema::of(&["orderID", "userID"]), vec![
//!     vec![Value::Int(10963), Value::str("jack")],
//! ]).unwrap();
//! let mut dict = db.dict().clone();
//! let doc = parse_xml(
//!     "<invoices><orderLine><orderID>10963</orderID><price>30</price></orderLine></invoices>",
//!     &mut dict,
//! ).unwrap();
//! *db.dict_mut() = dict;
//! let index = TagIndex::build(&doc);
//! let ctx = DataContext::new(&db, &doc, &index);
//! let query = QueryBuilder::mmql(
//!     "Q(userID, price) :- orders(orderID, userID), //orderLine[/orderID][/price]",
//! ).unwrap().build().unwrap();
//! let out = query.execute(&ctx).unwrap();
//! assert_eq!(out.results.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod atoms;
pub mod baseline;
pub mod bounds;
pub mod engine;
pub mod error;
pub mod exec;
pub mod explain;
pub mod mmql;
pub mod morsel;
pub mod order;
pub mod query;
pub mod stream;
pub mod validate;

pub use atoms::{collect_atoms, AtomRel, Atoms};
pub use baseline::{baseline, BaselineConfig, RelAlg, XmlAlg};
pub use bounds::{mixed_hypergraph, prefix_bounds, query_bound, query_exponent, query_log_bound};
pub use engine::{lower, xjoin, xjoin_with_plan, xjoin_with_plan_in_range, XJoinConfig};
pub use error::{CoreError, Result};
pub use exec::{
    engine_for, execute, execute_with_plan, stream, validate_output, Engine, EngineKind,
    ExecOptions, ExecPlan, Query, QueryBuilder, QueryOutput,
};
pub use explain::{
    explain, explain_analyze, AdaptiveAnalysis, AnalyzeReport, Explanation, LevelAnalysis,
    TrieBuildProfile,
};
pub use mmql::{parse_query, parse_query_with_options};
pub use morsel::{partition_root, Parallelism};
pub use order::{compute_order, OrderStrategy};
pub use query::{
    all_variables, variables_of, DataContext, MultiModelQuery, RelAtom, ResolvedAtom, Term,
};
pub use relational::Ladder;
pub use stream::{stream_with_plan, xjoin_rows, xjoin_rows_with_plan, Rows, RowsStats};
pub use validate::TwigValidator;
