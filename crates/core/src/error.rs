//! Error type for the multi-model join engine.

use std::fmt;

/// Errors raised by the XJoin / baseline engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An error from the relational substrate.
    Relational(relational::RelError),
    /// An error from twig handling.
    Twig(xmldb::TwigError),
    /// An error from bound computation.
    Agm(agm::AgmError),
    /// The query references no atoms at all.
    EmptyQuery,
    /// A named relation was not found in the database.
    UnknownRelation(String),
    /// The configured variable order is unusable.
    BadOrder(String),
    /// An output attribute references no variable of the query. Raised at
    /// resolve/prepare time, before any trie is built.
    UnknownAttribute(String),
    /// The requested operation is not available for the chosen engine.
    Unsupported(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Relational(e) => write!(f, "relational: {e}"),
            CoreError::Twig(e) => write!(f, "twig: {e}"),
            CoreError::Agm(e) => write!(f, "agm: {e}"),
            CoreError::EmptyQuery => write!(f, "query has neither relations nor twigs"),
            CoreError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            CoreError::BadOrder(m) => write!(f, "bad variable order: {m}"),
            CoreError::UnknownAttribute(a) => {
                write!(f, "output attribute `{a}` is not a variable of the query")
            }
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<relational::RelError> for CoreError {
    fn from(e: relational::RelError) -> Self {
        CoreError::Relational(e)
    }
}

impl From<xmldb::TwigError> for CoreError {
    fn from(e: xmldb::TwigError) -> Self {
        CoreError::Twig(e)
    }
}

impl From<agm::AgmError> for CoreError {
    fn from(e: agm::AgmError) -> Self {
        CoreError::Agm(e)
    }
}

/// Result alias for the core engine.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = relational::RelError::EmptyQuery.into();
        assert!(e.to_string().contains("relational"));
        let e: CoreError = agm::AgmError::Empty.into();
        assert!(e.to_string().contains("agm"));
        let e = CoreError::UnknownRelation("R9".into());
        assert!(e.to_string().contains("R9"));
        let e = CoreError::BadOrder("missing x".into());
        assert!(e.to_string().contains("missing x"));
        let e = CoreError::UnknownAttribute("zz".into());
        assert!(e.to_string().contains("zz"));
        let e = CoreError::Unsupported("no plan".into());
        assert!(e.to_string().contains("no plan"));
        assert!(!CoreError::EmptyQuery.to_string().is_empty());
    }
}
