//! Attribute expansion priorities — the paper's `PA` input to Algorithm 1.
//!
//! Any order yields a worst-case optimal join (the bound holds for every
//! prefix hypergraph), but orders differ by constant factors and by how
//! early structural filters can fire; the strategies here are the common
//! heuristics plus a fully manual override for experiments.

use crate::atoms::Atoms;
use crate::error::{CoreError, Result};
use relational::Attr;

/// How to choose the global variable order.
#[derive(Debug, Clone, Default)]
pub enum OrderStrategy {
    /// Variables in first-appearance order (relational atoms first, then
    /// twig paths) — deterministic and cheap.
    #[default]
    Appearance,
    /// Greedy ascending by the smallest atom containing the variable
    /// (bind selective variables early).
    Cardinality,
    /// An explicit order (must cover every query variable exactly once).
    Given(Vec<Attr>),
}

/// Computes the global variable order for an atom set.
pub fn compute_order(atoms: &Atoms<'_>, strategy: &OrderStrategy) -> Result<Vec<Attr>> {
    let mut vars: Vec<Attr> = Vec::new();
    for a in &atoms.rels {
        for attr in a.rel().schema().attrs() {
            if !vars.contains(attr) {
                vars.push(attr.clone());
            }
        }
    }
    if vars.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    match strategy {
        OrderStrategy::Appearance => Ok(vars),
        OrderStrategy::Cardinality => {
            let mut keyed: Vec<(usize, usize, Attr)> = vars
                .into_iter()
                .enumerate()
                .map(|(i, v)| {
                    let min_size = atoms
                        .rels
                        .iter()
                        .filter(|a| a.rel().schema().contains(&v))
                        .map(|a| a.rel().len())
                        .min()
                        .unwrap_or(usize::MAX);
                    (min_size, i, v)
                })
                .collect();
            keyed.sort();
            Ok(keyed.into_iter().map(|(_, _, v)| v).collect())
        }
        OrderStrategy::Given(order) => {
            for v in &vars {
                if !order.contains(v) {
                    return Err(CoreError::BadOrder(format!(
                        "explicit order misses variable `{v}`"
                    )));
                }
            }
            for o in order {
                if !vars.contains(o) {
                    return Err(CoreError::BadOrder(format!(
                        "explicit order names unknown variable `{o}`"
                    )));
                }
            }
            let mut seen = Vec::new();
            for o in order {
                if seen.contains(o) {
                    return Err(CoreError::BadOrder(format!("duplicate variable `{o}`")));
                }
                seen.push(o.clone());
            }
            Ok(order.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::collect_atoms;
    use crate::query::{DataContext, MultiModelQuery};
    use relational::{Database, Schema, Value};
    use xmldb::{TagIndex, XmlDocument};

    fn setup() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["x", "y"]),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(3), Value::Int(4)],
            ],
        )
        .unwrap();
        db.load(
            "S",
            Schema::of(&["y", "z"]),
            vec![vec![Value::Int(2), Value::Int(5)]],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("T");
        b.leaf("z", 5i64);
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn appearance_order_is_first_seen() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R", "S"], &["//T/z$z2"]).unwrap();
        let atoms = collect_atoms(&ctx, &q).unwrap();
        let order = compute_order(&atoms, &OrderStrategy::Appearance).unwrap();
        let names: Vec<&str> = order.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["x", "y", "z", "T", "z2"]);
    }

    #[test]
    fn cardinality_order_prefers_small_atoms() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R", "S"], &[]).unwrap();
        let atoms = collect_atoms(&ctx, &q).unwrap();
        let order = compute_order(&atoms, &OrderStrategy::Cardinality).unwrap();
        // S has 1 tuple -> y and z come before x (R has 2).
        let names: Vec<&str> = order.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["y", "z", "x"]);
    }

    #[test]
    fn given_order_is_validated() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &[]).unwrap();
        let atoms = collect_atoms(&ctx, &q).unwrap();
        let ok = OrderStrategy::Given(vec!["y".into(), "x".into()]);
        assert_eq!(
            compute_order(&atoms, &ok).unwrap(),
            vec![Attr::new("y"), Attr::new("x")]
        );
        let missing = OrderStrategy::Given(vec!["x".into()]);
        assert!(compute_order(&atoms, &missing).is_err());
        let unknown = OrderStrategy::Given(vec!["x".into(), "y".into(), "qq".into()]);
        assert!(compute_order(&atoms, &unknown).is_err());
        let dup = OrderStrategy::Given(vec!["x".into(), "y".into(), "x".into()]);
        assert!(compute_order(&atoms, &dup).is_err());
    }
}
