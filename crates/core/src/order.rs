//! Attribute expansion priorities — the paper's `PA` input to Algorithm 1.
//!
//! Any order yields a worst-case optimal join (the bound holds for every
//! prefix hypergraph), but orders differ by constant factors and by how
//! early structural filters can fire; the strategies here are the common
//! heuristics plus a fully manual override for experiments.

use crate::atoms::Atoms;
use crate::error::{CoreError, Result};
use relational::{Attr, Ladder, Relation};

/// How to choose the global variable order.
#[derive(Debug, Clone, Default)]
pub enum OrderStrategy {
    /// Variables in first-appearance order (relational atoms first, then
    /// twig paths) — deterministic and cheap.
    #[default]
    Appearance,
    /// Greedy ascending by the smallest atom containing the variable,
    /// breaking size ties by the variable's distinct-value count in its
    /// smallest atom (bind selective variables early).
    Cardinality,
    /// Runtime-adaptive ordering: tries are leveled by the appearance
    /// order (the *skeleton*, which maximises the walk's freedom to pick
    /// branches at runtime), and walk-based engines then bind, at every
    /// depth, the admissible variable the [`Ladder`] rung scores cheapest
    /// under the current prefix. Level-wise engines degrade gracefully to
    /// the skeleton order and report zero reorder counters.
    Adaptive {
        /// The estimate rung scoring candidate variables during the walk.
        ladder: Ladder,
    },
    /// An explicit order (must cover every query variable exactly once).
    Given(Vec<Attr>),
}

impl OrderStrategy {
    /// The ladder rung to attach to plans under this strategy (`None` for
    /// every static strategy).
    pub fn ladder(&self) -> Option<Ladder> {
        match self {
            OrderStrategy::Adaptive { ladder } => Some(*ladder),
            _ => None,
        }
    }
}

/// Distinct values of `attr`'s column in `rel` (sort + dedup over a copied
/// column — the plan-time analogue of the build-time
/// `relational::LevelSummary` distinct counts).
fn column_distinct(rel: &Relation, attr: &Attr) -> usize {
    let Ok(pos) = rel.schema().require(attr) else {
        return usize::MAX;
    };
    let mut col: Vec<_> = rel.rows().map(|row| row[pos]).collect();
    col.sort_unstable();
    col.dedup();
    col.len()
}

/// Computes the global variable order for an atom set.
pub fn compute_order(atoms: &Atoms<'_>, strategy: &OrderStrategy) -> Result<Vec<Attr>> {
    let mut vars: Vec<Attr> = Vec::new();
    for a in &atoms.rels {
        for attr in a.rel().schema().attrs() {
            if !vars.contains(attr) {
                vars.push(attr.clone());
            }
        }
    }
    if vars.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    match strategy {
        OrderStrategy::Appearance => Ok(vars),
        OrderStrategy::Cardinality => {
            let mut keyed: Vec<(usize, usize, usize, Attr)> = vars
                .into_iter()
                .enumerate()
                .map(|(i, v)| {
                    let smallest = atoms
                        .rels
                        .iter()
                        .filter(|a| a.rel().schema().contains(&v))
                        .min_by_key(|a| a.rel().len());
                    // Equal-sized atoms are common (mirrored edge lists,
                    // star spokes); the distinct count of the variable's
                    // column in its smallest atom is the finer selectivity
                    // signal that raw size misses.
                    let (min_size, min_distinct) = smallest
                        .map(|a| (a.rel().len(), column_distinct(a.rel(), &v)))
                        .unwrap_or((usize::MAX, usize::MAX));
                    (min_size, min_distinct, i, v)
                })
                .collect();
            keyed.sort();
            Ok(keyed.into_iter().map(|(_, _, _, v)| v).collect())
        }
        // The skeleton of an adaptive plan is the appearance order: tries
        // leveled by it keep every branch of the query hypergraph openable
        // as soon as its prefix is bound, which is exactly the freedom the
        // runtime chooser exploits (a greedy static linearisation would
        // often chain the atoms and leave a single admissible variable per
        // depth). The ladder itself is applied by the engines via
        // `JoinPlan::with_ladder`.
        OrderStrategy::Adaptive { .. } => Ok(vars),
        OrderStrategy::Given(order) => {
            for v in &vars {
                if !order.contains(v) {
                    return Err(CoreError::BadOrder(format!(
                        "explicit order misses variable `{v}`"
                    )));
                }
            }
            for o in order {
                if !vars.contains(o) {
                    return Err(CoreError::BadOrder(format!(
                        "explicit order names unknown variable `{o}`"
                    )));
                }
            }
            let mut seen = Vec::new();
            for o in order {
                if seen.contains(o) {
                    return Err(CoreError::BadOrder(format!("duplicate variable `{o}`")));
                }
                seen.push(o.clone());
            }
            Ok(order.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::collect_atoms;
    use crate::query::{DataContext, MultiModelQuery};
    use relational::{Database, Schema, Value};
    use xmldb::{TagIndex, XmlDocument};

    fn setup() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["x", "y"]),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(3), Value::Int(4)],
            ],
        )
        .unwrap();
        db.load(
            "S",
            Schema::of(&["y", "z"]),
            vec![vec![Value::Int(2), Value::Int(5)]],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("T");
        b.leaf("z", 5i64);
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn appearance_order_is_first_seen() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R", "S"], &["//T/z$z2"]).unwrap();
        let atoms = collect_atoms(&ctx, &q).unwrap();
        let order = compute_order(&atoms, &OrderStrategy::Appearance).unwrap();
        let names: Vec<&str> = order.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["x", "y", "z", "T", "z2"]);
    }

    #[test]
    fn cardinality_order_prefers_small_atoms() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R", "S"], &[]).unwrap();
        let atoms = collect_atoms(&ctx, &q).unwrap();
        let order = compute_order(&atoms, &OrderStrategy::Cardinality).unwrap();
        // S has 1 tuple -> y and z come before x (R has 2).
        let names: Vec<&str> = order.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["y", "z", "x"]);
    }

    #[test]
    fn cardinality_breaks_size_ties_by_distinct_count() {
        // Star query C(h) ⋈ S1(h,a) ⋈ S2(h,b): the spokes tie at 4 rows,
        // but b has only 2 distinct values to a's 4 — the upgraded greedy
        // must bind b before a (raw atom size alone would order a first,
        // by appearance).
        let mut db = Database::new();
        db.load(
            "C",
            Schema::of(&["h"]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        db.load(
            "S1",
            Schema::of(&["h", "a"]),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(11)],
                vec![Value::Int(2), Value::Int(12)],
                vec![Value::Int(2), Value::Int(13)],
            ],
        )
        .unwrap();
        db.load(
            "S2",
            Schema::of(&["h", "b"]),
            vec![
                vec![Value::Int(1), Value::Int(20)],
                vec![Value::Int(1), Value::Int(21)],
                vec![Value::Int(2), Value::Int(20)],
                vec![Value::Int(2), Value::Int(21)],
            ],
        )
        .unwrap();
        let mut b = XmlDocument::builder();
        b.begin("T");
        b.end();
        let doc = b.build(db.dict_mut());
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["C", "S1", "S2"], &[]).unwrap();
        let atoms = collect_atoms(&ctx, &q).unwrap();
        let order = compute_order(&atoms, &OrderStrategy::Cardinality).unwrap();
        let names: Vec<&str> = order.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["h", "b", "a"]);
    }

    #[test]
    fn adaptive_skeleton_is_appearance_order() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R", "S"], &[]).unwrap();
        let atoms = collect_atoms(&ctx, &q).unwrap();
        let strategy = OrderStrategy::Adaptive {
            ladder: relational::Ladder::Refined,
        };
        assert_eq!(strategy.ladder(), Some(relational::Ladder::Refined));
        let order = compute_order(&atoms, &strategy).unwrap();
        let appearance = compute_order(&atoms, &OrderStrategy::Appearance).unwrap();
        assert_eq!(order, appearance);
    }

    #[test]
    fn given_order_is_validated() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &[]).unwrap();
        let atoms = collect_atoms(&ctx, &q).unwrap();
        let ok = OrderStrategy::Given(vec!["y".into(), "x".into()]);
        assert_eq!(
            compute_order(&atoms, &ok).unwrap(),
            vec![Attr::new("y"), Attr::new("x")]
        );
        let missing = OrderStrategy::Given(vec!["x".into()]);
        assert!(compute_order(&atoms, &missing).is_err());
        let unknown = OrderStrategy::Given(vec!["x".into(), "y".into(), "qq".into()]);
        assert!(compute_order(&atoms, &unknown).is_err());
        let dup = OrderStrategy::Given(vec!["x".into(), "y".into(), "x".into()]);
        assert!(compute_order(&atoms, &dup).is_err());
    }
}
