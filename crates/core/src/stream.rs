//! Pull-based result streaming: the [`Rows`] iterator behind the unified
//! execution API.
//!
//! The paper's Algorithm 1 is breadth-first (it materialises `R` after every
//! attribute expansion — which is what makes its intermediate sizes
//! measurable and Lemma 3.5 meaningful). For consumers that only need the
//! *results*, the same atom set can be walked depth-first, LFTJ-style: the
//! worst-case optimality of the total work is unchanged, and memory drops to
//! the recursion depth. [`Rows`] wraps that walk (an owned
//! [`relational::LftjWalk`]) behind a plain [`Iterator`]:
//!
//! * twig-structure validation runs per pulled tuple through the same
//!   memoised [`TwigValidator`] as the level-wise engine;
//! * the query's output projection is applied per row (with on-the-fly
//!   de-duplication when the projection drops variables, preserving the
//!   materialising engines' set semantics);
//! * a `limit` is pushed into the walk: after `k` rows the iterator fuses
//!   and the remaining search space is never visited —
//!   [`Rows::stats`] exposes the binding counter that proves it.
//!
//! Engines that must materialise anyway (level-wise XJoin, the baseline,
//! hash joins) return a buffered [`Rows`] over their finished result, so
//! every engine presents the same iterator type.

use crate::error::{CoreError, Result};
use crate::exec::{validate_output, ExecOptions};
use crate::morsel::ParallelTuples;
use crate::query::{DataContext, MultiModelQuery};
use crate::validate::TwigValidator;
use relational::{Attr, JoinPlan, LftjWalk, Relation, Schema, ValueId};
use std::collections::HashSet;

/// Counters of a [`Rows`] iteration (snapshot via [`Rows::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowsStats {
    /// Rows handed out so far (post validation / projection / limit).
    pub emitted: usize,
    /// Work the producer actually did: variable bindings made by the trie
    /// walk for streamed rows, or the full buffered size for materialised
    /// rows. A `limit` strictly shrinks this for streamed rows.
    ///
    /// **Aggregation under parallel execution is the sum**: for a
    /// morsel-parallel iterator this is the summed binding counters of all
    /// worker walks, updated as each worker retires (or abandons) a morsel.
    /// Because morsels disjointly partition the search space by first
    /// binding, a fully drained parallel iterator reports exactly the
    /// serial walk's count; under a `limit`, workers poll the consumer's
    /// emitted count between tuples, so the counter may include the small
    /// overshoot bound by the in-flight channel capacity.
    pub visited: u64,
}

enum Inner<'a> {
    /// A finished result relation (from a materialising engine), iterated
    /// in place — no per-row copies until a row is actually yielded.
    Buffered { rel: Relation, next: usize },
    /// A live depth-first trie walk with per-tuple validation.
    Walk {
        walk: Box<LftjWalk>,
        validators: Vec<TwigValidator<'a>>,
    },
    /// Morsel-parallel walks feeding a channel (see [`crate::morsel`]);
    /// validation/projection/dedup/limit stay on this consumer side.
    Parallel {
        source: ParallelTuples,
        validators: Vec<TwigValidator<'a>>,
    },
}

/// A pull-based iterator over a query's result rows — the one streaming
/// surface of the unified execution API (replacing the historical
/// callback-based `xjoin_stream`).
///
/// Yields one `Vec<ValueId>` per result row, laid out per [`Rows::schema`].
/// Construct via [`crate::exec::stream`], [`crate::exec::Query::rows`], or
/// the plan-level [`xjoin_rows`] / [`xjoin_rows_with_plan`].
pub struct Rows<'a> {
    schema: Schema,
    order: Vec<Attr>,
    /// Positions of the output attributes within `order` (`None` =
    /// identity).
    projection: Option<Vec<usize>>,
    /// Set semantics for lossy projections: rows already emitted.
    seen: Option<HashSet<Vec<ValueId>>>,
    limit: Option<usize>,
    emitted: usize,
    inner: Inner<'a>,
}

impl<'a> Rows<'a> {
    /// Streams the results of `query` by walking `plan` depth-first,
    /// validating twig structure per tuple. `limit` is pushed into the
    /// walk. The output projection (if any) must already be validated
    /// against the plan's order — [`Rows::from_walk`] re-checks it.
    pub(crate) fn from_walk(
        ctx: &DataContext<'a>,
        query: &'a MultiModelQuery,
        plan: JoinPlan,
        limit: Option<usize>,
    ) -> Result<Rows<'a>> {
        let (order, validators, schema, projection, seen) = walk_setup(ctx, query, &plan)?;
        Ok(Rows {
            schema,
            order,
            projection,
            seen,
            limit,
            emitted: 0,
            inner: Inner::Walk {
                walk: Box::new(LftjWalk::new(plan)),
                validators,
            },
        })
    }

    /// Streams the results of `query` by walking `plan` morsel-parallel on
    /// `workers` threads (see [`crate::morsel`]). Per-tuple validation, the
    /// output projection, lossy-projection dedup, and the `limit` all run on
    /// the consumer side, exactly as in [`Rows::from_walk`]; workers observe
    /// the emitted-row count through a shared atomic so a `limit` still cuts
    /// the walks short. With `ordered`, tuples arrive in the serial walk's
    /// lexicographic order (morsels concatenated in domain order); otherwise
    /// in arrival order.
    pub(crate) fn from_parallel(
        ctx: &DataContext<'a>,
        query: &'a MultiModelQuery,
        plan: JoinPlan,
        limit: Option<usize>,
        workers: usize,
        ordered: bool,
    ) -> Result<Rows<'a>> {
        let (order, validators, schema, projection, seen) = walk_setup(ctx, query, &plan)?;
        Ok(Rows {
            schema,
            order,
            projection,
            seen,
            limit,
            emitted: 0,
            inner: Inner::Parallel {
                source: ParallelTuples::spawn(&plan, limit, workers, ordered),
                validators,
            },
        })
    }

    /// Wraps a finished result relation (already validated, projected, and
    /// deduplicated by its engine) in the common iterator type. `order` is
    /// the engine's unprojected tuple layout, kept for [`Rows::order`].
    pub(crate) fn from_relation(rel: Relation, order: Vec<Attr>) -> Rows<'static> {
        Rows {
            schema: rel.schema().clone(),
            order,
            projection: None,
            seen: None,
            limit: None,
            emitted: 0,
            inner: Inner::Buffered { rel, next: 0 },
        }
    }

    /// The schema of the yielded rows (output attributes, or the full
    /// variable order when the query has no projection).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The engine's global variable order (the unprojected tuple layout).
    pub fn order(&self) -> &[Attr] {
        &self.order
    }

    /// Current iteration counters. For walk-backed rows, `visited` is the
    /// number of variable bindings the trie walk has made — compare a
    /// limited run against a full one to observe `LIMIT` pushdown. For
    /// morsel-parallel rows it is the **sum** of all worker walks' binding
    /// counters (see [`RowsStats::visited`] for the exact semantics).
    pub fn stats(&self) -> RowsStats {
        let visited = match &self.inner {
            Inner::Buffered { rel, .. } => rel.len() as u64,
            Inner::Walk { walk, .. } => walk.bindings(),
            Inner::Parallel { source, .. } => source.visited(),
        };
        RowsStats {
            emitted: self.emitted,
            visited,
        }
    }

    /// Drains the remaining rows into a relation with [`Rows::schema`].
    pub fn into_relation(mut self) -> Relation {
        let mut rel = Relation::new(self.schema.clone());
        for row in self.by_ref() {
            rel.push(&row).expect("schema arity matches");
        }
        rel
    }
}

impl Iterator for Rows<'_> {
    type Item = Vec<ValueId>;

    fn next(&mut self) -> Option<Vec<ValueId>> {
        if self.limit.is_some_and(|k| self.emitted >= k) {
            return None;
        }
        loop {
            match &mut self.inner {
                Inner::Buffered { rel, next } => {
                    if *next >= rel.len() {
                        return None;
                    }
                    // `row()` panics on nullary relations; those hold only
                    // empty tuples, yielded directly.
                    let row = if rel.arity() == 0 {
                        Vec::new()
                    } else {
                        rel.row(*next).to_vec()
                    };
                    *next += 1;
                    self.emitted += 1;
                    return Some(row);
                }
                Inner::Walk { walk, validators } => {
                    let tuple = walk.next_tuple()?;
                    if !validators.iter_mut().all(|v| v.check(tuple)) {
                        continue;
                    }
                    let row: Vec<ValueId> = match &self.projection {
                        Some(positions) => positions.iter().map(|&p| tuple[p]).collect(),
                        None => tuple.to_vec(),
                    };
                    if let Some(seen) = &mut self.seen {
                        if !seen.insert(row.clone()) {
                            continue;
                        }
                    }
                    self.emitted += 1;
                    return Some(row);
                }
                Inner::Parallel { source, validators } => {
                    let tuple = source.next_tuple()?;
                    if !validators.iter_mut().all(|v| v.check(&tuple)) {
                        continue;
                    }
                    let row: Vec<ValueId> = match &self.projection {
                        Some(positions) => positions.iter().map(|&p| tuple[p]).collect(),
                        None => tuple,
                    };
                    if let Some(seen) = &mut self.seen {
                        if !seen.insert(row.clone()) {
                            continue;
                        }
                    }
                    self.emitted += 1;
                    // Publish the emitted count so workers can cut off once
                    // the limit is reached.
                    source.note_emitted(self.emitted as u64);
                    return Some(row);
                }
            }
        }
    }
}

impl std::fmt::Debug for Rows<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rows")
            .field("schema", &self.schema)
            .field("emitted", &self.emitted)
            .field("limit", &self.limit)
            .field(
                "mode",
                &match self.inner {
                    Inner::Buffered { .. } => "buffered",
                    Inner::Walk { .. } => "walk",
                    Inner::Parallel { .. } => "parallel",
                },
            )
            .finish()
    }
}

/// The shared front half of the walk-backed constructors: validate the
/// output projection, build per-twig validators, and derive the yielded
/// schema, projection positions, and (for lossy projections) the dedup set.
type WalkSetup<'a> = (
    Vec<Attr>,
    Vec<TwigValidator<'a>>,
    Schema,
    Option<Vec<usize>>,
    Option<HashSet<Vec<ValueId>>>,
);

fn walk_setup<'a>(
    ctx: &DataContext<'a>,
    query: &'a MultiModelQuery,
    plan: &JoinPlan,
) -> Result<WalkSetup<'a>> {
    let order = plan.order().to_vec();
    validate_output(query, &order)?;
    let validators: Vec<TwigValidator<'a>> = query
        .twigs
        .iter()
        .map(|t| TwigValidator::new(ctx.doc, ctx.index, t, &order))
        .collect::<Result<_>>()?;
    let (schema, projection, seen) = match &query.output {
        None => (
            Schema::new(order.iter().cloned()).expect("order vars distinct"),
            None,
            None,
        ),
        Some(out) => {
            let positions: Vec<usize> = out
                .iter()
                .map(|a| order.iter().position(|o| o == a).expect("validated above"))
                .collect();
            // Dropping variables can collapse distinct full tuples onto
            // one projected row; dedup to keep set semantics. A pure
            // reorder is injective and needs no bookkeeping.
            let lossy = order.iter().any(|o| !out.contains(o));
            (
                Schema::new(out.iter().cloned()).map_err(CoreError::from)?,
                Some(positions),
                lossy.then(HashSet::new),
            )
        }
    };
    Ok((order, validators, schema, projection, seen))
}

/// Streams the multi-model query depth-first with a fresh plan: lowers the
/// query, fixes the order per `cfg`, builds tries, and returns the lazy
/// [`Rows`]. Prefer [`crate::exec::stream`] unless you specifically want
/// the streaming XJoin regardless of options.
pub fn xjoin_rows<'a>(
    ctx: &DataContext<'a>,
    query: &'a MultiModelQuery,
    cfg: &crate::engine::XJoinConfig,
    limit: Option<usize>,
) -> Result<Rows<'a>> {
    let atoms = crate::atoms::collect_atoms(ctx, query)?;
    let order = crate::order::compute_order(&atoms, &cfg.order)?;
    validate_output(query, &order)?;
    let plan = JoinPlan::new(&atoms.rel_refs(), &order)?;
    Rows::from_walk(ctx, query, plan, limit)
}

/// Streams the query over an already-assembled plan (whose tries may come
/// from a shared cache — see the `xjoin-store` crate), with the same
/// per-tuple validation as [`xjoin_rows`]. Always the serial walk; use
/// [`stream_with_plan`] to honour a [`crate::Parallelism`] setting.
pub fn xjoin_rows_with_plan<'a>(
    ctx: &DataContext<'a>,
    query: &'a MultiModelQuery,
    plan: JoinPlan,
    limit: Option<usize>,
) -> Result<Rows<'a>> {
    Rows::from_walk(ctx, query, plan, limit)
}

/// Streams the query over an already-assembled plan, honouring the given
/// [`crate::ExecOptions`]: `limit` is pushed into the walk(s), and when
/// [`crate::ExecOptions::parallelism`] asks for more than one worker the
/// plan is walked morsel-parallel (see [`crate::morsel`]) — in the serial
/// walk's order unless [`crate::ExecOptions::unordered`] allows arrival
/// order. Zero-variable plans always stream serially.
pub fn stream_with_plan<'a>(
    ctx: &DataContext<'a>,
    query: &'a MultiModelQuery,
    plan: JoinPlan,
    opts: &ExecOptions,
) -> Result<Rows<'a>> {
    let workers = opts.parallelism.workers();
    if workers > 1 && !plan.var_plans().is_empty() {
        Rows::from_parallel(ctx, query, plan, opts.limit, workers, !opts.unordered)
    } else {
        Rows::from_walk(ctx, query, plan, opts.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{xjoin, XJoinConfig};
    use relational::{Database, Schema as RSchema, Value};
    use xmldb::{TagIndex, XmlDocument};

    fn setup() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            RSchema::of(&["orderID", "userID"]),
            vec![
                vec![Value::Int(1), Value::str("jack")],
                vec![Value::Int(2), Value::str("tom")],
                vec![Value::Int(3), Value::str("bob")],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("lines");
        for (oid, price) in [(1i64, 30i64), (2, 20), (9, 99)] {
            b.begin("line");
            b.leaf("orderID", oid);
            b.leaf("price", price);
            b.end();
        }
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    fn collect(rows: Rows<'_>) -> Relation {
        rows.into_relation()
    }

    #[test]
    fn streaming_matches_levelwise() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//line[/orderID][/price]"]).unwrap();
        let cfg = XJoinConfig::default();
        let streamed = collect(xjoin_rows(&ctx, &q, &cfg, None).unwrap());
        let levelwise = xjoin(&ctx, &q, &cfg).unwrap();
        assert!(streamed.set_eq(&levelwise.results));
    }

    #[test]
    fn streaming_respects_projection() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//line[/orderID][/price]"])
            .unwrap()
            .with_output(&["userID", "price"]);
        let streamed = collect(xjoin_rows(&ctx, &q, &XJoinConfig::default(), None).unwrap());
        let levelwise = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert!(streamed.set_eq(&levelwise.results));
        assert_eq!(streamed.len(), 2);
    }

    #[test]
    fn lossy_projection_deduplicates_like_the_engine() {
        // Two orders by the same user join two lines; projecting onto
        // userID alone must yield each user once (set semantics).
        let mut db = Database::new();
        db.load(
            "R",
            RSchema::of(&["orderID", "userID"]),
            vec![
                vec![Value::Int(1), Value::str("jack")],
                vec![Value::Int(2), Value::str("jack")],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("lines");
        for oid in [1i64, 2] {
            b.begin("line");
            b.leaf("orderID", oid);
            b.end();
        }
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//line/orderID"])
            .unwrap()
            .with_output(&["userID"]);
        let streamed = collect(xjoin_rows(&ctx, &q, &XJoinConfig::default(), None).unwrap());
        let levelwise = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert_eq!(streamed.len(), 1);
        assert!(streamed.set_eq(&levelwise.results));
    }

    #[test]
    fn streaming_validation_rejects_cross_node_tuples() {
        // Two lines with the same price but different orderIDs: streaming
        // validation must reject fabricated combinations exactly like the
        // level-wise engine.
        let mut db = Database::new();
        db.load("D", RSchema::of(&["price"]), vec![vec![Value::Int(7)]])
            .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("lines");
        for oid in [1i64, 2] {
            b.begin("line");
            b.leaf("orderID", oid);
            b.leaf("price", 7i64);
            b.end();
        }
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["D"], &["//line[/orderID][/price]"]).unwrap();
        let n = xjoin_rows(&ctx, &q, &XJoinConfig::default(), None)
            .unwrap()
            .count();
        // Valid: (line1, 1, 7) and (line2, 2, 7) — not the 2x2 cross.
        assert_eq!(n, 2);
    }

    #[test]
    fn results_stream_in_order() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//line/orderID"]).unwrap();
        let rows: Vec<Vec<ValueId>> = xjoin_rows(&ctx, &q, &XJoinConfig::default(), None)
            .unwrap()
            .collect();
        assert!(!rows.is_empty());
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted);
    }

    #[test]
    fn limit_fuses_and_stops_the_walk() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//line/orderID"]).unwrap();

        let mut full = xjoin_rows(&ctx, &q, &XJoinConfig::default(), None).unwrap();
        let total = full.by_ref().count();
        let full_visited = full.stats().visited;
        assert!(total > 1);

        let mut limited = xjoin_rows(&ctx, &q, &XJoinConfig::default(), Some(1)).unwrap();
        assert!(limited.next().is_some());
        assert!(limited.next().is_none(), "limited rows must fuse");
        let st = limited.stats();
        assert_eq!(st.emitted, 1);
        assert!(
            st.visited < full_visited,
            "limited visited {} !< full {}",
            st.visited,
            full_visited
        );
    }

    #[test]
    fn unknown_output_attribute_errors_before_walking() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//line/orderID"])
            .unwrap()
            .with_output(&["zz"]);
        assert!(matches!(
            xjoin_rows(&ctx, &q, &XJoinConfig::default(), None),
            Err(CoreError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn buffered_rows_iterate_a_finished_result() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &[]).unwrap();
        let out = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        let n = out.results.len();
        let rows = Rows::from_relation(out.results, out.order);
        assert_eq!(rows.stats().visited, n as u64);
        assert_eq!(rows.count(), n);
    }
}
