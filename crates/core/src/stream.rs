//! Streaming XJoin: depth-first enumeration of multi-model join results
//! without materialising intermediate relations.
//!
//! The paper's Algorithm 1 is breadth-first (it materialises `R` after every
//! attribute expansion — which is what makes its intermediate sizes
//! measurable and Lemma 3.5 meaningful). For consumers that only need the
//! *results*, the same atom set can be walked depth-first, LFTJ-style: the
//! worst-case optimality of the total work is unchanged, and memory drops to
//! the recursion depth. Structure validation runs per emitted tuple through
//! the same memoised validator as the level-wise engine.

use crate::atoms::collect_atoms;
use crate::error::Result;
use crate::order::compute_order;
use crate::query::{DataContext, MultiModelQuery};
use crate::validate::TwigValidator;
use crate::XJoinConfig;
use relational::lftj::lftj_foreach;
use relational::{JoinPlan, Relation, Schema, ValueId};

/// Streams every result of the multi-model query to `cb`, in lexicographic
/// order of the variable order. The tuple layout is the returned order.
///
/// Returns the variable order used.
pub fn xjoin_stream(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    cfg: &XJoinConfig,
    cb: impl FnMut(&[ValueId]),
) -> Result<Vec<relational::Attr>> {
    let atoms = collect_atoms(ctx, query)?;
    let order = compute_order(&atoms, &cfg.order)?;
    let refs = atoms.rel_refs();
    let plan = JoinPlan::new(&refs, &order)?;
    xjoin_stream_with_plan(ctx, query, &plan, cb)?;
    Ok(order)
}

/// Streams every result of the query over an already-assembled plan (whose
/// tries may come from a shared cache — see the `xjoin-store` crate), running
/// the same per-tuple structure validation as [`xjoin_stream`].
pub fn xjoin_stream_with_plan(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    plan: &JoinPlan,
    mut cb: impl FnMut(&[ValueId]),
) -> Result<()> {
    let mut validators: Vec<TwigValidator<'_>> = query
        .twigs
        .iter()
        .map(|t| TwigValidator::new(ctx.doc, ctx.index, t, plan.order()))
        .collect::<Result<_>>()?;
    lftj_foreach(plan, |tuple| {
        if validators.iter_mut().all(|v| v.check(tuple)) {
            cb(tuple);
        }
    });
    Ok(())
}

/// Counts results without materialising them (or the intermediates).
pub fn xjoin_count(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    cfg: &XJoinConfig,
) -> Result<usize> {
    let mut n = 0usize;
    xjoin_stream(ctx, query, cfg, |_| n += 1)?;
    Ok(n)
}

/// Materialises the streamed results (mainly for tests comparing against the
/// level-wise engine; projection onto `query.output` is applied like
/// [`crate::engine::xjoin`] does).
pub fn xjoin_collect(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    cfg: &XJoinConfig,
) -> Result<Relation> {
    let mut rows: Vec<Vec<ValueId>> = Vec::new();
    let order = xjoin_stream(ctx, query, cfg, |t| rows.push(t.to_vec()))?;
    let schema = Schema::new(order).expect("order vars distinct");
    let mut rel = Relation::with_capacity(schema, rows.len());
    for r in rows {
        rel.push(&r).expect("arity matches");
    }
    if let Some(out) = &query.output {
        rel = rel.project(out)?;
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::xjoin;
    use relational::{Database, Schema as RSchema, Value};
    use xmldb::{TagIndex, XmlDocument};

    fn setup() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            RSchema::of(&["orderID", "userID"]),
            vec![
                vec![Value::Int(1), Value::str("jack")],
                vec![Value::Int(2), Value::str("tom")],
                vec![Value::Int(3), Value::str("bob")],
            ],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("lines");
        for (oid, price) in [(1i64, 30i64), (2, 20), (9, 99)] {
            b.begin("line");
            b.leaf("orderID", oid);
            b.leaf("price", price);
            b.end();
        }
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn streaming_matches_levelwise() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//line[/orderID][/price]"]).unwrap();
        let cfg = XJoinConfig::default();
        let streamed = xjoin_collect(&ctx, &q, &cfg).unwrap();
        let levelwise = xjoin(&ctx, &q, &cfg).unwrap();
        assert!(streamed.set_eq(&levelwise.results));
        assert_eq!(xjoin_count(&ctx, &q, &cfg).unwrap(), streamed.len());
    }

    #[test]
    fn streaming_respects_projection() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//line[/orderID][/price]"])
            .unwrap()
            .with_output(&["userID", "price"]);
        let streamed = xjoin_collect(&ctx, &q, &XJoinConfig::default()).unwrap();
        let levelwise = xjoin(&ctx, &q, &XJoinConfig::default()).unwrap();
        assert!(streamed.set_eq(&levelwise.results));
        assert_eq!(streamed.len(), 2);
    }

    #[test]
    fn streaming_validation_rejects_cross_node_tuples() {
        // Two lines with the same price but different orderIDs: streaming
        // validation must reject fabricated combinations exactly like the
        // level-wise engine.
        let mut db = Database::new();
        db.load("D", RSchema::of(&["price"]), vec![vec![Value::Int(7)]])
            .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("lines");
        for oid in [1i64, 2] {
            b.begin("line");
            b.leaf("orderID", oid);
            b.leaf("price", 7i64);
            b.end();
        }
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["D"], &["//line[/orderID][/price]"]).unwrap();
        let n = xjoin_count(&ctx, &q, &XJoinConfig::default()).unwrap();
        // Valid: (line1, 1, 7) and (line2, 2, 7) — not the 2x2 cross.
        assert_eq!(n, 2);
    }

    #[test]
    fn results_stream_in_order() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//line/orderID"]).unwrap();
        let mut prev: Option<Vec<ValueId>> = None;
        xjoin_stream(&ctx, &q, &XJoinConfig::default(), |t| {
            if let Some(p) = &prev {
                assert!(p.as_slice() <= t);
            }
            prev = Some(t.to_vec());
        })
        .unwrap();
        assert!(prev.is_some());
    }
}
