//! Atom collection: lowering a multi-model query to one set of join atoms.
//!
//! This is the `S ← Sr ∪ transform(Sx)` line of the paper's Algorithm 1:
//! relational atoms are taken as-is; every twig is decomposed (cut A-D
//! edges → sub-twigs → root-leaf paths) and each path contributes one
//! *path relation*. Path relations are derived from the tag index in time
//! linear in the matching elements (each P-C chain is keyed by its lowest
//! node), which is why the paper can treat them as virtual tables.

use crate::error::Result;
use crate::query::{DataContext, MultiModelQuery, ResolvedAtom};
use relational::Relation;
use xmldb::transform::{decompose, path_relation, Decomposition};

/// A join atom: either a borrowed relational table or an owned (derived)
/// path relation.
#[derive(Debug)]
pub enum AtomRel<'a> {
    /// A relational atom from the database.
    Borrowed(&'a Relation),
    /// A derived path relation (or other owned relation).
    Owned(Relation),
}

impl AtomRel<'_> {
    /// The underlying relation.
    pub fn rel(&self) -> &Relation {
        match self {
            AtomRel::Borrowed(r) => r,
            AtomRel::Owned(r) => r,
        }
    }
}

/// The flattened atom set of a multi-model query.
#[derive(Debug)]
pub struct Atoms<'a> {
    /// Human-readable atom names (relation names; `twigN/path(V,…)` for path
    /// relations).
    pub names: Vec<String>,
    /// The atom relations, aligned with `names`.
    pub rels: Vec<AtomRel<'a>>,
    /// Index of the first path-relation atom (relational atoms come first).
    pub first_path_atom: usize,
    /// Per twig: its decomposition (for A-D edges and validation).
    pub decompositions: Vec<Decomposition>,
}

impl<'a> Atoms<'a> {
    /// Borrows all atom relations (for [`relational::JoinPlan`]).
    pub fn rel_refs(&self) -> Vec<&Relation> {
        self.rels.iter().map(|a| a.rel()).collect()
    }

    /// `(name, cardinality)` for every atom.
    pub fn sizes(&self) -> Vec<(String, usize)> {
        self.names
            .iter()
            .zip(&self.rels)
            .map(|(n, r)| (n.clone(), r.rel().len()))
            .collect()
    }
}

/// Lowers the query: relational atoms followed by every twig's path
/// relations.
pub fn collect_atoms<'a>(ctx: &DataContext<'a>, query: &MultiModelQuery) -> Result<Atoms<'a>> {
    let mut names = Vec::new();
    let mut rels: Vec<AtomRel<'a>> = Vec::new();
    for (atom, resolved) in query.relations.iter().zip(ctx.resolve_atoms(query)?) {
        names.push(atom.name.clone());
        rels.push(match resolved {
            ResolvedAtom::Plain(r) => AtomRel::Borrowed(r),
            ResolvedAtom::Renamed(r) => AtomRel::Owned(r),
        });
    }
    let first_path_atom = rels.len();
    let mut decompositions = Vec::with_capacity(query.twigs.len());
    for (t, twig) in query.twigs.iter().enumerate() {
        let dec = decompose(twig);
        for path in &dec.paths {
            let rel = path_relation(ctx.doc, ctx.index, twig, path);
            let vars: Vec<&str> = path
                .nodes
                .iter()
                .map(|&q| twig.node(q).var.name())
                .collect();
            names.push(format!("twig{}/path({})", t, vars.join(",")));
            rels.push(AtomRel::Owned(rel));
        }
        decompositions.push(dec);
    }
    Ok(Atoms {
        names,
        rels,
        first_path_atom,
        decompositions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::MultiModelQuery;
    use relational::{Database, Schema, Value};
    use xmldb::{TagIndex, XmlDocument};

    fn setup() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["B", "D"]),
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("A");
        b.leaf("B", 1i64);
        b.leaf("D", 2i64);
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn atoms_include_relations_then_paths() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B][/D]"]).unwrap();
        let atoms = collect_atoms(&ctx, &q).unwrap();
        assert_eq!(atoms.first_path_atom, 1);
        assert_eq!(atoms.names.len(), 3); // R + paths (A,B), (A,D)
        assert!(atoms.names[1].contains("A,B"));
        assert!(atoms.names[2].contains("A,D"));
        let sizes = atoms.sizes();
        assert_eq!(sizes[0].1, 1);
        assert_eq!(sizes[1].1, 1);
    }

    #[test]
    fn decompositions_are_kept_per_twig() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A//B", "//A$a2/D"]).unwrap();
        let atoms = collect_atoms(&ctx, &q).unwrap();
        assert_eq!(atoms.decompositions.len(), 2);
        assert_eq!(atoms.decompositions[0].ad_edges.len(), 1);
        assert!(atoms.decompositions[1].ad_edges.is_empty());
    }
}
