//! Twig structure validation — the last line of the paper's Algorithm 1.
//!
//! The transformed path relations are *value-level*: joining them can accept
//! tuples where a branching variable's value is realised by different
//! document nodes on different paths (see the worked example in the tests).
//! "Filter R by validating structure of Sx" repairs this: a result tuple
//! survives only if the original twig (A-D edges and all) has an embedding
//! whose node values equal the tuple's values.
//!
//! Validation of one tuple is a constrained twig match through the
//! (tag, value) index; results are memoised per distinct projection onto the
//! twig's variables, so repeated value combinations cost one lookup.

use crate::error::{CoreError, Result};
use relational::{Attr, ValueId};
use std::collections::HashMap;
use xmldb::matcher::match_exists_with_values;
use xmldb::{TagIndex, TwigPattern, XmlDocument};

/// Sentinel for "variable not bound yet" in memo keys.
const UNBOUND: u32 = u32::MAX;

/// A memoising validator for one twig against one document.
pub struct TwigValidator<'a> {
    doc: &'a XmlDocument,
    index: &'a TagIndex,
    twig: &'a TwigPattern,
    /// For each twig node, the position of its variable in the engine's
    /// global variable order (= the tuple layout).
    positions: Vec<usize>,
    cache: HashMap<Vec<u32>, bool>,
    /// Number of cache misses (actual twig searches) — exposed for tests and
    /// the experiments harness.
    pub lookups: usize,
    /// Number of validation calls.
    pub calls: usize,
}

impl<'a> TwigValidator<'a> {
    /// Builds a validator; `order` is the engine's global variable order.
    pub fn new(
        doc: &'a XmlDocument,
        index: &'a TagIndex,
        twig: &'a TwigPattern,
        order: &[Attr],
    ) -> Result<Self> {
        let positions = twig
            .vars()
            .iter()
            .map(|v| {
                order.iter().position(|o| o == v).ok_or_else(|| {
                    CoreError::BadOrder(format!("twig variable `{v}` missing from order"))
                })
            })
            .collect::<Result<Vec<usize>>>()?;
        Ok(TwigValidator {
            doc,
            index,
            twig,
            positions,
            cache: HashMap::new(),
            lookups: 0,
            calls: 0,
        })
    }

    /// Checks a tuple whose first `bound` positions (in global order) are
    /// bound. Returns `true` iff some embedding of the twig is consistent
    /// with every bound twig variable.
    ///
    /// With `bound == order.len()` this is the full final validation; with
    /// smaller `bound` it is the paper's *partial validation during the
    /// join* (its stated on-going work).
    pub fn check_prefix(&mut self, tuple: &[ValueId], bound: usize) -> bool {
        self.calls += 1;
        let key: Vec<u32> = self
            .positions
            .iter()
            .map(|&p| if p < bound { tuple[p].0 } else { UNBOUND })
            .collect();
        if let Some(&hit) = self.cache.get(&key) {
            return hit;
        }
        self.lookups += 1;
        let constraints: Vec<Option<ValueId>> = key
            .iter()
            .map(|&k| if k == UNBOUND { None } else { Some(ValueId(k)) })
            .collect();
        let ok = match_exists_with_values(self.doc, self.index, self.twig, &constraints);
        self.cache.insert(key, ok);
        ok
    }

    /// Full validation of a complete tuple.
    pub fn check(&mut self, tuple: &[ValueId]) -> bool {
        let n = self.positions.iter().map(|&p| p + 1).max().unwrap_or(0);
        debug_assert!(tuple.len() >= n);
        self.check_prefix(tuple, tuple.len())
    }

    /// Whether this twig has any variable at global order position `pos`.
    pub fn involves_position(&self, pos: usize) -> bool {
        self.positions.contains(&pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Dict, Value};
    use xmldb::TagIndex;

    /// Document with two `c` nodes sharing the value 9 but with different
    /// children: the canonical value-join false positive.
    fn doc(dict: &mut Dict) -> XmlDocument {
        let mut b = XmlDocument::builder();
        b.begin("r");
        b.begin("c");
        b.value(9i64);
        b.leaf("b", 1i64);
        b.end();
        b.begin("c");
        b.value(9i64);
        b.leaf("d", 2i64);
        b.end();
        b.end();
        b.build(dict)
    }

    #[test]
    fn rejects_cross_node_value_combination() {
        let mut dict = Dict::new();
        let d = doc(&mut dict);
        let idx = TagIndex::build(&d);
        let twig = TwigPattern::parse("//c[/b][/d]").unwrap();
        let order: Vec<Attr> = vec!["c".into(), "b".into(), "d".into()];
        let mut v = TwigValidator::new(&d, &idx, &twig, &order).unwrap();
        let nine = dict.lookup(&Value::Int(9)).unwrap();
        let one = dict.lookup(&Value::Int(1)).unwrap();
        let two = dict.lookup(&Value::Int(2)).unwrap();
        // Value-level join would produce (c=9, b=1, d=2); no single c node
        // has both children.
        assert!(!v.check(&[nine, one, two]));
    }

    #[test]
    fn accepts_real_embeddings() {
        let mut dict = Dict::new();
        let d = doc(&mut dict);
        let idx = TagIndex::build(&d);
        let twig = TwigPattern::parse("//c/b").unwrap();
        let order: Vec<Attr> = vec!["c".into(), "b".into()];
        let mut v = TwigValidator::new(&d, &idx, &twig, &order).unwrap();
        let nine = dict.lookup(&Value::Int(9)).unwrap();
        let one = dict.lookup(&Value::Int(1)).unwrap();
        assert!(v.check(&[nine, one]));
    }

    #[test]
    fn partial_prefix_checks() {
        let mut dict = Dict::new();
        let d = doc(&mut dict);
        let idx = TagIndex::build(&d);
        let twig = TwigPattern::parse("//c[/b][/d]").unwrap();
        let order: Vec<Attr> = vec!["c".into(), "b".into(), "d".into()];
        let mut v = TwigValidator::new(&d, &idx, &twig, &order).unwrap();
        let nine = dict.lookup(&Value::Int(9)).unwrap();
        let one = dict.lookup(&Value::Int(1)).unwrap();
        // With only c bound: there is NO c with both a b and a d child,
        // so even the prefix (c=9) is already invalid.
        assert!(!v.check_prefix(&[nine, one, one], 1));
    }

    #[test]
    fn cache_deduplicates_lookups() {
        let mut dict = Dict::new();
        let d = doc(&mut dict);
        let idx = TagIndex::build(&d);
        let twig = TwigPattern::parse("//c/b").unwrap();
        let order: Vec<Attr> = vec!["c".into(), "b".into()];
        let mut v = TwigValidator::new(&d, &idx, &twig, &order).unwrap();
        let nine = dict.lookup(&Value::Int(9)).unwrap();
        let one = dict.lookup(&Value::Int(1)).unwrap();
        for _ in 0..5 {
            v.check(&[nine, one]);
        }
        assert_eq!(v.calls, 5);
        assert_eq!(v.lookups, 1);
    }

    #[test]
    fn order_must_cover_twig_vars() {
        let mut dict = Dict::new();
        let d = doc(&mut dict);
        let idx = TagIndex::build(&d);
        let twig = TwigPattern::parse("//c/b").unwrap();
        let order: Vec<Attr> = vec!["c".into()];
        assert!(TwigValidator::new(&d, &idx, &twig, &order).is_err());
    }

    #[test]
    fn involves_position_maps_vars() {
        let mut dict = Dict::new();
        let d = doc(&mut dict);
        let idx = TagIndex::build(&d);
        let twig = TwigPattern::parse("//c/b").unwrap();
        let order: Vec<Attr> = vec!["z".into(), "c".into(), "b".into()];
        // "z" is not a twig var; positions 1 and 2 are.
        let v = TwigValidator::new(&d, &idx, &twig, &order).unwrap();
        assert!(!v.involves_position(0));
        assert!(v.involves_position(1));
        assert!(v.involves_position(2));
    }
}
