//! `EXPLAIN` for multi-model queries: the lowered atom set, the chosen
//! variable order, the size bounds (full and per prefix) — everything the
//! paper's Section 3 computes — plus the cold-start cost profile: what each
//! atom's trie costs to build and which sort path the builder takes.

use crate::atoms::collect_atoms;
use crate::bounds::{mixed_hypergraph, prefix_bounds, query_bound};
use crate::error::Result;
use crate::order::{compute_order, OrderStrategy};
use crate::query::{DataContext, MultiModelQuery};
use relational::{BuildStats, JoinPlan, Ladder, LevelProbeStats, LftjWalk, TrieBuilder};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cold-start build profile of one atom's trie (see
/// [`Explanation::trie_builds`]).
#[derive(Debug, Clone)]
pub struct TrieBuildProfile {
    /// The atom's display name.
    pub atom: String,
    /// The builder's cost profile: rows in, distinct tuples, sort path,
    /// elapsed time.
    pub stats: BuildStats,
    /// Estimated resident bytes of the built trie.
    pub bytes: usize,
}

/// A query explanation: structure, order, bounds, and build costs.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// `(atom name, schema rendering, cardinality)` per atom.
    pub atoms: Vec<(String, String, usize)>,
    /// The variable order that would be used.
    pub order: Vec<String>,
    /// AGM bound of the full query with actual sizes (Lemma 3.1).
    pub bound: f64,
    /// AGM bound after each expansion step (Lemma 3.5's per-stage bound).
    pub prefix_bounds: Vec<f64>,
    /// Cut A-D edges per twig, as variable pairs.
    pub ad_edges: Vec<(String, String)>,
    /// Per-atom trie construction profiles under the chosen order — the
    /// cold-query cost a cache-less execution would pay up front.
    pub trie_builds: Vec<TrieBuildProfile>,
    /// Estimated resident bytes of the shared dictionary (what any memory
    /// budget must carry besides the tries themselves).
    pub dict_bytes: usize,
}

/// Explains a query without running the join. The twigs are lowered to
/// path relations and each atom's trie **is** built (once, with one reused
/// [`TrieBuilder`]) so the explanation can report *measured* construction
/// costs — but no intersection work happens.
///
/// Note the price of honest numbers: a cold `explain` deliberately pays
/// (and reports) the same trie-build bill a cold execution would, and the
/// built tries are dropped afterwards — `explain` has no access to a trie
/// cache (that lives in `xjoin-store`), so an explain-then-execute sequence
/// builds twice. Use it as a diagnostic, not on the hot path; cached
/// serving deployments should inspect `xjoin-store`'s `CacheStats` instead.
pub fn explain(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    strategy: &OrderStrategy,
) -> Result<Explanation> {
    let atoms = collect_atoms(ctx, query)?;
    let order = compute_order(&atoms, strategy)?;
    let bound = query_bound(&atoms)?;
    let prefixes = prefix_bounds(&atoms, &order)?;
    let (_h, _sizes) = mixed_hypergraph(&atoms);
    let mut builder = TrieBuilder::new();
    let mut trie_builds = Vec::with_capacity(atoms.rels.len());
    for (name, resolved) in atoms.names.iter().zip(&atoms.rels) {
        let rel = resolved.rel();
        let restricted = rel.schema().restrict_order(&order)?;
        let trie = builder.build(rel, &restricted)?;
        trie_builds.push(TrieBuildProfile {
            atom: name.clone(),
            stats: builder.last_stats().expect("just built").clone(),
            bytes: trie.estimated_bytes(),
        });
    }
    let mut ad_edges = Vec::new();
    for (twig, dec) in query.twigs.iter().zip(&atoms.decompositions) {
        for &(a, d) in &dec.ad_edges {
            ad_edges.push((
                twig.node(a).var.name().to_owned(),
                twig.node(d).var.name().to_owned(),
            ));
        }
    }
    Ok(Explanation {
        atoms: atoms
            .names
            .iter()
            .zip(&atoms.rels)
            .map(|(n, r)| (n.clone(), r.rel().schema().to_string(), r.rel().len()))
            .collect(),
        order: order.iter().map(|a| a.name().to_owned()).collect(),
        bound,
        prefix_bounds: prefixes,
        ad_edges,
        trie_builds,
        dict_bytes: ctx.db.dict().estimated_bytes(),
    })
}

impl Explanation {
    /// Renders the explanation as an indented text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "atoms:");
        for (name, schema, size) in &self.atoms {
            let _ = writeln!(out, "  {name}{schema}  [{size} tuples]");
        }
        let _ = writeln!(out, "variable order: {}", self.order.join(", "));
        if !self.ad_edges.is_empty() {
            let rendered: Vec<String> = self
                .ad_edges
                .iter()
                .map(|(a, d)| format!("{a}//{d}"))
                .collect();
            let _ = writeln!(
                out,
                "cut A-D edges (validated post-join): {}",
                rendered.join(", ")
            );
        }
        let _ = writeln!(
            out,
            "worst-case result bound (Lemma 3.1): {:.1}",
            self.bound
        );
        let _ = writeln!(out, "per-stage intermediate bounds (Lemma 3.5):");
        for (var, b) in self.order.iter().zip(&self.prefix_bounds) {
            let _ = writeln!(out, "  after {var:<12} <= {b:.1}");
        }
        let _ = writeln!(out, "trie construction (cold-start cost per atom):");
        for p in &self.trie_builds {
            let layouts: Vec<String> = p.stats.layouts.iter().map(|l| l.to_string()).collect();
            let _ = writeln!(
                out,
                "  {:<16} {:>8} rows -> {:>8} tuples  path={:<11} {:>10.3} ms  {:>8} bytes  layouts=[{}]",
                p.atom,
                p.stats.rows_in,
                p.stats.tuples,
                p.stats.path.to_string(),
                p.stats.elapsed.as_secs_f64() * 1e3,
                p.bytes,
                layouts.join(",")
            );
        }
        let _ = writeln!(out, "dictionary resident bytes: {}", self.dict_bytes);
        out
    }
}

/// One attribute level of an [`AnalyzeReport`]: the Lemma 3.5 prefix bound
/// next to what the instrumented walk actually did there.
#[derive(Debug, Clone)]
pub struct LevelAnalysis {
    /// The variable bound at this level.
    pub var: String,
    /// The AGM bound on distinct matching prefixes through this level
    /// (Lemma 3.5).
    pub bound: f64,
    /// Distinct matching prefixes the walk actually bound at this level.
    pub actual: u64,
    /// The level's raw probe counters (seeks, gallop steps, batch refills,
    /// bitmap words).
    pub probe: LevelProbeStats,
}

impl LevelAnalysis {
    /// `actual / bound` — how much of the worst-case budget this level
    /// consumed (1.0 = the bound is tight; 0 when both are zero).
    pub fn tightness(&self) -> f64 {
        if self.bound > 0.0 {
            self.actual as f64 / self.bound
        } else if self.actual == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    }
}

/// Measured adaptive-ordering behaviour of one instrumented walk — present
/// in an [`AnalyzeReport`] only under [`OrderStrategy::Adaptive`].
#[derive(Debug, Clone)]
pub struct AdaptiveAnalysis {
    /// The ladder rung that scored candidates.
    pub ladder: Ladder,
    /// Choices that deviated from the static (skeleton) schedule.
    pub reorders: u64,
    /// Candidate estimates computed by the chooser (its maintenance cost).
    pub estimate_probes: u64,
    /// Per walk depth, the variables chosen there with their pick counts
    /// (nonzero entries only) — the measured chosen-order-per-subtree.
    pub choices: Vec<Vec<(String, u64)>>,
    /// Per variable: `(name, estimated bindings at choice time, actual
    /// bindings)` — the estimate-vs-actual error signal.
    pub estimates: Vec<(String, u64, u64)>,
}

impl AdaptiveAnalysis {
    /// `estimated / actual` for variable `i` (`None` when it never bound).
    pub fn estimate_error(&self, i: usize) -> Option<f64> {
        let (_, est, actual) = self.estimates.get(i)?;
        (*actual > 0).then(|| *est as f64 / *actual as f64)
    }
}

/// What [`explain_analyze`] returns: the static [`Explanation`] plus
/// measured per-level actuals, probe counters, and stage wall times from an
/// instrumented serial run.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// The static explanation (atoms, order, bounds, build profiles).
    pub explanation: Explanation,
    /// Per attribute level: bound vs actual vs probe counters, in order.
    pub levels: Vec<LevelAnalysis>,
    /// Adaptive-ordering measurements (`None` under static strategies).
    pub adaptive: Option<AdaptiveAnalysis>,
    /// Join result rows enumerated by the walk (full-width, before twig
    /// structure validation and projection).
    pub output_rows: u64,
    /// Wall time of resolution: atom lowering, order selection, bounds.
    pub resolve_elapsed: Duration,
    /// Wall time of trie construction (the cold-start build bill).
    pub build_elapsed: Duration,
    /// Wall time of the instrumented LFTJ walk.
    pub probe_elapsed: Duration,
    /// End-to-end wall time of the analyze run.
    pub total_elapsed: Duration,
}

/// `EXPLAIN ANALYZE`: resolves the query, builds its tries, and **runs** a
/// probe-counting serial [`LftjWalk`] (block kernel) over the plan, so the
/// report can put *measured* per-level bindings and probe work next to the
/// Lemma 3.5 bounds [`explain`] only predicts. Spans land in the
/// `xjoin-obs` tracer when it is enabled.
///
/// The walk enumerates the raw join — twig structure validation and
/// projection are downstream of the per-level quantities Lemma 3.5 bounds,
/// so they are intentionally not part of the run.
pub fn explain_analyze(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    strategy: &OrderStrategy,
) -> Result<AnalyzeReport> {
    let total_start = Instant::now();
    let _qspan = xjoin_obs::span("explain-analyze");

    let resolve_start = Instant::now();
    let atoms = {
        let _span = xjoin_obs::span("resolve");
        collect_atoms(ctx, query)?
    };
    let order = {
        let _span = xjoin_obs::span("order");
        compute_order(&atoms, strategy)?
    };
    let bound = query_bound(&atoms)?;
    let prefixes = prefix_bounds(&atoms, &order)?;
    let resolve_elapsed = resolve_start.elapsed();

    let build_start = Instant::now();
    let mut builder = TrieBuilder::new();
    let mut trie_builds = Vec::with_capacity(atoms.rels.len());
    let mut tries = Vec::with_capacity(atoms.rels.len());
    for (name, resolved) in atoms.names.iter().zip(&atoms.rels) {
        let mut span = xjoin_obs::span("trie-build");
        let rel = resolved.rel();
        let restricted = rel.schema().restrict_order(&order)?;
        let trie = builder.build(rel, &restricted)?;
        let stats = builder.last_stats().expect("just built").clone();
        span.set_attr(|| {
            let layouts: Vec<String> = stats.layouts.iter().map(|l| l.to_string()).collect();
            format!("{name} path={} layouts=[{}]", stats.path, layouts.join(","))
        });
        trie_builds.push(TrieBuildProfile {
            atom: name.clone(),
            stats,
            bytes: trie.estimated_bytes(),
        });
        tries.push(Arc::new(trie));
    }
    let plan = JoinPlan::from_shared(tries, &order)?.with_ladder(strategy.ladder());
    let build_elapsed = build_start.elapsed();

    let probe_start = Instant::now();
    let mut walk = LftjWalk::new(plan).with_probe_counters();
    let mut output_rows = 0u64;
    {
        let _span = xjoin_obs::span("probe");
        while walk.next_tuple().is_some() {
            output_rows += 1;
        }
    }
    let probe_elapsed = probe_start.elapsed();

    let adaptive = walk.ladder().map(|ladder| {
        let nvars = order.len();
        let hist = walk.choice_histogram();
        let choices = (0..nvars)
            .map(|d| {
                (0..nvars)
                    .filter(|&v| hist[d * nvars + v] > 0)
                    .map(|v| (order[v].name().to_owned(), hist[d * nvars + v]))
                    .collect()
            })
            .collect();
        let estimates = order
            .iter()
            .zip(walk.estimated_bindings())
            .zip(walk.probe_stats())
            .map(|((var, &est), probe)| (var.name().to_owned(), est, probe.bindings))
            .collect();
        AdaptiveAnalysis {
            ladder,
            reorders: walk.reorders(),
            estimate_probes: walk.estimate_probes(),
            choices,
            estimates,
        }
    });

    let levels = order
        .iter()
        .zip(&prefixes)
        .zip(walk.probe_stats())
        .map(|((var, &b), probe)| LevelAnalysis {
            var: var.name().to_owned(),
            bound: b,
            actual: probe.bindings,
            probe: *probe,
        })
        .collect();

    let mut ad_edges = Vec::new();
    for (twig, dec) in query.twigs.iter().zip(&atoms.decompositions) {
        for &(a, d) in &dec.ad_edges {
            ad_edges.push((
                twig.node(a).var.name().to_owned(),
                twig.node(d).var.name().to_owned(),
            ));
        }
    }
    let explanation = Explanation {
        atoms: atoms
            .names
            .iter()
            .zip(&atoms.rels)
            .map(|(n, r)| (n.clone(), r.rel().schema().to_string(), r.rel().len()))
            .collect(),
        order: order.iter().map(|a| a.name().to_owned()).collect(),
        bound,
        prefix_bounds: prefixes,
        ad_edges,
        trie_builds,
        dict_bytes: ctx.db.dict().estimated_bytes(),
    };
    Ok(AnalyzeReport {
        explanation,
        levels,
        adaptive,
        output_rows,
        resolve_elapsed,
        build_elapsed,
        probe_elapsed,
        total_elapsed: total_start.elapsed(),
    })
}

impl AnalyzeReport {
    /// Renders the report: the static explanation followed by the measured
    /// per-level table and the stage wall-time split.
    pub fn render(&self) -> String {
        let mut out = self.explanation.render();
        let _ = writeln!(out, "measured per level (serial lftj, block kernel):");
        let _ = writeln!(
            out,
            "  {:<12} {:>14} {:>12} {:>10} {:>10} {:>12} {:>9} {:>13}",
            "level",
            "bound",
            "actual",
            "tightness",
            "seeks",
            "seek_steps",
            "refills",
            "bitset_words"
        );
        for l in &self.levels {
            let _ = writeln!(
                out,
                "  {:<12} {:>14.1} {:>12} {:>10.4} {:>10} {:>12} {:>9} {:>13}",
                l.var,
                l.bound,
                l.actual,
                l.tightness(),
                l.probe.seeks,
                l.probe.seek_steps,
                l.probe.refills,
                l.probe.bitset_words
            );
        }
        if let Some(a) = &self.adaptive {
            let _ = writeln!(
                out,
                "adaptive ordering (ladder={}): {} reorder(s), {} estimate probe(s)",
                a.ladder, a.reorders, a.estimate_probes
            );
            for (d, picks) in a.choices.iter().enumerate() {
                if picks.is_empty() {
                    continue;
                }
                let rendered: Vec<String> =
                    picks.iter().map(|(var, n)| format!("{var}×{n}")).collect();
                let _ = writeln!(out, "  depth {d}: {}", rendered.join(", "));
            }
            let _ = writeln!(out, "  estimate vs actual bindings:");
            for (i, (var, est, actual)) in a.estimates.iter().enumerate() {
                let err = a
                    .estimate_error(i)
                    .map(|e| format!("{e:.3}"))
                    .unwrap_or_else(|| "-".to_owned());
                let _ = writeln!(
                    out,
                    "    {var:<12} est {est:>10}  actual {actual:>10}  ratio {err}"
                );
            }
        }
        let _ = writeln!(out, "join rows (pre-validation): {}", self.output_rows);
        let build_ms = self.build_elapsed.as_secs_f64() * 1e3;
        let probe_ms = self.probe_elapsed.as_secs_f64() * 1e3;
        let split = build_ms + probe_ms;
        let _ = writeln!(
            out,
            "stage wall times: resolve {:.3} ms, build {build_ms:.3} ms, probe {probe_ms:.3} ms, total {:.3} ms",
            self.resolve_elapsed.as_secs_f64() * 1e3,
            self.total_elapsed.as_secs_f64() * 1e3,
        );
        if split > 0.0 {
            let _ = writeln!(
                out,
                "build/probe split: {:.0}% / {:.0}%",
                100.0 * build_ms / split,
                100.0 * probe_ms / split
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Database, Schema, Value};
    use xmldb::{TagIndex, XmlDocument};

    fn setup() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["B", "D"]),
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("A");
        b.value(0i64);
        b.leaf("B", 1i64);
        b.leaf("D", 2i64);
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn explanation_lists_atoms_and_bounds() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B]//D"]).unwrap();
        let e = explain(&ctx, &q, &OrderStrategy::Appearance).unwrap();
        assert_eq!(e.atoms.len(), 3); // R + path(A,B) + path(D)
        assert_eq!(e.order.len(), 3); // B, D (shared with R) and A
        assert_eq!(e.prefix_bounds.len(), e.order.len());
        assert_eq!(e.ad_edges, vec![("A".to_owned(), "D".to_owned())]);
        assert!(e.bound >= 1.0);
        let text = e.render();
        assert!(text.contains("variable order"));
        assert!(text.contains("Lemma 3.1"));
        assert!(text.contains("A//D"));
        // Build profiles cover every atom and report a sort path.
        assert_eq!(e.trie_builds.len(), e.atoms.len());
        for (p, (name, _, size)) in e.trie_builds.iter().zip(&e.atoms) {
            assert_eq!(&p.atom, name);
            assert_eq!(p.stats.rows_in, *size);
            assert!(p.stats.tuples <= p.stats.rows_in);
            assert!(!p.stats.layouts.is_empty(), "layouts reported per level");
        }
        assert!(text.contains("layouts=[sorted"), "{text}");
        assert!(e.dict_bytes > 0);
        assert!(text.contains("trie construction"));
        assert!(text.contains("dictionary resident bytes"));
    }

    #[test]
    fn explain_analyze_reports_actuals_against_bounds() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B][/D]"]).unwrap();
        let a = explain_analyze(&ctx, &q, &OrderStrategy::Appearance).unwrap();
        assert_eq!(a.levels.len(), a.explanation.order.len());
        for (l, b) in a.levels.iter().zip(&a.explanation.prefix_bounds) {
            assert_eq!(l.bound, *b);
            assert!(
                l.tightness() <= 1.0 + 1e-9,
                "actuals may not exceed the Lemma 3.5 bound: {} > {}",
                l.actual,
                l.bound
            );
        }
        // The tiny instance joins to one row; every level binds it.
        assert_eq!(a.output_rows, 1);
        assert!(a.levels.iter().all(|l| l.actual > 0));
        // Too small an instance to force seeks, but the block kernel must
        // have refilled each level's batch at least once.
        assert!(a.levels.iter().all(|l| l.probe.refills > 0));
        let text = a.render();
        assert!(text.contains("tightness"), "{text}");
        assert!(text.contains("build/probe split"), "{text}");
    }

    #[test]
    fn explain_analyze_reports_adaptive_choices() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B][/D]"]).unwrap();
        let strategy = OrderStrategy::Adaptive {
            ladder: Ladder::Refined,
        };
        let a = explain_analyze(&ctx, &q, &strategy).unwrap();
        assert_eq!(a.output_rows, 1);
        let adaptive = a.adaptive.as_ref().expect("adaptive section present");
        assert_eq!(adaptive.ladder, Ladder::Refined);
        // Depth 0 is pinned to the skeleton's first variable and recorded.
        assert!(!adaptive.choices[0].is_empty());
        assert_eq!(adaptive.estimates.len(), a.explanation.order.len());
        let text = a.render();
        assert!(
            text.contains("adaptive ordering (ladder=refined)"),
            "{text}"
        );
        assert!(text.contains("estimate vs actual"), "{text}");

        // Static strategies carry no adaptive section.
        let s = explain_analyze(&ctx, &q, &OrderStrategy::Appearance).unwrap();
        assert!(s.adaptive.is_none());
        assert!(!s.render().contains("adaptive ordering"));
    }

    #[test]
    fn prefix_bounds_end_at_full_bound() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B][/D]"]).unwrap();
        let e = explain(&ctx, &q, &OrderStrategy::Appearance).unwrap();
        let last = *e.prefix_bounds.last().unwrap();
        assert!((last - e.bound).abs() < 1e-6 * (1.0 + e.bound));
    }
}
