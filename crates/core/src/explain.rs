//! `EXPLAIN` for multi-model queries: the lowered atom set, the chosen
//! variable order, the size bounds (full and per prefix) — everything the
//! paper's Section 3 computes — plus the cold-start cost profile: what each
//! atom's trie costs to build and which sort path the builder takes.

use crate::atoms::collect_atoms;
use crate::bounds::{mixed_hypergraph, prefix_bounds, query_bound};
use crate::error::Result;
use crate::order::{compute_order, OrderStrategy};
use crate::query::{DataContext, MultiModelQuery};
use relational::{BuildStats, TrieBuilder};
use std::fmt::Write as _;

/// Cold-start build profile of one atom's trie (see
/// [`Explanation::trie_builds`]).
#[derive(Debug, Clone)]
pub struct TrieBuildProfile {
    /// The atom's display name.
    pub atom: String,
    /// The builder's cost profile: rows in, distinct tuples, sort path,
    /// elapsed time.
    pub stats: BuildStats,
    /// Estimated resident bytes of the built trie.
    pub bytes: usize,
}

/// A query explanation: structure, order, bounds, and build costs.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// `(atom name, schema rendering, cardinality)` per atom.
    pub atoms: Vec<(String, String, usize)>,
    /// The variable order that would be used.
    pub order: Vec<String>,
    /// AGM bound of the full query with actual sizes (Lemma 3.1).
    pub bound: f64,
    /// AGM bound after each expansion step (Lemma 3.5's per-stage bound).
    pub prefix_bounds: Vec<f64>,
    /// Cut A-D edges per twig, as variable pairs.
    pub ad_edges: Vec<(String, String)>,
    /// Per-atom trie construction profiles under the chosen order — the
    /// cold-query cost a cache-less execution would pay up front.
    pub trie_builds: Vec<TrieBuildProfile>,
    /// Estimated resident bytes of the shared dictionary (what any memory
    /// budget must carry besides the tries themselves).
    pub dict_bytes: usize,
}

/// Explains a query without running the join. The twigs are lowered to
/// path relations and each atom's trie **is** built (once, with one reused
/// [`TrieBuilder`]) so the explanation can report *measured* construction
/// costs — but no intersection work happens.
///
/// Note the price of honest numbers: a cold `explain` deliberately pays
/// (and reports) the same trie-build bill a cold execution would, and the
/// built tries are dropped afterwards — `explain` has no access to a trie
/// cache (that lives in `xjoin-store`), so an explain-then-execute sequence
/// builds twice. Use it as a diagnostic, not on the hot path; cached
/// serving deployments should inspect `xjoin-store`'s `CacheStats` instead.
pub fn explain(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    strategy: &OrderStrategy,
) -> Result<Explanation> {
    let atoms = collect_atoms(ctx, query)?;
    let order = compute_order(&atoms, strategy)?;
    let bound = query_bound(&atoms)?;
    let prefixes = prefix_bounds(&atoms, &order)?;
    let (_h, _sizes) = mixed_hypergraph(&atoms);
    let mut builder = TrieBuilder::new();
    let mut trie_builds = Vec::with_capacity(atoms.rels.len());
    for (name, resolved) in atoms.names.iter().zip(&atoms.rels) {
        let rel = resolved.rel();
        let restricted = rel.schema().restrict_order(&order)?;
        let trie = builder.build(rel, &restricted)?;
        trie_builds.push(TrieBuildProfile {
            atom: name.clone(),
            stats: builder.last_stats().expect("just built").clone(),
            bytes: trie.estimated_bytes(),
        });
    }
    let mut ad_edges = Vec::new();
    for (twig, dec) in query.twigs.iter().zip(&atoms.decompositions) {
        for &(a, d) in &dec.ad_edges {
            ad_edges.push((
                twig.node(a).var.name().to_owned(),
                twig.node(d).var.name().to_owned(),
            ));
        }
    }
    Ok(Explanation {
        atoms: atoms
            .names
            .iter()
            .zip(&atoms.rels)
            .map(|(n, r)| (n.clone(), r.rel().schema().to_string(), r.rel().len()))
            .collect(),
        order: order.iter().map(|a| a.name().to_owned()).collect(),
        bound,
        prefix_bounds: prefixes,
        ad_edges,
        trie_builds,
        dict_bytes: ctx.db.dict().estimated_bytes(),
    })
}

impl Explanation {
    /// Renders the explanation as an indented text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "atoms:");
        for (name, schema, size) in &self.atoms {
            let _ = writeln!(out, "  {name}{schema}  [{size} tuples]");
        }
        let _ = writeln!(out, "variable order: {}", self.order.join(", "));
        if !self.ad_edges.is_empty() {
            let rendered: Vec<String> = self
                .ad_edges
                .iter()
                .map(|(a, d)| format!("{a}//{d}"))
                .collect();
            let _ = writeln!(
                out,
                "cut A-D edges (validated post-join): {}",
                rendered.join(", ")
            );
        }
        let _ = writeln!(
            out,
            "worst-case result bound (Lemma 3.1): {:.1}",
            self.bound
        );
        let _ = writeln!(out, "per-stage intermediate bounds (Lemma 3.5):");
        for (var, b) in self.order.iter().zip(&self.prefix_bounds) {
            let _ = writeln!(out, "  after {var:<12} <= {b:.1}");
        }
        let _ = writeln!(out, "trie construction (cold-start cost per atom):");
        for p in &self.trie_builds {
            let layouts: Vec<String> = p.stats.layouts.iter().map(|l| l.to_string()).collect();
            let _ = writeln!(
                out,
                "  {:<16} {:>8} rows -> {:>8} tuples  path={:<11} {:>10.3} ms  {:>8} bytes  layouts=[{}]",
                p.atom,
                p.stats.rows_in,
                p.stats.tuples,
                p.stats.path.to_string(),
                p.stats.elapsed.as_secs_f64() * 1e3,
                p.bytes,
                layouts.join(",")
            );
        }
        let _ = writeln!(out, "dictionary resident bytes: {}", self.dict_bytes);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Database, Schema, Value};
    use xmldb::{TagIndex, XmlDocument};

    fn setup() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["B", "D"]),
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .unwrap();
        let mut dict = db.dict().clone();
        let mut b = XmlDocument::builder();
        b.begin("A");
        b.value(0i64);
        b.leaf("B", 1i64);
        b.leaf("D", 2i64);
        b.end();
        let doc = b.build(&mut dict);
        *db.dict_mut() = dict;
        (db, doc)
    }

    #[test]
    fn explanation_lists_atoms_and_bounds() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B]//D"]).unwrap();
        let e = explain(&ctx, &q, &OrderStrategy::Appearance).unwrap();
        assert_eq!(e.atoms.len(), 3); // R + path(A,B) + path(D)
        assert_eq!(e.order.len(), 3); // B, D (shared with R) and A
        assert_eq!(e.prefix_bounds.len(), e.order.len());
        assert_eq!(e.ad_edges, vec![("A".to_owned(), "D".to_owned())]);
        assert!(e.bound >= 1.0);
        let text = e.render();
        assert!(text.contains("variable order"));
        assert!(text.contains("Lemma 3.1"));
        assert!(text.contains("A//D"));
        // Build profiles cover every atom and report a sort path.
        assert_eq!(e.trie_builds.len(), e.atoms.len());
        for (p, (name, _, size)) in e.trie_builds.iter().zip(&e.atoms) {
            assert_eq!(&p.atom, name);
            assert_eq!(p.stats.rows_in, *size);
            assert!(p.stats.tuples <= p.stats.rows_in);
            assert!(!p.stats.layouts.is_empty(), "layouts reported per level");
        }
        assert!(text.contains("layouts=[sorted"), "{text}");
        assert!(e.dict_bytes > 0);
        assert!(text.contains("trie construction"));
        assert!(text.contains("dictionary resident bytes"));
    }

    #[test]
    fn prefix_bounds_end_at_full_bound() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//A[/B][/D]"]).unwrap();
        let e = explain(&ctx, &q, &OrderStrategy::Appearance).unwrap();
        let last = *e.prefix_bounds.last().unwrap();
        assert!((last - e.bound).abs() < 1e-6 * (1.0 + e.bound));
    }
}
