//! Multi-model queries: relational atoms joined with XML twig patterns.

use crate::error::{CoreError, Result};
use relational::{Attr, Database, Relation};
use xmldb::{TagIndex, TwigPattern, XmlDocument};

/// One positional argument of a relational atom: a variable or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A join variable.
    Var(Attr),
    /// A constant the column must equal (a selection).
    Const(relational::Value),
}

/// One relational atom of a query: a named relation, optionally with its
/// columns rebound positionally as in datalog bodies. Terms may be
/// variables (renames), constants (selections), or repeated variables
/// (intra-atom equality).
#[derive(Debug, Clone, PartialEq)]
pub struct RelAtom {
    /// Name of the relation in the [`Database`].
    pub name: String,
    /// Positional terms (`None` = use the stored schema unchanged).
    pub terms: Option<Vec<Term>>,
}

impl RelAtom {
    /// An atom using the relation's stored schema.
    pub fn plain(name: impl Into<String>) -> Self {
        RelAtom {
            name: name.into(),
            terms: None,
        }
    }

    /// An atom with positional variable rebinding.
    pub fn renamed(name: impl Into<String>, attrs: Vec<Attr>) -> Self {
        RelAtom {
            name: name.into(),
            terms: Some(attrs.into_iter().map(Term::Var).collect()),
        }
    }

    /// An atom with arbitrary positional terms.
    pub fn with_terms(name: impl Into<String>, terms: Vec<Term>) -> Self {
        RelAtom {
            name: name.into(),
            terms: Some(terms),
        }
    }
}

/// A multi-model join query: relational atoms plus twig patterns, over a
/// shared variable namespace (relational column names / rebound variables
/// and twig node variables).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiModelQuery {
    /// The relational atoms (resolved against the [`Database`]).
    pub relations: Vec<RelAtom>,
    /// Twig patterns, all evaluated against the context's document.
    pub twigs: Vec<TwigPattern>,
    /// Output attributes (`None` = all variables, in join-order).
    pub output: Option<Vec<Attr>>,
}

impl MultiModelQuery {
    /// Creates a query from relation names and twig expressions.
    pub fn new<S: AsRef<str>>(relations: &[S], twig_exprs: &[S]) -> Result<Self> {
        let twigs: Vec<TwigPattern> = twig_exprs
            .iter()
            .map(|e| TwigPattern::parse(e.as_ref()))
            .collect::<std::result::Result<_, _>>()?;
        Ok(MultiModelQuery {
            relations: relations
                .iter()
                .map(|s| RelAtom::plain(s.as_ref()))
                .collect(),
            twigs,
            output: None,
        })
    }

    /// Restricts the output schema.
    pub fn with_output(mut self, attrs: &[&str]) -> Self {
        self.output = Some(attrs.iter().map(|&a| Attr::new(a)).collect());
        self
    }

    /// Adds a renamed relational atom.
    pub fn with_renamed_relation(mut self, name: &str, attrs: &[&str]) -> Self {
        self.relations.push(RelAtom::renamed(
            name,
            attrs.iter().map(|&a| Attr::new(a)).collect(),
        ));
        self
    }

    /// Whether the query has no atoms.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty() && self.twigs.is_empty()
    }
}

/// A resolved relational atom: either a direct reference into the database
/// or a renamed copy.
#[derive(Debug)]
pub enum ResolvedAtom<'a> {
    /// The stored relation, untouched.
    Plain(&'a Relation),
    /// A copy with rebound variables.
    Renamed(Relation),
}

impl ResolvedAtom<'_> {
    /// The underlying relation.
    pub fn rel(&self) -> &Relation {
        match self {
            ResolvedAtom::Plain(r) => r,
            ResolvedAtom::Renamed(r) => r,
        }
    }
}

/// The data a query runs against: a relational database and one XML document
/// (with its tag index), sharing the database's dictionary.
#[derive(Debug, Clone, Copy)]
pub struct DataContext<'a> {
    /// The relational side (also owns the shared dictionary).
    pub db: &'a Database,
    /// The XML document.
    pub doc: &'a XmlDocument,
    /// Tag index over `doc`.
    pub index: &'a TagIndex,
}

impl<'a> DataContext<'a> {
    /// Bundles the three references.
    pub fn new(db: &'a Database, doc: &'a XmlDocument, index: &'a TagIndex) -> Self {
        DataContext { db, doc, index }
    }

    /// Resolves the query's relational atoms, applying positional renames,
    /// constant selections, and intra-atom variable-equality filters.
    pub fn resolve_atoms(&self, query: &MultiModelQuery) -> Result<Vec<ResolvedAtom<'a>>> {
        query
            .relations
            .iter()
            .map(|atom| {
                let rel = self
                    .db
                    .relation(&atom.name)
                    .map_err(|_| CoreError::UnknownRelation(atom.name.clone()))?;
                match &atom.terms {
                    None => Ok(ResolvedAtom::Plain(rel)),
                    Some(terms) => {
                        if terms.len() != rel.arity() {
                            return Err(CoreError::BadOrder(format!(
                                "atom `{}` binds {} terms but the relation has arity {}",
                                atom.name,
                                terms.len(),
                                rel.arity()
                            )));
                        }
                        Ok(ResolvedAtom::Renamed(apply_terms(self.db, rel, terms)?))
                    }
                }
            })
            .collect()
    }
}

/// Applies an atom's positional terms to a stored relation: constants become
/// selections, repeated variables become equality filters, and the result's
/// schema lists each distinct variable once (first-occurrence order).
fn apply_terms(db: &Database, rel: &Relation, terms: &[Term]) -> Result<Relation> {
    // Output columns: first occurrence of each variable.
    let mut out_attrs: Vec<Attr> = Vec::new();
    let mut out_positions: Vec<usize> = Vec::new();
    // Equality groups: for a repeated variable, all its positions.
    let mut eq_groups: Vec<Vec<usize>> = Vec::new();
    // Constant constraints (position, id); a constant the dictionary has
    // never seen makes the atom empty.
    let mut consts: Vec<(usize, Option<relational::ValueId>)> = Vec::new();

    for (pos, term) in terms.iter().enumerate() {
        match term {
            Term::Var(v) => match out_attrs.iter().position(|a| a == v) {
                None => {
                    out_attrs.push(v.clone());
                    out_positions.push(pos);
                    eq_groups.push(vec![pos]);
                }
                Some(k) => eq_groups[k].push(pos),
            },
            Term::Const(value) => consts.push((pos, db.dict().lookup(value))),
        }
    }
    if out_attrs.is_empty() {
        return Err(CoreError::BadOrder(format!(
            "atom over {} binds no variables",
            rel.schema()
        )));
    }
    let schema =
        relational::Schema::new(out_attrs.iter().cloned()).map_err(CoreError::Relational)?;
    let mut out = Relation::new(schema);
    // Any unknown constant ⇒ no tuple can match.
    if consts.iter().any(|(_, id)| id.is_none()) {
        return Ok(out);
    }
    let mut buf: Vec<relational::ValueId> = Vec::with_capacity(out_positions.len());
    'rows: for row in rel.rows() {
        for (pos, id) in &consts {
            if row[*pos] != id.expect("checked above") {
                continue 'rows;
            }
        }
        for group in &eq_groups {
            if group.windows(2).any(|w| row[w[0]] != row[w[1]]) {
                continue 'rows;
            }
        }
        buf.clear();
        buf.extend(out_positions.iter().map(|&p| row[p]));
        out.push(&buf).map_err(CoreError::Relational)?;
    }
    out.sort_dedup();
    Ok(out)
}

/// Collects every variable from already-resolved relational atoms followed
/// by twig variables (in twig-node order), without duplicates — the
/// resolution-free body of [`all_variables`], for callers that already hold
/// the resolved atoms.
pub fn variables_of(resolved: &[ResolvedAtom<'_>], twigs: &[TwigPattern]) -> Vec<Attr> {
    let mut vars: Vec<Attr> = Vec::new();
    for atom in resolved {
        for a in atom.rel().schema().attrs() {
            if !vars.contains(a) {
                vars.push(a.clone());
            }
        }
    }
    for twig in twigs {
        for v in twig.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    vars
}

/// Collects every variable of the query: relational attributes (in schema
/// order per atom) followed by twig variables (in twig-node order), without
/// duplicates.
pub fn all_variables(ctx: &DataContext<'_>, query: &MultiModelQuery) -> Result<Vec<Attr>> {
    let vars = variables_of(&ctx.resolve_atoms(query)?, &query.twigs);
    if vars.is_empty() {
        return Err(CoreError::EmptyQuery);
    }
    Ok(vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Schema, Value};

    fn setup() -> (Database, XmlDocument) {
        let mut db = Database::new();
        db.load(
            "R",
            Schema::of(&["orderID", "userID"]),
            vec![vec![Value::Int(1), Value::str("jack")]],
        )
        .unwrap();
        let mut b = XmlDocument::builder();
        b.begin("invoices");
        b.leaf("ISBN", "978");
        b.end();
        let doc = {
            let mut dict = db.dict().clone();
            let d = b.build(&mut dict);
            *db.dict_mut() = dict;
            d
        };
        (db, doc)
    }

    #[test]
    fn query_construction_parses_twigs() {
        let q = MultiModelQuery::new(&["R"], &["//invoices/ISBN"]).unwrap();
        assert_eq!(q.relations.len(), 1);
        assert_eq!(q.relations[0].name, "R");
        assert_eq!(q.twigs.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn bad_twig_expression_errors() {
        assert!(MultiModelQuery::new(&["R"], &["//a[b"]).is_err());
    }

    #[test]
    fn all_variables_unions_models() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["R"], &["//invoices/ISBN"]).unwrap();
        let vars = all_variables(&ctx, &q).unwrap();
        let names: Vec<&str> = vars.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["orderID", "userID", "invoices", "ISBN"]);
    }

    #[test]
    fn unknown_relation_is_reported() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new(&["missing"], &[]).unwrap();
        assert!(matches!(
            ctx.resolve_atoms(&q),
            Err(CoreError::UnknownRelation(_))
        ));
    }

    #[test]
    fn renamed_atoms_rebind_positionally() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new::<&str>(&[], &[])
            .unwrap()
            .with_renamed_relation("R", &["oid", "who"]);
        let atoms = ctx.resolve_atoms(&q).unwrap();
        assert_eq!(atoms[0].rel().schema(), &Schema::of(&["oid", "who"]));
    }

    #[test]
    fn rename_arity_mismatch_errors() {
        let (db, doc) = setup();
        let idx = TagIndex::build(&doc);
        let ctx = DataContext::new(&db, &doc, &idx);
        let q = MultiModelQuery::new::<&str>(&[], &[])
            .unwrap()
            .with_renamed_relation("R", &["only_one"]);
        assert!(matches!(ctx.resolve_atoms(&q), Err(CoreError::BadOrder(_))));
    }

    #[test]
    fn output_restriction() {
        let q = MultiModelQuery::new(&["R"], &[])
            .unwrap()
            .with_output(&["userID"]);
        assert_eq!(q.output.unwrap(), vec![Attr::new("userID")]);
    }
}
