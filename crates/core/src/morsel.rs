//! Morsel-driven intra-query parallelism for the plan-based engines.
//!
//! The worst-case optimal kernels in this workspace (level-wise XJoin,
//! streaming XJoin, LFTJ, the generic level-wise join) all bind variables in
//! one global order, starting from a leapfrog intersection over the root
//! levels of the participating tries. Partitioning the **first** variable's
//! value domain therefore splits the whole join into independent sub-joins
//! ("morsels"): each morsel is its own trie walk, no coordination is needed,
//! and the AGM-bounded total work divides across cores.
//!
//! Three pieces implement this:
//!
//! * [`Parallelism`] — the knob on [`crate::ExecOptions`]: serial, a fixed
//!   thread count, or all available cores;
//! * [`partition_root`] — morsel planning: split the root trie's first-level
//!   values into `K` contiguous [`ValueRange`]s that disjointly cover the
//!   entire value space (so no atom's root value can fall between morsels);
//! * the scheduler — a crate-internal `execute_parallel` body for
//!   materialising engines (a scoped `std` thread pool pulling morsel
//!   indices from an atomic counter, merging per-morsel outputs in domain
//!   order, reached through [`crate::execute_with_plan`]) and a
//!   channel-backed tuple source for the streaming engine (detached workers
//!   feeding a bounded channel behind the pull-based [`crate::Rows`]
//!   iterator, reached through [`crate::stream_with_plan`]).
//!
//! **Determinism.** Because every result tuple belongs to exactly one morsel
//! (by its first binding) and morsels are contiguous value ranges,
//! concatenating morsel outputs in domain order reproduces the serial
//! engines' output *order*, not just the result set. The materialising
//! engines always merge this way; the streaming source does too unless
//! [`crate::ExecOptions::unordered`] opts into arrival order.
//!
//! **Stats.** Per-stage intermediate counts partition exactly across a
//! disjoint cover, so the merged [`relational::JoinStats`] sums each stage
//! over the morsels and equals the serial series — Lemma 3.5 measurements
//! survive parallel execution. Walk work counters aggregate the same way:
//! [`crate::RowsStats::visited`] on a parallel iterator is the **sum** of
//! all workers' binding counters (updated as each worker retires a morsel).
//!
//! **Limits.** The streaming consumer publishes its emitted-row count to a
//! shared atomic; workers poll it between tuples and abandon their walks
//! once the limit is reached, so `LIMIT k` still prunes the search space
//! under parallel execution.

use crate::engine::{build_ad_checks, xjoin_with_plan_body};
use crate::error::{CoreError, Result};
use crate::exec::{drain_rows, finish, validate_output, EngineKind, ExecOptions, QueryOutput};
use crate::query::{DataContext, MultiModelQuery};
use crate::stream::Rows;
use relational::generic::levelwise_join_in_range;
use relational::lftj::lftj_in_range_counted;
use relational::{JoinPlan, JoinStats, LftjWalk, Relation, Schema, ValueId, ValueRange};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Morsels handed to the scheduler per worker thread: more morsels than
/// workers lets fast workers steal remaining ranges (dynamic load
/// balancing), while merge order keeps the output deterministic.
const MORSELS_PER_WORKER: usize = 4;

/// Tuples per channel message of the parallel streaming source: workers
/// batch result tuples to amortise channel synchronisation off the per-tuple
/// path.
const BATCH_SIZE: usize = 64;

/// Bounded channel capacity (in batches) of the parallel streaming source;
/// workers block once the consumer falls this far behind (backpressure).
const CHANNEL_CAPACITY: usize = 64;

/// Intra-query parallelism of the plan-based engines (a knob on
/// [`crate::ExecOptions`]). Non-plan engines (the baseline, the hash join)
/// ignore it and always run serially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded execution (the default).
    #[default]
    Serial,
    /// A fixed number of worker threads (`Threads(0)` and `Threads(1)` both
    /// mean serial).
    Threads(usize),
    /// One worker per available core
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Parallelism {
    /// The effective worker count: at least 1; `Auto` resolves to the number
    /// of available cores (1 when that cannot be determined).
    pub fn workers(&self) -> usize {
        match *self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Whether this setting enables more than one worker.
    pub fn is_parallel(&self) -> bool {
        self.workers() > 1
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Serial => write!(f, "serial"),
            Parallelism::Threads(n) => write!(f, "threads({n})"),
            Parallelism::Auto => write!(f, "auto"),
        }
    }
}

/// Morsel planning: splits the value space into at most `morsels` contiguous
/// [`ValueRange`]s, seeded from the first-level values of the smallest root
/// trie participating in the plan's first variable.
///
/// The returned ranges are a **disjoint cover of the entire value space**:
/// the first range starts at [`ValueId`]`(0)`, each range's `hi` equals the
/// next range's `lo`, and the last range is unbounded — so every first-level
/// value of *every* atom (not just the sampled one) falls in exactly one
/// morsel, and no result tuple is lost or duplicated. Some morsels may turn
/// out empty for atoms whose values cluster differently; that is harmless.
///
/// Plans with no variables (or an empty sampled root level, or `morsels <=
/// 1`) yield the single full range.
pub fn partition_root(plan: &JoinPlan, morsels: usize) -> Vec<ValueRange> {
    let Some(vp) = plan.var_plans().first() else {
        return vec![ValueRange::all()];
    };
    if morsels <= 1 {
        return vec![ValueRange::all()];
    }
    let seed = vp
        .participants
        .iter()
        .min_by_key(|p| plan.tries()[p.atom].level_len(p.level))
        .expect("every variable has at least one participant");
    debug_assert_eq!(seed.level, 0, "first variable binds at the root level");
    let trie = &plan.tries()[seed.atom];
    let vals = trie.values(0, trie.root_range());
    if vals.is_empty() {
        return vec![ValueRange::all()];
    }
    let k = morsels.min(vals.len());
    (0..k)
        .map(|i| ValueRange {
            lo: if i == 0 {
                ValueId(0)
            } else {
                vals[i * vals.len() / k]
            },
            hi: if i + 1 == k {
                None
            } else {
                Some(vals[(i + 1) * vals.len() / k])
            },
        })
        .collect()
}

/// Runs `job` over every morsel on a scoped pool of `workers` threads
/// (workers pull morsel indices from a shared atomic), returning the
/// per-morsel outputs **in morsel order**. The first job error wins.
fn run_morsels<T, F>(morsels: &[ValueRange], workers: usize, job: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&ValueRange) -> Result<T> + Sync,
{
    let n = morsels.len();
    if n <= 1 || workers <= 1 {
        return morsels
            .iter()
            .map(|range| {
                let _span = xjoin_obs::span("morsel");
                job(range)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for w in 0..workers.min(n) {
            let worker = || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut span = xjoin_obs::span("morsel");
                    span.set_attr(|| format!("morsel={i}"));
                    let out = job(&morsels[i]);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                }
                // Scoped threads end with the scope, not the process: hand
                // this worker's span ring to the global collector now.
                xjoin_obs::flush_thread();
            };
            std::thread::Builder::new()
                .name(format!("xjoin-morsel-{w}"))
                .spawn_scoped(s, worker)
                .expect("spawn morsel worker");
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("scoped pool ran every morsel")
        })
        .collect()
}

/// Concatenates per-morsel relations (already in domain order) into one
/// relation over `schema`.
fn concat(schema: Schema, parts: &[Relation]) -> Relation {
    let total = parts.iter().map(Relation::len).sum();
    let mut merged = Relation::with_capacity(schema, total);
    for part in parts {
        for row in part.rows() {
            merged.push(row).expect("morsel schema matches plan order");
        }
    }
    merged
}

/// Morsel-parallel execution of a plan-based engine: the parallel
/// counterpart of the serial arms in [`crate::exec::execute_with_plan`],
/// which routes here when [`crate::ExecOptions::parallelism`] asks for more
/// than one worker. Results (and, for the level-wise engines, per-stage
/// intermediate counts) are identical to serial execution; morsel outputs
/// are merged in domain order, so even the tuple order matches.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_parallel(
    ctx: &DataContext<'_>,
    query: &MultiModelQuery,
    opts: &ExecOptions,
    plan: &JoinPlan,
    atom_sizes: Vec<(String, usize)>,
    first_path_atom: usize,
) -> Result<QueryOutput> {
    let start = Instant::now();
    validate_output(query, plan.order())?;
    let workers = opts.parallelism.workers();
    let morsels = partition_root(plan, workers.saturating_mul(MORSELS_PER_WORKER));
    let mut dispatch_span = xjoin_obs::span("morsel-dispatch");
    dispatch_span.set_attr(|| format!("morsels={} workers={workers}", morsels.len()));
    let schema = Schema::new(plan.order().iter().cloned()).expect("order vars distinct");
    match opts.engine {
        EngineKind::XJoin => {
            // Each morsel runs the full level-wise body — filters, partial
            // validation, and the final structure check included — but over
            // a projection-free query (projection must happen once, across
            // morsels, to preserve set semantics) and with empty atom sizes
            // (the materialise stages are global, recorded once below).
            let subquery = MultiModelQuery {
                output: None,
                ..query.clone()
            };
            let cfg = opts.xjoin_config();
            // A-D checks are immutable per-query state (each one a document
            // scan): build once, share read-only across all morsel workers.
            let ad_checks = build_ad_checks(ctx, &subquery, plan.order(), cfg.ad_filter);
            let outs = run_morsels(&morsels, workers, |range| {
                xjoin_with_plan_body(ctx, &subquery, &cfg, plan, Vec::new(), 0, range, &ad_checks)
            })?;
            let mut stats = JoinStats::default();
            for (name, size) in atom_sizes.iter().skip(first_path_atom) {
                stats.record(format!("materialise {name}"), *size);
            }
            // Per-stage counts partition across the disjoint cover; summing
            // reproduces the serial Lemma 3.5 series exactly.
            for (i, stage) in outs[0].stats.stages.iter().enumerate() {
                let tuples = outs.iter().map(|o| o.stats.stages[i].tuples).sum();
                stats.record(stage.label.clone(), tuples);
            }
            let parts: Vec<Relation> = outs.into_iter().map(|o| o.results).collect();
            let mut rel = concat(schema, &parts);
            if let Some(out_attrs) = &query.output {
                rel = rel.project(out_attrs)?;
            }
            if let Some(k) = opts.limit {
                rel.truncate(k);
            }
            stats.output_rows = rel.len();
            stats.elapsed = start.elapsed();
            Ok(QueryOutput {
                results: rel,
                stats,
                order: plan.order().to_vec(),
                atom_sizes,
                engine: opts.engine,
            })
        }
        EngineKind::Generic => {
            let outs = run_morsels(&morsels, workers, |range| {
                Ok(levelwise_join_in_range(plan, range))
            })?;
            let mut stats = JoinStats::default();
            for (i, stage) in outs[0].1.stages.iter().enumerate() {
                let tuples = outs.iter().map(|(_, st)| st.stages[i].tuples).sum();
                stats.record(stage.label.clone(), tuples);
            }
            let parts: Vec<Relation> = outs.into_iter().map(|(rel, _)| rel).collect();
            let raw = concat(schema, &parts);
            finish(
                ctx,
                query,
                plan.order().to_vec(),
                raw,
                stats,
                atom_sizes,
                opts,
                opts.engine,
                start,
            )
        }
        EngineKind::Lftj => {
            let parts = run_morsels(&morsels, workers, |range| {
                Ok(lftj_in_range_counted(plan, range))
            })?;
            let mut stats = JoinStats::default();
            for (_, counters) in &parts {
                stats.reorders += counters.reorders;
                stats.estimate_probes += counters.estimate_probes;
            }
            let rels: Vec<Relation> = parts.into_iter().map(|(rel, _)| rel).collect();
            let raw = concat(schema, &rels);
            stats.record("lftj enumerate", raw.len());
            finish(
                ctx,
                query,
                plan.order().to_vec(),
                raw,
                stats,
                atom_sizes,
                opts,
                opts.engine,
                start,
            )
        }
        EngineKind::XJoinStream => {
            // Always drain in domain order: materialised outputs are
            // deterministic whatever `unordered` says (the flag only
            // affects the pull-based streaming surface).
            let rows = Rows::from_parallel(ctx, query, plan.clone(), opts.limit, workers, true)?;
            drain_rows(rows, plan.order().to_vec(), atom_sizes, opts.engine, start)
        }
        kind @ (EngineKind::HashJoin | EngineKind::Baseline { .. }) => Err(CoreError::Unsupported(
            format!("engine `{kind}` does not execute from a trie plan"),
        )),
    }
}

/// A message from a morsel worker to the streaming consumer.
enum WorkerMsg {
    /// A batch of full-width result tuples of morsel `usize` (at most
    /// [`BATCH_SIZE`], in walk order).
    Tuples(usize, Vec<Vec<ValueId>>),
    /// Morsel `usize` is fully enumerated.
    Done(usize),
}

/// State shared between the streaming consumer and its morsel workers.
struct MorselShared {
    morsels: Vec<ValueRange>,
    /// Next unclaimed morsel index.
    next: AtomicUsize,
    /// Summed binding counters of retired (or abandoned) walks.
    visited: AtomicU64,
    /// Rows emitted by the consumer so far — workers poll this between
    /// tuples and abandon their walks once `limit` is reached.
    emitted: AtomicU64,
    limit: Option<u64>,
}

/// The channel-backed tuple source behind a parallel [`crate::Rows`]:
/// detached worker threads walk morsels and feed full-width tuples through a
/// bounded channel; validation, projection, deduplication, and the limit
/// stay on the consumer side, exactly as in the serial walk.
pub(crate) struct ParallelTuples {
    /// Dropped first (in `Drop`) so blocked workers fail their sends and
    /// exit before the joins below.
    rx: Option<Receiver<WorkerMsg>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<MorselShared>,
    /// Reassemble morsels in domain order (deterministic mode) instead of
    /// yielding in arrival order.
    ordered: bool,
    /// Ordered mode: tuples of not-yet-current morsels, buffered.
    buffers: Vec<VecDeque<Vec<ValueId>>>,
    done: Vec<bool>,
    cursor: usize,
    /// Arrival-order mode: the batch currently being drained.
    arrived: VecDeque<Vec<ValueId>>,
    /// All workers have exited (channel disconnected).
    closed: bool,
}

impl ParallelTuples {
    /// Plans morsels over `plan` and spawns up to `workers` walker threads.
    pub(crate) fn spawn(
        plan: &JoinPlan,
        limit: Option<usize>,
        workers: usize,
        ordered: bool,
    ) -> ParallelTuples {
        let morsels = partition_root(plan, workers.saturating_mul(MORSELS_PER_WORKER));
        let n = morsels.len();
        let shared = Arc::new(MorselShared {
            morsels,
            next: AtomicUsize::new(0),
            visited: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            limit: limit.map(|k| k as u64),
        });
        let (tx, rx) = sync_channel::<WorkerMsg>(CHANNEL_CAPACITY);
        let plan = Arc::new(plan.clone());
        let handles = (0..workers.min(n))
            .map(|w| {
                let tx = tx.clone();
                let plan = Arc::clone(&plan);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xjoin-morsel-{w}"))
                    .spawn(move || worker_loop(&plan, &shared, &tx))
                    .expect("spawn morsel worker")
            })
            .collect();
        ParallelTuples {
            rx: Some(rx),
            workers: handles,
            shared,
            ordered,
            buffers: vec![VecDeque::new(); n],
            done: vec![false; n],
            cursor: 0,
            arrived: VecDeque::new(),
            closed: false,
        }
    }

    /// Summed binding counters of all workers (updated as walks retire).
    pub(crate) fn visited(&self) -> u64 {
        self.shared.visited.load(Ordering::Relaxed)
    }

    /// Publishes the consumer's emitted-row count for worker cut-off.
    pub(crate) fn note_emitted(&self, total: u64) {
        self.shared.emitted.store(total, Ordering::Relaxed);
    }

    fn recv(&mut self) -> Option<WorkerMsg> {
        self.rx.as_ref()?.recv().ok()
    }

    /// The next full-width tuple, or `None` when every morsel is drained.
    pub(crate) fn next_tuple(&mut self) -> Option<Vec<ValueId>> {
        if !self.ordered {
            loop {
                if let Some(t) = self.arrived.pop_front() {
                    return Some(t);
                }
                match self.recv()? {
                    WorkerMsg::Tuples(_, batch) => self.arrived.extend(batch),
                    WorkerMsg::Done(_) => continue,
                }
            }
        }
        loop {
            if self.cursor >= self.buffers.len() {
                return None;
            }
            if let Some(t) = self.buffers[self.cursor].pop_front() {
                return Some(t);
            }
            if self.done[self.cursor] || self.closed {
                self.cursor += 1;
                continue;
            }
            match self.recv() {
                Some(WorkerMsg::Tuples(i, batch)) => self.buffers[i].extend(batch),
                Some(WorkerMsg::Done(i)) => self.done[i] = true,
                // Workers gone: drain whatever is buffered, in order.
                None => self.closed = true,
            }
        }
    }
}

impl Drop for ParallelTuples {
    fn drop(&mut self) {
        // Disconnect the channel first: workers blocked in `send` wake with
        // an error and exit, so the joins below cannot hang.
        self.rx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for ParallelTuples {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelTuples")
            .field("morsels", &self.buffers.len())
            .field("workers", &self.workers.len())
            .field("ordered", &self.ordered)
            .finish()
    }
}

/// One worker: claim morsels from the shared counter, walk each with a
/// range-restricted [`LftjWalk`], and stream tuple batches to the consumer
/// (batching amortises channel synchronisation off the per-tuple path).
/// Each walk runs the default block probe kernel
/// ([`relational::ProbeKernel`]) — batch refills and bitset seeks work
/// unchanged under clamped root ranges, which the kernel-differential probe
/// suite exercises per morsel — so parallel and serial execution stay
/// bit-identical. Exits when morsels run out, when the consumer's emitted
/// count reaches the limit, or when the consumer hangs up (send error).
fn worker_loop(plan: &Arc<JoinPlan>, shared: &Arc<MorselShared>, tx: &SyncSender<WorkerMsg>) {
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        let Some(range) = shared.morsels.get(i) else {
            return;
        };
        let mut span = xjoin_obs::span("morsel");
        span.set_attr(|| format!("morsel={i}"));
        let mut walk = LftjWalk::with_root_range(plan.as_ref().clone(), range.clone());
        let mut batch: Vec<Vec<ValueId>> = Vec::with_capacity(BATCH_SIZE);
        loop {
            if shared
                .limit
                .is_some_and(|k| shared.emitted.load(Ordering::Relaxed) >= k)
            {
                // Cut-off: the limit is already satisfied, so the unsent
                // batch is dropped; just account the work done.
                shared.visited.fetch_add(walk.bindings(), Ordering::Relaxed);
                return;
            }
            let Some(t) = walk.next_tuple() else { break };
            batch.push(t.to_vec());
            if batch.len() == BATCH_SIZE
                && tx
                    .send(WorkerMsg::Tuples(i, std::mem::take(&mut batch)))
                    .is_err()
            {
                shared.visited.fetch_add(walk.bindings(), Ordering::Relaxed);
                return;
            }
        }
        shared.visited.fetch_add(walk.bindings(), Ordering::Relaxed);
        if !batch.is_empty() && tx.send(WorkerMsg::Tuples(i, batch)).is_err() {
            return;
        }
        if tx.send(WorkerMsg::Done(i)).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{Relation, Schema};

    fn rel(names: &[&str], rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(Schema::of(names));
        for row in rows {
            let ids: Vec<ValueId> = row.iter().map(|&x| ValueId(x)).collect();
            r.push(&ids).unwrap();
        }
        r
    }

    fn attrs(names: &[&str]) -> Vec<relational::Attr> {
        names.iter().map(|&n| relational::Attr::new(n)).collect()
    }

    #[test]
    fn parallelism_resolves_worker_counts() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(3).workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
        assert!(!Parallelism::Serial.is_parallel());
        assert!(Parallelism::Threads(2).is_parallel());
        assert_eq!(Parallelism::Threads(2).to_string(), "threads(2)");
    }

    #[test]
    fn partition_covers_disjointly_and_caps_at_root_len() {
        let r = rel(&["a", "b"], &[&[1, 1], &[4, 1], &[9, 1], &[12, 1]]);
        let plan = JoinPlan::new(&[&r], &attrs(&["a", "b"])).unwrap();
        for k in [1usize, 2, 3, 4, 9, 100] {
            let ranges = partition_root(&plan, k);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= k.max(1));
            assert!(ranges.len() <= 4, "at most one morsel per root value");
            assert_eq!(ranges[0].lo, ValueId(0));
            assert!(ranges.last().unwrap().hi.is_none());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].hi, Some(pair[1].lo), "ranges must be adjacent");
            }
            // Every root value falls in exactly one range.
            for v in [1u32, 4, 9, 12] {
                let hits = ranges.iter().filter(|r| r.contains(ValueId(v))).count();
                assert_eq!(hits, 1, "value {v} covered once for k={k}");
            }
        }
    }

    #[test]
    fn partition_of_empty_or_nullary_plans_is_the_full_range() {
        let empty = rel(&["a"], &[]);
        let plan = JoinPlan::new(&[&empty], &attrs(&["a"])).unwrap();
        assert_eq!(partition_root(&plan, 8), vec![ValueRange::all()]);
    }

    #[test]
    fn parallel_tuples_match_serial_walk_in_order() {
        let r = rel(&["a", "b"], &[&[1, 2], &[2, 3], &[3, 1], &[1, 3], &[5, 5]]);
        let s = rel(&["b", "c"], &[&[2, 3], &[3, 1], &[1, 2], &[5, 9]]);
        let plan = JoinPlan::new(&[&r, &s], &attrs(&["a", "b", "c"])).unwrap();
        let mut serial = LftjWalk::new(plan.clone());
        let mut expect = Vec::new();
        while let Some(t) = serial.next_tuple() {
            expect.push(t.to_vec());
        }
        let mut source = ParallelTuples::spawn(&plan, None, 3, true);
        let mut got = Vec::new();
        while let Some(t) = source.next_tuple() {
            got.push(t);
        }
        assert_eq!(got, expect, "ordered parallel source = serial walk order");
        assert_eq!(source.visited(), serial.bindings(), "visited sums exactly");

        // Unordered mode yields the same multiset.
        let mut unordered = ParallelTuples::spawn(&plan, None, 3, false);
        let mut got2 = Vec::new();
        while let Some(t) = unordered.next_tuple() {
            got2.push(t);
        }
        got2.sort();
        let mut sorted = expect;
        sorted.sort();
        assert_eq!(got2, sorted);
    }

    #[test]
    fn dropping_the_source_mid_stream_joins_workers() {
        let rows: Vec<Vec<ValueId>> = (0..200).map(|i| vec![ValueId(i)]).collect();
        let a = Relation::from_rows(Schema::of(&["a"]), rows.clone()).unwrap();
        let b = Relation::from_rows(
            Schema::of(&["b"]),
            (0..200).map(|i| vec![ValueId(i)]).collect::<Vec<_>>(),
        )
        .unwrap();
        let plan = JoinPlan::new(&[&a, &b], &attrs(&["a", "b"])).unwrap();
        let mut source = ParallelTuples::spawn(&plan, None, 2, true);
        assert!(source.next_tuple().is_some());
        drop(source); // must not hang: workers fail their sends and exit
    }
}
