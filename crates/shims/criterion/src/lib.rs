//! Offline shim for the `criterion` crate.
//!
//! No registry access is available in this build environment, so this crate
//! implements the subset of criterion's API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::throughput`],
//! [`BenchmarkId`], [`Throughput`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a real (if spartan) harness: each benchmark is warmed up, then timed
//! adaptively, and a `name ... time: [mean] (n iters)` line is printed —
//! enough to compare engines locally. There are no statistics, plots, or
//! saved baselines; swap the workspace's path dependency for the real
//! criterion when a registry is available.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_FOR: Duration = Duration::from_millis(300);
/// Warm-up time per benchmark.
const WARM_UP_FOR: Duration = Duration::from_millis(50);

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the amount of work each iteration processes; per-iteration
    /// rates are reported alongside times.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark identified by `id` within this group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Run a benchmark that borrows a setup `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Finish the group (a no-op in the shim; reports print eagerly).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_with_input` accepts both ids
/// and plain strings.
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

/// Work-per-iteration declaration, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many bytes.
    Bytes(u64),
    /// Iterations process this many abstract elements.
    Elements(u64),
}

/// The per-benchmark timing driver, mirroring `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called repeatedly until the measurement window fills.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARM_UP_FOR {
            black_box(routine());
        }
        // Measure in growing batches so cheap routines aren't dominated by
        // clock reads.
        let mut batch: u64 = 1;
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        while total_time < MEASURE_FOR {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_time += start.elapsed();
            total_iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.iters = total_iters;
        self.elapsed = total_time;
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{name:<50} (no iterations recorded)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(" thrpt: {:>10}/s", human_bytes(n as f64 / per_iter))
        }
        Some(Throughput::Elements(n)) => format!(" thrpt: {:.0} elem/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!(
        "{name:<50} time: [{}] ({} iters){rate}",
        human_time(per_iter),
        bencher.iters
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn human_bytes(bytes_per_sec: f64) -> String {
    const UNITS: &[&str] = &["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes_per_sec;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// Bundle benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
