//! Offline shim for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of proptest the workspace's property suites use: the [`Strategy`]
//! trait with [`Strategy::prop_map`], range / tuple / string-regex
//! strategies, [`collection::vec`] and [`collection::btree_set`],
//! [`any`], [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs verbatim
//!   (they are `Debug`-printed before the test body runs) instead of a
//!   minimised counterexample.
//! * **Deterministic.** Case `i` of every test derives its RNG from `i`, so
//!   failures reproduce exactly across runs and machines.
//! * String strategies support the character-class subset of regex syntax
//!   (`[a-z<>& ]{m,n}`) that the suites use, not full regex.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

pub mod collection;
pub mod string;

/// Re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values — the shim's (shrink-free) take on
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        string::generate_from_pattern(self, rng)
    }
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for [`bool`]: a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Test-runner entry point used by the [`proptest!`] macro expansion.
///
/// Runs `cfg.cases` cases; each case gets a deterministic RNG derived from
/// its index. The closure writes a `Debug` rendering of its generated inputs
/// into the provided buffer before running the body, so a panicking case can
/// be reported with the exact inputs that triggered it.
pub fn run_cases(cfg: &ProptestConfig, f: impl Fn(&mut StdRng, &mut String)) {
    for case in 0..cfg.cases {
        let mut rng = StdRng::seed_from_u64(0x5eed_0000_0000_0000 | case as u64);
        let mut desc = String::new();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng, &mut desc)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest shim: case {case} of {} failed; inputs: {}",
                cfg.cases,
                if desc.is_empty() {
                    "<none recorded>"
                } else {
                    &desc
                }
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Supports the forms the workspace uses: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&__cfg, |__rng, __desc| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    {
                        use ::std::fmt::Write as _;
                        $(let _ = ::core::write!(__desc, "{} = {:?}; ", stringify!($arg), &$arg);)+
                    }
                    $body
                });
            }
        )+
    };
    (
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)+
        }
    };
}

/// Assert a condition inside a property, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        ::std::assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        ::std::assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        ::std::assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        ::std::assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        ::std::assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        ::std::assert_ne!($a, $b, $($fmt)*)
    };
}

/// Discard a case when an assumption fails, mirroring `proptest::prop_assume!`.
///
/// The shim simply returns from the case closure (the case counts as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}
