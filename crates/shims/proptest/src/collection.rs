//! Collection strategies, mirroring `proptest::collection`.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = sample_size(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `BTreeSet` whose size is drawn from `size` (best-effort when the element
/// domain is smaller than the target) and whose elements come from `element`.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = sample_size(&self.size, rng);
        let mut out = BTreeSet::new();
        // Duplicates don't grow the set; cap the attempts so a small element
        // domain terminates with a smaller-than-target set, as real proptest
        // does.
        let mut attempts = 20 * target + 20;
        while out.len() < target && attempts > 0 {
            out.insert(self.element.generate(rng));
            attempts -= 1;
        }
        out
    }
}

fn sample_size(size: &Range<usize>, rng: &mut StdRng) -> usize {
    if size.start >= size.end {
        size.start
    } else {
        rng.gen_range(size.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = vec((0u32..12, 0u32..12), 0..60);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 60);
            assert!(v.iter().all(|&(a, b)| a < 12 && b < 12));
        }
    }

    #[test]
    fn btree_set_meets_min_size_when_domain_allows() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = btree_set(0usize..6, 1..4);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 4, "size {}", s.len());
            assert!(s.iter().all(|&x| x < 6));
        }
    }
}
