//! String generation from the character-class subset of regex syntax.
//!
//! Supports what the workspace's suites use: a sequence of atoms, where an
//! atom is a character class `[...]` (literals and `a-z` ranges) or a literal
//! character, optionally followed by a `{m}` or `{m,n}` repetition. Escapes
//! (`\\x`) are honoured both inside and outside classes.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
struct Atom {
    /// Candidate characters; one is drawn uniformly per repetition.
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
///
/// # Panics
/// Panics on syntax outside the supported subset — a shim-authoring error,
/// not a data-dependent one.
pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = if atom.min == atom.max {
            atom.min
        } else {
            rng.gen_range(atom.min..atom.max + 1)
        };
        for _ in 0..n {
            let idx: usize = rng.gen_range(0..atom.chars.len());
            out.push(atom.chars[idx]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                set
            }
            '\\' => {
                i += 2;
                vec![*chars
                    .get(i - 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))]
            }
            c => {
                assert!(
                    !"(){}*+?|^$.".contains(c),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}"
                );
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_repeat(&chars, &mut i, pattern);
        atoms.push(Atom {
            chars: candidates,
            min,
            max,
        });
    }
    atoms
}

/// Parse a class body starting just after `[`; returns the candidate set and
/// the index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    assert!(
        chars.get(i) != Some(&'^'),
        "negated classes are unsupported in pattern {pattern:?}"
    );
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let hi = chars[i + 2];
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(lo);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
    assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
    (set, i + 1)
}

/// Parse an optional `{m}` / `{m,n}` at `*i`, advancing past it.
fn parse_repeat(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    if chars.get(*i) != Some(&'{') {
        return (1, 1);
    }
    let close = chars[*i..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"))
        + *i;
    let body: String = chars[*i + 1..close].iter().collect();
    *i = close + 1;
    let parse_num = |s: &str| {
        s.trim()
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("bad repetition bound {s:?} in pattern {pattern:?}"))
    };
    match body.split_once(',') {
        Some((m, n)) => (parse_num(m), parse_num(n)),
        None => {
            let m = parse_num(&body);
            (m, m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_range_and_repeat() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_class() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate_from_pattern("[ -~]{0,64}", &mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_in_class() {
        let mut rng = StdRng::seed_from_u64(3);
        let allowed = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ<>&'\" ";
        for _ in 0..200 {
            let s = generate_from_pattern("[a-zA-Z<>&'\" ]{1,40}", &mut rng);
            assert!((1..=40).contains(&s.len()));
            assert!(s.chars().all(|c| allowed.contains(c)), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "negated classes are unsupported")]
    fn negated_class_is_rejected_loudly() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = generate_from_pattern("[^<]{1,10}", &mut rng);
    }
    #[test]
    fn literal_sequence() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
    }
}
